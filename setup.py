from setuptools import find_packages, setup

setup(
    name="repro-coopt-chemistry",
    version="1.1.0",
    description=(
        "Reproduction of 'Software-Hardware Co-Optimization for "
        "Computational Chemistry on Superconducting Quantum Processors' "
        "(ISCA 2021): ansatz compression, X-Tree architectures, and "
        "Merge-to-Root compilation behind a composable Pipeline API"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: ship inline annotations to downstream type checkers.
    package_data={"repro": ["py.typed"]},
    # 3.11 matches CI and the ruff target-version; numpy>=2.0 is required
    # for np.bitwise_count (repro.core.bits.popcount is the single place
    # that dependency lives -- it carries a SWAR fallback, but the
    # supported configuration is NumPy 2.x).
    python_requires=">=3.11",
    install_requires=[
        "numpy>=2.0",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
