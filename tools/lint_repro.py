#!/usr/bin/env python3
"""Repo-specific AST lint: rules encoding bug classes this repo shipped.

Generic linters catch generic mistakes; each rule here is keyed to a bug
that actually reached ``main`` (see CHANGES.md) so the class cannot
return:

RR001  truthiness test on a cache/store/registry object.  The compile
       cache defines ``__len__``, so ``if self._store:`` silently meant
       "if non-empty", disabling caching for every fresh store (PR 6 bug
       class).  Compare against ``None`` explicitly.
RR002  bare ``/ norm`` renormalization in simulation or VQE code.
       Silent renormalization masked the broken noisy path for five PRs
       (PR 5 bug class); probability vectors must go through
       ``checked_probabilities`` so a bad norm raises.
RR003  ``np.bitwise_count`` outside ``core/bits.py``.  The API exists
       only on NumPy >= 2.0; the version-gated fallback lives in
       ``repro.core.bits.popcount`` and must stay the single gate.
RR004  bare ``assert`` used for input validation in library code.
       Asserts vanish under ``python -O``; raise a typed exception with
       an actionable message instead.  ``assert x is not None`` (type
       narrowing of a value already guaranteed by a checked contract) is
       exempt.
RR005  direct access to a private registry (``_DEVICES``, ``_COMPILERS``,
       ``_COMPILE_CACHE``) outside its home module.  Bypassing the
       accessor skips normalization and lazy registration.
RR006  direct ``import numpy`` in a ``sim/`` hot-path module outside
       ``sim/backend.py``.  Simulation math must route through the
       :class:`~repro.sim.backend.ArrayBackend` dispatch layer so
       CuPy/torch backends stay drop-in; host-side code that is numpy
       by design (index tables, in-place kernels) carries a pragma
       naming the reason.
RR007  stale suppression pragma: a ``# lint: ignore[...]`` whose code
       never suppressed anything in this run.  Reported as a warning;
       does not gate the build.

The project-level RR1xx analyzers (concurrency safety, determinism,
backend purity -- see ``repro.analysis.static`` and docs/analysis.md)
also run through this tool whenever the linted paths overlap
``src/repro``, so one invocation covers both rule families.

Suppress a finding with a ``# lint: ignore[RR001] - reason`` comment on
the offending statement (multiple codes comma-separated).  Suppression
is *span-aware*: a pragma anywhere inside a multi-line statement, on a
decorator, or on a standalone comment line directly above the statement
all work.  Exit status is 1 when any error-severity finding remains, so
the tool gates CI.

Usage:
    python tools/lint_repro.py                      # lint src/repro
    python tools/lint_repro.py path ...             # specific files/dirs
    python tools/lint_repro.py --format=github      # CI annotations
    python tools/lint_repro.py --format=json --output lint_repro.json
    python tools/lint_repro.py --update-baseline    # accept current debt
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"

_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.static.model import load_project  # noqa: E402
from repro.analysis.static.rules import analyze_project  # noqa: E402
from repro.analysis.static.suppress import SuppressionIndex  # noqa: E402

#: Names whose truthiness is ambiguous because the objects they
#: conventionally hold define ``__len__`` (RR001).
TRUTHINESS_SUSPECTS = re.compile(r"(cache|store|registry)", re.IGNORECASE)

#: Modules (relative to the repo root) where ``/ norm`` renormalization
#: is audited (RR002).  Only state-vector / probability code is in
#: scope; e.g. quadrature normalization in chem/ is legitimate.
RR002_SCOPE = ("src/repro/sim/", "src/repro/vqe/")

#: Function whose body is the one sanctioned home of ``/ norm`` (RR002).
RR002_EXEMPT_FUNCTION = "checked_probabilities"

#: NumPy >= 2.0-only attributes and the single module allowed to touch
#: them behind a version gate (RR003).
NUMPY2_ONLY_ATTRS = {"bitwise_count"}
RR003_HOME = "src/repro/core/bits.py"

#: Modules under this prefix must route array math through the
#: ArrayBackend dispatch layer (RR006); ``RR006_HOME`` is the one
#: sanctioned home of direct numpy imports.
RR006_SCOPE = "src/repro/sim/"
RR006_HOME = "src/repro/sim/backend.py"

#: Private registries and their home modules (RR005).
PRIVATE_REGISTRIES = {
    "_DEVICES": "src/repro/hardware/registry.py",
    "_COMPILERS": "src/repro/compiler/registry.py",
    "_COMPILE_CACHE": "src/repro/core/cache.py",
}

#: Codes reported as warnings: shown, never gate the build.
WARNING_CODES = {"RR007"}


@dataclass(frozen=True)
class Finding:
    code: str
    path: Path
    line: int
    message: str

    @property
    def severity(self) -> str:
        return "warning" if self.code in WARNING_CODES else "error"

    def rel(self) -> str:
        resolved = self.path.resolve()
        try:
            return resolved.relative_to(REPO_ROOT).as_posix()
        except ValueError:
            return self.path.as_posix()

    def format(self) -> str:
        return f"{self.rel()}:{self.line}: {self.code} {self.message}"

    def format_github(self) -> str:
        kind = self.severity
        return (
            f"::{kind} file={self.rel()},line={self.line}::"
            f"{self.code} {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.rel(),
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }

    def fingerprint(self) -> dict[str, str]:
        """Line-independent identity used by the baseline mechanism.

        Line numbers shift on unrelated edits, so the baseline keys on
        (code, path, message) with any ``path:line`` references inside
        the message normalized.
        """
        return {
            "code": self.code,
            "path": self.rel(),
            "message": re.sub(r":\d+", ":*", self.message),
        }


def _name_of(node: ast.expr) -> str | None:
    """Terminal identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_none_narrowing(test: ast.expr) -> bool:
    """True for ``x is not None`` / ``x is None`` comparison asserts."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.IsNot, ast.Is))
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, rel_posix: str):
        self.path = path
        self.rel = rel_posix
        self.findings: list[Finding] = []
        self._function_stack: list[str] = []

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(code, self.path, node.lineno, message))

    # -- scope tracking -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    # -- RR001: truthiness on __len__-bearing objects -------------------
    def _check_truthiness(self, test: ast.expr) -> None:
        target = test.operand if (
            isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
        ) else test
        name = _name_of(target)
        if name and TRUTHINESS_SUSPECTS.search(name):
            self._add(
                "RR001",
                test,
                f"truthiness test on {name!r}: cache/store/registry objects "
                "define __len__, so this reads 'if non-empty', not 'if not "
                "None'; compare against None explicitly",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        # `store and store.get(...)` has the same trap as `if store:`.
        for value in node.values[:-1]:
            self._check_truthiness(value)
        self.generic_visit(node)

    # -- RR002: silent `/ norm` renormalization -------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Div)
            and self.rel.startswith(RR002_SCOPE)
            and RR002_EXEMPT_FUNCTION not in self._function_stack
        ):
            name = _name_of(node.right)
            if name and name == "norm":
                self._add(
                    "RR002",
                    node,
                    "silent '/ norm' renormalization: a wrong norm is "
                    "masked instead of raised; route probability vectors "
                    f"through {RR002_EXEMPT_FUNCTION}()",
                )
        self.generic_visit(node)

    # -- RR003: NumPy >= 2.0-only APIs outside the gate -----------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in NUMPY2_ONLY_ATTRS
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
            and self.rel != RR003_HOME
        ):
            self._add(
                "RR003",
                node,
                f"np.{node.attr} requires NumPy >= 2.0; use the "
                "version-gated wrapper in repro.core.bits instead",
            )
        self.generic_visit(node)

    # -- RR004: bare assert as input validation -------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        if not _is_none_narrowing(node.test):
            self._add(
                "RR004",
                node,
                "bare assert in library code vanishes under 'python -O'; "
                "raise a typed exception with an actionable message",
            )
        self.generic_visit(node)

    # -- RR005: registry dict access outside its home module ------------
    def _check_registry_name(self, name: str | None, node: ast.AST) -> None:
        if name in PRIVATE_REGISTRIES and self.rel != PRIVATE_REGISTRIES[name]:
            self._add(
                "RR005",
                node,
                f"direct access to private registry {name}; use the "
                f"accessor functions in {PRIVATE_REGISTRIES[name]}",
            )

    def visit_Name(self, node: ast.Name) -> None:
        self._check_registry_name(node.id, node)

    # -- RR006: direct numpy import in sim/ hot paths --------------------
    def _in_rr006_scope(self) -> bool:
        return self.rel.startswith(RR006_SCOPE) and self.rel != RR006_HOME

    def _add_rr006(self, node: ast.AST) -> None:
        self._add(
            "RR006",
            node,
            "direct numpy import in a sim/ hot path: array math must go "
            "through the ArrayBackend dispatch layer (repro.sim.backend) "
            "so CuPy/torch backends stay drop-in; host-side-by-design "
            "code takes a '# lint: ignore[RR006] - <reason>' pragma",
        )

    def visit_Import(self, node: ast.Import) -> None:
        if self._in_rr006_scope():
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    self._add_rr006(node)
                    break
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self._check_registry_name(alias.name, node)
        if self._in_rr006_scope() and node.module is not None:
            if node.module == "numpy" or node.module.startswith("numpy."):
                self._add_rr006(node)
        self.generic_visit(node)


def _lint_source_raw(
    source: str, path: Path, rel: str
) -> tuple[list[Finding], SuppressionIndex | None]:
    """Raw per-file findings plus the file's suppression index.

    Suppression is *not* applied here; callers share the returned index
    across the per-file and project-level passes so that pragma usage
    (and hence RR007 staleness) is computed over both rule families.
    """
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding("RR000", path, exc.lineno or 1, f"syntax error: {exc.msg}")
        return [finding], None
    visitor = _Visitor(path, rel)
    visitor.visit(tree)
    return visitor.findings, SuppressionIndex(source, tree)


def lint_source(source: str, path: Path, rel: str) -> list[Finding]:
    """Lint ``source`` as if it lived at repo-relative path ``rel``.

    Split out from :func:`lint_file` so tests can exercise the
    path-scoped rules (RR002/RR003/RR005) without writing into the
    source tree.  Returns the unsuppressed per-file findings; the
    project-level RR1xx pass and RR007 staleness run only in
    :func:`main`, where whole-program context exists.
    """
    findings, index = _lint_source_raw(source, path, rel)
    if index is None:
        return findings
    return [f for f in findings if not index.is_suppressed(f.code, f.line)]


def lint_file(path: Path) -> list[Finding]:
    """Lint one Python file; returns the unsuppressed findings."""
    try:
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        rel = path.as_posix()
    return lint_source(path.read_text(), path, rel)


def iter_python_files(targets: Iterable[Path]) -> Iterator[Path]:
    for target in targets:
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            yield target


def _load_baseline(path: Path) -> list[dict[str, str]]:
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    return list(data.get("findings", []))


def run_lint(
    paths: Iterable[Path],
    *,
    project_root: Path = REPO_ROOT,
    with_project_rules: bool = True,
) -> tuple[list[Finding], int]:
    """Both lint passes over ``paths``; returns (findings, files linted).

    Per-file rules (RR001-RR006) run on every requested file.  When any
    requested file sits under ``src/repro``, the whole-program RR1xx
    analyzers run over the full package model and their findings are
    filtered down to the requested files.  RR007 (stale pragma) is
    computed last, against the pragma usage of *both* passes.
    """
    indexes: dict[str, SuppressionIndex] = {}
    rel_to_path: dict[str, Path] = {}
    findings: list[Finding] = []
    count = 0

    for path in iter_python_files(paths):
        count += 1
        try:
            rel = path.resolve().relative_to(project_root).as_posix()
        except ValueError:
            rel = path.as_posix()
        raw, index = _lint_source_raw(path.read_text(), path, rel)
        rel_to_path[rel] = path
        if index is not None:
            indexes[rel] = index
            raw = [f for f in raw if not index.is_suppressed(f.code, f.line)]
        findings.extend(raw)

    requested = set(rel_to_path)
    in_scope = {rel for rel in requested if rel.startswith("src/repro/")}
    if with_project_rules and in_scope:
        project = load_project(project_root)
        for rule_finding in analyze_project(project):
            index = indexes.get(rule_finding.rel)
            if index is None:
                module = project.modules.get(rule_finding.rel)
                if module is not None:
                    index = SuppressionIndex(module.source, module.tree)
                    indexes[rule_finding.rel] = index
            # Mark pragma usage even for out-of-request files so RR007
            # never fires on a pragma that does suppress something.
            if index is not None and index.is_suppressed(
                rule_finding.code, rule_finding.line
            ):
                continue
            if rule_finding.rel not in requested:
                continue
            findings.append(
                Finding(
                    rule_finding.code,
                    rel_to_path.get(
                        rule_finding.rel, project_root / rule_finding.rel
                    ),
                    rule_finding.line,
                    rule_finding.message,
                )
            )

    for rel in sorted(requested):
        index = indexes.get(rel)
        if index is None:
            continue
        for line, code in index.unused():
            findings.append(
                Finding(
                    "RR007",
                    rel_to_path[rel],
                    line,
                    f"stale pragma: '# lint: ignore[{code}]' suppressed "
                    "nothing in this run; delete it or re-justify it",
                )
            )

    findings.sort(key=lambda f: (f.rel(), f.line, f.code, f.message))
    return findings, count


def _report(findings: list[Finding], files: int) -> dict[str, object]:
    return {
        "tool": "lint_repro",
        "files": files,
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "findings": [f.to_dict() for f in findings],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[DEFAULT_TARGET],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="output style: human text, GitHub workflow annotations, "
        "or a JSON report on stdout",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (any --format)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help="baseline file of accepted findings (default: "
        "tools/lint_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    parser.add_argument(
        "--no-project-rules",
        action="store_true",
        help="skip the whole-program RR1xx analyzers (per-file rules only)",
    )
    args = parser.parse_args(argv)

    findings, count = run_lint(
        args.paths, with_project_rules=not args.no_project_rules
    )

    if args.update_baseline:
        accepted = [
            f.fingerprint() for f in findings if f.severity == "error"
        ]
        args.baseline.write_text(
            json.dumps({"findings": accepted}, indent=2) + "\n"
        )
        print(
            f"lint_repro: baseline updated with {len(accepted)} finding(s)",
            file=sys.stderr,
        )
        return 0

    baseline = _load_baseline(args.baseline)
    # Multiset semantics: each baselined entry absorbs one occurrence, so
    # a *second* instance of an already-baselined finding still surfaces.
    budget = Counter(json.dumps(fp, sort_keys=True) for fp in baseline)
    fresh = []
    for finding in findings:
        key = json.dumps(finding.fingerprint(), sort_keys=True)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)

    report = _report(fresh, count)
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in fresh:
            print(
                finding.format_github()
                if args.format == "github"
                else finding.format()
            )
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"lint_repro: {count} file(s), {report['errors']} error(s), "
        f"{report['warnings']} warning(s)"
        + (f", {len(baseline)} baselined" if baseline else ""),
        file=sys.stderr,
    )
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
