#!/usr/bin/env python3
"""Regenerate (or verify) the committed OpenQASM benchmark corpus.

The corpus under ``benchmarks/corpus/`` is a pure function of the specs
in :mod:`repro.bench.corpus` -- seeded RNGs, no wall-clock, no global
state -- so regeneration is byte-for-byte reproducible.  ``--check``
regenerates into a scratch directory and diffs against the committed
files, failing on any drift (the CI determinism gate).

Usage:
    PYTHONPATH=src python tools/gen_corpus.py            # (re)write corpus
    PYTHONPATH=src python tools/gen_corpus.py --check    # verify, no writes
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.corpus import generate_corpus  # noqa: E402

DEFAULT_CORPUS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "corpus"


def check(corpus_dir: Path) -> int:
    """Regenerate into a scratch dir and byte-compare with ``corpus_dir``."""
    with tempfile.TemporaryDirectory() as scratch:
        fresh = {path.name: path.read_bytes() for path in generate_corpus(scratch)}
    committed = {
        path.name: path.read_bytes() for path in sorted(corpus_dir.glob("*.qasm"))
    }
    drifted = sorted(
        name
        for name in fresh.keys() | committed.keys()
        if fresh.get(name) != committed.get(name)
    )
    for name in drifted:
        if name not in committed:
            print(f"MISSING   {name} (not committed)")
        elif name not in fresh:
            print(f"STALE     {name} (committed but no longer generated)")
        else:
            print(f"DRIFTED   {name} (bytes differ)")
    print(
        f"gen_corpus --check: {len(fresh)} generated, "
        f"{len(committed)} committed, {len(drifted)} mismatch(es)",
        file=sys.stderr,
    )
    return 1 if drifted else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=DEFAULT_CORPUS_DIR,
        help=f"corpus directory (default {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed corpus matches regeneration; write nothing",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.corpus_dir)
    paths = generate_corpus(args.corpus_dir)
    for path in paths:
        print(f"wrote {path}")
    print(f"gen_corpus: {len(paths)} file(s) in {args.corpus_dir}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
