#!/usr/bin/env python3
"""Run the static sanitizer over every Table II benchmark compilation.

Compiles each of the paper's nine benchmark molecules with both
registered flows (Merge-to-Root and SABRE) and runs the full check
registry over every produced artifact: the routed result (bounds,
gate set, parameters, coupling legality, layout permutation, DAG
invariants) plus the compressed Pauli program.  The committed QASM
corpus (``benchmarks/corpus/``) is sanitized the same way -- every
corpus circuit routed by both flows on its exact-fit XTree device --
unless ``--no-corpus`` is given.  Exit status is 1 when any artifact
yields an ERROR diagnostic; ``--report`` writes the per-artifact
findings as JSON (the CI diagnostics artifact).

Usage:
    PYTHONPATH=src python tools/check_circuits.py
    PYTHONPATH=src python tools/check_circuits.py --report analysis_report.json
    PYTHONPATH=src python tools/check_circuits.py --molecules H2 LiH
    PYTHONPATH=src python tools/check_circuits.py --no-corpus
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.analysis as analysis  # noqa: E402
from repro.chem.molecules import BENCHMARK_MOLECULES  # noqa: E402
from repro.core import Pipeline, PipelineConfig  # noqa: E402

COMPILERS = ("mtr", "sabre")


def check_instance(molecule: str, compiler: str, ratio: float) -> list[dict]:
    """Compile one instance and sanitize every artifact it produces."""
    # validate=False: the point is to exercise the checks explicitly and
    # report every finding, not to die on the pipeline's first error.
    config = PipelineConfig(
        molecule=molecule, ratio=ratio, compiler=compiler, validate=False
    )
    result = Pipeline(config).run()
    rows = []
    for label, artifact, device in (
        ("compiled", result.compiled, result.device),
        ("pauli-program", result.compressed.program, None),
    ):
        report = analysis.check(
            artifact,
            device=device,
            subject=f"{molecule}/{compiler}/{label}",
        )
        rows.append(report.to_dict())
    return rows


def check_corpus() -> list[dict]:
    """Route every corpus circuit with both flows and sanitize the results."""
    from repro.bench.corpus import corpus_devices, load_corpus
    from repro.compiler import get_compiler
    from repro.hardware import get_device

    corpus_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "corpus"
    rows = []
    for name, circuit in load_corpus(corpus_dir):
        device_name = corpus_devices(circuit.num_qubits)[0]
        device = get_device(device_name)
        for compiler in COMPILERS:
            result = get_compiler(compiler).compile_circuit(circuit, device)
            report = analysis.check(
                result,
                device=device,
                subject=f"corpus/{name}/{compiler}",
            )
            rows.append(report.to_dict())
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--molecules",
        nargs="+",
        default=BENCHMARK_MOLECULES,
        help="benchmark subset (default: all nine Table II molecules)",
    )
    parser.add_argument(
        "--ratio", type=float, default=0.5, help="compression ratio (default 0.5)"
    )
    parser.add_argument(
        "--report", type=Path, default=None, help="write findings as JSON here"
    )
    parser.add_argument(
        "--lint",
        type=Path,
        default=None,
        metavar="PATH",
        help="merge a lint_repro JSON report (tools/lint_repro.py "
        "--format=json --output PATH) into --report",
    )
    parser.add_argument(
        "--no-corpus",
        action="store_true",
        help="skip the benchmarks/corpus/ sanitization sweep",
    )
    args = parser.parse_args(argv)

    produced: list[dict] = []
    for molecule in args.molecules:
        for compiler in COMPILERS:
            produced.extend(check_instance(molecule, compiler, args.ratio))
    if not args.no_corpus:
        produced.extend(check_corpus())

    rows: list[dict] = []
    failures = 0
    for row in produced:
        rows.append(row)
        status = "ok" if row["ok"] else "FAIL"
        print(
            f"{row['subject']:<36} {len(row['checks_run'])} check(s) "
            f"{row['num_errors']} error(s)  {status}"
        )
        if not row["ok"]:
            failures += 1
            for diagnostic in row["diagnostics"]:
                if diagnostic["severity"] == "error":
                    print(f"    {diagnostic['check']}: "
                          f"{diagnostic['message']}")

    if args.report is not None:
        report: dict = {"ratio": args.ratio, "artifacts": rows, "failures": failures}
        if args.lint is not None and args.lint.is_file():
            # One ANALYSIS_report.json covers both halves of the static
            # layer: artifact sanitization here, source lint from
            # tools/lint_repro.py.
            report["lint"] = json.loads(args.lint.read_text())
        args.report.write_text(json.dumps(report, indent=2))
        print(f"report written to {args.report}", file=sys.stderr)

    print(
        f"check_circuits: {len(rows)} artifact(s), {failures} with errors",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
