#!/usr/bin/env python
"""Check that relative Markdown links in docs/ and README.md resolve.

Usage: python tools/check_docs.py [root]

Scans every ``*.md`` under the repo root's ``docs/`` directory plus
``README.md``, extracts inline links ``[text](target)``, and verifies
each non-external target (optionally with a ``#fragment``) exists on
disk relative to the file containing the link.  Exits non-zero listing
every broken link.  External (``http``/``https``/``mailto``) links are
skipped -- CI should not depend on the network.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links; deliberately simple (no reference-style links
#: in this repo) and tolerant of titles: [text](target "title")
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text()
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}: broken link '{target}' "
                f"(resolved to {resolved})"
            )
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    files = iter_markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    errors: list[str] = []
    checked = 0
    for path in files:
        file_errors = check_file(path, root)
        errors.extend(file_errors)
        checked += 1
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"ok: {checked} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
