"""AO -> MO integral transformation and spin-orbital expansion."""

from __future__ import annotations

import numpy as np


def transform_to_mo(
    hcore_ao: np.ndarray, eri_ao: np.ndarray, mo_coefficients: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Transform the core Hamiltonian and chemist-notation ERI to the MO
    basis.  Quarter transformations keep the cost at O(N^5)."""
    c = mo_coefficients
    hcore_mo = c.T @ hcore_ao @ c
    eri_mo = np.einsum("pqrs,pi->iqrs", eri_ao, c, optimize=True)
    eri_mo = np.einsum("iqrs,qj->ijrs", eri_mo, c, optimize=True)
    eri_mo = np.einsum("ijrs,rk->ijks", eri_mo, c, optimize=True)
    eri_mo = np.einsum("ijks,sl->ijkl", eri_mo, c, optimize=True)
    return hcore_mo, eri_mo


def spin_orbital_index(spatial: int, spin: int, num_spatial: int) -> int:
    """Blocked spin-orbital ordering: alpha block first, then beta.

    This is the ordering under which the paper's Table I gate counts are
    reproduced exactly (alpha spatial orbital p -> qubit p, beta -> M + p).
    """
    if spin not in (0, 1):
        raise ValueError("spin must be 0 (alpha) or 1 (beta)")
    return spatial + spin * num_spatial


def spin_orbital_integrals(
    hcore_mo: np.ndarray, eri_mo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand spatial MO integrals to spin orbitals.

    Returns ``(h1, h2)`` with physicist antisymmetrized two-body integrals

        h2[p, q, r, s] = <pq || sr> ... not antisymmetrized here; we
        return <pq|rs> = (pr|qs) * delta(spin_p, spin_r) * delta(spin_q, spin_s)

    so that ``H = sum h1[p,q] a_p+ a_q
                 + 1/2 sum h2[p,q,r,s] a_p+ a_q+ a_s a_r`` (physicist order).
    """
    m = hcore_mo.shape[0]
    n = 2 * m
    h1 = np.zeros((n, n))
    h2 = np.zeros((n, n, n, n))
    for spin in (0, 1):
        block = slice(spin * m, (spin + 1) * m)
        h1[block, block] = hcore_mo
    # <pq|rs> = (pr|qs) with matching spins p~r and q~s.
    for sp in (0, 1):
        for sq in (0, 1):
            p_block = slice(sp * m, (sp + 1) * m)
            q_block = slice(sq * m, (sq + 1) * m)
            # h2[p,q,r,s]: p,r in sp block; q,s in sq block.
            h2[p_block, q_block, p_block, q_block] += np.einsum(
                "prqs->pqrs", eri_mo, optimize=True
            )
    return h1, h2
