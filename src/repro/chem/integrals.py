"""Gaussian integral evaluation over contracted Cartesian Gaussians.

Implements the McMurchie-Davidson scheme for the four integral classes a
minimal-basis Hartree-Fock needs: overlap, kinetic, nuclear attraction and
electron repulsion.  Primitives are Cartesian Gaussians

    g(r; alpha, l, m, n, A) = (x-Ax)^l (y-Ay)^m (z-Az)^n exp(-alpha |r-A|^2)

with l+m+n <= 1 (s and p) for STO-3G, though the recursions below are
written generally and tested up to d-type Hermite orders.

References: McMurchie & Davidson, J. Comput. Phys. 26, 218 (1978);
Helgaker, Jorgensen & Olsen, "Molecular Electronic-Structure Theory".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import gammainc, gamma

from repro.chem.basis_data import Shell, shells_for_element

# Cartesian components (l, m, n) per angular momentum.
_ANGULAR_COMPONENTS = {
    0: [(0, 0, 0)],
    1: [(1, 0, 0), (0, 1, 0), (0, 0, 1)],
}


@dataclass(frozen=True)
class BasisFunction:
    """A contracted Cartesian Gaussian centred on an atom."""

    center: tuple[float, float, float]
    powers: tuple[int, int, int]
    exponents: tuple[float, ...]
    coefficients: tuple[float, ...]  # contraction coefs * primitive norms
    atom_index: int
    label: str


def _primitive_norm(alpha: float, powers: tuple[int, int, int]) -> float:
    """Normalization constant of one Cartesian Gaussian primitive."""
    l, m, n = powers
    prefactor = (2.0 * alpha / math.pi) ** 0.75
    numerator = (4.0 * alpha) ** ((l + m + n) / 2.0)
    denominator = math.sqrt(
        _double_factorial(2 * l - 1)
        * _double_factorial(2 * m - 1)
        * _double_factorial(2 * n - 1)
    )
    return prefactor * numerator / denominator


def _double_factorial(k: int) -> float:
    if k <= 0:
        return 1.0
    result = 1.0
    while k > 1:
        result *= k
        k -= 2
    return result


def build_basis(
    symbols: list[str], coordinates_bohr: np.ndarray
) -> list[BasisFunction]:
    """Construct the STO-3G basis for a molecule (coordinates in Bohr)."""
    functions: list[BasisFunction] = []
    for atom_index, symbol in enumerate(symbols):
        center = tuple(float(c) for c in coordinates_bohr[atom_index])
        shell_counter: dict[int, int] = {}
        for shell in shells_for_element(symbol):
            shell_counter[shell.angular_momentum] = (
                shell_counter.get(shell.angular_momentum, 0) + 1
            )
            for powers in _ANGULAR_COMPONENTS[shell.angular_momentum]:
                functions.append(
                    _contracted_function(symbol, atom_index, center, shell, powers)
                )
    return functions


def _contracted_function(
    symbol: str,
    atom_index: int,
    center: tuple[float, float, float],
    shell: Shell,
    powers: tuple[int, int, int],
) -> BasisFunction:
    coefficients = tuple(
        c * _primitive_norm(alpha, powers)
        for c, alpha in zip(shell.coefficients, shell.exponents)
    )
    function = BasisFunction(
        center=center,
        powers=powers,
        exponents=shell.exponents,
        coefficients=coefficients,
        atom_index=atom_index,
        label=f"{symbol}{atom_index}:{'spdf'[shell.angular_momentum]}{powers}",
    )
    # Renormalize the contraction so <chi|chi> = 1 even when tabulated
    # contraction coefficients are only approximately normalized.
    norm = math.sqrt(_overlap_contracted(function, function))
    return BasisFunction(
        center=center,
        powers=powers,
        exponents=shell.exponents,
        coefficients=tuple(c / norm for c in function.coefficients),
        atom_index=atom_index,
        label=function.label,
    )


# ----------------------------------------------------------------------
# Hermite expansion coefficients E_t^{ij}
# ----------------------------------------------------------------------
def _hermite_coefficients(l1: int, l2: int, pa: float, pb: float, p: float) -> np.ndarray:
    """E[t] for the 1D product of two Gaussians, t = 0 .. l1+l2.

    pa = Px - Ax, pb = Px - Bx, p = combined exponent alpha + beta.
    Built with the standard upward recursions in (i, j).
    """
    one_over_2p = 0.5 / p
    # One extra slot in t so the E(i-1, t+1) lookups never go out of range.
    table = np.zeros((l1 + 1, l2 + 1, l1 + l2 + 2))
    table[0, 0, 0] = 1.0
    for i in range(1, l1 + 1):
        for t in range(i + 1):
            table[i, 0, t] = (
                (table[i - 1, 0, t - 1] * one_over_2p if t > 0 else 0.0)
                + pa * table[i - 1, 0, t]
                + (t + 1) * table[i - 1, 0, t + 1]
            )
    for j in range(1, l2 + 1):
        for i in range(l1 + 1):
            for t in range(i + j + 1):
                table[i, j, t] = (
                    (table[i, j - 1, t - 1] * one_over_2p if t > 0 else 0.0)
                    + pb * table[i, j - 1, t]
                    + (t + 1) * table[i, j - 1, t + 1]
                )
    return table[l1, l2, : l1 + l2 + 1]


# ----------------------------------------------------------------------
# Boys function
# ----------------------------------------------------------------------
def boys(n: int, x: float) -> float:
    """The Boys function F_n(x) = int_0^1 t^{2n} exp(-x t^2) dt."""
    if x < 1e-12:
        return 1.0 / (2 * n + 1)
    half = n + 0.5
    return 0.5 * gamma(half) * gammainc(half, x) / (x**half)


# ----------------------------------------------------------------------
# Primitive integrals
# ----------------------------------------------------------------------
def _primitive_overlap(alpha, powers_a, center_a, beta, powers_b, center_b) -> float:
    p = alpha + beta
    mu = alpha * beta / p
    ab2 = sum((a - b) ** 2 for a, b in zip(center_a, center_b))
    prefactor = math.exp(-mu * ab2)
    value = prefactor * (math.pi / p) ** 1.5
    for axis in range(3):
        pax = (alpha * center_a[axis] + beta * center_b[axis]) / p - center_a[axis]
        pbx = (alpha * center_a[axis] + beta * center_b[axis]) / p - center_b[axis]
        e = _hermite_coefficients(powers_a[axis], powers_b[axis], pax, pbx, p)
        value *= e[0]
    return value


def _primitive_kinetic(alpha, powers_a, center_a, beta, powers_b, center_b) -> float:
    """Kinetic energy via the Gaussian differentiation identity."""
    l2, m2, n2 = powers_b

    def overlap_shifted(db: tuple[int, int, int]) -> float:
        shifted = (l2 + db[0], m2 + db[1], n2 + db[2])
        if any(component < 0 for component in shifted):
            return 0.0
        return _primitive_overlap(alpha, powers_a, center_a, beta, shifted, center_b)

    term0 = beta * (2 * (l2 + m2 + n2) + 3) * overlap_shifted((0, 0, 0))
    term1 = -2.0 * beta**2 * (
        overlap_shifted((2, 0, 0)) + overlap_shifted((0, 2, 0)) + overlap_shifted((0, 0, 2))
    )
    term2 = -0.5 * (
        l2 * (l2 - 1) * overlap_shifted((-2, 0, 0))
        + m2 * (m2 - 1) * overlap_shifted((0, -2, 0))
        + n2 * (n2 - 1) * overlap_shifted((0, 0, -2))
    )
    return term0 + term1 + term2


def _hermite_coulomb(t: int, u: int, v: int, n: int, p: float, pc: tuple[float, float, float]) -> float:
    """Auxiliary Hermite Coulomb integrals R_{tuv}^n (recursive)."""
    x, y, z = pc
    if t == u == v == 0:
        r2 = x * x + y * y + z * z
        return (-2.0 * p) ** n * boys(n, p * r2)
    if t < 0 or u < 0 or v < 0:
        return 0.0
    if t > 0:
        value = (t - 1) * _hermite_coulomb(t - 2, u, v, n + 1, p, pc) if t > 1 else 0.0
        return value + x * _hermite_coulomb(t - 1, u, v, n + 1, p, pc)
    if u > 0:
        value = (u - 1) * _hermite_coulomb(t, u - 2, v, n + 1, p, pc) if u > 1 else 0.0
        return value + y * _hermite_coulomb(t, u - 1, v, n + 1, p, pc)
    value = (v - 1) * _hermite_coulomb(t, u, v - 2, n + 1, p, pc) if v > 1 else 0.0
    return value + z * _hermite_coulomb(t, u, v - 1, n + 1, p, pc)


def _primitive_nuclear(
    alpha, powers_a, center_a, beta, powers_b, center_b, nucleus
) -> float:
    p = alpha + beta
    composite = tuple(
        (alpha * a + beta * b) / p for a, b in zip(center_a, center_b)
    )
    mu = alpha * beta / p
    ab2 = sum((a - b) ** 2 for a, b in zip(center_a, center_b))
    prefactor = math.exp(-mu * ab2)
    es = []
    for axis in range(3):
        pa = composite[axis] - center_a[axis]
        pb = composite[axis] - center_b[axis]
        es.append(_hermite_coefficients(powers_a[axis], powers_b[axis], pa, pb, p))
    pc = tuple(composite[axis] - nucleus[axis] for axis in range(3))
    value = 0.0
    for t in range(len(es[0])):
        for u in range(len(es[1])):
            for v in range(len(es[2])):
                value += (
                    es[0][t] * es[1][u] * es[2][v] * _hermite_coulomb(t, u, v, 0, p, pc)
                )
    return 2.0 * math.pi / p * prefactor * value


def _primitive_eri(
    alpha, pa_pows, a_center, beta, pb_pows, b_center,
    gamma_, pc_pows, c_center, delta, pd_pows, d_center,
) -> float:
    p = alpha + beta
    q = gamma_ + delta
    composite_p = tuple((alpha * a + beta * b) / p for a, b in zip(a_center, b_center))
    composite_q = tuple(
        (gamma_ * c + delta * d) / q for c, d in zip(c_center, d_center)
    )
    omega = p * q / (p + q)
    ab2 = sum((a - b) ** 2 for a, b in zip(a_center, b_center))
    cd2 = sum((c - d) ** 2 for c, d in zip(c_center, d_center))
    prefactor = math.exp(-alpha * beta / p * ab2) * math.exp(-gamma_ * delta / q * cd2)

    e_bra = []
    e_ket = []
    for axis in range(3):
        pa = composite_p[axis] - a_center[axis]
        pb = composite_p[axis] - b_center[axis]
        e_bra.append(_hermite_coefficients(pa_pows[axis], pb_pows[axis], pa, pb, p))
        qc = composite_q[axis] - c_center[axis]
        qd = composite_q[axis] - d_center[axis]
        e_ket.append(_hermite_coefficients(pc_pows[axis], pd_pows[axis], qc, qd, q))

    pq = tuple(composite_p[axis] - composite_q[axis] for axis in range(3))
    value = 0.0
    for t in range(len(e_bra[0])):
        for u in range(len(e_bra[1])):
            for v in range(len(e_bra[2])):
                bra = e_bra[0][t] * e_bra[1][u] * e_bra[2][v]
                if bra == 0.0:
                    continue
                for tau in range(len(e_ket[0])):
                    for nu in range(len(e_ket[1])):
                        for phi in range(len(e_ket[2])):
                            ket = e_ket[0][tau] * e_ket[1][nu] * e_ket[2][phi]
                            if ket == 0.0:
                                continue
                            sign = (-1.0) ** (tau + nu + phi)
                            value += bra * ket * sign * _hermite_coulomb(
                                t + tau, u + nu, v + phi, 0, omega, pq
                            )
    return (
        2.0 * math.pi**2.5
        / (p * q * math.sqrt(p + q))
        * prefactor
        * value
    )


# ----------------------------------------------------------------------
# Contracted integrals
# ----------------------------------------------------------------------
def _overlap_contracted(a: BasisFunction, b: BasisFunction) -> float:
    value = 0.0
    for ca, alpha in zip(a.coefficients, a.exponents):
        for cb, beta in zip(b.coefficients, b.exponents):
            value += ca * cb * _primitive_overlap(
                alpha, a.powers, a.center, beta, b.powers, b.center
            )
    return value


def _kinetic_contracted(a: BasisFunction, b: BasisFunction) -> float:
    value = 0.0
    for ca, alpha in zip(a.coefficients, a.exponents):
        for cb, beta in zip(b.coefficients, b.exponents):
            value += ca * cb * _primitive_kinetic(
                alpha, a.powers, a.center, beta, b.powers, b.center
            )
    return value


def _nuclear_contracted(
    a: BasisFunction, b: BasisFunction, charges: list[int], nuclei: np.ndarray
) -> float:
    value = 0.0
    for ca, alpha in zip(a.coefficients, a.exponents):
        for cb, beta in zip(b.coefficients, b.exponents):
            accumulated = 0.0
            for charge, nucleus in zip(charges, nuclei):
                accumulated -= charge * _primitive_nuclear(
                    alpha, a.powers, a.center, beta, b.powers, b.center, tuple(nucleus)
                )
            value += ca * cb * accumulated
    return value


def _eri_contracted(
    a: BasisFunction, b: BasisFunction, c: BasisFunction, d: BasisFunction
) -> float:
    value = 0.0
    for ca, alpha in zip(a.coefficients, a.exponents):
        for cb, beta in zip(b.coefficients, b.exponents):
            for cc, gamma_ in zip(c.coefficients, c.exponents):
                for cd, delta in zip(d.coefficients, d.exponents):
                    value += ca * cb * cc * cd * _primitive_eri(
                        alpha, a.powers, a.center,
                        beta, b.powers, b.center,
                        gamma_, c.powers, c.center,
                        delta, d.powers, d.center,
                    )
    return value


@dataclass
class IntegralTables:
    """All AO integrals of a molecule (chemist's notation for the ERI)."""

    overlap: np.ndarray         # S[p, q]
    kinetic: np.ndarray         # T[p, q]
    nuclear: np.ndarray         # V[p, q] (attraction, negative)
    eri: np.ndarray             # (pq|rs)
    nuclear_repulsion: float


def nuclear_repulsion(charges: list[int], coordinates_bohr: np.ndarray) -> float:
    energy = 0.0
    for i in range(len(charges)):
        for j in range(i + 1, len(charges)):
            distance = float(np.linalg.norm(coordinates_bohr[i] - coordinates_bohr[j]))
            energy += charges[i] * charges[j] / distance
    return energy


def compute_integrals(
    basis: list[BasisFunction], charges: list[int], coordinates_bohr: np.ndarray
) -> IntegralTables:
    """Evaluate S, T, V and (pq|rs) over the contracted basis.

    Uses the 8-fold permutational symmetry of the ERI tensor; STO-3G
    molecule sizes here (<= 10 AOs) keep this comfortably fast.
    """
    n = len(basis)
    overlap = np.zeros((n, n))
    kinetic = np.zeros((n, n))
    nuclear = np.zeros((n, n))
    for p in range(n):
        for q in range(p, n):
            overlap[p, q] = overlap[q, p] = _overlap_contracted(basis[p], basis[q])
            kinetic[p, q] = kinetic[q, p] = _kinetic_contracted(basis[p], basis[q])
            value = _nuclear_contracted(basis[p], basis[q], charges, coordinates_bohr)
            nuclear[p, q] = nuclear[q, p] = value

    eri = np.zeros((n, n, n, n))
    for p in range(n):
        for q in range(p + 1):
            for r in range(p + 1):
                s_max = q if r == p else r
                for s in range(s_max + 1):
                    value = _eri_contracted(basis[p], basis[q], basis[r], basis[s])
                    for (i, j, k, l) in {
                        (p, q, r, s), (q, p, r, s), (p, q, s, r), (q, p, s, r),
                        (r, s, p, q), (s, r, p, q), (r, s, q, p), (s, r, q, p),
                    }:
                        eri[i, j, k, l] = value

    return IntegralTables(
        overlap=overlap,
        kinetic=kinetic,
        nuclear=nuclear,
        eri=eri,
        nuclear_repulsion=nuclear_repulsion(charges, coordinates_bohr),
    )
