"""Quantum-chemistry substrate (the stand-in for PySCF + Qiskit chemistry).

Pipeline, exactly mirroring the paper's setup section:

1. :mod:`repro.chem.molecules`     -- geometries of the nine benchmark
   molecules, parameterized by bond length;
2. :mod:`repro.chem.basis_data` + :mod:`repro.chem.integrals` -- STO-3G
   orbitals [53] and Gaussian integral evaluation (McMurchie-Davidson);
3. :mod:`repro.chem.hartree_fock`  -- restricted Hartree-Fock SCF;
4. :mod:`repro.chem.active_space`  -- frozen-core active-space reduction
   ("we freeze the core electrons and only simulate the interaction of
   the outermost electrons");
5. :mod:`repro.chem.fermion` + :mod:`repro.chem.jordan_wigner` -- second
   quantization and the Jordan-Wigner encoding [54];
6. :mod:`repro.chem.hamiltonian`   -- the top-level driver producing the
   weighted-Pauli-string Hamiltonian the rest of the stack consumes.
"""

from repro.chem.molecules import Molecule, molecule_by_name, BENCHMARK_MOLECULES
from repro.chem.hamiltonian import MolecularProblem, build_molecule_hamiltonian
from repro.chem.hartree_fock import run_rhf, RHFResult
from repro.chem.hubbard import hubbard_hamiltonian

__all__ = [
    "Molecule",
    "molecule_by_name",
    "BENCHMARK_MOLECULES",
    "MolecularProblem",
    "build_molecule_hamiltonian",
    "run_rhf",
    "RHFResult",
    "hubbard_hamiltonian",
]
