"""Fermi-Hubbard model Hamiltonians (paper SS VII, "more physical systems").

The paper argues its Pauli-string-centric principle extends beyond
chemistry, naming the Hubbard model [58] explicitly.  This module builds
the one-dimensional (optionally periodic) Hubbard Hamiltonian

    H = -t sum_{<i,j>, sigma} (a_{i sigma}+ a_{j sigma} + h.c.)
        + U sum_i n_{i up} n_{i down}

in the same blocked spin-orbital encoding the chemistry stack uses, so it
flows through the identical compression / architecture / compilation
pipeline.
"""

from __future__ import annotations

from repro.chem.fermion import FermionOperator
from repro.chem.jordan_wigner import jordan_wigner
from repro.pauli import PauliSum


def hubbard_hamiltonian(
    num_sites: int,
    tunneling: float = 1.0,
    interaction: float = 4.0,
    *,
    periodic: bool = False,
) -> PauliSum:
    """Qubit Hamiltonian of the 1D Hubbard chain (2 qubits per site)."""
    if num_sites < 2:
        raise ValueError("need at least two sites")
    num_qubits = 2 * num_sites

    def spin_orbital(site: int, spin: int) -> int:
        return site + spin * num_sites  # blocked ordering, like chemistry

    operator = FermionOperator.zero()
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        for spin in (0, 1):
            p, q = spin_orbital(i, spin), spin_orbital(j, spin)
            operator += FermionOperator.from_term([(p, True), (q, False)], -tunneling)
            operator += FermionOperator.from_term([(q, True), (p, False)], -tunneling)
    for i in range(num_sites):
        up, down = spin_orbital(i, 0), spin_orbital(i, 1)
        operator += FermionOperator.from_term(
            [(up, True), (up, False), (down, True), (down, False)], interaction
        )
    return jordan_wigner(operator, num_qubits)
