"""The nine benchmark molecules of the paper (Table I), parameterized by
bond length.

Geometries keep the experimental bond *angles* fixed and sweep the X-H /
diatomic bond length, matching the paper's simulation flow ("in a typical
simulation task, we will simulate different bond lengths and record ground
state energies").  Coordinates are produced in Angstrom and converted to
Bohr by the integral layer.

Each molecule also carries the active-space specification (electrons,
spatial orbitals) that reproduces the paper's qubit counts under
Jordan-Wigner (2 qubits per spatial orbital):

    H2:4  LiH:6  NaH:8  HF:10  BeH2:12  H2O:12  BH3:14  NH3:14  CH4:16
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem.elements import ANGSTROM_TO_BOHR, atomic_number


@dataclass(frozen=True)
class ActiveSpace:
    """(electrons, spatial orbitals) kept in the simulation."""

    num_electrons: int
    num_orbitals: int

    @property
    def num_qubits(self) -> int:
        return 2 * self.num_orbitals


@dataclass
class Molecule:
    """A molecular geometry plus its benchmark configuration."""

    name: str
    symbols: list[str]
    coordinates_angstrom: np.ndarray
    bond_length: float
    active_space: ActiveSpace
    equilibrium_bond_length: float

    @property
    def charges(self) -> list[int]:
        return [atomic_number(symbol) for symbol in self.symbols]

    @property
    def num_electrons(self) -> int:
        return sum(self.charges)

    @property
    def coordinates_bohr(self) -> np.ndarray:
        return self.coordinates_angstrom * ANGSTROM_TO_BOHR

    @property
    def num_frozen_orbitals(self) -> int:
        return (self.num_electrons - self.active_space.num_electrons) // 2


def _diatomic(name, heavy, bond_length, active, equilibrium):
    coordinates = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, bond_length]])
    return Molecule(name, [heavy, "H"], coordinates, bond_length, active, equilibrium)


def _h2(bond_length: float) -> Molecule:
    coordinates = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, bond_length]])
    return Molecule("H2", ["H", "H"], coordinates, bond_length, ActiveSpace(2, 2), 0.735)


def _beh2(bond_length: float) -> Molecule:
    coordinates = np.array(
        [[0.0, 0.0, 0.0], [0.0, 0.0, bond_length], [0.0, 0.0, -bond_length]]
    )
    return Molecule(
        "BeH2", ["Be", "H", "H"], coordinates, bond_length, ActiveSpace(4, 6), 1.326
    )


def _h2o(bond_length: float) -> Molecule:
    angle = math.radians(104.45)
    half = angle / 2.0
    coordinates = np.array(
        [
            [0.0, 0.0, 0.0],
            [bond_length * math.sin(half), 0.0, bond_length * math.cos(half)],
            [-bond_length * math.sin(half), 0.0, bond_length * math.cos(half)],
        ]
    )
    return Molecule(
        "H2O", ["O", "H", "H"], coordinates, bond_length, ActiveSpace(8, 6), 0.958
    )


def _bh3(bond_length: float) -> Molecule:
    coordinates = [[0.0, 0.0, 0.0]]
    for k in range(3):
        angle = 2.0 * math.pi * k / 3.0
        coordinates.append([bond_length * math.cos(angle), bond_length * math.sin(angle), 0.0])
    return Molecule(
        "BH3", ["B", "H", "H", "H"], np.array(coordinates), bond_length,
        ActiveSpace(6, 7), 1.19,
    )


def _nh3(bond_length: float) -> Molecule:
    # Pyramidal geometry with the experimental H-N-H angle of 106.8 deg.
    hnh = math.radians(106.8)
    # Place the three H in a circle of radius r at height -h below N.
    # For bond length d and H-N-H angle t: the H-H distance is
    # 2 d sin(t/2), and for an equilateral triangle r = hh / sqrt(3).
    hh = 2.0 * bond_length * math.sin(hnh / 2.0)
    radius = hh / math.sqrt(3.0)
    height = math.sqrt(max(bond_length**2 - radius**2, 1e-12))
    coordinates = [[0.0, 0.0, 0.0]]
    for k in range(3):
        angle = 2.0 * math.pi * k / 3.0
        coordinates.append([radius * math.cos(angle), radius * math.sin(angle), -height])
    return Molecule(
        "NH3", ["N", "H", "H", "H"], np.array(coordinates), bond_length,
        ActiveSpace(8, 7), 1.012,
    )


def _ch4(bond_length: float) -> Molecule:
    scale = bond_length / math.sqrt(3.0)
    coordinates = np.array(
        [
            [0.0, 0.0, 0.0],
            [scale, scale, scale],
            [scale, -scale, -scale],
            [-scale, scale, -scale],
            [-scale, -scale, scale],
        ]
    )
    return Molecule(
        "CH4", ["C", "H", "H", "H", "H"], coordinates, bond_length,
        ActiveSpace(8, 8), 1.087,
    )


_BUILDERS = {
    "H2": _h2,
    "LiH": lambda d: _diatomic("LiH", "Li", d, ActiveSpace(2, 3), 1.595),
    "NaH": lambda d: _diatomic("NaH", "Na", d, ActiveSpace(2, 4), 1.887),
    "HF": lambda d: _diatomic("HF", "F", d, ActiveSpace(8, 5), 0.917),
    "BeH2": _beh2,
    "H2O": _h2o,
    "BH3": _bh3,
    "NH3": _nh3,
    "CH4": _ch4,
}

#: Table I order.
BENCHMARK_MOLECULES = ["H2", "LiH", "NaH", "HF", "BeH2", "H2O", "BH3", "NH3", "CH4"]


def molecule_by_name(name: str, bond_length: float | None = None) -> Molecule:
    """Build a benchmark molecule, at its equilibrium length by default."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown molecule {name!r}; choose from {BENCHMARK_MOLECULES}"
        ) from None
    if bond_length is None:
        bond_length = builder(1.0).equilibrium_bond_length
    if bond_length <= 0:
        raise ValueError("bond length must be positive")
    return builder(bond_length)
