"""Top-level molecular Hamiltonian driver.

``build_molecule_hamiltonian("LiH", bond_length=1.6)`` runs the entire
substrate pipeline -- STO-3G basis, integrals, RHF, active-space
reduction, second quantization, Jordan-Wigner -- and returns a
:class:`MolecularProblem` carrying the weighted-Pauli-string Hamiltonian
together with the metadata the ansatz and compiler layers need.

Results are memoized per (molecule, bond length) because the evaluation
harness revisits the same configurations across experiment stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.chem.active_space import ActiveSpaceIntegrals, reduce_to_active_space
from repro.chem.fermion import FermionOperator
from repro.chem.hartree_fock import RHFResult, run_rhf
from repro.chem.integrals import build_basis, compute_integrals
from repro.chem.jordan_wigner import jordan_wigner
from repro.chem.mo_integrals import spin_orbital_integrals, transform_to_mo
from repro.chem.molecules import Molecule, molecule_by_name
from repro.pauli import PauliSum


@dataclass
class MolecularProblem:
    """Everything downstream layers need about one molecular instance."""

    molecule: Molecule
    hamiltonian: PauliSum          # qubit Hamiltonian (includes core energy)
    num_qubits: int
    num_spatial_orbitals: int      # active spatial orbitals
    num_alpha: int                 # active alpha electrons
    num_beta: int
    hf_energy: float               # full-molecule RHF total energy
    core_energy: float
    active_integrals: ActiveSpaceIntegrals
    rhf: RHFResult

    @property
    def num_electrons(self) -> int:
        return self.num_alpha + self.num_beta

    def hartree_fock_occupations(self) -> list[int]:
        """Qubits set to |1> by the Hartree-Fock initial state.

        Blocked ordering: alpha orbitals 0..n_alpha-1 and beta orbitals
        M..M+n_beta-1 are occupied (lowest active MOs).
        """
        m = self.num_spatial_orbitals
        return list(range(self.num_alpha)) + [m + i for i in range(self.num_beta)]

    def hartree_fock_state_index(self) -> int:
        index = 0
        for qubit in self.hartree_fock_occupations():
            index |= 1 << qubit
        return index


def fermionic_hamiltonian(active: ActiveSpaceIntegrals) -> FermionOperator:
    """Second-quantized active-space Hamiltonian (blocked spin orbitals)."""
    h1, h2 = spin_orbital_integrals(active.hcore, active.eri)
    n = h1.shape[0]
    operator = FermionOperator.identity(active.core_energy)
    for p in range(n):
        for q in range(n):
            coefficient = h1[p, q]
            if abs(coefficient) > 1e-12:
                operator += FermionOperator.from_term(
                    [(p, True), (q, False)], coefficient
                )
    for p in range(n):
        for q in range(n):
            for r in range(n):
                for s in range(n):
                    coefficient = 0.5 * h2[p, q, r, s]
                    if abs(coefficient) > 1e-12:
                        # physicist ordering a_p+ a_q+ a_s a_r
                        operator += FermionOperator.from_term(
                            [(p, True), (q, True), (s, False), (r, False)], coefficient
                        )
    return operator


@lru_cache(maxsize=256)
def _build_cached(name: str, bond_length_key: int) -> MolecularProblem:
    bond_length = bond_length_key / 10000.0
    molecule = molecule_by_name(name, bond_length)
    basis = build_basis(molecule.symbols, molecule.coordinates_bohr)
    integrals = compute_integrals(basis, molecule.charges, molecule.coordinates_bohr)
    rhf = run_rhf(integrals, molecule.num_electrons)
    hcore_mo, eri_mo = transform_to_mo(
        integrals.kinetic + integrals.nuclear, integrals.eri, rhf.mo_coefficients
    )
    active = reduce_to_active_space(
        hcore_mo,
        eri_mo,
        integrals.nuclear_repulsion,
        molecule.num_electrons,
        molecule.active_space.num_electrons,
        molecule.active_space.num_orbitals,
    )
    num_qubits = 2 * active.num_orbitals
    qubit_hamiltonian = jordan_wigner(fermionic_hamiltonian(active), num_qubits)
    num_alpha = active.num_electrons // 2
    num_beta = active.num_electrons - num_alpha
    return MolecularProblem(
        molecule=molecule,
        hamiltonian=qubit_hamiltonian,
        num_qubits=num_qubits,
        num_spatial_orbitals=active.num_orbitals,
        num_alpha=num_alpha,
        num_beta=num_beta,
        hf_energy=rhf.energy,
        core_energy=active.core_energy,
        active_integrals=active,
        rhf=rhf,
    )


def build_molecule_hamiltonian(
    name: str, bond_length: float | None = None
) -> MolecularProblem:
    """Build the qubit Hamiltonian of a benchmark molecule.

    Args:
        name: one of the Table I molecules ("H2", ..., "CH4").
        bond_length: X-H / diatomic bond length in Angstrom; defaults to
            the experimental equilibrium value.
    """
    if bond_length is None:
        bond_length = molecule_by_name(name).bond_length
    key = int(round(bond_length * 10000))
    return _build_cached(name, key)
