"""STO-3G basis-set data (Hehre, Stewart, Pople [53]).

Each Slater-type orbital with exponent ``zeta`` is expanded in three
Gaussians with *universal* least-squares exponents/coefficients; the
element-specific part is only the Slater exponent of each shell.  The
expansion for a shell scales as ``alpha_k = zeta^2 * alpha_k^(unit)``.

The universal 1s and 2sp expansions below reproduce the published
contracted exponents exactly (e.g. carbon 2sp: 2.9412494, 0.6834831,
0.2222899 from zeta = 1.72).  Sodium's 3sp shell uses the published
STO-3G values directly.
"""

from __future__ import annotations

from dataclasses import dataclass

# Universal STO-3G expansions for a Slater function with zeta = 1.
_UNIT_1S_EXPONENTS = (2.227660584, 0.405771156, 0.109818)
_UNIT_1S_COEFFS = (0.154328967, 0.535328142, 0.444634542)

_UNIT_2SP_EXPONENTS = (0.994203, 0.231031, 0.0751386)
_UNIT_2S_COEFFS = (-0.09996723, 0.39951283, 0.70011547)
_UNIT_2P_COEFFS = (0.15591627, 0.60768372, 0.39195739)

# Standard molecular Slater exponents (Hehre-Stewart-Pople).
_ZETA_1S = {
    "H": 1.24,
    "He": 1.69,
    "Li": 2.69,
    "Be": 3.68,
    "B": 4.68,
    "C": 5.67,
    "N": 6.67,
    "O": 7.66,
    "F": 8.65,
    "Na": 10.61,
}
_ZETA_2SP = {
    "Li": 0.80,
    "Be": 1.15,
    "B": 1.45,
    "C": 1.72,
    "N": 1.95,
    "O": 2.25,
    "F": 2.55,
    "Na": 3.48,
}

# Sodium 3sp shell: published STO-3G contraction (Basis Set Exchange).
_NA_3SP_EXPONENTS = (1.4787406, 0.41564918, 0.16139850)
_NA_3S_COEFFS = (-0.21962037, 0.22559543, 0.90039843)
_NA_3P_COEFFS = (0.01058760, 0.59516701, 0.46200101)


@dataclass(frozen=True)
class Shell:
    """One contracted shell: angular momentum + primitive expansion."""

    angular_momentum: int  # 0 = s, 1 = p
    exponents: tuple[float, ...]
    coefficients: tuple[float, ...]


def _scaled(zeta: float, exponents: tuple[float, ...]) -> tuple[float, ...]:
    return tuple(zeta * zeta * alpha for alpha in exponents)


def shells_for_element(symbol: str) -> list[Shell]:
    """STO-3G shells of one element, in energy order (1s, 2s, 2p, ...)."""
    if symbol not in _ZETA_1S:
        raise ValueError(f"no STO-3G data for element {symbol!r}")
    shells = [Shell(0, _scaled(_ZETA_1S[symbol], _UNIT_1S_EXPONENTS), _UNIT_1S_COEFFS)]
    if symbol in _ZETA_2SP:
        exponents = _scaled(_ZETA_2SP[symbol], _UNIT_2SP_EXPONENTS)
        shells.append(Shell(0, exponents, _UNIT_2S_COEFFS))
        shells.append(Shell(1, exponents, _UNIT_2P_COEFFS))
    if symbol == "Na":
        shells.append(Shell(0, _NA_3SP_EXPONENTS, _NA_3S_COEFFS))
        shells.append(Shell(1, _NA_3SP_EXPONENTS, _NA_3P_COEFFS))
    return shells


def num_basis_functions(symbol: str) -> int:
    """Number of atomic orbitals the element contributes (p shells -> 3)."""
    return sum(3 if shell.angular_momentum == 1 else 1 for shell in shells_for_element(symbol))
