"""Periodic-table data for the elements appearing in the benchmark set."""

from __future__ import annotations

ATOMIC_NUMBERS: dict[str, int] = {
    "H": 1,
    "He": 2,
    "Li": 3,
    "Be": 4,
    "B": 5,
    "C": 6,
    "N": 7,
    "O": 8,
    "F": 9,
    "Ne": 10,
    "Na": 11,
}

# Bohr per Angstrom (CODATA).
ANGSTROM_TO_BOHR = 1.8897259886

# Hartree in electronvolt (for reporting convenience).
HARTREE_TO_EV = 27.211386245988


def atomic_number(symbol: str) -> int:
    try:
        return ATOMIC_NUMBERS[symbol]
    except KeyError:
        raise ValueError(f"unsupported element {symbol!r}") from None
