"""Restricted Hartree-Fock with DIIS convergence acceleration.

Produces the molecular orbitals and the Hartree-Fock reference energy; the
MO coefficients feed the active-space transformation, and the occupation
pattern defines the paper's Hartree-Fock initial state (the X-gate layer
at the front of the VQE circuit, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.integrals import IntegralTables


@dataclass
class RHFResult:
    """Converged restricted Hartree-Fock solution."""

    energy: float                # total energy including nuclear repulsion
    electronic_energy: float
    mo_coefficients: np.ndarray  # C[ao, mo]
    mo_energies: np.ndarray
    density: np.ndarray
    fock: np.ndarray
    num_electrons: int
    converged: bool
    iterations: int

    @property
    def num_orbitals(self) -> int:
        return self.mo_coefficients.shape[1]

    @property
    def num_occupied(self) -> int:
        return self.num_electrons // 2


class SCFConvergenceError(RuntimeError):
    """Raised when the SCF loop fails to converge."""


def _build_fock(hcore: np.ndarray, eri: np.ndarray, density: np.ndarray) -> np.ndarray:
    """F = h + J - K/2 with chemist-notation (pq|rs) integrals."""
    coulomb = np.einsum("pqrs,rs->pq", eri, density)
    exchange = np.einsum("prqs,rs->pq", eri, density)
    return hcore + coulomb - 0.5 * exchange


def run_rhf(
    integrals: IntegralTables,
    num_electrons: int,
    *,
    max_iterations: int = 200,
    convergence: float = 1e-10,
    diis_depth: int = 8,
) -> RHFResult:
    """Solve the RHF equations (closed shell; ``num_electrons`` even)."""
    if num_electrons % 2 != 0:
        raise ValueError("restricted HF requires an even number of electrons")
    hcore = integrals.kinetic + integrals.nuclear
    overlap = integrals.overlap

    # Symmetric (Loewdin) orthogonalization.
    s_eigenvalues, s_vectors = np.linalg.eigh(overlap)
    if s_eigenvalues.min() < 1e-8:
        raise SCFConvergenceError("near-singular overlap matrix (linear dependence)")
    half_inverse = s_vectors @ np.diag(s_eigenvalues**-0.5) @ s_vectors.T

    num_occupied = num_electrons // 2

    def density_from(coefficients: np.ndarray) -> np.ndarray:
        occupied = coefficients[:, :num_occupied]
        return 2.0 * occupied @ occupied.T

    # Core-Hamiltonian guess.
    _, core_vectors = np.linalg.eigh(half_inverse @ hcore @ half_inverse)
    mo_coefficients = half_inverse @ core_vectors
    density = density_from(mo_coefficients)

    fock_history: list[np.ndarray] = []
    error_history: list[np.ndarray] = []
    previous_energy = 0.0
    mo_energies = np.zeros(overlap.shape[0])
    fock = hcore
    converged = False
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        fock = _build_fock(hcore, integrals.eri, density)
        # DIIS error: FDS - SDF in the orthonormal basis.
        error = half_inverse @ (
            fock @ density @ overlap - overlap @ density @ fock
        ) @ half_inverse
        fock_history.append(fock)
        error_history.append(error)
        if len(fock_history) > diis_depth:
            fock_history.pop(0)
            error_history.pop(0)
        if len(fock_history) > 1:
            fock = _diis_extrapolate(fock_history, error_history)

        transformed = half_inverse @ fock @ half_inverse
        mo_energies, vectors = np.linalg.eigh(transformed)
        mo_coefficients = half_inverse @ vectors
        density = density_from(mo_coefficients)

        electronic = 0.5 * np.sum(density * (hcore + _build_fock(hcore, integrals.eri, density)))
        energy = electronic + integrals.nuclear_repulsion
        if abs(energy - previous_energy) < convergence and np.max(np.abs(error)) < 1e-7:
            converged = True
            previous_energy = energy
            break
        previous_energy = energy

    if not converged:
        raise SCFConvergenceError(
            f"SCF did not converge in {max_iterations} iterations "
            f"(last energy {previous_energy:.10f})"
        )

    electronic = previous_energy - integrals.nuclear_repulsion
    return RHFResult(
        energy=previous_energy,
        electronic_energy=electronic,
        mo_coefficients=mo_coefficients,
        mo_energies=mo_energies,
        density=density,
        fock=_build_fock(hcore, integrals.eri, density),
        num_electrons=num_electrons,
        converged=converged,
        iterations=iteration,
    )


def _diis_extrapolate(
    fock_history: list[np.ndarray], error_history: list[np.ndarray]
) -> np.ndarray:
    """Pulay DIIS: solve for the linear combination minimizing the error."""
    depth = len(fock_history)
    matrix = -np.ones((depth + 1, depth + 1))
    matrix[depth, depth] = 0.0
    for i in range(depth):
        for j in range(depth):
            matrix[i, j] = np.sum(error_history[i] * error_history[j])
    rhs = np.zeros(depth + 1)
    rhs[depth] = -1.0
    try:
        solution = np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        return fock_history[-1]
    return sum(c * f for c, f in zip(solution[:depth], fock_history))
