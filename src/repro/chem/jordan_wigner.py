"""Jordan-Wigner encoding [54] of fermionic operators into Pauli sums.

Spin orbital p maps to qubit p with

    a_p  = Z_{p-1} ... Z_0 (X_p + i Y_p) / 2
    a_p+ = Z_{p-1} ... Z_0 (X_p - i Y_p) / 2

Products of ladder operators are expanded with the symplectic Pauli
algebra, which keeps the implementation generic (any ladder product, any
ordering) and lets the tests verify canonical anticommutation relations
directly.
"""

from __future__ import annotations

from repro.chem.fermion import FermionOperator
from repro.pauli import PauliString, PauliSum


def ladder_operator(num_qubits: int, orbital: int, creation: bool) -> PauliSum:
    """JW image of ``a_p`` or ``a_p+`` as a two-term Pauli sum."""
    if not 0 <= orbital < num_qubits:
        raise ValueError(f"orbital {orbital} out of range for {num_qubits} qubits")
    z_chain = (1 << orbital) - 1  # Z on qubits 0..p-1
    x_term = PauliString(num_qubits, x=1 << orbital, z=z_chain)
    y_term = PauliString(num_qubits, x=1 << orbital, z=z_chain | (1 << orbital))
    sign = -0.5j if creation else 0.5j
    return PauliSum(num_qubits, {x_term.key(): 0.5, y_term.key(): sign})


def jordan_wigner(operator: FermionOperator, num_qubits: int | None = None) -> PauliSum:
    """Map a fermionic operator to its qubit representation.

    The number of qubits defaults to ``max_orbital + 1``.
    """
    if num_qubits is None:
        num_qubits = operator.max_orbital() + 1
        if num_qubits <= 0:
            raise ValueError("cannot infer qubit count from a scalar operator")
    result = PauliSum.zero(num_qubits)
    for coefficient, ladder in operator:
        term = PauliSum.identity(num_qubits, coefficient)
        for orbital, creation in ladder:
            term = term @ ladder_operator(num_qubits, orbital, creation)
        result = result + term
    return result.chop()
