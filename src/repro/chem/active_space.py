"""Frozen-core active-space reduction.

The paper "freezes the core electrons and only simulates the interaction
of the outermost electrons".  Freezing doubly-occupied core MOs folds
their mean-field interaction into (i) a scalar core energy and (ii) an
effective one-body operator over the active MOs:

    E_core  = E_nuc + sum_c 2 h_cc + sum_cd [2 (cc|dd) - (cd|dc)]
    h'_tu   = h_tu + sum_c [2 (tu|cc) - (tc|cu)]

(chemist-notation integrals, c/d over frozen MOs, t/u over active MOs).
The active-space sizes per molecule are fixed in
:mod:`repro.chem.molecules` to reproduce the paper's qubit counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ActiveSpaceIntegrals:
    """Effective integrals over the active MOs."""

    core_energy: float           # nuclear repulsion + frozen-core energy
    hcore: np.ndarray            # effective one-body h'[t, u]
    eri: np.ndarray              # chemist (tu|vw) over active MOs
    num_electrons: int           # active electrons
    num_orbitals: int            # active spatial orbitals


def reduce_to_active_space(
    hcore_mo: np.ndarray,
    eri_mo: np.ndarray,
    nuclear_repulsion: float,
    total_electrons: int,
    num_active_electrons: int,
    num_active_orbitals: int,
) -> ActiveSpaceIntegrals:
    """Freeze core MOs and project onto the chosen active window.

    Active orbitals are the ``num_active_orbitals`` MOs immediately above
    the frozen core (energy ordering is inherited from the RHF solution).
    """
    num_frozen_twice = total_electrons - num_active_electrons
    if num_frozen_twice < 0 or num_frozen_twice % 2 != 0:
        raise ValueError(
            f"cannot freeze {num_frozen_twice} electrons "
            f"(total {total_electrons}, active {num_active_electrons})"
        )
    num_frozen = num_frozen_twice // 2
    num_mo = hcore_mo.shape[0]
    if num_frozen + num_active_orbitals > num_mo:
        raise ValueError(
            f"active window [{num_frozen}, {num_frozen + num_active_orbitals}) "
            f"exceeds {num_mo} MOs"
        )

    frozen = list(range(num_frozen))
    active = list(range(num_frozen, num_frozen + num_active_orbitals))

    core_energy = nuclear_repulsion
    for c in frozen:
        core_energy += 2.0 * hcore_mo[c, c]
        for d in frozen:
            core_energy += 2.0 * eri_mo[c, c, d, d] - eri_mo[c, d, d, c]

    hcore_active = hcore_mo[np.ix_(active, active)].copy()
    for c in frozen:
        hcore_active += 2.0 * eri_mo[np.ix_(active, active)][:, :, c, c] - eri_mo[
            np.ix_(active, [c], [c], active)
        ].reshape(len(active), len(active))

    eri_active = eri_mo[np.ix_(active, active, active, active)].copy()
    return ActiveSpaceIntegrals(
        core_energy=core_energy,
        hcore=hcore_active,
        eri=eri_active,
        num_electrons=num_active_electrons,
        num_orbitals=num_active_orbitals,
    )
