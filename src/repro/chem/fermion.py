"""Second-quantized fermionic operators.

A :class:`FermionOperator` is a weighted sum of normal-ordered-or-not
products of ladder operators, stored as tuples ``((index, is_creation),
...)``.  The Hamiltonian assembler and UCCSD excitation builder construct
these, and :mod:`repro.chem.jordan_wigner` maps them to Pauli sums.
"""

from __future__ import annotations

from typing import Iterable, Iterator

LadderTerm = tuple[tuple[int, bool], ...]  # ((orbital, is_creation), ...)


class FermionOperator:
    """A weighted sum of ladder-operator products."""

    __slots__ = ("_terms",)

    def __init__(self, terms: dict[LadderTerm, complex] | None = None):
        self._terms: dict[LadderTerm, complex] = dict(terms) if terms else {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls()

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "FermionOperator":
        return cls({(): coefficient})

    @classmethod
    def from_term(cls, ladder: Iterable[tuple[int, bool]], coefficient: complex = 1.0) -> "FermionOperator":
        """E.g. ``from_term([(2, True), (0, False)])`` is ``a2+ a0``."""
        return cls({tuple(ladder): coefficient})

    @classmethod
    def creation(cls, orbital: int) -> "FermionOperator":
        return cls.from_term([(orbital, True)])

    @classmethod
    def annihilation(cls, orbital: int) -> "FermionOperator":
        return cls.from_term([(orbital, False)])

    @classmethod
    def number(cls, orbital: int) -> "FermionOperator":
        return cls.from_term([(orbital, True), (orbital, False)])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[tuple[complex, LadderTerm]]:
        for ladder in sorted(self._terms):
            yield self._terms[ladder], ladder

    def coefficient(self, ladder: LadderTerm) -> complex:
        return self._terms.get(tuple(ladder), 0.0)

    def max_orbital(self) -> int:
        """Largest orbital index appearing (or -1 for scalar operators)."""
        indices = [index for ladder in self._terms for index, _ in ladder]
        return max(indices) if indices else -1

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _add_term(self, ladder: LadderTerm, coefficient: complex) -> None:
        value = self._terms.get(ladder, 0.0) + coefficient
        if value == 0:
            self._terms.pop(ladder, None)
        else:
            self._terms[ladder] = value

    def __add__(self, other: "FermionOperator") -> "FermionOperator":
        result = FermionOperator(self._terms)
        for coefficient, ladder in other:
            result._add_term(ladder, coefficient)
        return result

    def __sub__(self, other: "FermionOperator") -> "FermionOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "FermionOperator":
        if isinstance(other, FermionOperator):
            result = FermionOperator()
            for c1, ladder1 in self:
                for c2, ladder2 in other:
                    result._add_term(ladder1 + ladder2, c1 * c2)
            return result
        return FermionOperator({k: v * other for k, v in self._terms.items() if v * other != 0})

    __rmul__ = __mul__

    def dagger(self) -> "FermionOperator":
        """Hermitian conjugate: reverse products, flip dagger flags."""
        result = FermionOperator()
        for coefficient, ladder in self:
            conjugated = tuple((index, not creation) for index, creation in reversed(ladder))
            result._add_term(conjugated, coefficient.conjugate() if isinstance(coefficient, complex) else coefficient)
        return result

    def is_anti_hermitian(self, tolerance: float = 1e-10) -> bool:
        total = self + self.dagger()
        return all(abs(c) < tolerance for c, _ in total)

    def __repr__(self) -> str:
        def fmt(ladder: LadderTerm) -> str:
            if not ladder:
                return "1"
            return " ".join(f"a{index}^" if creation else f"a{index}" for index, creation in ladder)

        preview = " + ".join(f"({c:.4g}) {fmt(l)}" for c, l in list(self)[:4])
        suffix = " + ..." if len(self) > 4 else ""
        return f"FermionOperator({preview}{suffix})"
