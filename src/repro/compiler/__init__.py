"""Compilation flows (Section V).

Two flows are provided, mirroring the paper's comparison:

* the **traditional** flow: chain synthesis of every Pauli string into
  CNOT ladders (:mod:`repro.compiler.synthesis`, what Qiskit does),
  followed by general-purpose SABRE mapping
  (:mod:`repro.compiler.sabre`);
* the **co-designed** flow: hierarchical initial layout straight from the
  Pauli IR (:mod:`repro.compiler.layout`, Algorithm 2) plus Merge-to-Root
  combined synthesis-and-routing (:mod:`repro.compiler.merge_to_root`,
  Algorithm 3).

:mod:`repro.compiler.verify` checks compiled circuits against the
Pauli-evolution reference semantics, and :mod:`repro.compiler.metrics`
computes the paper's overhead numbers.

:mod:`repro.compiler.fusion` sits after either flow: it merges adjacent
gates into dense 2x2/4x4 unitary blocks for the ``"fused"`` simulation
engine, with content-addressed plan caching (:mod:`repro.core.cache`).

Both flows are exposed behind the string-keyed registry in
:mod:`repro.compiler.registry` (``get_compiler("mtr")`` /
``get_compiler("sabre")``) with one uniform ``compile(program, device)``
entry point, which is how the pipeline's ``Route`` stage selects a flow.
"""

from repro.compiler.synthesis import (
    synthesize_pauli_chain,
    synthesize_program_chain,
    synthesize_program_chain_with_positions,
    hartree_fock_circuit,
)
from repro.compiler.fusion import (
    FUSION_LEVELS,
    FusedOp,
    FusedProgram,
    FusionPlan,
    build_fusion_plan,
    check_fusion_level,
    fuse_circuit,
    fusion_plan,
)
from repro.compiler.layout import (
    circuit_cooccurrence,
    hierarchical_circuit_layout,
    hierarchical_initial_layout,
    trivial_layout,
)
from repro.compiler.merge_to_root import MergeToRootCompiler, CompiledProgram
from repro.compiler.sabre import SabreRouter, SabreResult
from repro.compiler.cancellation import cancel_gates, cancellation_savings
from repro.compiler.metrics import (
    mapping_overhead,
    OverheadReport,
    ScheduleReport,
    schedule_report,
)
from repro.compiler.verify import (
    logical_reference_state,
    compiled_state,
    assert_circuit_routed_equivalent,
    assert_equivalent,
    assert_routed_equivalent,
    states_match,
)
from repro.compiler.registry import (
    CompilerAdapter,
    MergeToRootAdapter,
    SabreAdapter,
    get_compiler,
    list_compilers,
    register_compiler,
)

__all__ = [
    "CompilerAdapter",
    "MergeToRootAdapter",
    "SabreAdapter",
    "get_compiler",
    "list_compilers",
    "register_compiler",
    "synthesize_pauli_chain",
    "synthesize_program_chain",
    "synthesize_program_chain_with_positions",
    "hartree_fock_circuit",
    "FUSION_LEVELS",
    "FusedOp",
    "FusedProgram",
    "FusionPlan",
    "build_fusion_plan",
    "check_fusion_level",
    "fuse_circuit",
    "fusion_plan",
    "hierarchical_initial_layout",
    "hierarchical_circuit_layout",
    "circuit_cooccurrence",
    "trivial_layout",
    "MergeToRootCompiler",
    "CompiledProgram",
    "SabreRouter",
    "SabreResult",
    "cancel_gates",
    "cancellation_savings",
    "mapping_overhead",
    "OverheadReport",
    "ScheduleReport",
    "schedule_report",
    "logical_reference_state",
    "compiled_state",
    "states_match",
    "assert_equivalent",
    "assert_routed_equivalent",
    "assert_circuit_routed_equivalent",
]
