"""Semantic verification of compiled circuits.

The reference semantics of a Pauli program is direct statevector
evolution (:mod:`repro.sim.pauli_evolution`).  A compiled physical
circuit is correct when, starting from ``|0...0>`` on the device, its
output equals the reference logical state *transported through the final
layout*: logical qubit l lives on physical qubit ``final_layout[l]`` and
every unmapped physical qubit is back in ``|0>``.

This check catches every class of compiler bug we care about -- wrong
basis changes, wrong CNOT trees, stale positions after SWAPs, bad mirror
synthesis -- and is run over randomized programs in the test suite.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.circuit import Circuit
from repro.core.ir import PauliProgram
from repro.sim.pauli_evolution import evolve_pauli_sequence
from repro.sim.statevector import apply_circuit, basis_state


def logical_reference_state(
    program: PauliProgram, parameters: Sequence[float]
) -> np.ndarray:
    """Exact state of the program: HF occupations then Pauli evolutions."""
    index = 0
    for qubit in program.initial_occupations:
        index |= 1 << qubit
    state = basis_state(program.num_qubits, index)
    return evolve_pauli_sequence(program.bound_terms(parameters), state)


def compiled_state(circuit: Circuit) -> np.ndarray:
    """Simulate the physical circuit from the all-zero device state."""
    return apply_circuit(circuit)


def embed_logical_state(
    logical_state: np.ndarray,
    final_layout: dict[int, int],
    num_physical: int,
) -> np.ndarray:
    """Transport a logical state onto the device through a layout."""
    num_logical = int(np.log2(len(logical_state)))
    physical = np.zeros(1 << num_physical, dtype=complex)
    layout_items = sorted(final_layout.items())
    for logical_index in range(1 << num_logical):
        if logical_state[logical_index] == 0:
            continue
        physical_index = 0
        for logical_qubit, physical_qubit in layout_items:
            if (logical_index >> logical_qubit) & 1:
                physical_index |= 1 << physical_qubit
        physical[physical_index] = logical_state[logical_index]
    return physical


def states_match(a: np.ndarray, b: np.ndarray, *, tolerance: float = 1e-8) -> bool:
    """Equality up to global phase."""
    overlap = np.vdot(a, b)
    return bool(abs(abs(overlap) - 1.0) < tolerance)


def assert_equivalent(
    program: PauliProgram,
    parameters: Sequence[float],
    circuit: Circuit,
    final_layout: dict[int, int],
    *,
    tolerance: float = 1e-8,
) -> None:
    """Raise AssertionError when the compiled circuit is wrong."""
    reference = logical_reference_state(program, parameters)
    expected = embed_logical_state(reference, final_layout, circuit.num_qubits)
    actual = compiled_state(circuit)
    if not states_match(expected, actual, tolerance=tolerance):
        overlap = abs(np.vdot(expected, actual))
        raise AssertionError(
            f"compiled circuit deviates from reference (|overlap| = {overlap:.6f})"
        )


def assert_routed_equivalent(
    program: PauliProgram,
    parameters: Sequence[float],
    result: Any,
    *,
    circuit: Circuit | None = None,
    tolerance: float = 1e-8,
) -> None:
    """Verify a compiled result object, un-permuting through its layout.

    Both compilation flows leave the logical qubits *somewhere else* than
    where they started: Merge-to-Root drags them toward the root and
    SABRE's routing SWAPs migrate them across the device.  ``result`` is
    any object satisfying the compiled-result protocol
    (:class:`~repro.compiler.merge_to_root.CompiledProgram` or
    :class:`~repro.compiler.sabre.SabreResult`); its ``final_layout``
    records where each logical qubit ended up, so the reference state is
    transported through that permutation before comparing -- no manual
    un-permutation at the call site.

    ``circuit`` optionally substitutes an optimized rewrite of
    ``result.circuit`` (e.g. after peephole cancellation, which preserves
    the unitary and therefore the final permutation).
    """
    target = circuit if circuit is not None else result.circuit
    assert_equivalent(
        program,
        parameters,
        target,
        result.final_layout,
        tolerance=tolerance,
    )


def assert_circuit_routed_equivalent(
    logical_circuit: Circuit,
    result: Any,
    *,
    circuit: Circuit | None = None,
    tolerance: float = 1e-8,
) -> None:
    """Verify a routed result against a gate-level reference circuit.

    The ingested-QASM analogue of :func:`assert_routed_equivalent`: the
    reference semantics is direct simulation of the *logical* circuit
    from ``|0...0>``, transported through the result's ``final_layout``
    onto the device and compared (up to global phase) with the routed
    circuit's output.  ``circuit`` optionally substitutes an optimized
    rewrite of ``result.circuit``.
    """
    target = circuit if circuit is not None else result.circuit
    reference = apply_circuit(logical_circuit)
    expected = embed_logical_state(
        reference, result.final_layout, target.num_qubits
    )
    actual = compiled_state(target)
    if not states_match(expected, actual, tolerance=tolerance):
        overlap = abs(np.vdot(expected, actual))
        raise AssertionError(
            f"routed circuit deviates from its logical reference "
            f"(|overlap| = {overlap:.6f})"
        )
