"""Gate fusion: merge adjacent gates into dense 2x2 / 4x4 unitaries.

The simulators apply circuits gate by gate, which is optimal for the
cheap specialized kernels (X/Z/RZ/H/CX/...) but wasteful for long runs of
small gates: every gate is a full sweep over the ``2**n`` amplitudes.
Fusion trades per-gate sweeps for per-*block* sweeps -- a run of
single-qubit gates collapses into one 2x2 matrix, single-qubit gates are
absorbed into a neighboring two-qubit gate, and same-pair two-qubit runs
collapse into one 4x4 -- each applied through the low-op-count dense
kernel :func:`repro.sim.statevector.apply_unitary_inplace`.

The pass is split into a **plan** and a **binding**:

* :func:`build_fusion_plan` walks a :class:`~repro.circuit.circuit.Circuit`
  or :class:`~repro.circuit.dag.CircuitDAG` once (greedy open-block
  scan, see below) and records *which gate positions merge into which
  blocks* -- pure structure, blind to parameter values, so one plan
  serves every binding of a parameterized template and is cached under
  the structural circuit hash (:func:`repro.core.cache.circuit_key` with
  ``values=False``).
* :meth:`FusionPlan.bind` multiplies out the block matrices for concrete
  gate parameters, and :meth:`FusionPlan.bind_sweep` does the same with
  per-row ``(K,)`` angle overrides, producing ``(K, 4, 4)`` matrix
  stacks that evolve a ``(K, 2**n)`` statevector stack with one batched
  GEMM per block -- the vectorization that per-row rotation angles deny
  the plain batched engine.

Greedy open-block scan: each qubit maps to at most one *open* block.  A
1q gate joins (or opens) the block on its qubit; a 2q gate joins an open
block on the same pair, absorbs open 1q blocks on its qubits, and
flushes conflicting 2q blocks.  A block stays open while gates on
disjoint qubits are emitted -- deferring it is safe because nothing
emitted in between touches its qubits (anything that did would have
joined or flushed it).  Blocks that end up with a single gate are
emitted as *passthrough* ops so the specialized single-gate kernels keep
handling them (a dense 4x4 would be slower than the cx slab swap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.dag import CircuitDAG
from repro.circuit.gates import Gate

if TYPE_CHECKING:  # runtime import stays lazy to avoid package cycles
    from repro.core.cache import ContentAddressedCache
from repro.sim.statevector import (
    _SWAP_BITS_PERM,
    apply_gate_inplace,
    apply_unitary_inplace,
)

#: Valid values of the ``fusion=`` knob: ``"off"`` disables merging,
#: ``"1q"`` merges single-qubit runs only, ``"2q"`` (default) also
#: absorbs into / merges two-qubit blocks.
FUSION_LEVELS = ("off", "1q", "2q")

_I2 = np.eye(2, dtype=complex)


def check_fusion_level(level: str) -> str:
    if level not in FUSION_LEVELS:
        raise ValueError(
            f"unknown fusion level {level!r}; valid levels: "
            f"{', '.join(FUSION_LEVELS)}"
        )
    return level


def _gates_of(source: Circuit | CircuitDAG) -> tuple[int, list[Gate]]:
    """The (num_qubits, topologically ordered gate list) of a source IR."""
    if isinstance(source, CircuitDAG):
        return source.num_qubits, list(source.topological_gates())
    return source.num_qubits, list(source.gates)


# ----------------------------------------------------------------------
# Plan structure (parameter-value-blind)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanOp:
    """One emitted operation of a fusion plan.

    ``indices`` are positions into the source's topological gate list;
    ``dense=False`` marks a passthrough single gate (kept on the
    specialized kernels), ``dense=True`` a merged block whose ``qubits``
    are sorted ascending (bit 0 of the block matrix index is the lowest
    qubit).
    """

    qubits: tuple[int, ...]
    indices: tuple[int, ...]
    dense: bool


@dataclass
class _OpenBlock:
    qubits: frozenset[int]
    indices: list[int]
    closed: bool = False


@dataclass(frozen=True)
class FusionPlan:
    """Structural fusion decisions for one circuit template.

    Immutable and value-blind: any circuit with the same gate kinds,
    qubits, and parameter arities binds through the same plan, which is
    what makes plans cacheable across the points of a parameter sweep.
    """

    num_qubits: int
    level: str
    ops: tuple[PlanOp, ...]
    source_gates: int

    @property
    def num_dense(self) -> int:
        return sum(1 for op in self.ops if op.dense)

    def bind(self, source: Circuit | CircuitDAG) -> "FusedProgram":
        """Multiply out block matrices for the source's concrete gates."""
        return self._bind(source, {})

    def bind_sweep(
        self,
        source: Circuit | CircuitDAG,
        angle_overrides: Mapping[int, np.ndarray],
    ) -> "FusedProgram":
        """Bind with per-row angles: gate position -> ``(K,)`` angles.

        Overridable gates are the single-angle rotations (rx/ry/rz).
        Blocks containing an overridden gate get ``(K, dim, dim)``
        per-row matrices; overridden passthrough gates are promoted to
        dense per-row ops.  The resulting program must be applied to a
        matching ``(K, 2**n)`` state stack.
        """
        return self._bind(source, dict(angle_overrides))

    def _bind(
        self,
        source: Circuit | CircuitDAG,
        overrides: dict[int, np.ndarray],
    ) -> "FusedProgram":
        num_qubits, gates = _gates_of(source)
        if num_qubits != self.num_qubits or len(gates) != self.source_gates:
            raise ValueError("source does not match the fusion plan's structure")
        ops: list[FusedOp] = []
        for op in self.ops:
            overridden = any(index in overrides for index in op.indices)
            if not op.dense and not overridden:
                ops.append(FusedOp(qubits=op.qubits, gate=gates[op.indices[0]]))
                continue
            if not op.dense:
                # Overridden passthrough rotation: promote to a per-row
                # dense 2x2 stack.
                gate = gates[op.indices[0]]
                matrix = _rotation_matrices(gate.name, overrides[op.indices[0]])
                ops.append(FusedOp(qubits=gate.qubits, matrix=matrix))
                continue
            dim = 1 << len(op.qubits)
            matrix: np.ndarray = np.eye(dim, dtype=complex)
            for index in op.indices:
                expanded = _gate_block_matrix(
                    gates[index], op.qubits, overrides.get(index)
                )
                # Later gates act after earlier ones: left-multiply.
                # matmul broadcasts (K,d,d) against shared (d,d) freely.
                matrix = np.matmul(expanded, matrix)
            ops.append(FusedOp(qubits=op.qubits, matrix=matrix))
        return FusedProgram(
            num_qubits=self.num_qubits,
            ops=tuple(ops),
            source_gates=self.source_gates,
        )


# ----------------------------------------------------------------------
# Bound programs (dense kernels ready to execute)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedOp:
    """One executable op: a dense unitary block or a passthrough gate."""

    qubits: tuple[int, ...]
    matrix: np.ndarray | None = None
    gate: Gate | None = None

    @property
    def is_dense(self) -> bool:
        return self.matrix is not None


@dataclass(frozen=True)
class FusedProgram:
    """A bound sequence of dense-unitary kernels and passthrough gates.

    Immutable and safe to share across threads (``apply`` mutates only
    the caller's buffer), which is what lets bound programs live in the
    content-addressed compile cache.
    """

    num_qubits: int
    ops: tuple[FusedOp, ...]
    source_gates: int

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_dense(self) -> int:
        return sum(1 for op in self.ops if op.is_dense)

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Run the program on ``state`` by mutating it; returns ``state``.

        ``state`` must be C-contiguous complex128 of shape
        ``(..., 2**num_qubits)``; programs bound with per-row overrides
        require a matching ``(K, 2**n)`` stack.
        """
        for op in self.ops:
            if op.matrix is None:
                apply_gate_inplace(state, op.gate, self.num_qubits)
            else:
                apply_unitary_inplace(state, op.matrix, op.qubits, self.num_qubits)
        return state


# ----------------------------------------------------------------------
# Matrix assembly
# ----------------------------------------------------------------------
def _rotation_matrices(name: str, angles: np.ndarray) -> np.ndarray:
    """Per-row rotation matrices, shape ``(K, 2, 2)``."""
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 1:
        raise ValueError("angle overrides must be one-dimensional (K,) arrays")
    half = 0.5 * angles
    cos, sin = np.cos(half), np.sin(half)
    out = np.zeros((len(angles), 2, 2), dtype=complex)
    if name == "rz":
        out[:, 0, 0] = cos - 1j * sin
        out[:, 1, 1] = cos + 1j * sin
    elif name == "rx":
        out[:, 0, 0] = out[:, 1, 1] = cos
        out[:, 0, 1] = out[:, 1, 0] = -1j * sin
    elif name == "ry":
        out[:, 0, 0] = out[:, 1, 1] = cos
        out[:, 0, 1] = -sin
        out[:, 1, 0] = sin
    else:
        raise ValueError(f"angle overrides support rx/ry/rz, not {name!r}")
    return out


def _expand_1q(matrix: np.ndarray, bit: int) -> np.ndarray:
    """Lift a (batched) 2x2 onto ``bit`` of a two-qubit block index."""
    if matrix.ndim == 2:
        return np.kron(_I2, matrix) if bit == 0 else np.kron(matrix, _I2)
    rows = matrix.shape[0]
    if bit == 0:
        return np.einsum("ab,kcd->kacbd", _I2, matrix).reshape(rows, 4, 4)
    return np.einsum("kab,cd->kacbd", matrix, _I2).reshape(rows, 4, 4)


def _gate_block_matrix(
    gate: Gate,
    block_qubits: tuple[int, ...],
    override_angles: np.ndarray | None,
) -> np.ndarray:
    """The gate's matrix expanded to the block's index space.

    ``block_qubits`` are sorted ascending; bit 0 of the block index is
    the lowest qubit (the convention of
    :func:`repro.sim.statevector.apply_unitary_inplace`).
    """
    if override_angles is not None:
        if gate.num_qubits != 1:
            raise ValueError("only single-qubit rotations can be overridden")
        matrix = _rotation_matrices(gate.name, override_angles)
    else:
        matrix = gate.matrix()
    if gate.num_qubits == 1:
        if len(block_qubits) == 1:
            return matrix
        return _expand_1q(matrix, 0 if gate.qubits[0] == block_qubits[0] else 1)
    if gate.qubits == block_qubits:
        return matrix
    # Reversed listing relative to the block: swap the two index bits.
    return matrix[..., _SWAP_BITS_PERM, :][..., :, _SWAP_BITS_PERM]


# ----------------------------------------------------------------------
# The greedy planner
# ----------------------------------------------------------------------
def build_fusion_plan(
    source: Circuit | CircuitDAG, level: str = "2q"
) -> FusionPlan:
    """Plan fusion blocks for a circuit or DAG (see module docstring)."""
    check_fusion_level(level)
    num_qubits, gates = _gates_of(source)
    ops: list[PlanOp] = []
    open_by_qubit: dict[int, _OpenBlock] = {}
    open_order: list[_OpenBlock] = []

    def emit(block: _OpenBlock) -> None:
        block.closed = True
        for qubit in block.qubits:
            open_by_qubit.pop(qubit, None)
        if len(block.indices) == 1:
            index = block.indices[0]
            ops.append(PlanOp(gates[index].qubits, (index,), dense=False))
        else:
            ops.append(
                PlanOp(tuple(sorted(block.qubits)), tuple(block.indices), dense=True)
            )

    def absorb(block: _OpenBlock) -> list[int]:
        block.closed = True
        for qubit in block.qubits:
            open_by_qubit.pop(qubit, None)
        return block.indices

    def open_block(qubits: frozenset[int], indices: list[int]) -> None:
        block = _OpenBlock(qubits, indices)
        for qubit in qubits:
            open_by_qubit[qubit] = block
        open_order.append(block)

    for position, gate in enumerate(gates):
        if gate.name in ("barrier", "measure") or level == "off":
            for block in open_order:
                if not block.closed:
                    emit(block)
            ops.append(PlanOp(gate.qubits, (position,), dense=False))
            continue
        if gate.num_qubits == 1:
            qubit = gate.qubits[0]
            block = open_by_qubit.get(qubit)
            if block is None:
                open_block(frozenset((qubit,)), [position])
            else:
                block.indices.append(position)
            continue
        if gate.num_qubits != 2:
            raise ValueError(f"unsupported gate arity: {gate!r}")
        qubit_a, qubit_b = gate.qubits
        if level == "1q":
            for qubit in (qubit_a, qubit_b):
                block = open_by_qubit.get(qubit)
                if block is not None:
                    emit(block)
            ops.append(PlanOp(gate.qubits, (position,), dense=False))
            continue
        block_a = open_by_qubit.get(qubit_a)
        block_b = open_by_qubit.get(qubit_b)
        if block_a is not None and block_a is block_b:
            # Same-pair two-qubit block: extend it.
            block_a.indices.append(position)
            continue
        # Conflicting two-qubit blocks (sharing one qubit with a
        # different pair) must be emitted before this gate runs.
        if block_a is not None and len(block_a.qubits) == 2:
            emit(block_a)
            block_a = None
        if block_b is not None and len(block_b.qubits) == 2:
            emit(block_b)
            block_b = None
        # Remaining open blocks are pure-1q runs on this gate's qubits:
        # absorb them (their gates act on disjoint single qubits, so
        # concatenating their index runs preserves semantics).
        indices: list[int] = []
        if block_a is not None:
            indices.extend(absorb(block_a))
        if block_b is not None:
            indices.extend(absorb(block_b))
        indices.append(position)
        open_block(frozenset((qubit_a, qubit_b)), indices)

    for block in open_order:
        if not block.closed:
            emit(block)
    return FusionPlan(
        num_qubits=num_qubits, level=level, ops=tuple(ops), source_gates=len(gates)
    )


# ----------------------------------------------------------------------
# Cached entry points
# ----------------------------------------------------------------------
def _source_key(source: Circuit | CircuitDAG, *, values: bool) -> str:
    from repro.core.cache import circuit_key, dag_key

    if isinstance(source, CircuitDAG):
        return dag_key(source, values=values)
    return circuit_key(source, values=values)


def fusion_plan(
    source: Circuit | CircuitDAG,
    *,
    level: str = "2q",
    cache: "ContentAddressedCache | bool | None" = True,
) -> FusionPlan:
    """A fusion plan for ``source``, content-addressed when caching.

    The cache key is the *structural* hash (gate kinds, qubits,
    parameter arities), so every binding of one parameterized template
    -- every optimizer iteration, every sweep point -- reuses one plan.
    ``cache`` accepts True (the global compile cache), False/None (off),
    or a :class:`~repro.core.cache.ContentAddressedCache` instance.
    """
    from repro.core.cache import resolve_cache

    check_fusion_level(level)
    store = resolve_cache(cache)
    if store is None:
        return build_fusion_plan(source, level)
    key = ("fusion-plan", level, _source_key(source, values=False))
    return store.get_or_compute(key, lambda: build_fusion_plan(source, level))


def fuse_circuit(
    source: Circuit | CircuitDAG,
    *,
    level: str = "2q",
    cache: "ContentAddressedCache | bool | None" = True,
) -> FusedProgram:
    """A bound :class:`FusedProgram` for ``source``.

    The plan is cached under the structural hash; the bound program
    under the value hash (parameters included), so repeated runs of an
    identical circuit skip both planning and matrix assembly.
    """
    from repro.core.cache import resolve_cache

    store = resolve_cache(cache)
    plan = fusion_plan(source, level=level, cache=store if store is not None else False)
    if store is None:
        return plan.bind(source)
    key = ("fused-program", level, _source_key(source, values=True))
    return store.get_or_compute(key, lambda: plan.bind(source))
