"""SABRE swap-based routing [52] -- the paper's baseline compiler.

A faithful reimplementation of the SABRE heuristic: maintain the front
layer of unsatisfied two-qubit gates, and repeatedly apply the candidate
SWAP minimizing

    H = 1/|F| sum_{g in F} D[pi(g.a)][pi(g.b)]
      + W / |E| sum_{g in E} D[pi(g.a)][pi(g.b)]

over SWAPs touching front-layer qubits, where E is a lookahead window and
a decay factor discourages ping-ponging the same qubit.  Initial mapping
quality is improved with forward-backward traversal passes, as in the
original paper.

The dependency structure comes from the shared circuit DAG IR
(:class:`repro.circuit.dag.CircuitDAG`): the router's front layer and
extended set are frontier queries over that DAG.  With ``commute=True``
the DAG drops edges between commuting gates (CNOTs sharing a control,
rotations sliding through controls, ...), so the frontier is larger and
the router may satisfy gates in any commutation-valid order.

SABRE is general-purpose: it sees only gates, so on a sparse X-Tree it
pays the full price the co-designed Merge-to-Root flow avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.circuit import Circuit
from repro.circuit.dag import CircuitDAG, DAGNode
from repro.circuit.gates import Gate, SWAP
from repro.hardware.coupling import CouplingGraph

_LOOKAHEAD_SIZE = 20
_LOOKAHEAD_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5


@dataclass
class SabreResult:
    """Routed circuit plus accounting."""

    circuit: Circuit                  # physical circuit with SWAPs
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    num_swaps: int
    device: str
    dag: CircuitDAG | None = field(default=None, repr=False)

    @property
    def overhead_cnots(self) -> int:
        return 3 * self.num_swaps

    @property
    def total_cnots(self) -> int:
        return self.circuit.num_cnots()


class SabreRouter:
    """Route logical circuits onto a coupling graph with SWAP insertion."""

    def __init__(self, graph: CouplingGraph, *, seed: int = 11, commute: bool = False) -> None:
        self.graph = graph
        self.distance = graph.distance_matrix().astype(float)
        self.commute = commute
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        *,
        initial_layout: dict[int, int] | None = None,
        refinement_passes: int = 2,
    ) -> SabreResult:
        """Route ``circuit``; the initial layout defaults to SABRE's
        reverse-traversal refinement starting from the identity."""
        if circuit.num_qubits > self.graph.num_qubits:
            raise ValueError("device too small for circuit")
        layout = dict(initial_layout) if initial_layout else {
            q: q for q in range(circuit.num_qubits)
        }
        reversed_circuit = Circuit(circuit.num_qubits, list(reversed(circuit.gates)))
        for _ in range(refinement_passes):
            # Forward pass: discard the routed gates, keep the final layout.
            layout = self._route_once(circuit, layout, emit=False)[1]
            layout = self._route_once(reversed_circuit, layout, emit=False)[1]
        routed_dag, final_layout, swaps = self._route_once(circuit, layout, emit=True)
        return SabreResult(
            circuit=routed_dag.to_circuit(),
            initial_layout=layout,
            final_layout=final_layout,
            num_swaps=swaps,
            device=self.graph.name,
            dag=routed_dag,
        )

    # ------------------------------------------------------------------
    # Core pass
    # ------------------------------------------------------------------
    def _route_once(
        self,
        circuit: Circuit,
        initial_layout: dict[int, int],
        *,
        emit: bool,
    ) -> tuple[Circuit | None, dict[int, int], int]:
        position = dict(initial_layout)
        occupant = {p: l for l, p in position.items()}

        dag = CircuitDAG.from_circuit(circuit, commute=self.commute)
        remaining = [node.num_predecessors for node in dag.nodes]
        front = [node for node in dag.nodes if remaining[node.index] == 0]
        # Emit through a DAG builder so the routed artifact carries its
        # own wire-dependency structure for the scheduling metrics.
        output = CircuitDAG(self.graph.num_qubits) if emit else None
        num_swaps = 0
        decay = np.ones(self.graph.num_qubits)
        since_reset = 0
        swaps_since_progress = 0
        stall_limit = 6 * self.graph.num_qubits

        def execute(node: DAGNode) -> None:
            if emit:
                remapped = node.gate.remap(
                    {q: position[q] for q in node.gate.qubits}
                )
                output.append(remapped)
            for successor in node.successors:
                remaining[successor.index] -= 1
                if remaining[successor.index] == 0:
                    front.append(successor)

        while front:
            # Flush everything executable.
            progressed = True
            while progressed:
                progressed = False
                still_blocked: list[DAGNode] = []
                for node in front:
                    gate = node.gate
                    if len(gate.qubits) < 2 or gate.name == "barrier":
                        execute(node)
                        progressed = True
                    else:
                        a, b = gate.qubits
                        if self.graph.are_connected(position[a], position[b]):
                            execute(node)
                            progressed = True
                        else:
                            still_blocked.append(node)
                front = still_blocked
                if progressed:
                    decay[:] = 1.0
                    since_reset = 0
                    swaps_since_progress = 0
            if not front:
                break

            # All front gates blocked: choose the best SWAP.  If the
            # heuristic has stalled (rare oscillation), fall back to
            # deterministic shortest-path routing of the first gate.
            if swaps_since_progress >= stall_limit:
                a_phys, b_phys = self._escape_swap(front[0].gate, position)
            else:
                candidates = self._candidate_swaps(front, position)
                extended = self._extended_set(front)
                a_phys, b_phys = self._best_swap(
                    candidates, front, extended, position, decay
                )
            swaps_since_progress += 1
            if emit:
                output.append(SWAP(a_phys, b_phys))
            num_swaps += 1
            self._swap_positions(a_phys, b_phys, position, occupant)
            decay[a_phys] += _DECAY_INCREMENT
            decay[b_phys] += _DECAY_INCREMENT
            since_reset += 1
            if since_reset >= _DECAY_RESET_INTERVAL:
                decay[:] = 1.0
                since_reset = 0

        final_layout = dict(position)
        if emit:
            return output, final_layout, num_swaps
        return None, final_layout, num_swaps

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _candidate_swaps(
        self, front: list[DAGNode], position: dict[int, int]
    ) -> list[tuple[int, int]]:
        involved: set[int] = set()
        for node in front:
            for qubit in node.gate.qubits:
                involved.add(position[qubit])
        candidates = {
            (min(a, b), max(a, b))
            for a, b in self.graph.edges
            if a in involved or b in involved
        }
        return sorted(candidates)

    def _extended_set(self, front: list[DAGNode]) -> list[DAGNode]:
        """Lookahead window: the next two-qubit gates past the frontier."""
        extended: list[DAGNode] = []
        frontier = list(front)
        seen = {node.index for node in front}
        while frontier and len(extended) < _LOOKAHEAD_SIZE:
            next_frontier: list[DAGNode] = []
            for node in frontier:
                for successor in node.successors:
                    if successor.index in seen:
                        continue
                    seen.add(successor.index)
                    if len(successor.gate.qubits) == 2:
                        extended.append(successor)
                        if len(extended) >= _LOOKAHEAD_SIZE:
                            break
                    next_frontier.append(successor)
                if len(extended) >= _LOOKAHEAD_SIZE:
                    break
            frontier = next_frontier
        return extended

    def _best_swap(
        self,
        candidates: list[tuple[int, int]],
        front: list[DAGNode],
        extended: list[DAGNode],
        position: dict[int, int],
        decay: np.ndarray,
    ) -> tuple[int, int]:
        best_score = np.inf
        best = candidates[0]
        for a_phys, b_phys in candidates:
            trial = dict(position)
            for logical, physical in position.items():
                if physical == a_phys:
                    trial[logical] = b_phys
                elif physical == b_phys:
                    trial[logical] = a_phys
            front_cost = sum(
                self.distance[trial[n.gate.qubits[0]], trial[n.gate.qubits[1]]]
                for n in front
            ) / len(front)
            extended_cost = 0.0
            if extended:
                extended_cost = _LOOKAHEAD_WEIGHT * sum(
                    self.distance[trial[n.gate.qubits[0]], trial[n.gate.qubits[1]]]
                    for n in extended
                ) / len(extended)
            score = max(decay[a_phys], decay[b_phys]) * (front_cost + extended_cost)
            if score < best_score - 1e-12:
                best_score = score
                best = (a_phys, b_phys)
        return best

    def _escape_swap(
        self, gate: Gate, position: dict[int, int]
    ) -> tuple[int, int]:
        """First hop of the shortest path between a blocked gate's qubits."""
        source = position[gate.qubits[0]]
        target = position[gate.qubits[1]]
        for neighbor in sorted(self.graph.neighbors(source)):
            if self.distance[neighbor, target] < self.distance[source, target]:
                return (min(source, neighbor), max(source, neighbor))
        raise RuntimeError("disconnected coupling graph")

    @staticmethod
    def _swap_positions(
        a: int, b: int, position: dict[int, int], occupant: dict[int, int]
    ) -> None:
        logical_a = occupant.get(a)
        logical_b = occupant.get(b)
        if logical_a is not None:
            position[logical_a] = b
            occupant[b] = logical_a
        else:
            occupant.pop(b, None)
        if logical_b is not None:
            position[logical_b] = a
            occupant[a] = logical_b
        else:
            occupant.pop(a, None)


def route_with_sabre(
    circuit: Circuit, graph: CouplingGraph, *, seed: int = 11, commute: bool = False
) -> SabreResult:
    """One-call convenience wrapper."""
    return SabreRouter(graph, seed=seed, commute=commute).run(circuit)
