"""DAG peephole gate cancellation (Section VII, "deeper compiler optimization").

The paper points out that traditional passes like gate cancellation [40]
can be specialized for variational chemistry circuits: consecutive Pauli
string simulation circuits share basis gates and CNOT-ladder tails that
cancel pairwise.  This pass runs over the shared
:class:`~repro.circuit.dag.CircuitDAG` IR and applies, to a fixed point:

* self-inverse pairs annihilate (H-H, X-X, CNOT-CNOT, SWAP-SWAP on the
  same qubits);
* rotations about the same axis on the same qubit merge
  (RZ(a) RZ(b) -> RZ(a+b)), vanishing when the combined angle is ~0.

With ``commute=False`` two gates must be *adjacent* -- no intervening
gate touches a shared qubit -- reproducing the classic conservative
pass.  With ``commute=True`` the partner search uses the DAG's
commutation structure: a candidate pair also cancels when every gate
between them acts on the shared wires with the *same* wire-action
(Z-like gates slide through CNOT controls, X-like gates through CNOT
targets), so e.g. ``CX(0,1) RZ(0) CX(0,1)`` collapses to ``RZ(0)`` and
two CNOT waves onto a shared target cancel across each other's
spectator CNOTs.  Every rewrite preserves the circuit unitary exactly
(not just up to global phase).
"""

from __future__ import annotations

import math

from repro.circuit import Circuit
from repro.circuit.dag import CircuitDAG, DAGNode
from repro.circuit.gates import Gate

_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cz", "swap"}
_ROTATIONS = {"rx", "ry", "rz"}
_ANGLE_EPSILON = 1e-12


def _symmetric_pair_equal(a: Gate, b: Gate) -> bool:
    """Same gate on the same qubits (SWAP/CZ are order-insensitive)."""
    if a.name != b.name:
        return False
    if a.name in ("swap", "cz"):
        return set(a.qubits) == set(b.qubits)
    return a.qubits == b.qubits


def cancel_gates(
    circuit: Circuit, *, commute: bool = False, max_passes: int | None = None
) -> Circuit:
    """Apply cancellation until a fixed point; returns a new circuit.

    Every sweep that reports a change strictly reduces the gate count or
    merges rotations (which can only be removed, never re-split), so the
    fixed point is reached after at most ``num_gates + 1`` sweeps.
    ``max_passes`` turns that argument into an enforced bound: exceeding
    it raises :class:`RuntimeError` instead of looping forever, which the
    test suite uses as a non-termination tripwire.
    """
    gates = list(circuit.gates)
    changed = True
    passes = 0
    while changed:
        if max_passes is not None and passes >= max_passes:
            raise RuntimeError(
                f"gate cancellation did not reach a fixed point within "
                f"{max_passes} passes ({len(gates)} gates remaining)"
            )
        gates, changed = _one_pass(gates, circuit.num_qubits, commute)
        passes += 1
    return Circuit(circuit.num_qubits, gates)


def _one_pass(
    gates: list[Gate], num_qubits: int, commute: bool
) -> tuple[list[Gate], bool]:
    """One sweep over the DAG; cancellations cascade within the sweep
    because removed nodes are skipped by later partner searches."""
    dag = CircuitDAG(num_qubits, commute=commute)
    dag.extend(gates)
    removed: set[int] = set()
    replaced: dict[int, Gate] = {}
    changed = False
    for node in dag.nodes:
        gate = node.gate
        if gate.name == "barrier" or gate.name == "measure":
            continue
        if gate.name not in _SELF_INVERSE and gate.name not in _ROTATIONS:
            continue
        partner = _find_partner(dag, node, removed)
        if partner is None:
            continue
        changed = True
        if gate.name in _SELF_INVERSE:
            removed.add(node.index)
            removed.add(partner.index)
            continue
        # Rotation merge at the partner's (earlier) position: everything
        # between them commutes with the rotation, so either slot is valid.
        earlier = replaced.get(partner.index, partner.gate)
        merged_angle = earlier.params[0] + gate.params[0]
        removed.add(node.index)
        if abs(math.remainder(merged_angle, 4.0 * math.pi)) > _ANGLE_EPSILON:
            replaced[partner.index] = Gate(gate.name, gate.qubits, (merged_angle,))
        else:
            removed.add(partner.index)
    if not changed:
        return gates, False
    survivors = [
        replaced.get(node.index, node.gate)
        for node in dag.nodes
        if node.index not in removed
    ]
    return survivors, True


def _find_partner(dag: CircuitDAG, node: DAGNode, removed: set[int]) -> DAGNode | None:
    """Nearest earlier cancelable partner reachable through commuting gates.

    Walks ``node``'s first wire backward, skipping gates whose
    wire-action matches (they commute with ``node`` there) and stopping
    at the first conflicting gate.  A partner found on that wire must
    additionally be reachable on *every* wire of the gate: in the same
    commuting group, or wire-adjacent once removed gates are skipped.
    """
    gate = node.gate
    wire_qubit = gate.qubits[0]
    axis = node.axis_on(wire_qubit)
    wire = dag.wire(wire_qubit)
    for position in range(node.wire_position(wire_qubit) - 1, -1, -1):
        candidate = wire[position]
        if candidate.index in removed:
            continue
        if _symmetric_pair_equal(candidate.gate, gate):
            if all(_reachable(dag, candidate, node, qubit, removed) for qubit in gate.qubits):
                return candidate
            return None
        candidate_axis = candidate.axis_on(wire_qubit)
        if axis is None or candidate_axis is None or candidate_axis != axis:
            return None  # conflicting gate blocks the wire
    return None


def _reachable(
    dag: CircuitDAG, partner: DAGNode, node: DAGNode, qubit: int, removed: set[int]
) -> bool:
    """Partner and node meet on ``qubit``'s wire: same commuting group,
    or adjacent once already-removed gates are skipped."""
    if partner.group_on(qubit) == node.group_on(qubit):
        return True
    wire = dag.wire(qubit)
    for position in range(node.wire_position(qubit) - 1, -1, -1):
        live = wire[position]
        if live.index in removed:
            continue
        return live is partner
    return False


def cancellation_savings(circuit: Circuit, *, commute: bool = False) -> dict[str, int]:
    """Gate/CNOT counts before and after cancellation (for reports)."""
    optimized = cancel_gates(circuit, commute=commute)
    return {
        "gates_before": circuit.num_gates(),
        "gates_after": optimized.num_gates(),
        "cnots_before": circuit.num_cnots(),
        "cnots_after": optimized.num_cnots(),
    }
