"""Peephole gate cancellation (Section VII, "deeper compiler optimization").

The paper points out that traditional passes like gate cancellation [40]
can be specialized for variational chemistry circuits: consecutive Pauli
string simulation circuits share basis gates and CNOT-ladder tails that
cancel pairwise.  This pass implements the standard peephole rules:

* adjacent self-inverse pairs annihilate (H-H, X-X, CNOT-CNOT, SWAP-SWAP
  on the same qubits);
* adjacent rotations about the same axis on the same qubit merge
  (RZ(a) RZ(b) -> RZ(a+b)), vanishing when the combined angle is ~0;
* the scan iterates to a fixed point, so cascades of enabled
  cancellations are picked up.

Commutation is handled conservatively: two gates are only considered
adjacent when no intervening gate touches any shared qubit.
"""

from __future__ import annotations

import math

from repro.circuit import Circuit
from repro.circuit.gates import Gate

_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cz", "swap"}
_ROTATIONS = {"rx", "ry", "rz"}
_ANGLE_EPSILON = 1e-12


def _symmetric_pair_equal(a: Gate, b: Gate) -> bool:
    """Same gate on the same qubits (SWAP/CZ are order-insensitive)."""
    if a.name != b.name:
        return False
    if a.name in ("swap", "cz"):
        return set(a.qubits) == set(b.qubits)
    return a.qubits == b.qubits


def cancel_gates(circuit: Circuit) -> Circuit:
    """Apply cancellation until a fixed point; returns a new circuit."""
    gates = list(circuit.gates)
    changed = True
    while changed:
        gates, changed = _one_pass(gates)
    return Circuit(circuit.num_qubits, gates)


def _one_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    result: list[Gate] = []
    changed = False
    for gate in gates:
        if gate.name == "barrier":
            result.append(gate)
            continue
        partner_index = _find_adjacent_partner(result, gate)
        if partner_index is None:
            result.append(gate)
            continue
        partner = result[partner_index]
        if gate.name in _SELF_INVERSE:
            result.pop(partner_index)
            changed = True
            continue
        # Rotation merge.
        merged_angle = partner.params[0] + gate.params[0]
        result.pop(partner_index)
        changed = True
        if abs(math.remainder(merged_angle, 4.0 * math.pi)) > _ANGLE_EPSILON:
            result.insert(partner_index, Gate(gate.name, gate.qubits, (merged_angle,)))
    return result, changed


def _find_adjacent_partner(emitted: list[Gate], gate: Gate) -> int | None:
    """Index of a cancelable partner with no blocker in between."""
    cancelable = gate.name in _SELF_INVERSE or gate.name in _ROTATIONS
    if not cancelable:
        return None
    qubits = set(gate.qubits)
    for index in range(len(emitted) - 1, -1, -1):
        previous = emitted[index]
        if previous.name == "barrier" and qubits & set(previous.qubits):
            return None
        if not qubits & set(previous.qubits):
            continue
        is_partner = (
            _symmetric_pair_equal(previous, gate)
            if gate.name in _SELF_INVERSE
            else previous.name == gate.name and previous.qubits == gate.qubits
        )
        return index if is_partner else None
    return None


def cancellation_savings(circuit: Circuit) -> dict[str, int]:
    """Gate/CNOT counts before and after cancellation (for reports)."""
    optimized = cancel_gates(circuit)
    return {
        "gates_before": circuit.num_gates(),
        "gates_after": optimized.num_gates(),
        "cnots_before": circuit.num_cnots(),
        "cnots_after": optimized.num_cnots(),
    }
