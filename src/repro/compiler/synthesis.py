"""Pauli-string simulation-circuit synthesis (Section II-A).

``exp(i phi P)`` decomposes as ``B+ . C+ . RZ(-2 phi, root) . C . B``:

* ``B``: basis changes on every X (Hadamard) and Y (RX(pi/2)) qubit;
* ``C``: a CNOT tree over the non-identity qubits, leaves toward root;
* the central Z rotation on the root.

The *chain* variant connects the support qubits in index order -- this is
the uniform plan traditional compilers use ("Qiskit synthesizes the CNOTs
in a chain structure like Figure 2(b)") and the convention under which
the paper's Table I gate counts are defined.  The tree-flexible variant
used by Merge-to-Root lives in :mod:`repro.compiler.merge_to_root`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.circuit import Circuit
from repro.circuit.gates import CNOT, Gate, H, RX, RZ, X
from repro.core.ir import PauliProgram
from repro.pauli import PauliString

_HALF_PI = math.pi / 2.0


def basis_change_gates(pauli: PauliString, *, inverse: bool = False) -> list[Gate]:
    """Single-qubit gates mapping each X/Y of the string to Z."""
    gates: list[Gate] = []
    for qubit in pauli.support():
        op = pauli.op_on(qubit)
        if op == "X":
            gates.append(H(qubit))
        elif op == "Y":
            gates.append(RX(-_HALF_PI if inverse else _HALF_PI, qubit))
    return gates


def synthesize_pauli_chain(pauli: PauliString, angle: float) -> Circuit:
    """Chain-synthesized circuit for ``exp(i angle P)``.

    The CNOT ladder runs over the support in ascending qubit order; the
    rotation lands on the highest support qubit (the chain's root).
    """
    circuit = Circuit(pauli.num_qubits)
    support = pauli.support()
    if not support:
        return circuit  # global phase only; irrelevant for expectation values
    circuit.extend(basis_change_gates(pauli))
    for lower, upper in zip(support, support[1:]):
        circuit.append(CNOT(lower, upper))
    circuit.append(RZ(-2.0 * angle, support[-1]))
    for lower, upper in reversed(list(zip(support, support[1:]))):
        circuit.append(CNOT(lower, upper))
    circuit.extend(basis_change_gates(pauli, inverse=True))
    return circuit


def hartree_fock_circuit(num_qubits: int, occupations: Sequence[int]) -> Circuit:
    """X gates preparing the Hartree-Fock initial state."""
    circuit = Circuit(num_qubits)
    for qubit in occupations:
        circuit.append(X(qubit))
    return circuit


def synthesize_program_chain(
    program: PauliProgram, parameters: Sequence[float], *, include_initial_state: bool = True
) -> Circuit:
    """Chain-synthesize a whole Pauli program into one logical circuit.

    This is the "traditional compilation flow" front half: after this, the
    high-level Pauli semantics are gone and a mapper like SABRE only sees
    gates.
    """
    circuit, _ = synthesize_program_chain_with_positions(
        program, parameters, include_initial_state=include_initial_state
    )
    return circuit


def synthesize_program_chain_with_positions(
    program: PauliProgram, parameters: Sequence[float], *, include_initial_state: bool = True
) -> tuple[Circuit, list[int | None]]:
    """Chain synthesis that also reports where each term's rotation sits.

    Returns ``(circuit, rz_positions)`` where ``rz_positions[t]`` is the
    index in ``circuit.gates`` of term ``t``'s central RZ gate (its angle
    is ``-2 *`` the bound angle), or ``None`` for identity-support terms,
    which synthesize to nothing (global phase).  The positions are what
    lets the fused sweep path rebind per-row angles into one structural
    template instead of re-synthesizing K circuits
    (:meth:`repro.compiler.fusion.FusionPlan.bind_sweep`).
    """
    circuit = Circuit(program.num_qubits)
    if include_initial_state:
        circuit = circuit.compose(
            hartree_fock_circuit(program.num_qubits, program.initial_occupations)
        )
    positions: list[int | None] = []
    for pauli, angle in program.bound_terms(parameters):
        chain = synthesize_pauli_chain(pauli, angle)
        if not chain.gates:
            positions.append(None)
            continue
        offset = len(circuit.gates)
        rz_local = next(
            index for index, gate in enumerate(chain.gates) if gate.name == "rz"
        )
        positions.append(offset + rz_local)
        circuit = circuit.compose(chain)
    return circuit, positions
