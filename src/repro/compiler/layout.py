"""Hierarchical initial layout (Algorithm 2).

The layout is computed *before* synthesis, directly from the Pauli IR:
qubits that co-occur in many Pauli strings need many CNOTs, so they are
placed on low-level (inner) physical qubits where paths are short.  Slot
choice among equal levels attaches a logical qubit below the parent it
shares the most strings with.

The same placement rule applies to arbitrary gate-level circuits
(:func:`hierarchical_circuit_layout`): the co-occurrence matrix is then
counted over two-qubit gates instead of Pauli strings, and everything
downstream of the matrix is shared.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.ir import PauliProgram
from repro.hardware.coupling import CouplingGraph


def _cooccurrence_layout(
    cooccurrence: np.ndarray, num_logical: int, graph: CouplingGraph
) -> dict[int, int]:
    """Greedy center-out placement from an interaction-count matrix."""
    if num_logical > graph.num_qubits:
        raise ValueError(
            f"program needs {num_logical} qubits, device has {graph.num_qubits}"
        )
    occurrence = cooccurrence.sum(axis=1)
    # Sort logical qubits by decreasing connectivity requirement; ties in
    # qubit order for determinism (stable sort on negated counts).
    logical_order = [int(q) for q in np.argsort(-occurrence, kind="stable")]

    levels = graph.levels()
    mapping: dict[int, int] = {}
    physical_of: dict[int, int] = {}
    available: set[int] = {graph.center}

    for logical in logical_order:
        candidates = sorted(available, key=lambda slot: levels[slot])
        lowest_level = levels[candidates[0]]
        tied = [slot for slot in candidates if levels[slot] == lowest_level]
        best = tied[0]
        if len(tied) > 1:
            def parent_affinity(slot: int) -> int:
                parent = graph.parent(slot)
                if parent is None or parent not in physical_of:
                    return 0
                return int(cooccurrence[logical, physical_of[parent]])

            best = max(tied, key=lambda slot: (parent_affinity(slot), -slot))
        mapping[logical] = best
        physical_of[best] = logical
        available.discard(best)
        for child in graph.neighbors(best):
            if child not in physical_of:
                available.add(child)
    return mapping


def hierarchical_initial_layout(
    program: PauliProgram, graph: CouplingGraph
) -> dict[int, int]:
    """Logical -> physical initial mapping per Algorithm 2."""
    return _cooccurrence_layout(
        program.qubit_cooccurrence(), program.num_qubits, graph
    )


def circuit_cooccurrence(circuit: Circuit) -> np.ndarray:
    """Pairwise two-qubit-gate counts (the circuit's interaction graph)."""
    counts = np.zeros((circuit.num_qubits, circuit.num_qubits), dtype=np.int64)
    for gate in circuit.gates:
        if gate.is_two_qubit():
            a, b = gate.qubits
            counts[a, b] += 1
            counts[b, a] += 1
    return counts


def hierarchical_circuit_layout(
    circuit: Circuit, graph: CouplingGraph
) -> dict[int, int]:
    """Algorithm 2 driven by a gate stream instead of Pauli strings."""
    return _cooccurrence_layout(
        circuit_cooccurrence(circuit), circuit.num_qubits, graph
    )


def trivial_layout(program: PauliProgram, graph: CouplingGraph) -> dict[int, int]:
    """Identity-ish layout: logical i -> physical i (ablation baseline)."""
    if program.num_qubits > graph.num_qubits:
        raise ValueError("device too small")
    return {q: q for q in range(program.num_qubits)}
