"""String-keyed compiler registry.

The two compilation flows the paper compares (Merge-to-Root and chain
synthesis + SABRE) expose very different call shapes; the registry wraps
each in a :class:`CompilerAdapter` with one uniform entry point so the
pipeline's ``Route`` stage — and any benchmark — can swap flows by name:

    get_compiler("mtr").compile(program, device)
    get_compiler("sabre").compile(program, device, seed=11)

Both adapters return an object satisfying the compiled-result protocol
(``circuit``, ``initial_layout``, ``final_layout``, ``num_swaps``,
``overhead_cnots``, ``total_cnots``, ``device``): a
:class:`~repro.compiler.merge_to_root.CompiledProgram` for MtR and a
:class:`~repro.compiler.sabre.SabreResult` for SABRE.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.circuit import Circuit
from repro.compiler.merge_to_root import CompiledProgram, MergeToRootCompiler
from repro.compiler.sabre import SabreResult, SabreRouter
from repro.compiler.synthesis import synthesize_program_chain
from repro.core.ir import PauliProgram
from repro.hardware.coupling import CouplingGraph


class CompilerAdapter:
    """Uniform interface over the compilation flows."""

    name: str = "adapter"

    #: Layout scheme the pipeline's ``InitialLayout`` stage applies when
    #: the config says "auto".  SABRE-style mappers that refine their own
    #: initial mapping should keep "none" so baseline numbers follow the
    #: paper's methodology; externally-laid-out flows override this.
    default_layout: str = "none"

    def compile(
        self,
        program: PauliProgram,
        device: CouplingGraph,
        *,
        parameters: Sequence[float] | None = None,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        raise NotImplementedError

    def compile_circuit(
        self,
        circuit: Circuit,
        device: CouplingGraph,
        *,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        """Route an arbitrary gate-level circuit (the ingested-QASM path)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class MergeToRootAdapter(CompilerAdapter):
    """The co-designed flow: adaptive synthesis-and-routing (Algorithm 3)."""

    name = "mtr"
    default_layout = "hierarchical"

    def compile(
        self,
        program: PauliProgram,
        device: CouplingGraph,
        *,
        parameters: Sequence[float] | None = None,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        # MtR synthesizes each string against the live mapping, so its
        # emission has no commutation freedom to exploit; the knob is
        # accepted for interface uniformity and ignored.
        return MergeToRootCompiler(device).compile(
            program, parameters, initial_layout=initial_layout
        )

    def compile_circuit(
        self,
        circuit: Circuit,
        device: CouplingGraph,
        *,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        # seed/commute accepted for interface uniformity: the gate-stream
        # walk is deterministic and emission order is fixed by the input.
        return MergeToRootCompiler(device).compile_circuit(
            circuit, initial_layout=initial_layout
        )


class SabreAdapter(CompilerAdapter):
    """The traditional flow: chain synthesis followed by SABRE mapping."""

    name = "sabre"

    def compile(
        self,
        program: PauliProgram,
        device: CouplingGraph,
        *,
        parameters: Sequence[float] | None = None,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        if parameters is None:
            parameters = [0.0] * program.num_parameters
        chain = synthesize_program_chain(program, parameters)
        return SabreRouter(device, seed=seed, commute=commute).run(
            chain, initial_layout=initial_layout
        )

    def compile_circuit(
        self,
        circuit: Circuit,
        device: CouplingGraph,
        *,
        initial_layout: dict[int, int] | None = None,
        seed: int = 11,
        commute: bool = False,
    ) -> "CompiledProgram | SabreResult":
        # SABRE already routes arbitrary circuits; no synthesis needed.
        return SabreRouter(device, seed=seed, commute=commute).run(
            circuit, initial_layout=initial_layout
        )


CompilerFactory = Callable[[], CompilerAdapter]

_COMPILERS: dict[str, CompilerFactory] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def register_compiler(
    name: str, factory: CompilerFactory, *, overwrite: bool = False
) -> None:
    """Register a compiler adapter factory under ``name`` (normalized)."""
    key = _normalize(name)
    if not key:
        raise ValueError("compiler name must be non-empty")
    if key in _COMPILERS and not overwrite:
        raise ValueError(f"compiler {name!r} already registered")
    _COMPILERS[key] = factory


def list_compilers() -> list[str]:
    return sorted(_COMPILERS)


def get_compiler(name: str | CompilerAdapter) -> CompilerAdapter:
    """Resolve a compiler name (``"mtr"``/``"merge_to_root"``/``"sabre"``)."""
    if isinstance(name, CompilerAdapter):
        return name
    key = _normalize(str(name))
    if key not in _COMPILERS:
        raise ValueError(
            f"unknown compiler {name!r}; registered compilers: "
            f"{', '.join(list_compilers())}"
        )
    return _COMPILERS[key]()


register_compiler("mtr", MergeToRootAdapter)
register_compiler("mergetoroot", MergeToRootAdapter)
register_compiler("sabre", SabreAdapter)
