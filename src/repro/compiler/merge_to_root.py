"""Merge-to-Root circuit synthesis and qubit routing (Algorithm 3).

For every Pauli string the compiler *adaptively* synthesizes the CNOT
tree against the current logical-to-physical mapping instead of mapping a
pre-synthesized chain:

1. **Routing.** Compute the minimal subtree of the device spanning the
   support's current positions (unique in a tree).  While that subtree
   contains "holes" (nodes not holding support logicals), take the
   deepest hole and SWAP into it the occupied child whose logical qubit
   appears most often in the upcoming Pauli strings (the paper's
   lookahead rule).  Each swap pulls a support qubit one level toward the
   root, so the loop terminates and the support ends up occupying a
   connected subtree.
2. **Synthesis.** Emit basis changes, a leaves-to-root CNOT wave over the
   subtree, the central RZ on the subtree's root, the mirrored CNOT wave
   and the inverse basis changes.  Because the mapping is static during
   the CNOT phase, the mirror is exactly valid and every CNOT lies on a
   physical connection.

The mapping mutates across strings (swaps are never undone), which is
what the importance-ordered ansatz exploits: early, important strings
drag their qubits toward the root once and later strings reuse the
arrangement.  Overhead is therefore exactly ``3 * #SWAPs`` extra CNOTs,
matching the granularity of Table II.

Usage -- compile a UCCSD program onto an X-Tree device:

>>> from repro.ansatz import build_uccsd_program
>>> from repro.chem import build_molecule_hamiltonian
>>> from repro.compiler.merge_to_root import MergeToRootCompiler
>>> from repro.hardware.xtree import xtree
>>> problem = build_molecule_hamiltonian("H2")
>>> program = build_uccsd_program(problem).program
>>> compiled = MergeToRootCompiler(xtree(5)).compile(program)
>>> compiled.overhead_cnots == 3 * compiled.num_swaps
True
>>> sorted(compiled.initial_layout) == list(range(program.num_qubits))
True

(Prefer the registry form ``get_compiler("mtr").compile(program, device)``
inside pipelines -- see :mod:`repro.compiler.registry` -- so benchmarks
can swap in SABRE by name.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit import Circuit
from repro.circuit.dag import CircuitDAG
from repro.circuit.gates import CNOT, Gate, H, RX, RZ, SWAP, X
from repro.core.ir import PauliProgram
from repro.pauli import PauliString
from repro.hardware.coupling import CouplingGraph

_HALF_PI = math.pi / 2.0


@dataclass
class CompiledProgram:
    """Result of compiling a Pauli program onto a device."""

    circuit: Circuit                  # physical circuit (SWAPs not decomposed)
    initial_layout: dict[int, int]    # logical -> physical before the circuit
    final_layout: dict[int, int]      # logical -> physical after the circuit
    num_swaps: int
    device: str
    synthesized_cnots: int = 0        # CNOTs from the Pauli trees themselves
    dag: CircuitDAG | None = field(default=None, repr=False)

    @property
    def overhead_cnots(self) -> int:
        """Extra CNOTs versus the unmapped circuit (3 per SWAP)."""
        return 3 * self.num_swaps

    @property
    def total_cnots(self) -> int:
        return self.circuit.num_cnots()


class MergeToRootCompiler:
    """Compile Pauli programs onto tree-structured devices (Algorithm 3).

    On a non-tree device (e.g. a grid) the compiler operates on the
    deterministic BFS spanning tree rooted at the graph center
    (:meth:`~repro.hardware.coupling.CouplingGraph.parent`): routing
    swaps and synthesis CNOTs are restricted to spanning-tree edges,
    which are physical edges, so every emitted gate stays legal.  The
    device merely loses its non-tree shortcuts to this flow -- the
    trade SABRE exploits and Table II quantifies.
    """

    def __init__(self, graph: CouplingGraph) -> None:
        if not graph.is_connected():
            raise ValueError(
                "Merge-to-Root needs a connected coupling graph; "
                f"{graph.name} is not connected"
            )
        self.graph = graph
        self._levels = graph.levels()
        self._parents = [graph.parent(q) for q in range(graph.num_qubits)]

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def compile(
        self,
        program: PauliProgram,
        parameters: Sequence[float] | None = None,
        *,
        initial_layout: dict[int, int] | None = None,
        include_initial_state: bool = True,
    ) -> CompiledProgram:
        """Compile the program; parameters default to all-zero angles.

        Gate counts do not depend on the parameter values, so benchmarks
        may compile with defaults while the VQE driver binds real angles.
        """
        if initial_layout is None:
            from repro.compiler.layout import hierarchical_initial_layout

            initial_layout = hierarchical_initial_layout(program, self.graph)
        if parameters is None:
            parameters = [0.0] * program.num_parameters

        position = dict(initial_layout)          # logical -> physical
        occupant = {p: l for l, p in position.items()}
        if len(occupant) != len(position):
            raise ValueError("initial layout maps two logical qubits together")

        # Emit through the shared DAG builder: the compiled artifact then
        # carries its wire-dependency structure for scheduling metrics,
        # and the emission order is preserved by ``to_circuit``.
        builder = CircuitDAG(self.graph.num_qubits)
        if include_initial_state:
            for logical in program.initial_occupations:
                builder.append(X(position[logical]))

        # Suffix occurrence counts for the lookahead swap rule.
        future = self._future_counts(program)

        bound = program.bound_terms(parameters)
        num_swaps = 0
        synthesized = 0
        for index, (pauli, angle) in enumerate(bound):
            support = pauli.support()
            if not support:
                continue
            swaps = self._route(support, position, occupant, future, index)
            for a, b in swaps:
                builder.append(SWAP(a, b))
            num_swaps += len(swaps)
            synthesized += self._synthesize_string(
                builder, pauli, angle, position
            )

        final_layout = dict(position)
        return CompiledProgram(
            circuit=builder.to_circuit(),
            initial_layout=initial_layout,
            final_layout=final_layout,
            num_swaps=num_swaps,
            device=self.graph.name,
            synthesized_cnots=synthesized,
            dag=builder,
        )

    def compile_circuit(
        self,
        circuit: Circuit,
        *,
        initial_layout: dict[int, int] | None = None,
    ) -> CompiledProgram:
        """Route an arbitrary gate-level circuit over the coupling graph.

        The gate-stream analogue of :meth:`compile` for ingested QASM
        workloads: single-qubit gates are re-addressed through the live
        mapping; for each two-qubit gate the first operand walks a
        shortest path toward the second (deterministic min-index step)
        until they are adjacent.  As in the Pauli flow, swaps are never
        undone -- later gates reuse the migrated arrangement -- and the
        mapping's drift is reported in ``final_layout``.
        """
        if circuit.num_qubits > self.graph.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, "
                f"device has {self.graph.num_qubits}"
            )
        if initial_layout is None:
            from repro.compiler.layout import hierarchical_circuit_layout

            initial_layout = hierarchical_circuit_layout(circuit, self.graph)
        position = dict(initial_layout)
        occupant = {p: l for l, p in position.items()}
        if len(occupant) != len(position):
            raise ValueError("initial layout maps two logical qubits together")

        distances = self.graph.distance_matrix()
        builder = CircuitDAG(self.graph.num_qubits)
        num_swaps = 0
        synthesized = 0
        for gate in circuit.gates:
            if len(gate.qubits) != 2 or gate.name == "barrier":
                builder.append(
                    Gate(
                        gate.name,
                        tuple(position[q] for q in gate.qubits),
                        gate.params,
                    )
                )
                continue
            a, b = gate.qubits
            while distances[position[a], position[b]] > 1:
                here, there = position[a], position[b]
                step = min(
                    node
                    for node in self.graph.neighbors(here)
                    if distances[node, there] == distances[here, there] - 1
                )
                builder.append(SWAP(here, step))
                self._apply_swap(here, step, position, occupant)
                num_swaps += 1
            builder.append(
                Gate(gate.name, (position[a], position[b]), gate.params)
            )
            if gate.name == "cx":
                synthesized += 1
            elif gate.name == "swap":
                synthesized += 3
        return CompiledProgram(
            circuit=builder.to_circuit(),
            initial_layout=initial_layout,
            final_layout=dict(position),
            num_swaps=num_swaps,
            device=self.graph.name,
            synthesized_cnots=synthesized,
            dag=builder,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _future_counts(self, program: PauliProgram) -> list[dict[int, int]]:
        """future[i][q] = occurrences of logical q in strings i+1, i+2, ..."""
        terms = program.terms
        suffix: list[dict[int, int]] = [dict() for _ in range(len(terms) + 1)]
        for i in range(len(terms) - 1, -1, -1):
            counts = dict(suffix[i + 1])
            for qubit in terms[i].pauli.support():
                counts[qubit] = counts.get(qubit, 0) + 1
            suffix[i] = counts
        return suffix

    def _steiner_nodes(self, positions: list[int]) -> set[int]:
        """Nodes of the minimal subtree spanning ``positions``.

        In a tree this is the union of root-ward paths up to the deepest
        common ancestor: climb every position to the root, keep the nodes
        that lie below (or at) the shallowest meeting point.
        """
        if len(positions) == 1:
            return set(positions)
        paths: list[list[int]] = []
        for node in positions:
            path = [node]
            while self._parents[path[-1]] is not None:
                path.append(self._parents[path[-1]])
            paths.append(path[::-1])  # root first
        # Longest common prefix of all root-paths = path to the LCA.
        lca_depth = 0
        while all(len(p) > lca_depth for p in paths) and len(
            {p[lca_depth] for p in paths}
        ) == 1:
            lca_depth += 1
        lca_depth -= 1  # index of the last common node
        nodes: set[int] = set()
        for path in paths:
            nodes.update(path[lca_depth:])
        return nodes

    def _route(
        self,
        support: list[int],
        position: dict[int, int],
        occupant: dict[int, int],
        future: list[dict[int, int]],
        term_index: int,
    ) -> list[tuple[int, int]]:
        """Make the support occupy a connected subtree; returns the SWAPs."""
        swaps: list[tuple[int, int]] = []
        lookahead = future[term_index + 1] if term_index + 1 < len(future) else {}
        support_set = set(support)
        while True:
            positions = [position[q] for q in support]
            steiner = self._steiner_nodes(positions)
            holes = [
                node
                for node in steiner
                if occupant.get(node) not in support_set
            ]
            if not holes:
                return swaps
            hole = max(holes, key=lambda node: (self._levels[node], node))
            children = [
                node
                for node in self.graph.neighbors(hole)
                if node in steiner
                and self._parents[node] == hole
                and occupant.get(node) in support_set
            ]
            if not children:
                raise RuntimeError(
                    "deepest Steiner hole without occupied child; "
                    "routing invariant violated"
                )
            # Paper's rule: move the qubit that appears most in follow-up
            # strings (it will likely be needed near the root again).
            chosen = max(
                children,
                key=lambda node: (lookahead.get(occupant[node], 0), -node),
            )
            swaps.append((chosen, hole))
            self._apply_swap(chosen, hole, position, occupant)

    def _apply_swap(
        self,
        a: int,
        b: int,
        position: dict[int, int],
        occupant: dict[int, int],
    ) -> None:
        logical_a = occupant.get(a)
        logical_b = occupant.get(b)
        if logical_a is not None:
            position[logical_a] = b
        if logical_b is not None:
            position[logical_b] = a
        if logical_a is not None:
            occupant[b] = logical_a
        else:
            occupant.pop(b, None)
        if logical_b is not None:
            occupant[a] = logical_b
        else:
            occupant.pop(a, None)

    # ------------------------------------------------------------------
    # Per-string synthesis on a static mapping
    # ------------------------------------------------------------------
    def _synthesize_string(
        self,
        builder: CircuitDAG,
        pauli: PauliString,
        angle: float,
        position: dict[int, int],
    ) -> int:
        """Emit the string's circuit; returns the number of CNOTs used."""
        support = pauli.support()
        basis_pre: list[Gate] = []
        basis_post: list[Gate] = []
        for logical in support:
            physical = position[logical]
            op = pauli.op_on(logical)
            if op == "X":
                basis_pre.append(H(physical))
                basis_post.append(H(physical))
            elif op == "Y":
                basis_pre.append(RX(_HALF_PI, physical))
                basis_post.append(RX(-_HALF_PI, physical))
        builder.extend(basis_pre)

        nodes = sorted(
            (position[logical] for logical in support),
            key=lambda node: -self._levels[node],
        )
        root = nodes[-1]
        cnots: list[Gate] = []
        for node in nodes[:-1]:
            parent = self._parents[node]
            if parent is None or not self._in_nodes(parent, nodes):
                raise RuntimeError("support subtree not connected after routing")
            cnots.append(CNOT(node, parent))
        builder.extend(cnots)
        builder.append(RZ(-2.0 * angle, root))
        builder.extend(reversed(cnots))
        builder.extend(basis_post)
        return 2 * len(cnots)

    @staticmethod
    def _in_nodes(node: int, nodes: list[int]) -> bool:
        return node in nodes
