"""Compiler evaluation metrics (Table II conventions).

"Mapping overhead" = CNOTs added on top of the unmapped chain-synthesized
circuit.  Every SWAP contributes three CNOTs.  The module also provides a
one-call comparison of the three flows the paper tabulates, plus the
scheduling dimension the shared DAG IR opens up: ASAP-scheduled depth and
latency-weighted critical-path duration
(:func:`schedule_report`, per-gate latencies from
:mod:`repro.hardware.latency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.circuit import Circuit
from repro.circuit.dag import CircuitDAG
from repro.compiler.merge_to_root import MergeToRootCompiler
from repro.compiler.sabre import SabreRouter
from repro.compiler.synthesis import synthesize_program_chain
from repro.core.ir import PauliProgram
from repro.hardware.coupling import CouplingGraph
from repro.hardware.latency import DEFAULT_LATENCY, GateLatencyModel


@dataclass
class ScheduleReport:
    """ASAP-schedule metrics of one physical circuit.

    ``depth`` counts the listed circuit as-is (SWAPs one level each);
    ``scheduled_depth`` and ``duration_ns`` are computed on the
    SWAP-decomposed circuit's wire-dependency DAG, so a routing SWAP
    costs three CNOT levels / latencies, matching the paper's CNOT
    accounting.
    """

    depth: int
    scheduled_depth: int
    duration_ns: float


def schedule_report(
    circuit: Circuit, latency: GateLatencyModel = DEFAULT_LATENCY
) -> ScheduleReport:
    """Depth / critical-path metrics of a compiled circuit."""
    decomposed = circuit.decompose_swaps()
    dag = CircuitDAG.from_circuit(decomposed)
    return ScheduleReport(
        depth=circuit.depth(),
        scheduled_depth=dag.depth(),
        duration_ns=dag.duration(latency),
    )


@dataclass
class OverheadReport:
    """Mapping overhead of one flow on one program/device pair."""

    flow: str
    device: str
    original_cnots: int
    overhead_cnots: int
    num_swaps: int
    schedule: ScheduleReport | None = None
    circuit: Circuit | None = None

    @property
    def total_cnots(self) -> int:
        return self.original_cnots + self.overhead_cnots

    @property
    def overhead_ratio(self) -> float:
        if self.original_cnots == 0:
            return 0.0
        return self.overhead_cnots / self.original_cnots


def mapping_overhead(
    program: PauliProgram,
    xtree_graph: CouplingGraph,
    grid_graph: CouplingGraph | None = None,
    *,
    parameters: Sequence[float] | None = None,
    sabre_seed: int = 11,
    schedule: bool = False,
    commute: bool = False,
    keep_circuits: bool = False,
) -> dict[str, OverheadReport]:
    """Compare MtR-on-XTree, SABRE-on-XTree and SABRE-on-Grid.

    Returns a dict keyed "mtr_xtree", "sabre_xtree" and (when a grid is
    given) "sabre_grid" -- the three columns of Table II.  With
    ``schedule=True`` each report also carries the ASAP schedule metrics
    of its physical circuit; ``commute=True`` lets SABRE route over the
    commutation-aware DAG frontier; ``keep_circuits=True`` attaches each
    flow's physical circuit (for downstream peephole studies).
    """
    if parameters is None:
        parameters = [0.0] * program.num_parameters
    original = program.cnot_count()
    reports: dict[str, OverheadReport] = {}

    compiled = MergeToRootCompiler(xtree_graph).compile(program, parameters)
    reports["mtr_xtree"] = OverheadReport(
        flow="MtR",
        device=xtree_graph.name,
        original_cnots=original,
        overhead_cnots=compiled.overhead_cnots,
        num_swaps=compiled.num_swaps,
        schedule=schedule_report(compiled.circuit) if schedule else None,
        circuit=compiled.circuit if keep_circuits else None,
    )

    chain = synthesize_program_chain(program, parameters)
    for key, graph in [("sabre_xtree", xtree_graph), ("sabre_grid", grid_graph)]:
        if graph is None:
            continue
        routed = SabreRouter(graph, seed=sabre_seed, commute=commute).run(chain)
        reports[key] = OverheadReport(
            flow="SABRE",
            device=graph.name,
            original_cnots=original,
            overhead_cnots=routed.overhead_cnots,
            num_swaps=routed.num_swaps,
            schedule=schedule_report(routed.circuit) if schedule else None,
            circuit=routed.circuit if keep_circuits else None,
        )
    return reports
