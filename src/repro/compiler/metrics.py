"""Compiler evaluation metrics (Table II conventions).

"Mapping overhead" = CNOTs added on top of the unmapped chain-synthesized
circuit.  Every SWAP contributes three CNOTs.  The module also provides a
one-call comparison of the three flows the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.compiler.merge_to_root import MergeToRootCompiler
from repro.compiler.sabre import SabreRouter
from repro.compiler.synthesis import synthesize_program_chain
from repro.core.ir import PauliProgram
from repro.hardware.coupling import CouplingGraph


@dataclass
class OverheadReport:
    """Mapping overhead of one flow on one program/device pair."""

    flow: str
    device: str
    original_cnots: int
    overhead_cnots: int
    num_swaps: int

    @property
    def total_cnots(self) -> int:
        return self.original_cnots + self.overhead_cnots

    @property
    def overhead_ratio(self) -> float:
        if self.original_cnots == 0:
            return 0.0
        return self.overhead_cnots / self.original_cnots


def mapping_overhead(
    program: PauliProgram,
    xtree_graph: CouplingGraph,
    grid_graph: CouplingGraph | None = None,
    *,
    parameters: Sequence[float] | None = None,
    sabre_seed: int = 11,
) -> dict[str, OverheadReport]:
    """Compare MtR-on-XTree, SABRE-on-XTree and SABRE-on-Grid.

    Returns a dict keyed "mtr_xtree", "sabre_xtree" and (when a grid is
    given) "sabre_grid" -- the three columns of Table II.
    """
    if parameters is None:
        parameters = [0.0] * program.num_parameters
    original = program.cnot_count()
    reports: dict[str, OverheadReport] = {}

    compiled = MergeToRootCompiler(xtree_graph).compile(program, parameters)
    reports["mtr_xtree"] = OverheadReport(
        flow="MtR",
        device=xtree_graph.name,
        original_cnots=original,
        overhead_cnots=compiled.overhead_cnots,
        num_swaps=compiled.num_swaps,
    )

    chain = synthesize_program_chain(program, parameters)
    for key, graph in [("sabre_xtree", xtree_graph), ("sabre_grid", grid_graph)]:
        if graph is None:
            continue
        routed = SabreRouter(graph, seed=sabre_seed).run(chain)
        reports[key] = OverheadReport(
            flow="SABRE",
            device=graph.name,
            original_cnots=original,
            overhead_cnots=routed.overhead_cnots,
            num_swaps=routed.num_swaps,
        )
    return reports
