"""Ordered-gate-list circuit container with counting and transforms."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.circuit.gates import Gate


class Circuit:
    """A quantum circuit over ``num_qubits`` qubits.

    The container is intentionally simple: an ordered list of
    :class:`~repro.circuit.gates.Gate` records plus the metrics the paper
    evaluates compilers by (total gate count and CNOT count, where every
    SWAP decomposes into three CNOTs).
    """

    __slots__ = ("num_qubits", "gates")

    def __init__(self, num_qubits: int, gates: Iterable[Gate] | None = None) -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        self.gates: list[Gate] = []
        if gates:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate!r} touches qubit {qubit}, circuit has {self.num_qubits}"
                )
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """Concatenation ``self; other`` as a new circuit."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        return Circuit(self.num_qubits, list(self.gates) + list(other.gates))

    def inverse(self) -> "Circuit":
        """The adjoint circuit (reversed order, inverted gates)."""
        return Circuit(self.num_qubits, [g.inverse() for g in reversed(self.gates)])

    def remap(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Relabel qubits through ``mapping`` (e.g. logical -> physical)."""
        target = num_qubits if num_qubits is not None else self.num_qubits
        return Circuit(target, [g.remap(mapping) for g in self.gates])

    # ------------------------------------------------------------------
    # Metrics (the evaluation criteria of the paper)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def counts(self) -> Counter:
        """Histogram of gate names."""
        return Counter(gate.name for gate in self.gates)

    def num_gates(self) -> int:
        """Total gate count, excluding barriers and measurements."""
        return sum(1 for g in self.gates if g.name not in ("barrier", "measure"))

    def num_cnots(self) -> int:
        """CNOT count with each SWAP counted as three CNOTs.

        This is the paper's primary compiler metric: CNOTs have an order of
        magnitude larger latency/error than single-qubit gates, and routing
        SWAPs are realized as three CNOTs on cross-resonance hardware.
        """
        counts = self.counts()
        return counts.get("cx", 0) + 3 * counts.get("swap", 0)

    def num_swaps(self) -> int:
        return self.counts().get("swap", 0)

    def depth(self) -> int:
        """Circuit depth: the DAG critical path in gate counts.

        Thin wrapper over :meth:`repro.circuit.dag.CircuitDAG.depth`;
        barriers and measurements take no levels (but do synchronize
        their wires).
        """
        from repro.circuit.dag import CircuitDAG

        return CircuitDAG.from_circuit(self).depth()

    def two_qubit_pairs(self) -> list[tuple[int, int]]:
        """Ordered list of interacting qubit pairs (for mapping analysis)."""
        return [
            (gate.qubits[0], gate.qubits[1])
            for gate in self.gates
            if gate.is_two_qubit() and gate.name != "barrier"
        ]

    def decompose_swaps(self) -> "Circuit":
        """Rewrite each SWAP as three CNOTs (hardware-level view)."""
        from repro.circuit.gates import CNOT

        result = Circuit(self.num_qubits)
        for gate in self.gates:
            if gate.name == "swap":
                a, b = gate.qubits
                result.extend([CNOT(a, b), CNOT(b, a), CNOT(a, b)])
            else:
                result.append(gate)
        return result

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        summary = ", ".join(f"{name}:{count}" for name, count in sorted(self.counts().items()))
        return f"Circuit({self.num_qubits} qubits, {len(self.gates)} gates [{summary}])"

    def to_text(self, max_gates: int = 80) -> str:
        """Human-readable gate listing (for examples and debugging)."""
        lines = [repr(self)]
        lines += [f"  {gate!r}" for gate in self.gates[:max_gates]]
        if len(self.gates) > max_gates:
            lines.append(f"  ... ({len(self.gates) - max_gates} more)")
        return "\n".join(lines)
