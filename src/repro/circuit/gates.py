"""Gate records for the circuit IR.

Each gate is an immutable dataclass carrying its qubits and (for rotations)
its angle.  Matrices are produced on demand for the simulators.  The gate
set covers everything the paper's synthesis needs: the Clifford basis
changes around Pauli-string evolution (H, RX(+-pi/2)), the central RZ
rotation, CNOT ladders, SWAPs inserted by routing, and state-preparation
X gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

_SQRT1_2 = 1.0 / math.sqrt(2.0)


@dataclass(frozen=True)
class Gate:
    """Base gate record.

    Attributes:
        name: lowercase mnemonic ("h", "cx", ...).
        qubits: the qubits the gate acts on, control first for cx.
        params: rotation angles (empty for non-parameterized gates).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2 and self.name not in ("barrier",)

    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (little-endian within its qubits)."""
        return _MATRIX_BUILDERS[self.name](self.params)

    def inverse(self) -> "Gate":
        """The inverse gate (self-inverse gates return themselves)."""
        if self.name in _SELF_INVERSE:
            return self
        if self.name in ("rx", "ry", "rz"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        if self.name == "s":
            return Gate("sdg", self.qubits)
        if self.name == "sdg":
            return Gate("s", self.qubits)
        raise ValueError(f"no inverse defined for gate {self.name!r}")

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """The same gate acting on relabeled qubits."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __repr__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            angles = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({angles}) {args}"
        return f"{self.name} {args}"


_SELF_INVERSE = {"h", "x", "y", "z", "cx", "swap", "cz", "barrier", "measure"}


def _check_one_param(params: tuple[float, ...]) -> float:
    if len(params) != 1:
        raise ValueError("rotation gates take exactly one angle")
    return params[0]


def _h_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]], dtype=complex)


def _x_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _y_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _z_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _s_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _sdg_matrix(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _rx_matrix(params: Sequence[float]) -> np.ndarray:
    theta = _check_one_param(params)
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry_matrix(params: Sequence[float]) -> np.ndarray:
    theta = _check_one_param(params)
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz_matrix(params: Sequence[float]) -> np.ndarray:
    theta = _check_one_param(params)
    return np.array(
        [[np.exp(-0.5j * theta), 0], [0, np.exp(0.5j * theta)]], dtype=complex
    )


def _cx_matrix(_params: Sequence[float]) -> np.ndarray:
    # Qubit order (control, target); basis index = target*2 + control
    # (little-endian: first listed qubit is the least significant).
    matrix = np.eye(4, dtype=complex)
    # control = bit 0, target = bit 1: states |c=1,t> swap target.
    matrix[[1, 3], :] = 0
    matrix[1, 3] = 1
    matrix[3, 1] = 1
    return matrix


def _cz_matrix(_params: Sequence[float]) -> np.ndarray:
    matrix = np.eye(4, dtype=complex)
    matrix[3, 3] = -1
    return matrix


def _swap_matrix(_params: Sequence[float]) -> np.ndarray:
    matrix = np.eye(4, dtype=complex)
    matrix[[1, 2], :] = 0
    matrix[1, 2] = 1
    matrix[2, 1] = 1
    return matrix


_MATRIX_BUILDERS = {
    "h": _h_matrix,
    "x": _x_matrix,
    "y": _y_matrix,
    "z": _z_matrix,
    "s": _s_matrix,
    "sdg": _sdg_matrix,
    "rx": _rx_matrix,
    "ry": _ry_matrix,
    "rz": _rz_matrix,
    "cx": _cx_matrix,
    "cz": _cz_matrix,
    "swap": _swap_matrix,
}


# ----------------------------------------------------------------------
# Constructors (the public gate vocabulary)
# ----------------------------------------------------------------------
def H(qubit: int) -> Gate:
    return Gate("h", (qubit,))


def X(qubit: int) -> Gate:
    return Gate("x", (qubit,))


def Y(qubit: int) -> Gate:
    return Gate("y", (qubit,))


def Z(qubit: int) -> Gate:
    return Gate("z", (qubit,))


def S(qubit: int) -> Gate:
    return Gate("s", (qubit,))


def SDG(qubit: int) -> Gate:
    return Gate("sdg", (qubit,))


def RX(theta: float, qubit: int) -> Gate:
    return Gate("rx", (qubit,), (theta,))


def RY(theta: float, qubit: int) -> Gate:
    return Gate("ry", (qubit,), (theta,))


def RZ(theta: float, qubit: int) -> Gate:
    return Gate("rz", (qubit,), (theta,))


def CNOT(control: int, target: int) -> Gate:
    if control == target:
        raise ValueError("control and target must differ")
    return Gate("cx", (control, target))


def CZ(a: int, b: int) -> Gate:
    if a == b:
        raise ValueError("qubits must differ")
    return Gate("cz", (a, b))


def SWAP(a: int, b: int) -> Gate:
    if a == b:
        raise ValueError("qubits must differ")
    return Gate("swap", (a, b))


def Barrier(*qubits: int) -> Gate:
    return Gate("barrier", tuple(qubits))


def Measure(qubit: int) -> Gate:
    return Gate("measure", (qubit,))
