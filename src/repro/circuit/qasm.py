"""OpenQASM 2.0 export / import for the circuit IR.

Lets compiled circuits leave the library (e.g. toward a hardware provider
or Qiskit for cross-checking) and supports a round-trip subset: the gate
vocabulary the compilers emit (x, y, z, h, s, sdg, rx, ry, rz, cx, cz,
swap, barrier, measure).

Parse failures raise :class:`QasmError`, a diagnostic-style error that
carries the 1-based line number and the offending source line, so a bad
corpus file points at its own defect instead of at the parser.
"""

from __future__ import annotations

import math
import re
from typing import Callable

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_ONE_QUBIT = {"x", "y", "z", "h", "s", "sdg"}
_ROTATION = {"rx", "ry", "rz"}
_TWO_QUBIT = {"cx", "cz", "swap"}

#: Operand arity of every parseable gate mnemonic.
_ARITY = {name: 1 for name in _ONE_QUBIT | _ROTATION}
_ARITY.update({name: 2 for name in _TWO_QUBIT})


class QasmError(ValueError):
    """A malformed OpenQASM input, located at its source line."""

    def __init__(
        self,
        message: str,
        *,
        line_number: int | None = None,
        line: str | None = None,
    ) -> None:
        self.line_number = line_number
        self.line = line
        located = message
        if line_number is not None:
            located = f"line {line_number}: {message}"
        if line is not None:
            located = f"{located}\n    {line.strip()}"
        super().__init__(located)


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [_HEADER + f"qreg q[{circuit.num_qubits}];"]
    has_measure = any(g.name == "measure" for g in circuit.gates)
    if has_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    if gate.name in _ONE_QUBIT or gate.name in _TWO_QUBIT:
        return f"{gate.name} {operands};"
    if gate.name in _ROTATION:
        return f"{gate.name}({gate.params[0]:.17g}) {operands};"
    if gate.name == "barrier":
        # An operand-free barrier is QASM's whole-register form.
        return f"barrier {operands};" if operands else "barrier q;"
    if gate.name == "measure":
        qubit = gate.qubits[0]
        return f"measure q[{qubit}] -> c[{qubit}];"
    raise ValueError(f"gate {gate.name!r} has no QASM form")


_QREG_RE = re.compile(r"^qreg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;$")
_GATE_RE = re.compile(
    r"^(?P<name>[a-z]+)\s*(?:\((?P<angle>[^)]*)\))?\s+(?P<operands>[^;]+);$"
)
_OPERAND_RE = re.compile(r"^\w+\s*\[\s*(\d+)\s*\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+(\w+\s*\[\s*\d+\s*\])\s*->\s*\w+\s*\[\s*\d+\s*\]\s*;$"
)


def from_qasm(text: str) -> Circuit:
    """Parse the supported OpenQASM 2.0 subset back into a circuit.

    Raises :class:`QasmError` (with the 1-based line number and source
    line) on malformed input: missing/duplicate ``qreg``, unknown gate
    mnemonics, wrong operand counts, repeated operands on two-qubit
    gates, out-of-range qubit indices, and missing/unparseable rotation
    angles.
    """
    num_qubits: int | None = None
    gates: list[Gate] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg")):
            continue

        def fail(message: str) -> QasmError:
            return QasmError(message, line_number=line_number, line=raw_line)

        if line.startswith("qreg"):
            qreg = _QREG_RE.match(line)
            if not qreg:
                raise fail("malformed qreg declaration")
            if num_qubits is not None:
                raise fail("duplicate qreg declaration (one register supported)")
            num_qubits = int(qreg.group(2))
            continue
        if num_qubits is None:
            raise fail("statement before the qreg declaration")
        if line.startswith("measure"):
            measure = _MEASURE_RE.match(line)
            if not measure:
                raise fail("malformed measure (expected 'measure q[i] -> c[j];')")
            qubit = _parse_operand(measure.group(1), num_qubits, fail)
            gates.append(Gate("measure", (qubit,)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise fail("unparseable statement (expected '<gate> <operands>;')")
        name = match.group("name")
        operand_text = [
            part.strip() for part in match.group("operands").split(",")
        ]
        if name == "barrier":
            if operand_text == ["q"]:
                gates.append(Gate("barrier", ()))
            else:
                qubits = tuple(
                    _parse_operand(part, num_qubits, fail) for part in operand_text
                )
                gates.append(Gate("barrier", qubits))
            continue
        if name not in _ARITY:
            raise fail(f"unsupported QASM gate {name!r}")
        operands = tuple(
            _parse_operand(part, num_qubits, fail) for part in operand_text
        )
        if len(operands) != _ARITY[name]:
            raise fail(
                f"gate {name!r} takes {_ARITY[name]} operand(s), "
                f"got {len(operands)}"
            )
        if len(operands) == 2 and operands[0] == operands[1]:
            raise fail(f"gate {name!r} repeats operand q[{operands[0]}]")
        if name in _ROTATION:
            angle = _parse_angle(match.group("angle"), fail)
            gates.append(Gate(name, operands, (angle,)))
        else:
            if match.group("angle") is not None:
                raise fail(f"gate {name!r} takes no parameter")
            gates.append(Gate(name, operands))
    if num_qubits is None:
        raise QasmError("missing qreg declaration")
    return Circuit(num_qubits, gates)


_Fail = Callable[[str], QasmError]


def _parse_operand(text: str, num_qubits: int, fail: _Fail) -> int:
    match = _OPERAND_RE.match(text.strip())
    if not match:
        raise fail(f"malformed operand {text.strip()!r} (expected 'q[<index>]')")
    index = int(match.group(1))
    if index >= num_qubits:
        raise fail(
            f"qubit index {index} out of range for qreg of size {num_qubits}"
        )
    return index


def _parse_angle(text: str | None, fail: _Fail) -> float:
    if text is None:
        raise fail("rotation gate missing its angle")
    value = text.strip().replace("pi", repr(math.pi))
    # Allow simple arithmetic like "pi/2" or "-3*pi/4".
    if not value or not re.fullmatch(r"[-+*/(). 0-9e]+", value):
        raise fail(f"cannot parse angle {text.strip()!r}")
    try:
        return float(eval(value, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized
    except (SyntaxError, ZeroDivisionError, TypeError, NameError) as error:
        raise fail(f"cannot evaluate angle {text.strip()!r}: {error}") from error
