"""OpenQASM 2.0 export / import for the circuit IR.

Lets compiled circuits leave the library (e.g. toward a hardware provider
or Qiskit for cross-checking) and supports a round-trip subset: the gate
vocabulary the compilers emit (x, h, s, sdg, rx, ry, rz, cx, cz, swap,
barrier, measure).
"""

from __future__ import annotations

import math
import re

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_ONE_QUBIT = {"x", "y", "z", "h", "s", "sdg"}
_ROTATION = {"rx", "ry", "rz"}
_TWO_QUBIT = {"cx", "cz", "swap"}


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [_HEADER + f"qreg q[{circuit.num_qubits}];"]
    has_measure = any(g.name == "measure" for g in circuit.gates)
    if has_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    if gate.name in _ONE_QUBIT or gate.name in _TWO_QUBIT:
        return f"{gate.name} {operands};"
    if gate.name in _ROTATION:
        return f"{gate.name}({gate.params[0]:.17g}) {operands};"
    if gate.name == "barrier":
        return f"barrier {operands};"
    if gate.name == "measure":
        qubit = gate.qubits[0]
        return f"measure q[{qubit}] -> c[{qubit}];"
    raise ValueError(f"gate {gate.name!r} has no QASM form")


_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(
    r"^(?P<name>[a-z]+)\s*(?:\((?P<angle>[^)]*)\))?\s+(?P<operands>[^;]+);$"
)
_OPERAND_RE = re.compile(r"\w+\s*\[\s*(\d+)\s*\]")


def from_qasm(text: str) -> Circuit:
    """Parse the supported OpenQASM 2.0 subset back into a circuit."""
    num_qubits = None
    gates: list[Gate] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg")):
            continue
        qreg = _QREG_RE.match(line)
        if qreg:
            num_qubits = int(qreg.group(2))
            continue
        if line.startswith("measure"):
            indices = _OPERAND_RE.findall(line)
            gates.append(Gate("measure", (int(indices[0]),)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise ValueError(f"unsupported QASM line: {raw_line!r}")
        name = match.group("name")
        operands = tuple(int(i) for i in _OPERAND_RE.findall(match.group("operands")))
        if name == "barrier":
            gates.append(Gate("barrier", operands))
            continue
        if name in _ROTATION:
            angle = _parse_angle(match.group("angle"))
            gates.append(Gate(name, operands, (angle,)))
            continue
        if name in _ONE_QUBIT or name in _TWO_QUBIT:
            gates.append(Gate(name, operands))
            continue
        raise ValueError(f"unsupported QASM gate {name!r}")
    if num_qubits is None:
        raise ValueError("missing qreg declaration")
    return Circuit(num_qubits, gates)


def _parse_angle(text: str | None) -> float:
    if text is None:
        raise ValueError("rotation gate missing its angle")
    value = text.strip().replace("pi", repr(math.pi))
    # Allow simple arithmetic like "pi/2" or "-3*pi/4".
    if not re.fullmatch(r"[-+*/(). 0-9e]+", value):
        raise ValueError(f"cannot parse angle {text!r}")
    return float(eval(value, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized
