"""Shared circuit DAG IR: per-qubit wires with commutation-aware edges.

Every compiler stage operates on the same dependency structure instead of
re-deriving private ones: SABRE's front layer and lookahead window, the
peephole cancellation pass, Merge-to-Root's emission, and the scheduling
metrics (ASAP depth, critical-path duration) all consume a
:class:`CircuitDAG`.

The DAG is built by O(1) appends.  Each gate node records, per qubit it
touches, how it acts on that wire:

* **Z-like** (``z``, ``s``, ``sdg``, ``rz``, ``cz``, and the *control*
  of ``cx``): diagonal in the computational basis on that qubit;
* **X-like** (``x``, ``rx``, and the *target* of ``cx``): diagonal in
  the X basis on that qubit;
* **blocking** (``h``, ``y``, ``ry``, ``swap``, ``barrier``,
  ``measure``): commutes with nothing on that wire.

Two gates commute whenever their wire-actions agree on every shared
qubit: each can then be written as a projector sum over the shared wires
(``P0 (x) A0 + P1 (x) A1`` in the matching basis) with remainders on
disjoint qubits, so the cross terms commute.  With ``commute=True`` the
builder therefore keeps a *commuting group* per wire -- a maximal run of
gates with the same wire-action -- and a new gate only depends on the
previous group, not on every touching gate.  With ``commute=False``
every gate conflicts on its wires and the DAG reduces to the plain
wire-dependency graph (exactly the structure SABRE's old private
``_build_dag`` computed).

The append order is itself a topological order (every edge points from a
lower to a higher node index), which keeps iteration deterministic and
lets :meth:`CircuitDAG.to_circuit` reproduce the emission order exactly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate

#: Gates acting Z-like (computational-basis diagonal) on all their qubits.
_Z_LIKE = {"z", "s", "sdg", "rz", "cz"}
#: Gates acting X-like (X-basis diagonal) on all their qubits.
_X_LIKE = {"x", "rx"}


def gate_axes(gate: Gate) -> tuple[str | None, ...]:
    """Per-qubit wire-action of ``gate``: ``"Z"``, ``"X"`` or ``None``.

    ``None`` means the gate blocks its wire (commutes with nothing
    there).  Unknown gate names are conservatively blocking.
    """
    if gate.name in _Z_LIKE:
        return ("Z",) * len(gate.qubits)
    if gate.name in _X_LIKE:
        return ("X",) * len(gate.qubits)
    if gate.name == "cx":
        return ("Z", "X")
    return (None,) * len(gate.qubits)


class DAGNode:
    """One gate occurrence in the DAG."""

    __slots__ = ("index", "gate", "predecessors", "successors", "_axes", "_groups", "_wire_pos")

    def __init__(self, index: int, gate: Gate) -> None:
        self.index = index
        self.gate = gate
        self.predecessors: list[DAGNode] = []
        self.successors: list[DAGNode] = []
        self._axes: dict[int, str | None] = {}
        self._groups: dict[int, int] = {}
        self._wire_pos: dict[int, int] = {}

    @property
    def num_predecessors(self) -> int:
        return len(self.predecessors)

    def axis_on(self, qubit: int) -> str | None:
        """Wire-action of this gate on ``qubit`` (under the DAG's mode)."""
        return self._axes[qubit]

    def group_on(self, qubit: int) -> int:
        """Commuting-group id of this gate on ``qubit``'s wire."""
        return self._groups[qubit]

    def wire_position(self, qubit: int) -> int:
        """Index of this node within ``qubit``'s wire sequence."""
        return self._wire_pos[qubit]

    def __repr__(self) -> str:
        return f"DAGNode({self.index}: {self.gate!r})"


class CircuitDAG:
    """Gate dependency DAG over per-qubit wires (the shared compiler IR)."""

    def __init__(self, num_qubits: int, *, commute: bool = False) -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        self.commute = commute
        self.nodes: list[DAGNode] = []
        self._wires: list[list[DAGNode]] = [[] for _ in range(num_qubits)]
        # Trailing commuting group per wire: members, the group before it,
        # the wire-action shared by the members, and the group's id.
        self._last_members: list[list[DAGNode]] = [[] for _ in range(num_qubits)]
        self._prev_members: list[list[DAGNode]] = [[] for _ in range(num_qubits)]
        self._last_axis: list[str | None] = [None] * num_qubits
        self._last_group: list[int] = [-1] * num_qubits
        self._group_counter = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: Circuit, *, commute: bool = False) -> "CircuitDAG":
        dag = cls(circuit.num_qubits, commute=commute)
        dag.extend(circuit.gates)
        return dag

    def append(self, gate: Gate) -> "CircuitDAG":
        """O(1) append of one gate, wiring its dependency edges."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate!r} touches qubit {qubit}, DAG has {self.num_qubits}"
                )
        node = DAGNode(len(self.nodes), gate)
        axes = gate_axes(gate) if self.commute else (None,) * len(gate.qubits)
        predecessors: dict[int, DAGNode] = {}
        for qubit, axis in zip(gate.qubits, axes):
            joins = (
                axis is not None
                and self._last_members[qubit]
                and self._last_axis[qubit] == axis
            )
            if joins:
                # Same wire-action as the trailing group: the new gate
                # commutes with all its members, so it only depends on
                # the group before it.
                for previous in self._prev_members[qubit]:
                    predecessors[previous.index] = previous
                self._last_members[qubit].append(node)
            else:
                for previous in self._last_members[qubit]:
                    predecessors[previous.index] = previous
                self._prev_members[qubit] = self._last_members[qubit]
                self._last_members[qubit] = [node]
                self._last_axis[qubit] = axis
                self._group_counter += 1
                self._last_group[qubit] = self._group_counter
            node._axes[qubit] = axis
            node._groups[qubit] = self._last_group[qubit]
            node._wire_pos[qubit] = len(self._wires[qubit])
            self._wires[qubit].append(node)
        for previous in predecessors.values():
            node.predecessors.append(previous)
            previous.successors.append(node)
        self.nodes.append(node)
        return self

    def extend(self, gates: Iterable[Gate]) -> "CircuitDAG":
        for gate in gates:
            self.append(gate)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Gate]:
        return (node.gate for node in self.nodes)

    def wire(self, qubit: int) -> list[DAGNode]:
        """The ordered gate sequence on one qubit's wire."""
        return self._wires[qubit]

    def front_layer(self) -> list[DAGNode]:
        """Nodes with no unsatisfied dependencies (the executable frontier)."""
        return [node for node in self.nodes if not node.predecessors]

    def topological_nodes(self) -> list[DAGNode]:
        """Nodes in a topological order.

        The append order is topological by construction (edges always
        point forward), so this is deterministic and, for DAGs built
        from a circuit, identical to the original gate order.
        """
        return list(self.nodes)

    def topological_gates(self) -> list[Gate]:
        return [node.gate for node in self.nodes]

    def to_circuit(self) -> Circuit:
        """Materialize back into an ordered-list circuit."""
        return Circuit(self.num_qubits, self.topological_gates())

    # ------------------------------------------------------------------
    # Scheduling metrics
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """ASAP-scheduled depth (critical path in gate counts).

        Barriers and measurements take zero levels but still synchronize
        their wires.  Build the DAG with ``commute=False`` for depth: a
        commutation edge-sparsified DAG under-counts, because two
        commuting gates on one qubit still occupy the wire sequentially.
        """
        return int(self._critical_path(lambda gate: 0 if gate.name in ("barrier", "measure") else 1))

    def duration(self, latency: "Callable[[Gate], float] | object") -> float:
        """Critical-path duration under per-gate latencies.

        ``latency`` is either a callable ``gate -> seconds`` or an
        object with a ``duration(gate)`` method (e.g.
        :class:`repro.hardware.latency.GateLatencyModel`).
        """
        if not callable(latency):
            latency = latency.duration
        return self._critical_path(latency)

    def _critical_path(self, cost: Callable[[Gate], float]) -> float:
        finish = [0.0] * len(self.nodes)
        total = 0.0
        for node in self.nodes:
            start = max((finish[p.index] for p in node.predecessors), default=0.0)
            finish[node.index] = start + cost(node.gate)
            if finish[node.index] > total:
                total = finish[node.index]
        return total

    def __repr__(self) -> str:
        mode = "commute" if self.commute else "wire"
        return (
            f"CircuitDAG({self.num_qubits} qubits, {len(self.nodes)} gates, "
            f"{mode} edges)"
        )
