"""Quantum-circuit intermediate representation substrate.

A minimal, dependency-free gate-level IR in the spirit of Qiskit Terra:
gates are lightweight records, circuits are ordered gate lists with
counting, composition and inversion utilities.  The compiler layer emits
circuits in this IR and the simulators in :mod:`repro.sim` execute them.
"""

from repro.circuit.gates import (
    Gate,
    CNOT,
    SWAP,
    H,
    RX,
    RY,
    RZ,
    S,
    SDG,
    X,
    Y,
    Z,
    Barrier,
    Measure,
)
from repro.circuit.circuit import Circuit
from repro.circuit.dag import CircuitDAG, DAGNode, gate_axes

__all__ = [
    "Gate",
    "Circuit",
    "CircuitDAG",
    "DAGNode",
    "gate_axes",
    "CNOT",
    "SWAP",
    "H",
    "RX",
    "RY",
    "RZ",
    "S",
    "SDG",
    "X",
    "Y",
    "Z",
    "Barrier",
    "Measure",
]
