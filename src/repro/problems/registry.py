"""String-keyed problem registry for the non-molecular workload path.

Mirrors the device/compiler registries: a spec string in
``PipelineConfig.problem`` resolves to a problem object here, so
benchmarks sweep workloads by name exactly the way they sweep devices.

Spec grammar (all instances deterministic in the spec string):

``maxcut:er-<n>-<seed>``
    MaxCut on a seeded Erdos-Renyi G(n, 0.5) graph.
``maxcut:reg3-<n>-<seed>``
    MaxCut on a seeded random 3-regular graph.
``maxcut:ring-<n>`` / ``ising:ring-<n>``
    MaxCut / antiferromagnetic Ising cost on the n-cycle.
``hubbard:<sites>``
    The 1D Hubbard Hamiltonian (:mod:`repro.chem.hubbard`) as a QAOA
    cost function (2 qubits per site, blocked spin ordering).
``qasm:<path>``
    An arbitrary OpenQASM 2.0 circuit; flows through the pipeline as a
    :class:`CircuitProblem` and is routed gate-by-gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.circuit.circuit import Circuit
from repro.pauli import PauliSum
from repro.problems.graphs import (
    Graph,
    erdos_renyi_graph,
    ising_hamiltonian,
    maxcut_hamiltonian,
    random_regular_graph,
    ring_graph,
)

#: Edge probability of the Erdos-Renyi family (fixed so the spec string
#: stays a complete description of the instance).
ER_EDGE_PROBABILITY = 0.5


@dataclass(frozen=True)
class GraphProblem:
    """A diagonal-cost optimization problem for the QAOA ansatz."""

    name: str
    hamiltonian: PauliSum
    num_qubits: int
    graph: Graph | None = None


@dataclass(frozen=True)
class CircuitProblem:
    """An arbitrary gate-level circuit ingested from OpenQASM."""

    name: str
    circuit: Circuit
    num_qubits: int
    source: str | None = None


_SEEDED_RE = re.compile(r"^(er|reg3)-(\d+)-(\d+)$")
_RING_RE = re.compile(r"^ring-(\d+)$")


def _parse_graph(instance: str) -> Graph:
    seeded = _SEEDED_RE.match(instance)
    if seeded:
        family, n, seed = seeded.group(1), int(seeded.group(2)), int(seeded.group(3))
        if family == "er":
            return erdos_renyi_graph(n, ER_EDGE_PROBABILITY, seed)
        return random_regular_graph(n, 3, seed=seed)
    ring = _RING_RE.match(instance)
    if ring:
        return ring_graph(int(ring.group(1)))
    raise ValueError(
        f"unknown graph instance {instance!r}; expected "
        "'er-<n>-<seed>', 'reg3-<n>-<seed>' or 'ring-<n>'"
    )


def get_problem(spec: str) -> GraphProblem | CircuitProblem:
    """Resolve a problem spec string (see module docstring for grammar)."""
    kind, _, instance = spec.partition(":")
    kind = kind.strip().lower()
    instance = instance.strip()
    if not instance:
        raise ValueError(f"problem spec {spec!r} is missing its instance part")
    if kind == "maxcut":
        graph = _parse_graph(instance)
        return GraphProblem(
            name=f"maxcut-{graph.name}",
            hamiltonian=maxcut_hamiltonian(graph),
            num_qubits=graph.num_nodes,
            graph=graph,
        )
    if kind == "ising":
        graph = _parse_graph(instance)
        return GraphProblem(
            name=f"ising-{graph.name}",
            hamiltonian=ising_hamiltonian(graph),
            num_qubits=graph.num_nodes,
            graph=graph,
        )
    if kind == "hubbard":
        from repro.chem.hubbard import hubbard_hamiltonian

        if not instance.isdigit():
            raise ValueError(f"hubbard spec needs a site count, got {instance!r}")
        sites = int(instance)
        hamiltonian = hubbard_hamiltonian(sites)
        return GraphProblem(
            name=f"hubbard-{sites}",
            hamiltonian=hamiltonian,
            num_qubits=hamiltonian.num_qubits,
        )
    if kind == "qasm":
        from repro.circuit.qasm import from_qasm

        path = Path(instance)
        if not path.exists():
            raise FileNotFoundError(f"QASM file not found: {path}")
        circuit = from_qasm(path.read_text())
        return CircuitProblem(
            name=path.stem,
            circuit=circuit,
            num_qubits=circuit.num_qubits,
            source=str(path),
        )
    raise ValueError(
        f"unknown problem kind {kind!r}; "
        "expected maxcut:, ising:, hubbard: or qasm:"
    )
