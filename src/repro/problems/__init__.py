"""Non-molecular problem instances (QAOA graphs, arbitrary QASM).

* :mod:`repro.problems.graphs` -- seeded graph generators and diagonal
  cost Hamiltonians (MaxCut, Ising) over the shared Pauli algebra.
* :mod:`repro.problems.registry` -- spec-string resolution
  (``"maxcut:er-10-3"``, ``"qasm:benchmarks/corpus/ghz_10.qasm"``) for
  the pipeline's ``BuildProblem`` stage.
"""

from repro.problems.graphs import (
    Graph,
    erdos_renyi_graph,
    ising_hamiltonian,
    maxcut_hamiltonian,
    random_regular_graph,
    ring_graph,
)
from repro.problems.registry import (
    CircuitProblem,
    GraphProblem,
    get_problem,
)

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "ring_graph",
    "maxcut_hamiltonian",
    "ising_hamiltonian",
    "GraphProblem",
    "CircuitProblem",
    "get_problem",
]
