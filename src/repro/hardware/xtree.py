"""X-Tree architecture construction (Section IV-A).

The coupling graph is always a tree (N - 1 connections for N qubits, the
minimum possible) with every qubit limited to four neighbors, matching
the paper's physical constraint for fixed-frequency transmons with bus
resonators.  Construction grows breadth-first from the root: the root
takes four children, every other qubit takes up to three (its fourth
connection is to its parent), which reproduces the published XTree5Q,
XTree8Q, XTree17Q and XTree26Q instances:

    5  = 1 + 4
    8  = 5 + 3                 (one leaf of XTree5Q extended)
    17 = 1 + 4 + 4*3           (all level-1 qubits extended)
    26 = 17 + 3*3              (three level-2 qubits extended)
"""

from __future__ import annotations

from repro.hardware.coupling import CouplingGraph

#: Sizes shown in Figure 6 of the paper.
XTREE_SIZES = (5, 8, 17, 26)

_MAX_DEGREE = 4


def xtree(num_qubits: int) -> CouplingGraph:
    """Build the X-Tree with ``num_qubits`` qubits (root = qubit 0)."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    edges: list[tuple[int, int]] = []
    # Queue of (qubit, remaining child slots); the root may take 4
    # children, everyone else 3 (one connection is used by the parent).
    frontier: list[int] = [0]
    capacity = {0: _MAX_DEGREE}
    next_qubit = 1
    while next_qubit < num_qubits:
        if not frontier:
            raise RuntimeError("frontier exhausted; degree bound too small")
        parent = frontier[0]
        edges.append((parent, next_qubit))
        capacity[parent] -= 1
        if capacity[parent] == 0:
            frontier.pop(0)
        capacity[next_qubit] = _MAX_DEGREE - 1
        frontier.append(next_qubit)
        next_qubit += 1
    return CouplingGraph(
        num_qubits=num_qubits, edges=edges, name=f"XTree{num_qubits}Q", center=0
    )


def xtree17q() -> CouplingGraph:
    return xtree(17)


def xtree_with_degrees(num_qubits: int, degrees_per_level: list[int]) -> CouplingGraph:
    """X-Tree variant with a chosen branching factor per level.

    Section VII raises "tree structures with different degrees at
    different levels" as a Pareto-exploration direction; this constructor
    realizes them.  ``degrees_per_level[k]`` is the number of children a
    level-k qubit may take (the root's entry counts all its connections,
    deeper entries exclude the parent link).  Levels beyond the list reuse
    its last entry.

    Example: ``xtree_with_degrees(13, [4, 2])`` is a root with four
    binary subtrees.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if not degrees_per_level or any(d < 1 for d in degrees_per_level):
        raise ValueError("each level must allow at least one child")

    def capacity_at(level: int) -> int:
        index = min(level, len(degrees_per_level) - 1)
        return degrees_per_level[index]

    edges: list[tuple[int, int]] = []
    frontier: list[tuple[int, int]] = [(0, 0)]  # (qubit, level)
    remaining = {0: capacity_at(0)}
    next_qubit = 1
    while next_qubit < num_qubits:
        if not frontier:
            raise ValueError(
                f"degree profile {degrees_per_level} cannot host {num_qubits} qubits"
            )
        parent, level = frontier[0]
        edges.append((parent, next_qubit))
        remaining[parent] -= 1
        if remaining[parent] == 0:
            frontier.pop(0)
        remaining[next_qubit] = capacity_at(level + 1)
        frontier.append((next_qubit, level + 1))
        next_qubit += 1
    name = f"XTree{num_qubits}Q-d{'.'.join(str(d) for d in degrees_per_level)}"
    return CouplingGraph(num_qubits=num_qubits, edges=edges, name=name, center=0)
