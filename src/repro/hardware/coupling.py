"""Coupling-graph abstraction for superconducting processors.

A :class:`CouplingGraph` is an undirected graph over physical qubits plus
the derived structure the rest of the stack queries constantly: adjacency
sets, all-pairs shortest-path distances (SABRE's heuristic), BFS levels
from a designated center (the hierarchical initial layout), and parent
pointers when the graph is a tree (Merge-to-Root).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import networkx as nx
import numpy as np


@dataclass
class CouplingGraph:
    """An undirected physical coupling graph."""

    num_qubits: int
    edges: list[tuple[int, int]]
    name: str = "device"
    center: int | None = None
    #: Optional declared native basis (lowercase gate mnemonics).  When
    #: set, the static ``gate-set`` check (repro.analysis) flags compiled
    #: circuits using gates outside it; None means "any known gate".
    gate_set: frozenset[str] | None = None
    _adjacency: list[set[int]] = field(init=False, repr=False)
    _levels: list[int] | None = field(default=None, init=False, repr=False)
    _distances: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        normalized = []
        seen = set()
        adjacency: list[set[int]] = [set() for _ in range(self.num_qubits)]
        for a, b in self.edges:
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            normalized.append(key)
            adjacency[a].add(b)
            adjacency[b].add(a)
        self.edges = normalized
        self._adjacency = adjacency
        if self.center is None:
            self.center = self._graph_center()

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def neighbors(self, qubit: int) -> set[int]:
        return self._adjacency[qubit]

    def degree(self, qubit: int) -> int:
        return len(self._adjacency[qubit])

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def are_connected(self, a: int, b: int) -> bool:
        return b in self._adjacency[a]

    def is_tree(self) -> bool:
        return self.num_edges == self.num_qubits - 1 and self.is_connected()

    def is_connected(self) -> bool:
        if self.num_qubits == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == self.num_qubits

    def to_networkx(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.edges)
        return graph

    def _graph_center(self) -> int:
        """A qubit minimizing eccentricity (the root for level purposes)."""
        if self.num_qubits == 0:
            return 0
        if not self.is_connected():
            return 0
        distances = self.distance_matrix()
        eccentricity = distances.max(axis=1)
        return int(np.argmin(eccentricity))

    # ------------------------------------------------------------------
    # Derived structure for the compiler
    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path hop counts (BFS per node)."""
        if self._distances is not None:
            return self._distances
        n = self.num_qubits
        distances = np.full((n, n), n + 1, dtype=np.int64)
        for source in range(n):
            distances[source, source] = 0
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if distances[source, neighbor] > distances[source, node] + 1:
                        distances[source, neighbor] = distances[source, node] + 1
                        queue.append(neighbor)
        self._distances = distances
        return distances

    def levels(self) -> list[int]:
        """BFS depth of every qubit from the center.

        For X-Tree devices this is the paper's level structure (root =
        level 0, its neighbors level 1, ...).
        """
        if self._levels is None:
            distances = self.distance_matrix()
            self._levels = [int(d) for d in distances[self.center]]
        return self._levels

    def parent(self, qubit: int) -> int | None:
        """Parent toward the center (None for the center itself).

        Well-defined on trees; on general graphs an arbitrary minimal-
        level neighbor is chosen.
        """
        if qubit == self.center:
            return None
        levels = self.levels()
        candidates = [n for n in self._adjacency[qubit] if levels[n] == levels[qubit] - 1]
        if not candidates:
            return None
        return min(candidates)

    def children(self, qubit: int) -> list[int]:
        levels = self.levels()
        return sorted(
            n for n in self._adjacency[qubit] if levels[n] == levels[qubit] + 1
        )

    def max_level(self) -> int:
        return max(self.levels())

    def __repr__(self) -> str:
        return (
            f"CouplingGraph({self.name}: {self.num_qubits} qubits, "
            f"{self.num_edges} edges)"
        )
