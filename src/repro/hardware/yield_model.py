"""Monte-Carlo fabrication-yield estimation (Figure 11 methodology).

For each trial the designed frequencies are perturbed by i.i.d. Gaussian
noise with standard deviation ``FREQUENCY_SENSITIVITY * precision``;
``precision`` (GHz) is the paper's x-axis, and the sensitivity factor is
the lumped conversion from junction-fabrication spread to frequency
spread (transmon frequency goes as sqrt(E_J), so frequency error is a
fraction of the junction-parameter error; the constant is calibrated so
the XTree17Q/Grid17Q curves land in Figure 11's range with the published
collision windows).  A chip counts as functional when no collision
condition fires; yield is the functional fraction.  Fewer connections
mean fewer collision opportunities, which is why the 16-edge XTree17Q
dominates the 24-edge Grid17Q.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.seeding import seeded_rng
from repro.hardware.coupling import CouplingGraph
from repro.hardware.frequency import (
    CollisionModel,
    allocate_frequencies,
    chip_functions,
)

#: Lumped fabrication-precision -> frequency-spread conversion (module
#: docstring); calibrated against Figure 11's dynamic range.
FREQUENCY_SENSITIVITY = 0.08


@dataclass
class YieldEstimate:
    """Yield of one device at one fabrication precision."""

    device: str
    precision: float
    yield_rate: float
    trials: int
    functional: int

    def __repr__(self) -> str:
        return (
            f"YieldEstimate({self.device} @ sigma={self.precision:.2f} GHz: "
            f"{self.yield_rate:.4g} [{self.functional}/{self.trials}])"
        )


def estimate_yield(
    graph: CouplingGraph,
    precision: float,
    *,
    trials: int = 2000,
    model: CollisionModel | None = None,
    seed: int | None = 7,
    designed: np.ndarray | None = None,
) -> YieldEstimate:
    """Monte-Carlo yield of ``graph`` at fabrication precision ``precision``."""
    if precision < 0:
        raise ValueError("precision must be non-negative")
    model = model or CollisionModel()
    if designed is None:
        designed = allocate_frequencies(graph, model)
    rng = seeded_rng(seed)
    sigma = FREQUENCY_SENSITIVITY * precision
    functional = 0
    for _ in range(trials):
        fabricated = designed + rng.normal(0.0, sigma, size=graph.num_qubits)
        if chip_functions(graph, fabricated, model):
            functional += 1
    return YieldEstimate(
        device=graph.name,
        precision=precision,
        yield_rate=functional / trials,
        trials=trials,
        functional=functional,
    )


def yield_sweep(
    graph: CouplingGraph,
    precisions: list[float],
    *,
    trials: int = 2000,
    model: CollisionModel | None = None,
    seed: int | None = 7,
) -> list[YieldEstimate]:
    """Yield across fabrication precisions (the Figure 11 x-axis)."""
    model = model or CollisionModel()
    designed = allocate_frequencies(graph, model)
    return [
        estimate_yield(
            graph, precision, trials=trials, model=model, seed=seed, designed=designed
        )
        for precision in precisions
    ]
