"""String-keyed device registry.

Every layer that needs a target architecture resolves it here by name
instead of hand-wiring constructors: ``get_device("xtree17")``,
``get_device("grid17")``.  Parameterized families are recognized on the
fly (``"xtree33"``, ``"grid4x5"``), and new devices can be registered at
runtime with :func:`register_device` (e.g. for yield studies over exotic
tree shapes).

Names are normalized case-insensitively with ``-``/``_`` and a trailing
``q`` stripped, so ``"XTree17Q"``, ``"xtree-17"`` and ``"xtree17"`` all
resolve to the same device.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.hardware.coupling import CouplingGraph
from repro.hardware.grid import grid, grid17q
from repro.hardware.xtree import XTREE_SIZES, xtree

DeviceFactory = Callable[[], CouplingGraph]

_DEVICES: dict[str, DeviceFactory] = {}

_XTREE_PATTERN = re.compile(r"xtree(\d+)")
_GRID_PATTERN = re.compile(r"grid(\d+)x(\d+)")


def _normalize(name: str) -> str:
    key = name.strip().lower().replace("-", "").replace("_", "")
    if key.endswith("q") and key[:-1] and key[:-1][-1].isdigit():
        key = key[:-1]
    return key


def register_device(
    name: str, factory: DeviceFactory, *, overwrite: bool = False
) -> None:
    """Register a device factory under ``name`` (normalized)."""
    key = _normalize(name)
    if not key:
        raise ValueError("device name must be non-empty")
    if key in _DEVICES and not overwrite:
        raise ValueError(f"device {name!r} already registered")
    _DEVICES[key] = factory


def list_devices() -> list[str]:
    """Registered device names (parameterized families not enumerated)."""
    return sorted(_DEVICES)


def get_device(name: str | CouplingGraph) -> CouplingGraph:
    """Resolve a device name to a freshly built :class:`CouplingGraph`.

    A :class:`CouplingGraph` instance passes through unchanged so call
    sites can accept either form.  Besides the registered names, two
    parameterized families are understood: ``"xtree<N>"`` (arbitrary-size
    X-Tree) and ``"grid<R>x<C>"`` (plain R x C lattice).
    """
    if isinstance(name, CouplingGraph):
        return name
    key = _normalize(str(name))
    if key in _DEVICES:
        return _DEVICES[key]()
    match = _XTREE_PATTERN.fullmatch(key)
    if match:
        return xtree(int(match.group(1)))
    match = _GRID_PATTERN.fullmatch(key)
    if match:
        return grid(int(match.group(1)), int(match.group(2)))
    raise ValueError(
        f"unknown device {name!r}; registered devices: {', '.join(list_devices())} "
        "(parameterized: 'xtree<N>', 'grid<R>x<C>')"
    )


def _register_builtin_devices() -> None:
    for size in XTREE_SIZES:
        register_device(f"xtree{size}", lambda size=size: xtree(size))
    register_device("grid17", grid17q)


_register_builtin_devices()
