"""Superconducting processor architecture substrate (Section IV).

* :mod:`repro.hardware.coupling`   -- coupling-graph abstraction with the
  level structure the compiler consumes;
* :mod:`repro.hardware.xtree`      -- the paper's X-Tree architectures
  (XTree5Q / 8Q / 17Q / 26Q and arbitrary sizes);
* :mod:`repro.hardware.grid`       -- the Grid17Q baseline (IBM-style
  17-qubit lattice with 24 connections) and generic 2D grids;
* :mod:`repro.hardware.frequency`  -- fixed-frequency transmon model:
  frequency allocation and Brink-style collision conditions;
* :mod:`repro.hardware.latency`    -- per-gate durations (CR-transmon
  defaults) feeding the DAG scheduled-depth metrics;
* :mod:`repro.hardware.yield_model`-- Monte-Carlo fabrication yield
  (Figure 11 methodology, following Li/Ding/Xie ASPLOS'20 [56]);
* :mod:`repro.hardware.registry`   -- string-keyed device lookup
  (``get_device("xtree17")``, ``get_device("grid17")``, parameterized
  ``"xtree<N>"`` / ``"grid<R>x<C>"`` families).
"""

from repro.hardware.coupling import CouplingGraph
from repro.hardware.xtree import xtree, XTREE_SIZES
from repro.hardware.grid import grid17q, grid
from repro.hardware.frequency import allocate_frequencies, CollisionModel
from repro.hardware.latency import GateLatencyModel, DEFAULT_LATENCY
from repro.hardware.yield_model import estimate_yield, YieldEstimate
from repro.hardware.registry import get_device, list_devices, register_device

__all__ = [
    "CouplingGraph",
    "xtree",
    "XTREE_SIZES",
    "grid17q",
    "grid",
    "get_device",
    "list_devices",
    "register_device",
    "allocate_frequencies",
    "CollisionModel",
    "GateLatencyModel",
    "DEFAULT_LATENCY",
    "estimate_yield",
    "YieldEstimate",
]
