"""Fixed-frequency transmon frequency model.

Following the methodology the paper adopts from [56] (Li/Ding/Xie,
ASPLOS'20) with the frequency-collision conditions of Brink et al.
(IEDM'18) [32]: each qubit gets a *designed* frequency; fabrication
perturbs it by a Gaussian of standard deviation equal to the "fabrication
precision" (the x-axis of Figure 11); a chip functions only if no
coupled pair or spectator triple lands in a collision window.

Collision conditions for a cross-resonance pair (control j, target k)
with anharmonicity ``alpha`` (~ -330 MHz), expressed on the qubit
frequencies f (GHz):

    C1  |fj - fk| < 17 MHz                 (degenerate 01 transitions)
    C2  |fj - fk - alpha/2| < 4 MHz        (two-photon 02 resonance)
    C3  |fj - fk - alpha| < 25 MHz         (01 vs 12 degeneracy)
    C4  |fj - fk| > |alpha|                (CR gate too slow / unaddressable)
    C5  spectator i of k (i != j): |fj - fi| < 17 MHz

C1-C3 are symmetrized over the pair orientation; C5 is evaluated for
every connected triple.  The paper's Figure 11 x-axis ("fabrication
precision", GHz) is converted to an on-chip frequency standard deviation
through a lumped sensitivity factor (see
:data:`repro.hardware.yield_model.FREQUENCY_SENSITIVITY`): transmon
frequency scales as sqrt(E_J), so frequency deviations are a fraction of
the junction-parameter deviation the axis quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.coupling import CouplingGraph


@dataclass(frozen=True)
class CollisionModel:
    """Thresholds (GHz) of the collision conditions."""

    anharmonicity: float = -0.33
    window_degenerate: float = 0.017
    window_two_photon: float = 0.004
    window_01_12: float = 0.025

    def pair_collides(self, fj: float, fk: float) -> bool:
        """Conditions C1-C4 for a coupled pair (orientation-symmetric)."""
        alpha = self.anharmonicity
        delta = fj - fk
        if abs(delta) < self.window_degenerate:
            return True
        for oriented in (delta, -delta):
            if abs(oriented - alpha / 2.0) < self.window_two_photon:
                return True
            if abs(oriented - alpha) < self.window_01_12:
                return True
        if abs(delta) > abs(alpha):
            return True
        return False

    def spectator_collides(self, fj: float, fi: float) -> bool:
        """Condition C5: two distinct neighbors of a qubit must not be
        degenerate (addressing one would drive the other through their
        shared coupler)."""
        return abs(fj - fi) < self.window_degenerate


def _margin(model: CollisionModel, fj: float, fk: float) -> float:
    """Distance to the nearest collision window edge for a pair (>= 0 good)."""
    alpha = model.anharmonicity
    delta = abs(fj - fk)
    margins = [
        delta - model.window_degenerate,
        abs(abs(fj - fk) - abs(alpha) / 2.0) - model.window_two_photon,
        abs(abs(fj - fk) - abs(alpha)) - model.window_01_12,
        abs(alpha) - delta,
    ]
    return min(margins)


def allocate_frequencies(
    graph: CouplingGraph,
    model: CollisionModel | None = None,
    *,
    f_min: float = 5.00,
    f_max: float = 5.30,
    step: float = 0.01,
) -> np.ndarray:
    """Greedy max-margin designed-frequency allocation.

    Qubits are assigned in BFS order from the device center; each takes
    the candidate frequency maximizing its worst margin against already-
    assigned neighbors and next-nearest neighbors.  This mirrors the
    margin-driven allocator of [56] closely enough to compare
    architectures fairly (both devices get the same allocator).
    """
    model = model or CollisionModel()
    candidates = np.arange(f_min, f_max + step / 2.0, step)
    frequencies = np.full(graph.num_qubits, np.nan)
    order = sorted(range(graph.num_qubits), key=lambda q: graph.levels()[q])
    for qubit in order:
        neighbor_set = graph.neighbors(qubit)
        next_nearest = set()
        for neighbor in neighbor_set:
            next_nearest |= graph.neighbors(neighbor)
        next_nearest.discard(qubit)
        best_frequency = candidates[0]
        best_margin = -np.inf
        for f in candidates:
            margin = np.inf
            for neighbor in neighbor_set:
                if not np.isnan(frequencies[neighbor]):
                    margin = min(margin, _margin(model, f, frequencies[neighbor]))
            for spectator in next_nearest:
                if not np.isnan(frequencies[spectator]):
                    spread = abs(f - frequencies[spectator]) - model.window_degenerate
                    margin = min(margin, spread)
            if margin > best_margin:
                best_margin = margin
                best_frequency = f
        frequencies[qubit] = best_frequency
    return frequencies


def chip_functions(
    graph: CouplingGraph, frequencies: np.ndarray, model: CollisionModel | None = None
) -> bool:
    """True when no collision condition fires anywhere on the chip."""
    model = model or CollisionModel()
    for a, b in graph.edges:
        if model.pair_collides(frequencies[a], frequencies[b]):
            return False
    for k in range(graph.num_qubits):
        neighbors = sorted(graph.neighbors(k))
        for i_pos, i in enumerate(neighbors):
            for j in neighbors[i_pos + 1:]:
                if model.spectator_collides(frequencies[j], frequencies[i]):
                    return False
    return True
