"""Grid baselines (Section VI-A): the 17-qubit 2D-grid device.

``grid17q`` reproduces IBM's 17-qubit lattice [32]: 9 "data" qubits on a
3x3 grid interleaved with 8 coupler qubits (4 bulk, degree 4; 4 boundary,
degree 2), totalling 24 connections -- the figure the paper compares
against XTree17Q's 16 connections.  A generic rectangular ``grid`` is
also provided for ablations.
"""

from __future__ import annotations

from repro.hardware.coupling import CouplingGraph


def grid(rows: int, cols: int) -> CouplingGraph:
    """Plain rows x cols nearest-neighbor lattice."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")

    def index(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return CouplingGraph(rows * cols, edges, name=f"Grid{rows}x{cols}")


def grid17q() -> CouplingGraph:
    """IBM-style 17-qubit device: 3x3 data grid + 8 couplers, 24 edges.

    Layout (data qubits d0..d8 at integer coordinates, bulk ancillas a/b
    at square centers, boundary ancillas on two opposing pairs of sides):

        d0 --- d1 --- d2
         |  A0  |  A1  |
        d3 --- d4 --- d5
         |  A2  |  A3  |
        d6 --- d7 --- d8   (grid edges replaced by coupler paths)

    Qubits 0..8 are the data grid (row-major), 9..12 the four bulk
    couplers (each touching the four data qubits of its square), 13..16
    the boundary couplers (each touching two data qubits).
    """
    def data(r: int, c: int) -> int:
        return 3 * r + c

    edges: list[tuple[int, int]] = []
    bulk_squares = [(0, 0), (0, 1), (1, 0), (1, 1)]
    for k, (r, c) in enumerate(bulk_squares):
        ancilla = 9 + k
        edges += [
            (ancilla, data(r, c)),
            (ancilla, data(r, c + 1)),
            (ancilla, data(r + 1, c)),
            (ancilla, data(r + 1, c + 1)),
        ]
    boundary_pairs = [
        (data(0, 1), data(0, 2)),  # top
        (data(2, 0), data(2, 1)),  # bottom
        (data(0, 0), data(1, 0)),  # left
        (data(1, 2), data(2, 2)),  # right
    ]
    for k, (a, b) in enumerate(boundary_pairs):
        ancilla = 13 + k
        edges += [(ancilla, a), (ancilla, b)]
    graph = CouplingGraph(17, edges, name="Grid17Q", center=data(1, 1))
    if graph.num_edges != 24:
        raise RuntimeError(
            f"Grid17Q construction produced {graph.num_edges} connections, "
            "expected 24 (9 data qubits, 4 bulk couplers x4 edges, "
            "4 boundary couplers x2 edges); the edge builder is broken"
        )
    return graph
