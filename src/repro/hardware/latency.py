"""Per-gate latency model for scheduled-depth metrics.

The paper's compiler comparison counts CNOTs because on cross-resonance
hardware the two-qubit gate dominates: a CR CNOT takes an order of
magnitude longer than single-qubit rotations.  The default numbers here
are representative fixed-frequency transmon values (~35 ns single-qubit
pulses, ~300 ns echoed cross-resonance CNOT); routing SWAPs decompose
into three CNOTs.  The model feeds
:meth:`repro.circuit.dag.CircuitDAG.duration`, turning the shared DAG IR
into critical-path durations for Table II-style reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import Gate

#: Gate names that take no schedule time (structural markers).
_ZERO_DURATION = ("barrier",)


@dataclass(frozen=True)
class GateLatencyModel:
    """Name-keyed gate durations in nanoseconds."""

    single_qubit_ns: float = 35.0
    cx_ns: float = 300.0
    cz_ns: float = 300.0
    measure_ns: float = 0.0  # excluded from depth conventions by default

    def duration(self, gate: Gate) -> float:
        """Duration of one gate in nanoseconds."""
        name = gate.name
        if name in _ZERO_DURATION:
            return 0.0
        if name == "measure":
            return self.measure_ns
        if name == "cx":
            return self.cx_ns
        if name == "cz":
            return self.cz_ns
        if name == "swap":
            return 3.0 * self.cx_ns  # three CNOTs on CR hardware
        return self.single_qubit_ns


#: Shared default instance used by the metrics layer.
DEFAULT_LATENCY = GateLatencyModel()
