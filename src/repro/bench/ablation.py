"""Design-choice ablations (beyond the paper's own tables).

Three knobs the paper fixes are swept here:

* **decay base** of the importance metric (paper: 2.0);
* **initial layout** for Merge-to-Root (hierarchical vs trivial);
* **swap lookahead** in Merge-to-Root (paper's future-occurrence rule vs
  arbitrary choice).

Each sweep is phrased against the composable pipeline API: a variant is
one :class:`~repro.core.passes.PipelineConfig` change (or one swapped
stage), with devices and compilers resolved through the registries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.compiler.registry import get_compiler
from repro.core.compression import compress_ansatz
from repro.core.ir import PauliProgram
from repro.core.passes import (
    BuildAnsatz,
    BuildProblem,
    Compress,
    Energy,
    PipelineConfig,
)
from repro.core.pipeline import Pipeline
from repro.hardware.registry import get_device


@dataclass
class DecayBaseResult:
    molecule: str
    decay_base: float
    ratio: float
    energy_error: float
    iterations: int


def decay_base_ablation(
    molecule: str,
    bases: tuple[float, ...] = (1.5, 2.0, 4.0, 16.0),
    *,
    ratio: float = 0.5,
    max_iterations: int = 200,
) -> list[DecayBaseResult]:
    """Energy error of the compressed ansatz for different decay bases.

    Uses a compile-free pipeline (no layout/route stages): problem ->
    ansatz -> compress -> VQE.
    """
    results = []
    for base in bases:
        pipeline = Pipeline(
            PipelineConfig(molecule=molecule, ratio=ratio, decay_base=base),
            passes=[
                BuildProblem(),
                BuildAnsatz(),
                Compress(),
                Energy(max_iterations=max_iterations),
            ],
        )
        outcome = pipeline.run()
        results.append(
            DecayBaseResult(
                molecule=molecule,
                decay_base=base,
                ratio=ratio,
                energy_error=abs(outcome.metrics["energy_error"]),
                iterations=outcome.metrics["iterations"],
            )
        )
    return results


@dataclass
class LayoutAblationResult:
    molecule: str
    ratio: float
    hierarchical_swaps: int
    trivial_swaps: int

    @property
    def layout_benefit(self) -> float:
        if self.hierarchical_swaps == 0:
            return float("inf") if self.trivial_swaps else 1.0
        return self.trivial_swaps / self.hierarchical_swaps


def layout_ablation(
    molecule: str,
    ratios: tuple[float, ...] = (0.3, 0.5, 0.9),
    *,
    device: str = "xtree17",
) -> list[LayoutAblationResult]:
    """MtR swap counts under hierarchical vs trivial initial layout."""
    results = []
    for ratio in ratios:
        base = PipelineConfig(molecule=molecule, ratio=ratio, device=device)
        hierarchical = Pipeline(base).run()
        trivial = Pipeline(base.replace(layout="trivial")).run()
        results.append(
            LayoutAblationResult(
                molecule=molecule,
                ratio=ratio,
                hierarchical_swaps=hierarchical.num_swaps,
                trivial_swaps=trivial.num_swaps,
            )
        )
    return results


@dataclass
class OrderingAblationResult:
    molecule: str
    ratio: float
    importance_ordered_swaps: int
    original_ordered_swaps: int


def ordering_ablation(
    molecule: str,
    ratios: tuple[float, ...] = (0.3, 0.5, 0.9),
    *,
    device: str = "xtree17",
) -> list[OrderingAblationResult]:
    """Does importance-*ordering* (not just selection) reduce overhead?

    Compares MtR swaps for the compressed ansatz in importance order (the
    paper's construction) vs the same parameters in their original UCCSD
    order.
    """
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    graph = get_device(device)
    compiler = get_compiler("mtr")
    results = []
    for ratio in ratios:
        compressed = compress_ansatz(program, problem.hamiltonian, ratio)
        importance_ordered = compressed.program
        original_order = program.restricted_to(sorted(compressed.kept_parameters))
        a = compiler.compile(importance_ordered, graph)
        b = compiler.compile(original_order, graph)
        results.append(
            OrderingAblationResult(
                molecule=molecule,
                ratio=ratio,
                importance_ordered_swaps=a.num_swaps,
                original_ordered_swaps=b.num_swaps,
            )
        )
    return results


def tree_size_sweep(program: PauliProgram, sizes: tuple[int, ...] = (17, 26, 33)):
    """MtR overhead as the X-Tree grows (architecture-scaling ablation)."""
    compiler = get_compiler("mtr")
    results = {}
    for size in sizes:
        compiled = compiler.compile(program, get_device(f"xtree{size}"))
        results[size] = compiled.num_swaps
    return results
