"""Design-choice ablations (beyond the paper's own tables).

Three knobs the paper fixes are swept here:

* **decay base** of the importance metric (paper: 2.0);
* **initial layout** for Merge-to-Root (hierarchical vs trivial);
* **swap lookahead** in Merge-to-Root (paper's future-occurrence rule vs
  arbitrary choice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.compiler.layout import hierarchical_initial_layout, trivial_layout
from repro.compiler.merge_to_root import MergeToRootCompiler
from repro.core.compression import compress_ansatz
from repro.core.ir import PauliProgram
from repro.hardware.xtree import xtree
from repro.sim.exact import ground_state_energy
from repro.vqe.runner import VQE


@dataclass
class DecayBaseResult:
    molecule: str
    decay_base: float
    ratio: float
    energy_error: float
    iterations: int


def decay_base_ablation(
    molecule: str,
    bases: tuple[float, ...] = (1.5, 2.0, 4.0, 16.0),
    *,
    ratio: float = 0.5,
    max_iterations: int = 200,
) -> list[DecayBaseResult]:
    """Energy error of the compressed ansatz for different decay bases."""
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    exact = ground_state_energy(problem.hamiltonian)
    results = []
    for base in bases:
        compressed = compress_ansatz(
            program, problem.hamiltonian, ratio, decay_base=base
        )
        outcome = VQE(
            compressed.program, problem.hamiltonian, max_iterations=max_iterations
        ).run()
        results.append(
            DecayBaseResult(
                molecule=molecule,
                decay_base=base,
                ratio=ratio,
                energy_error=abs(outcome.energy - exact),
                iterations=outcome.iterations,
            )
        )
    return results


@dataclass
class LayoutAblationResult:
    molecule: str
    ratio: float
    hierarchical_swaps: int
    trivial_swaps: int

    @property
    def layout_benefit(self) -> float:
        if self.hierarchical_swaps == 0:
            return float("inf") if self.trivial_swaps else 1.0
        return self.trivial_swaps / self.hierarchical_swaps


def layout_ablation(
    molecule: str, ratios: tuple[float, ...] = (0.3, 0.5, 0.9)
) -> list[LayoutAblationResult]:
    """MtR swap counts under hierarchical vs trivial initial layout."""
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    device = xtree(17)
    compiler = MergeToRootCompiler(device)
    results = []
    for ratio in ratios:
        compressed = compress_ansatz(program, problem.hamiltonian, ratio).program
        hierarchical = compiler.compile(
            compressed, initial_layout=hierarchical_initial_layout(compressed, device)
        )
        trivial = compiler.compile(
            compressed, initial_layout=trivial_layout(compressed, device)
        )
        results.append(
            LayoutAblationResult(
                molecule=molecule,
                ratio=ratio,
                hierarchical_swaps=hierarchical.num_swaps,
                trivial_swaps=trivial.num_swaps,
            )
        )
    return results


@dataclass
class OrderingAblationResult:
    molecule: str
    ratio: float
    importance_ordered_swaps: int
    original_ordered_swaps: int


def ordering_ablation(
    molecule: str, ratios: tuple[float, ...] = (0.3, 0.5, 0.9)
) -> list[OrderingAblationResult]:
    """Does importance-*ordering* (not just selection) reduce overhead?

    Compares MtR swaps for the compressed ansatz in importance order (the
    paper's construction) vs the same parameters in their original UCCSD
    order.
    """
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    device = xtree(17)
    compiler = MergeToRootCompiler(device)
    results = []
    for ratio in ratios:
        compressed = compress_ansatz(program, problem.hamiltonian, ratio)
        importance_ordered = compressed.program
        original_order = program.restricted_to(sorted(compressed.kept_parameters))
        a = compiler.compile(importance_ordered)
        b = compiler.compile(original_order)
        results.append(
            OrderingAblationResult(
                molecule=molecule,
                ratio=ratio,
                importance_ordered_swaps=a.num_swaps,
                original_ordered_swaps=b.num_swaps,
            )
        )
    return results


def tree_size_sweep(program: PauliProgram, sizes: tuple[int, ...] = (17, 26, 33)):
    """MtR overhead as the X-Tree grows (architecture-scaling ablation)."""
    results = {}
    for size in sizes:
        device = xtree(size)
        compiled = MergeToRootCompiler(device).compile(program)
        results[size] = compiled.num_swaps
    return results
