"""Table II: mapping overhead of MtR vs SABRE on XTree17Q / Grid17Q."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.compiler.metrics import mapping_overhead
from repro.core.compression import compress_ansatz
from repro.hardware.registry import get_device

#: The compression ratios tabulated by the paper.
PAPER_RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: The paper's Table II, for side-by-side comparison in reports:
#: molecule -> ratio -> (original, mtr_xtree, sabre_xtree, sabre_grid).
TABLE2_PAPER: dict[str, dict[float, tuple[int, int, int, int]]] = {
    "H2": {
        0.1: (48, 0, 0, 0), 0.3: (48, 0, 0, 0), 0.5: (52, 0, 0, 0),
        0.7: (56, 6, 0, 0), 0.9: (56, 6, 0, 0),
    },
    "LiH": {
        0.1: (80, 0, 48, 0), 0.3: (208, 6, 126, 6), 0.5: (256, 6, 132, 9),
        0.7: (272, 12, 150, 15), 0.9: (280, 18, 168, 18),
    },
    "NaH": {
        0.1: (176, 0, 162, 12), 0.3: (448, 0, 777, 12), 0.5: (672, 0, 1002, 87),
        0.7: (736, 3, 1197, 120), 0.9: (764, 21, 1470, 123),
    },
    "HF": {
        0.1: (400, 0, 633, 87), 0.3: (912, 0, 1863, 126), 0.5: (1264, 0, 2034, 267),
        0.7: (1552, 6, 2163, 372), 0.9: (1608, 36, 2502, 612),
    },
    "BeH2": {
        0.1: (1504, 3, 3315, 621), 0.3: (3808, 6, 6513, 1395),
        0.5: (5696, 24, 13416, 4005), 0.7: (7248, 51, 14268, 5253),
        0.9: (7984, 228, 17862, 8091),
    },
    "H2O": {
        0.1: (1536, 0, 3132, 1110), 0.3: (3840, 12, 7764, 1725),
        0.5: (5712, 18, 12495, 2034), 0.7: (7280, 75, 13266, 2514),
        0.9: (7988, 135, 15618, 3156),
    },
    "BH3": {
        0.1: (3664, 0, 9489, 2163), 0.3: (9632, 39, 23811, 7632),
        0.5: (14560, 108, 35289, 9654), 0.7: (18368, 237, 45603, 17010),
        0.9: (20824, 606, 46395, 21165),
    },
    "NH3": {
        0.1: (3680, 0, 11646, 1959), 0.3: (9696, 30, 20622, 5844),
        0.5: (14592, 72, 35523, 8568), 0.7: (18480, 183, 42348, 12375),
        0.9: (20824, 522, 48447, 13668),
    },
    "CH4": {
        0.1: (7136, 0, 23796, 4788), 0.3: (19040, 45, 56799, 18939),
        0.5: (28992, 120, 79821, 25173), 0.7: (36656, 366, 99831, 33792),
        0.9: (41632, 1005, 111876, 39729),
    },
}


@dataclass
class Table2Row:
    molecule: str
    ratio: float
    original_cnots: int
    mtr_xtree_overhead: int
    sabre_xtree_overhead: int
    sabre_grid_overhead: int | None
    # Optional DAG-IR columns (filled when ``dag=`` / ``commute=`` are on):
    # ASAP-scheduled depth / critical-path duration of the MtR circuit,
    # and total MtR CNOTs after the adjacency-only vs. commutation-aware
    # peephole cancellation.
    mtr_scheduled_depth: int | None = None
    mtr_duration_ns: float | None = None
    sabre_xtree_scheduled_depth: int | None = None
    mtr_cnots_adjacency: int | None = None
    mtr_cnots_commute: int | None = None

    @property
    def mtr_vs_sabre_xtree(self) -> float:
        if self.sabre_xtree_overhead == 0:
            return 0.0
        return self.mtr_xtree_overhead / self.sabre_xtree_overhead


def table2_row(
    molecule: str,
    ratio: float,
    *,
    include_grid: bool = True,
    sabre_seed: int = 11,
    tree_device: str = "xtree17",
    grid_device: str = "grid17",
    dag: bool = False,
    commute: bool = False,
) -> Table2Row:
    """One Table II row; ``dag`` fills the scheduled-depth columns and
    ``commute`` routes SABRE over the commutation-aware frontier while
    filling the adjacency-vs-commutation cancellation columns (the same
    semantics as the ``PipelineConfig`` knobs)."""
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, ratio)
    reports = mapping_overhead(
        compressed.program,
        get_device(tree_device),
        get_device(grid_device) if include_grid else None,
        sabre_seed=sabre_seed,
        schedule=dag,
        commute=commute,
        keep_circuits=commute,
    )
    grid_overhead = (
        reports["sabre_grid"].overhead_cnots if "sabre_grid" in reports else None
    )
    row = Table2Row(
        molecule=molecule,
        ratio=ratio,
        original_cnots=compressed.program.cnot_count(),
        mtr_xtree_overhead=reports["mtr_xtree"].overhead_cnots,
        sabre_xtree_overhead=reports["sabre_xtree"].overhead_cnots,
        sabre_grid_overhead=grid_overhead,
    )
    if dag:
        row.mtr_scheduled_depth = reports["mtr_xtree"].schedule.scheduled_depth
        row.mtr_duration_ns = reports["mtr_xtree"].schedule.duration_ns
        row.sabre_xtree_scheduled_depth = reports["sabre_xtree"].schedule.scheduled_depth
    if commute:
        from repro.compiler.cancellation import cancel_gates

        physical = reports["mtr_xtree"].circuit.decompose_swaps()
        row.mtr_cnots_adjacency = cancel_gates(physical).num_cnots()
        row.mtr_cnots_commute = cancel_gates(physical, commute=True).num_cnots()
    return row


def table2_rows(
    molecules: list[str],
    ratios: tuple[float, ...] = PAPER_RATIOS,
    *,
    include_grid: bool = True,
    dag: bool = False,
    commute: bool = False,
) -> list[Table2Row]:
    return [
        table2_row(molecule, ratio, include_grid=include_grid, dag=dag, commute=commute)
        for molecule in molecules
        for ratio in ratios
    ]
