"""QAOA + QASM benchmark corpus: the differential-testing bed.

The paper's evaluation is nine UCCSD molecules; this module widens the
compiler's exercise set to a seeded, regenerable corpus of OpenQASM
circuits spanning the workload families the co-design claims should
generalize to:

* **QAOA MaxCut** on Erdos-Renyi and 3-regular graphs (p in {1, 2}),
  chain-synthesized from the Pauli IR with seeded random angles;
* **QAOA transverse-field Ising rings** (commuting ZZ cost layers --
  the best case for commutation-aware cancellation);
* **GHZ ladders** (pure CNOT chains, the routing-friendliness floor);
* **random Clifford+T** streams (T == ``rz(pi/4)`` up to global phase,
  since the gate set has no bare T);
* **Cuccaro ripple-carry adders** with the standard 7-rotation Toffoli
  decomposition (arithmetic-style structure).

Every circuit is a pure function of its spec (seeds included, no
wall-clock or global state), so ``generate_corpus`` is byte-for-byte
deterministic -- CI regenerates the committed ``benchmarks/corpus/``
files and fails on any drift.  ``run_corpus_benchmark`` compiles the
corpus with both flows (Merge-to-Root spanning-tree mode and SABRE) on
an exact-fit XTree and a near-square grid per circuit, recording routed
CNOTs, scheduled depth, cancellation wins and compile time, plus
compile-cache cold/warm hit rates through the pipeline path; the rows
become the ``BENCH_corpus.json`` artifact.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.ansatz import build_qaoa_ansatz
from repro.circuit import Circuit
from repro.circuit.gates import CNOT, H, RZ, Gate
from repro.circuit.qasm import from_qasm, to_qasm
from repro.compiler import cancel_gates, get_compiler, schedule_report
from repro.compiler.synthesis import synthesize_program_chain
from repro.hardware import get_device
from repro.pauli import PauliSum
from repro.problems import (
    erdos_renyi_graph,
    ising_hamiltonian,
    maxcut_hamiltonian,
    random_regular_graph,
    ring_graph,
)

#: Angle of a T gate expressed as an RZ (equal up to global phase).
T_ANGLE = math.pi / 4.0

#: Compiler flows exercised over the corpus.
CORPUS_COMPILERS = ("mtr", "sabre")


@dataclass(frozen=True)
class CorpusSpec:
    """One regenerable corpus circuit: a name, a family, a builder."""

    name: str
    family: str
    build: Callable[[], Circuit]


def corpus_devices(num_qubits: int) -> tuple[str, str]:
    """The two benchmark devices for an ``num_qubits``-qubit circuit.

    An exact-fit XTree and the smallest near-square grid that holds the
    circuit (rows = floor(sqrt(n)), at least 2, columns to cover).
    """
    rows = max(2, int(math.isqrt(num_qubits)))
    columns = -(-num_qubits // rows)  # ceiling division
    return (f"xtree{num_qubits}", f"grid{rows}x{columns}")


def _qaoa_circuit(hamiltonian: PauliSum, layers: int, *, seed: int) -> Circuit:
    """Chain-synthesize a p-layer QAOA ansatz at seeded random angles."""
    ansatz = build_qaoa_ansatz(hamiltonian, layers)
    rng = np.random.default_rng(seed)
    gammas = rng.uniform(0.1, 1.2, size=layers)
    betas = rng.uniform(0.1, 1.2, size=layers)
    return synthesize_program_chain(
        ansatz.program, ansatz.parameters(gammas, betas)
    )


def qaoa_maxcut_er_circuit(num_nodes: int, layers: int, *, seed: int) -> Circuit:
    graph = erdos_renyi_graph(num_nodes, 0.5, seed=seed)
    return _qaoa_circuit(maxcut_hamiltonian(graph), layers, seed=seed + 1000)


def qaoa_maxcut_regular_circuit(num_nodes: int, layers: int, *, seed: int) -> Circuit:
    graph = random_regular_graph(num_nodes, 3, seed=seed)
    return _qaoa_circuit(maxcut_hamiltonian(graph), layers, seed=seed + 2000)


def qaoa_ising_ring_circuit(num_nodes: int, layers: int, *, seed: int) -> Circuit:
    hamiltonian = ising_hamiltonian(ring_graph(num_nodes), longitudinal_field=0.7)
    return _qaoa_circuit(hamiltonian, layers, seed=seed + 3000)


def ghz_circuit(num_qubits: int) -> Circuit:
    """H then a CNOT chain: the canonical entangling ladder."""
    gates = [H(0)] + [CNOT(qubit, qubit + 1) for qubit in range(num_qubits - 1)]
    return Circuit(num_qubits, gates)


def random_clifford_t_circuit(num_qubits: int, depth: int, *, seed: int) -> Circuit:
    """A seeded random stream over {H, S, T(rz), CX, CZ}."""
    rng = np.random.default_rng(seed)
    gates: list[Gate] = []
    for _ in range(depth):
        kind = int(rng.integers(0, 5))
        qubit = int(rng.integers(0, num_qubits))
        if kind == 0:
            gates.append(Gate("h", (qubit,)))
        elif kind == 1:
            gates.append(Gate("s", (qubit,)))
        elif kind == 2:
            sign = 1.0 if int(rng.integers(0, 2)) == 0 else -1.0
            gates.append(RZ(sign * T_ANGLE, qubit))
        else:
            other = int(rng.integers(0, num_qubits - 1))
            if other >= qubit:
                other += 1
            name = "cx" if kind == 3 else "cz"
            gates.append(Gate(name, (qubit, other)))
    return Circuit(num_qubits, gates)


def _toffoli(a: int, b: int, c: int) -> list[Gate]:
    """Standard 7-rotation Toffoli decomposition (T == rz(pi/4) up to
    global phase, which cancels in up-to-phase equivalence checks)."""
    t, tdg = T_ANGLE, -T_ANGLE
    return [
        H(c),
        CNOT(b, c), RZ(tdg, c),
        CNOT(a, c), RZ(t, c),
        CNOT(b, c), RZ(tdg, c),
        CNOT(a, c), RZ(t, b), RZ(t, c),
        H(c),
        CNOT(a, b), RZ(t, a), RZ(tdg, b),
        CNOT(a, b),
    ]


def cuccaro_adder_circuit(num_bits: int) -> Circuit:
    """Cuccaro ripple-carry adder on ``2 * num_bits + 2`` qubits.

    Layout: ancilla carry ``0``, then interleaved ``b[i]`` (``2i + 1``)
    and ``a[i]`` (``2i + 2``), carry-out last.  MAJ ripples the carry up
    through the ``a`` rail, a CNOT writes the carry-out, and UMA
    un-computes while leaving ``b <- a + b``.
    """
    num_qubits = 2 * num_bits + 2
    carry_out = num_qubits - 1
    gates: list[Gate] = []

    def maj(c: int, b: int, a: int) -> None:
        gates.extend([CNOT(a, b), CNOT(a, c)])
        gates.extend(_toffoli(c, b, a))

    def uma(c: int, b: int, a: int) -> None:
        gates.extend(_toffoli(c, b, a))
        gates.extend([CNOT(a, c), CNOT(c, b)])

    rails = [(2 * i + 1, 2 * i + 2) for i in range(num_bits)]  # (b[i], a[i])
    carries = [0] + [a for _, a in rails[:-1]]
    for (b, a), c in zip(rails, carries):
        maj(c, b, a)
    gates.append(CNOT(rails[-1][1], carry_out))
    for (b, a), c in reversed(list(zip(rails, carries))):
        uma(c, b, a)
    return Circuit(num_qubits, gates)


def corpus_specs() -> list[CorpusSpec]:
    """The full corpus, sorted by name (the on-disk order)."""
    specs: list[CorpusSpec] = []
    for n in (6, 8, 10, 12):
        for p in (1, 2):
            specs.append(
                CorpusSpec(
                    f"qaoa_maxcut_er_n{n:02d}_p{p}",
                    "qaoa-maxcut-er",
                    lambda n=n, p=p: qaoa_maxcut_er_circuit(n, p, seed=n),
                )
            )
    for n in (6, 8, 10, 12):
        specs.append(
            CorpusSpec(
                f"qaoa_maxcut_reg3_n{n:02d}_p1",
                "qaoa-maxcut-reg3",
                lambda n=n: qaoa_maxcut_regular_circuit(n, 1, seed=n),
            )
        )
    for n in (8, 12):
        specs.append(
            CorpusSpec(
                f"qaoa_ising_ring_n{n:02d}_p1",
                "qaoa-ising-ring",
                lambda n=n: qaoa_ising_ring_circuit(n, 1, seed=n),
            )
        )
    for n in (6, 10, 14):
        specs.append(CorpusSpec(f"ghz_n{n:02d}", "ghz", lambda n=n: ghz_circuit(n)))
    for n, depth in ((6, 40), (8, 60), (10, 80), (12, 100), (8, 120), (12, 160)):
        specs.append(
            CorpusSpec(
                f"cliffordt_n{n:02d}_d{depth:03d}",
                "clifford-t",
                lambda n=n, depth=depth: random_clifford_t_circuit(n, depth, seed=n * 17 + depth),
            )
        )
    for bits in (2, 3):
        specs.append(
            CorpusSpec(
                f"adder_cuccaro_{bits}bit",
                "adder",
                lambda bits=bits: cuccaro_adder_circuit(bits),
            )
        )
    return sorted(specs, key=lambda spec: spec.name)


def generate_corpus(directory: str | Path) -> list[Path]:
    """Write every corpus circuit to ``<directory>/<name>.qasm``.

    Byte-for-byte deterministic: same specs, same seeds, same files.
    Returns the written paths in name order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = []
    for spec in corpus_specs():
        path = target / f"{spec.name}.qasm"
        path.write_text(to_qasm(spec.build()))
        paths.append(path)
    return paths


def load_corpus(directory: str | Path) -> list[tuple[str, Circuit]]:
    """Parse every ``.qasm`` file in ``directory``, in name order."""
    entries = []
    for path in sorted(Path(directory).glob("*.qasm")):
        entries.append((path.stem, from_qasm(path.read_text())))
    return entries


def _family_of(name: str) -> str:
    for spec in corpus_specs():
        if spec.name == name:
            return spec.family
    return "external"


def benchmark_one(
    circuit: Circuit, device_name: str, compiler_name: str
) -> dict[str, object]:
    """Compile one corpus circuit on one device with one flow."""
    device = get_device(device_name)
    adapter = get_compiler(compiler_name)
    start = time.perf_counter()
    result = adapter.compile_circuit(circuit, device)
    compile_ms = (time.perf_counter() - start) * 1e3
    routed = result.circuit.decompose_swaps()
    report = schedule_report(routed)
    adjacent = cancel_gates(routed)
    commuting = cancel_gates(routed, commute=True)
    return {
        "device": device_name,
        "compiler": compiler_name,
        "routed_cnots": routed.num_cnots(),
        "num_swaps": result.num_swaps,
        "scheduled_depth": report.scheduled_depth,
        "duration_ns": report.duration_ns,
        "cancelled_cnots_adjacent": adjacent.num_cnots(),
        "cancelled_cnots_commute": commuting.num_cnots(),
        "cancellation_win": routed.num_cnots() - commuting.num_cnots(),
        "compile_ms": compile_ms,
    }


def _cache_probe(
    directory: Path, entries: Sequence[tuple[str, Circuit]]
) -> dict[str, object]:
    """Cold/warm compile-cache hit rates over the corpus pipeline path."""
    from repro.core import Pipeline, PipelineConfig
    from repro.core.cache import clear_compile_cache, compile_cache

    clear_compile_cache()
    snapshots = []
    for _ in range(2):
        for name, circuit in entries:
            config = PipelineConfig(
                problem=f"qasm:{directory / f'{name}.qasm'}",
                device=corpus_devices(circuit.num_qubits)[0],
                compiler="mtr",
            )
            Pipeline(config).run()
        stats = compile_cache().stats
        snapshots.append({"hits": stats.hits, "misses": stats.misses})
    cold, total = snapshots
    warm_hits = total["hits"] - cold["hits"]
    warm_misses = total["misses"] - cold["misses"]
    warm_lookups = warm_hits + warm_misses
    return {
        "cold": cold,
        "warm": {"hits": warm_hits, "misses": warm_misses},
        "warm_hit_rate": warm_hits / warm_lookups if warm_lookups else 0.0,
    }


def run_corpus_benchmark(directory: str | Path) -> dict[str, object]:
    """Compile the whole corpus; returns the ``BENCH_corpus.json`` payload."""
    target = Path(directory)
    entries = load_corpus(target)
    if not entries:
        raise ValueError(f"no .qasm files found in {target}")
    rows = []
    for name, circuit in entries:
        base = {
            "circuit": name,
            "family": _family_of(name),
            "num_qubits": circuit.num_qubits,
            "logical_gates": circuit.num_gates(),
            "logical_cnots": circuit.num_cnots(),
        }
        for device_name in corpus_devices(circuit.num_qubits):
            for compiler_name in CORPUS_COMPILERS:
                rows.append(base | benchmark_one(circuit, device_name, compiler_name))
    return {
        "num_circuits": len(entries),
        "rows": rows,
        "cache": _cache_probe(target, entries),
    }
