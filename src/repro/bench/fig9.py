"""Figure 9: accuracy and iteration count vs parameter-compression ratio.

The paper's figure has three rows per molecule over bond lengths:
simulated energy, energy difference to the true ground state, and
outer-loop iterations; configurations are 10/30/50/70/90% compression,
the random-50% baseline and full UCCSD.  ``fig9_data`` produces the same
series, and ``convergence_speedups`` the Section VI-C headline numbers
(14.3x / 4.8x / 2.5x / 1.6x / 1.1x on average, ~0.05% error at 50%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecules import molecule_by_name
from repro.vqe.scan import ScanPoint, bond_scan

#: The figure's configurations.
DEFAULT_CONFIGURATIONS = ["10%", "30%", "50%", "70%", "90%", "full", "rand50%"]


@dataclass
class Fig9Summary:
    """Aggregate view of one (molecule, configuration) series."""

    molecule: str
    configuration: str
    mean_error: float
    max_error: float
    mean_relative_error: float
    mean_iterations: float
    speedup_vs_full: float


def default_bond_lengths(molecule: str, count: int = 3, spread: float = 0.2) -> list[float]:
    """Bond lengths bracketing equilibrium (the paper samples every 0.1 A)."""
    equilibrium = molecule_by_name(molecule).equilibrium_bond_length
    if count == 1:
        return [round(equilibrium, 3)]
    offsets = np.linspace(-spread, spread, count)
    return [round(equilibrium + o, 3) for o in offsets]


def fig9_data(
    molecules: list[str],
    *,
    configurations: list[str] | None = None,
    bond_lengths: dict[str, list[float]] | None = None,
    points_per_molecule: int = 3,
    max_iterations: int = 200,
    random_repeats: int = 5,
) -> list[ScanPoint]:
    """Run the accuracy/convergence sweep.

    The random baseline is repeated ``random_repeats`` times with
    different seeds (the paper reports mean and standard deviation of
    five random selections).
    """
    configurations = configurations or DEFAULT_CONFIGURATIONS
    points: list[ScanPoint] = []
    for molecule in molecules:
        lengths = (bond_lengths or {}).get(
            molecule, default_bond_lengths(molecule, points_per_molecule)
        )
        plain = [c for c in configurations if not c.startswith("rand")]
        random_configs = [c for c in configurations if c.startswith("rand")]
        points.extend(
            bond_scan(molecule, lengths, plain, max_iterations=max_iterations)
        )
        for config in random_configs:
            for repeat in range(random_repeats):
                points.extend(
                    bond_scan(
                        molecule,
                        lengths,
                        [config],
                        max_iterations=max_iterations,
                        seed=1000 + repeat,
                    )
                )
    return points


def summarize(points: list[ScanPoint]) -> list[Fig9Summary]:
    """Collapse scan points into per-(molecule, configuration) summaries."""
    by_key: dict[tuple[str, str], list[ScanPoint]] = {}
    for point in points:
        by_key.setdefault((point.molecule, point.configuration), []).append(point)
    summaries = []
    for (molecule, configuration), group in sorted(by_key.items()):
        full = by_key.get((molecule, "full"), [])
        full_iterations = (
            np.mean([p.iterations for p in full]) if full else float("nan")
        )
        iterations = float(np.mean([p.iterations for p in group]))
        summaries.append(
            Fig9Summary(
                molecule=molecule,
                configuration=configuration,
                mean_error=float(np.mean([abs(p.error) for p in group])),
                max_error=float(np.max([abs(p.error) for p in group])),
                mean_relative_error=float(
                    np.mean([p.relative_error for p in group])
                ),
                mean_iterations=iterations,
                speedup_vs_full=(
                    full_iterations / iterations if iterations else float("nan")
                ),
            )
        )
    return summaries


def convergence_speedups(points: list[ScanPoint]) -> dict[str, float]:
    """Average iteration-count speedup of each configuration vs full UCCSD
    (the Section VI-C headline: 14.3/4.8/2.5/1.6/1.1x for 10..90%)."""
    summaries = summarize(points)
    by_config: dict[str, list[float]] = {}
    for summary in summaries:
        if summary.configuration == "full" or np.isnan(summary.speedup_vs_full):
            continue
        by_config.setdefault(summary.configuration, []).append(summary.speedup_vs_full)
    return {
        config: float(np.mean(values)) for config, values in sorted(by_config.items())
    }
