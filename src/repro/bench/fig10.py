"""Figure 10: noisy-simulation case studies.

Depolarizing noise with CNOT error rate 1e-4 (the paper's setting);
sweeps compression ratios and reports energy, error and iterations,
exposing the pruning-vs-noise trade-off the paper discusses (more
parameters help accuracy until gate error masks them).

Two noisy backends drive the sweep.  The exact density-matrix simulator
(the paper's LiH/NaH setting) is O(4^n) and capped at 12 qubits; the
stochastic Pauli-trajectory engine (:mod:`repro.sim.trajectory`) is an
unbiased O(K*2^n) estimate of the same channel and extends the study to
BH3/NH3/CH4 (14-16 qubits).  ``backend="auto"`` picks per molecule.
"""

from __future__ import annotations

from repro.bench.fig9 import default_bond_lengths
from repro.chem.molecules import molecule_by_name
from repro.sim.density_matrix import _MAX_QUBITS as _DENSITY_MATRIX_MAX_QUBITS
from repro.sim.noise import DepolarizingNoiseModel
from repro.vqe.scan import ScanPoint, bond_scan

DEFAULT_CONFIGURATIONS = ["10%", "30%", "50%", "70%", "90%"]
PAPER_CNOT_ERROR = 1e-4


def noisy_backend_for(molecule: str) -> str:
    """The noisy backend ``backend="auto"`` resolves to for a molecule."""
    num_qubits = molecule_by_name(molecule).active_space.num_qubits
    if num_qubits <= _DENSITY_MATRIX_MAX_QUBITS:
        return "density_matrix"
    return "trajectory"


def fig10_data(
    molecules: list[str] | None = None,
    *,
    configurations: list[str] | None = None,
    cnot_error: float = PAPER_CNOT_ERROR,
    backend: str = "auto",
    trajectories: int = 256,
    points_per_molecule: int = 2,
    max_iterations: int = 60,
) -> list[ScanPoint]:
    """Noisy VQE sweep (defaults match the paper's case studies).

    ``backend`` is ``"auto"`` (exact density matrix up to 12 qubits,
    Pauli trajectories above -- the only way BH3/NH3/CH4 sweeps can
    run), ``"density_matrix"``, or ``"trajectory"``; ``trajectories``
    sizes the stochastic estimate when the trajectory engine is used.
    """
    molecules = molecules or ["LiH", "NaH"]
    configurations = configurations or DEFAULT_CONFIGURATIONS
    noise = DepolarizingNoiseModel(two_qubit_error=cnot_error)
    points: list[ScanPoint] = []
    for molecule in molecules:
        lengths = default_bond_lengths(molecule, points_per_molecule)
        points.extend(
            bond_scan(
                molecule,
                lengths,
                configurations,
                backend=(
                    noisy_backend_for(molecule) if backend == "auto" else backend
                ),
                noise=noise,
                trajectories=trajectories,
                max_iterations=max_iterations,
            )
        )
    return points


def error_by_ratio(points: list[ScanPoint]) -> dict[str, dict[str, float]]:
    """molecule -> configuration -> mean |energy error| (Hartree)."""
    import numpy as np

    table: dict[str, dict[str, list[float]]] = {}
    for point in points:
        table.setdefault(point.molecule, {}).setdefault(
            point.configuration, []
        ).append(abs(point.error))
    return {
        molecule: {
            config: float(np.mean(values)) for config, values in sorted(configs.items())
        }
        for molecule, configs in sorted(table.items())
    }
