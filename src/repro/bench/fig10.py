"""Figure 10: noisy-simulation case studies on LiH and NaH.

Depolarizing noise with CNOT error rate 1e-4 (the paper's setting) via
the exact density-matrix backend; sweeps compression ratios and reports
energy, error and iterations, exposing the pruning-vs-noise trade-off the
paper discusses (more parameters help accuracy until gate error masks
them).
"""

from __future__ import annotations

from repro.bench.fig9 import default_bond_lengths
from repro.sim.noise import DepolarizingNoiseModel
from repro.vqe.scan import ScanPoint, bond_scan

DEFAULT_CONFIGURATIONS = ["10%", "30%", "50%", "70%", "90%"]
PAPER_CNOT_ERROR = 1e-4


def fig10_data(
    molecules: list[str] | None = None,
    *,
    configurations: list[str] | None = None,
    cnot_error: float = PAPER_CNOT_ERROR,
    points_per_molecule: int = 2,
    max_iterations: int = 60,
) -> list[ScanPoint]:
    """Noisy VQE sweep (defaults match the paper's case studies)."""
    molecules = molecules or ["LiH", "NaH"]
    configurations = configurations or DEFAULT_CONFIGURATIONS
    noise = DepolarizingNoiseModel(two_qubit_error=cnot_error)
    points: list[ScanPoint] = []
    for molecule in molecules:
        lengths = default_bond_lengths(molecule, points_per_molecule)
        points.extend(
            bond_scan(
                molecule,
                lengths,
                configurations,
                backend="density_matrix",
                noise=noise,
                max_iterations=max_iterations,
            )
        )
    return points


def error_by_ratio(points: list[ScanPoint]) -> dict[str, dict[str, float]]:
    """molecule -> configuration -> mean |energy error| (Hartree)."""
    import numpy as np

    table: dict[str, dict[str, list[float]]] = {}
    for point in points:
        table.setdefault(point.molecule, {}).setdefault(
            point.configuration, []
        ).append(abs(point.error))
    return {
        molecule: {
            config: float(np.mean(values)) for config, values in sorted(configs.items())
        }
        for molecule, configs in sorted(table.items())
    }
