"""Figure 11: fabrication yield of XTree17Q vs Grid17Q.

Sweeps fabrication precision (Gaussian sigma) 0.2 .. 0.6 GHz and reports
Monte-Carlo yield for both devices plus the ratio (the paper reports
roughly 8x in favor of the 16-edge X-Tree over the 24-edge grid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.registry import get_device
from repro.hardware.yield_model import yield_sweep

PAPER_PRECISIONS = (0.2, 0.3, 0.4, 0.5, 0.6)


@dataclass
class YieldComparison:
    precision: float
    xtree_yield: float
    grid_yield: float

    @property
    def advantage(self) -> float:
        if self.grid_yield == 0.0:
            return float("inf") if self.xtree_yield > 0 else 1.0
        return self.xtree_yield / self.grid_yield


def fig11_data(
    precisions: tuple[float, ...] = PAPER_PRECISIONS,
    *,
    trials: int = 2000,
    seed: int = 7,
    tree_device: str = "xtree17",
    grid_device: str = "grid17",
) -> list[YieldComparison]:
    xtree_estimates = yield_sweep(
        get_device(tree_device), list(precisions), trials=trials, seed=seed
    )
    grid_estimates = yield_sweep(
        get_device(grid_device), list(precisions), trials=trials, seed=seed
    )
    return [
        YieldComparison(
            precision=x.precision, xtree_yield=x.yield_rate, grid_yield=g.yield_rate
        )
        for x, g in zip(xtree_estimates, grid_estimates)
    ]


def mean_advantage(comparisons: list[YieldComparison]) -> float:
    """Geometric-mean yield advantage across finite, nonzero points."""
    import numpy as np

    ratios = [
        c.advantage
        for c in comparisons
        if c.grid_yield > 0 and c.xtree_yield > 0
    ]
    if not ratios:
        return float("nan")
    return float(np.exp(np.mean(np.log(ratios))))
