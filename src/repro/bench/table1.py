"""Table I: benchmark molecules and their original full-UCCSD cost."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.chem.molecules import BENCHMARK_MOLECULES

#: The paper's Table I: (qubits, #Pauli, #params, #gates, #CNOTs).
TABLE1_PAPER: dict[str, tuple[int, int, int, int, int]] = {
    "H2": (4, 12, 3, 150, 56),
    "LiH": (6, 40, 8, 610, 280),
    "NaH": (8, 84, 15, 1476, 768),
    "HF": (10, 144, 24, 2856, 1616),
    "BeH2": (12, 640, 92, 13704, 8064),
    "H2O": (12, 640, 92, 13704, 8064),
    "BH3": (14, 1488, 204, 34280, 21072),
    "NH3": (14, 1488, 204, 34280, 21072),
    "CH4": (16, 2688, 360, 66312, 42368),
}


@dataclass
class Table1Row:
    molecule: str
    num_qubits: int
    num_pauli: int
    num_parameters: int
    num_gates: int
    num_cnots: int

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (
            self.num_qubits,
            self.num_pauli,
            self.num_parameters,
            self.num_gates,
            self.num_cnots,
        )


def table1_row(molecule: str) -> Table1Row:
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    return Table1Row(
        molecule=molecule,
        num_qubits=problem.num_qubits,
        num_pauli=len(program),
        num_parameters=program.num_parameters,
        num_gates=program.gate_count(),
        num_cnots=program.cnot_count(),
    )


def table1_rows(molecules: list[str] | None = None) -> list[Table1Row]:
    return [table1_row(name) for name in (molecules or BENCHMARK_MOLECULES)]
