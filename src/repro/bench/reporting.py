"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(value.rjust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
