"""Experiment harness regenerating every table and figure of the paper.

Each module produces the rows/series of one evaluation artifact:

* :mod:`repro.bench.table1` -- benchmark molecules and original UCCSD cost;
* :mod:`repro.bench.fig9`   -- accuracy and convergence vs compression;
* :mod:`repro.bench.fig10`  -- noisy case studies (LiH, NaH);
* :mod:`repro.bench.fig11`  -- fabrication yield, XTree17Q vs Grid17Q;
* :mod:`repro.bench.table2` -- mapping overhead of the three flows;
* :mod:`repro.bench.ablation` -- design-choice ablations (ours).

Modules print the same row/series structure the paper reports so shapes
can be compared side by side; EXPERIMENTS.md records one full run.
"""

from repro.bench.reporting import format_table
from repro.bench.table1 import table1_rows, TABLE1_PAPER
from repro.bench.table2 import table2_rows, PAPER_RATIOS
from repro.bench.fig9 import fig9_data, convergence_speedups
from repro.bench.fig10 import fig10_data
from repro.bench.fig11 import fig11_data

__all__ = [
    "format_table",
    "table1_rows",
    "TABLE1_PAPER",
    "table2_rows",
    "PAPER_RATIOS",
    "fig9_data",
    "convergence_speedups",
    "fig10_data",
    "fig11_data",
]
