"""Qubit-wise-commuting measurement grouping.

The VQE inner loop measures every Hamiltonian Pauli string; strings that
agree qubit-by-qubit (up to identities) can share one measured circuit
with a single layer of basis-change gates (the paper notes such
measurement optimizations [63]-[67] are orthogonal to, and composable
with, its own techniques -- we include a greedy first-fit version).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pauli import PauliString, PauliSum


@dataclass
class MeasurementGroup:
    """Strings measurable in one shared basis."""

    num_qubits: int
    terms: list[tuple[complex, PauliString]] = field(default_factory=list)
    # The witness accumulates the union of the members' non-identity ops.
    witness: PauliString = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.witness is None:
            self.witness = PauliString.identity(self.num_qubits)

    def is_identity_group(self) -> bool:
        return self.witness.is_identity()

    def accepts(self, pauli: PauliString) -> bool:
        """Qubit-wise compatibility with the current witness."""
        overlap = self.witness.support_mask & pauli.support_mask
        differs = (self.witness.x ^ pauli.x) | (self.witness.z ^ pauli.z)
        return (overlap & differs) == 0

    def add(self, coefficient: complex, pauli: PauliString) -> None:
        if not self.accepts(pauli):
            raise ValueError(f"{pauli} is not qubit-wise compatible with {self.witness}")
        self.terms.append((coefficient, pauli))
        self.witness = PauliString(
            self.num_qubits, self.witness.x | pauli.x, self.witness.z | pauli.z
        )


def group_commuting_terms(hamiltonian: PauliSum) -> list[MeasurementGroup]:
    """Greedy first-fit QWC grouping (largest-weight strings first)."""
    groups: list[MeasurementGroup] = []
    terms = sorted(hamiltonian, key=lambda item: -item[1].weight)
    for coefficient, pauli in terms:
        placed = False
        for group in groups:
            if group.accepts(pauli):
                group.add(coefficient, pauli)
                placed = True
                break
        if not placed:
            group = MeasurementGroup(hamiltonian.num_qubits)
            group.add(coefficient, pauli)
            groups.append(group)
    return groups
