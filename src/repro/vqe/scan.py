"""Bond-length scans: the Figure 9 / Figure 10 workload driver.

A scan runs VQE for one molecule across bond lengths under a given ansatz
configuration (full UCCSD, compressed at some ratio, or random baseline)
and records simulated energy, error against the exact ground state, and
outer-loop iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.core.compression import compress_ansatz, random_ansatz
from repro.core.ir import PauliProgram
from repro.sim.exact import ground_state_energy
from repro.sim.noise import DepolarizingNoiseModel
from repro.vqe.runner import VQE


@dataclass
class ScanPoint:
    """One (molecule, bond length, configuration) VQE result."""

    molecule: str
    bond_length: float
    configuration: str
    energy: float
    exact_energy: float
    hf_energy: float
    iterations: int
    num_parameters: int

    @property
    def error(self) -> float:
        return self.energy - self.exact_energy

    @property
    def relative_error(self) -> float:
        return abs(self.error / self.exact_energy)


def _configure_program(
    program: PauliProgram,
    hamiltonian,
    configuration: str,
    seed: int,
) -> tuple[PauliProgram, str]:
    """Resolve a configuration label into a concrete program.

    Labels: "full", "NN%" (compression ratio), "randNN%" (random subset).
    """
    label = configuration.strip().lower()
    if label == "full":
        return program, "full"
    if label.startswith("rand") and label.endswith("%"):
        ratio = float(label[4:-1]) / 100.0
        return random_ansatz(program, ratio, seed=seed).program, label
    if label.endswith("%"):
        ratio = float(label[:-1]) / 100.0
        return compress_ansatz(program, hamiltonian, ratio).program, label
    raise ValueError(f"unknown configuration {configuration!r}")


def bond_scan(
    molecule: str,
    bond_lengths: list[float],
    configurations: list[str],
    *,
    backend: str = "statevector",
    noise: DepolarizingNoiseModel | None = None,
    max_iterations: int = 200,
    seed: int = 23,
) -> list[ScanPoint]:
    """Run the VQE sweep the accuracy/convergence figures are built from."""
    points: list[ScanPoint] = []
    for bond_length in bond_lengths:
        problem = build_molecule_hamiltonian(molecule, bond_length)
        full_program = build_uccsd_program(problem).program
        exact = ground_state_energy(problem.hamiltonian)
        for configuration in configurations:
            program, label = _configure_program(
                full_program, problem.hamiltonian, configuration, seed
            )
            vqe = VQE(
                program,
                problem.hamiltonian,
                backend=backend,
                noise=noise,
                max_iterations=max_iterations,
            )
            result = vqe.run()
            points.append(
                ScanPoint(
                    molecule=molecule,
                    bond_length=bond_length,
                    configuration=label,
                    energy=result.energy,
                    exact_energy=exact,
                    hf_energy=problem.hf_energy,
                    iterations=result.iterations,
                    num_parameters=program.num_parameters,
                )
            )
    return points
