"""Bond-length scans: the Figure 9 / Figure 10 workload driver.

A scan runs VQE for one molecule across bond lengths under a given ansatz
configuration (full UCCSD, compressed at some ratio, or random baseline)
and records simulated energy, error against the exact ground state, and
outer-loop iteration counts.

Every inner-loop energy evaluation goes through the simulation engine
selected by ``engine`` (see ``docs/performance.md``), and
:func:`sweep_energies` exposes the batched fast path directly: K
parameter sets stacked into one ``(K, 2**n)`` array that evolves per
gate in a single vectorized NumPy call -- the primitive behind energy
landscapes, multi-start screening, and the ``BENCH_sim.json`` speedup
benchmark.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.core.compression import compress_ansatz, random_ansatz
from repro.core.ir import PauliProgram
from repro.pauli import PauliSum
from repro.sim.exact import ground_state_energy
from repro.sim.noise import DepolarizingNoiseModel
from repro.sim.trajectory import check_executor, resolve_workers
from repro.vqe.runner import VQE


@dataclass
class ScanPoint:
    """One (molecule, bond length, configuration) VQE result."""

    molecule: str
    bond_length: float
    configuration: str
    energy: float
    exact_energy: float
    hf_energy: float
    iterations: int
    num_parameters: int

    @property
    def error(self) -> float:
        return self.energy - self.exact_energy

    @property
    def relative_error(self) -> float:
        return abs(self.error / self.exact_energy)


def _configure_program(
    program: PauliProgram,
    hamiltonian,
    configuration: str,
    seed: int,
) -> tuple[PauliProgram, str]:
    """Resolve a configuration label into a concrete program.

    Labels: "full", "NN%" (compression ratio), "randNN%" (random subset).
    """
    label = configuration.strip().lower()
    if label == "full":
        return program, "full"
    if label.startswith("rand") and label.endswith("%"):
        ratio = float(label[4:-1]) / 100.0
        return random_ansatz(program, ratio, seed=seed).program, label
    if label.endswith("%"):
        ratio = float(label[:-1]) / 100.0
        return compress_ansatz(program, hamiltonian, ratio).program, label
    raise ValueError(f"unknown configuration {configuration!r}")


def sweep_energies(
    program: PauliProgram,
    hamiltonian: PauliSum,
    parameter_sets: Sequence[Sequence[float]],
    *,
    engine: str = "batched",
    fusion: str = "2q",
    cache=True,
) -> np.ndarray:
    """Energies of K parameter sets for one (program, Hamiltonian).

    Under the default ``"batched"`` engine the K points are stacked into
    a ``(K, 2**n)`` statevector array and every ansatz term is applied
    to all points in one vectorized call; ``"fused"`` runs the
    gate-level equivalent (one chain-synthesized template, a cached
    fusion plan, per-row dense kernels; ``fusion``/``cache`` tune it);
    ``"inplace"``/``"legacy"`` evaluate sequentially (the comparison
    baselines in ``BENCH_sim.json``).
    """
    from repro.vqe.energy import StatevectorEnergy

    return StatevectorEnergy(
        program, hamiltonian, engine=engine, fusion=fusion, cache=cache
    ).values(np.asarray(parameter_sets, dtype=float))


#: Per-process memo of exact ground-state energies keyed by
#: (molecule, bond length): one scan evaluates each bond point under
#: several configurations, and the exact diagonalization is shared
#: (process-pool workers each warm their own copy as tasks arrive).
_EXACT_CACHE: dict[tuple[str, float | None], float] = {}


def _scan_point_task(task: tuple[str, float, str, dict[str, Any]]) -> ScanPoint:
    """Build and solve one (molecule, bond length, configuration) point.

    Module-level (not a closure) so :func:`bond_scan` can hand it to a
    ``ProcessPoolExecutor``; everything it needs travels in the task
    tuple, and the heavyweight inputs (Hamiltonian, exact energy) are
    rebuilt through per-process caches rather than pickled across.
    """
    molecule, bond_length, configuration, options = task
    problem = build_molecule_hamiltonian(molecule, bond_length)
    full_program = build_uccsd_program(problem).program
    key = (molecule, bond_length)
    if key not in _EXACT_CACHE:
        # lint: ignore[RR101] - idempotent memo: racing writers store equal values
        _EXACT_CACHE[key] = ground_state_energy(problem.hamiltonian)
    exact = _EXACT_CACHE[key]
    program, label = _configure_program(
        full_program, problem.hamiltonian, configuration, options["seed"]
    )
    vqe = VQE(
        program,
        problem.hamiltonian,
        backend=options["backend"],
        engine=options["engine"],
        fusion=options["fusion"],
        cache=options["cache"],
        array_backend=options["array_backend"],
        gradient=options["gradient"],
        noise=options["noise"],
        trajectories=options["trajectories"],
        max_iterations=options["max_iterations"],
    )
    result = vqe.run()
    return ScanPoint(
        molecule=molecule,
        bond_length=bond_length,
        configuration=label,
        energy=result.energy,
        exact_energy=exact,
        hf_energy=problem.hf_energy,
        iterations=result.iterations,
        num_parameters=program.num_parameters,
    )


def bond_scan(
    molecule: str,
    bond_lengths: list[float],
    configurations: list[str],
    *,
    backend: str = "statevector",
    engine: str = "inplace",
    fusion: str = "2q",
    cache=True,
    array_backend: str | None = None,
    gradient: str | None = None,
    noise: DepolarizingNoiseModel | None = None,
    trajectories: int = 256,
    max_iterations: int = 200,
    seed: int = 23,
    executor: str = "serial",
    workers: int | str | None = None,
) -> list[ScanPoint]:
    """Run the VQE sweep the accuracy/convergence figures are built from.

    ``backend="trajectory"`` (with ``noise=`` and ``trajectories=``)
    selects the stochastic Pauli-trajectory noisy path, which is the
    only way to run noisy sweeps on >12-qubit molecules; ``seed`` only
    feeds the configuration randomization (``randNN%`` ansatz subsets).
    ``fusion``/``cache`` tune the ``engine="fused"`` gate-level path
    (and the cache also dedupes repeated scan points' compile work).

    ``executor``/``workers`` fan the (bond length, configuration) grid
    over a thread or process pool; every point is an independent
    module-level task, so results are identical point for point across
    ``executor="serial" | "thread" | "process"`` and any worker count
    (each VQE run is deterministic given its knobs).  ``array_backend``
    selects the tensor library for the energy evaluations
    (:mod:`repro.sim.backend`).
    """
    check_executor(executor)
    options: dict[str, Any] = {
        "backend": backend,
        "engine": engine,
        "fusion": fusion,
        "cache": cache,
        "array_backend": array_backend,
        "gradient": gradient,
        "noise": noise,
        "trajectories": trajectories,
        "max_iterations": max_iterations,
        "seed": seed,
    }
    tasks = [
        (molecule, bond_length, configuration, options)
        for bond_length in bond_lengths
        for configuration in configurations
    ]
    if not tasks:
        return []
    count = resolve_workers(workers, len(tasks))
    if executor == "serial" or count == 1 or len(tasks) == 1:
        return [_scan_point_task(task) for task in tasks]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=count) as pool:
            return list(pool.map(_scan_point_task, tasks))
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(_scan_point_task, tasks))
