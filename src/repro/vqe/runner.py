"""The VQE object: ansatz + Hamiltonian + optimizer + backend.

Mirrors the paper's execution flow (Figure 3): the inner loop evaluates
``E(theta)`` through one of the energy backends, the outer loop adjusts
``theta`` with SLSQP, and the reported cost is the number of outer
iterations to convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ir import PauliProgram
from repro.pauli import PauliSum
from repro.sim.noise import DepolarizingNoiseModel
from repro.vqe.energy import DensityMatrixEnergy, SamplingEnergy, StatevectorEnergy
from repro.vqe.optimizer import OptimizationOutcome, minimize_energy


@dataclass
class VQEResult:
    """Outcome of one VQE run."""

    energy: float
    parameters: np.ndarray
    iterations: int
    function_evaluations: int
    success: bool
    history: list[float]
    backend: str

    @property
    def hartree_fock_energy(self) -> float:
        """The first evaluated energy (the all-zero Hartree-Fock start)."""
        return self.history[0] if self.history else float("nan")


class VQE:
    """Variational quantum eigensolver over a Pauli-string program."""

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        *,
        backend: str = "statevector",
        noise: DepolarizingNoiseModel | None = None,
        shots_per_group: int = 4096,
        seed: int | None = 17,
        method: str = "SLSQP",
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ):
        if backend == "statevector":
            self.energy = StatevectorEnergy(program, hamiltonian)
        elif backend == "density_matrix":
            self.energy = DensityMatrixEnergy(program, hamiltonian, noise)
        elif backend == "sampling":
            self.energy = SamplingEnergy(
                program, hamiltonian, shots_per_group=shots_per_group, seed=seed
            )
        else:
            raise ValueError(
                "backend must be 'statevector', 'density_matrix' or 'sampling'"
            )
        self.backend = backend
        self.program = program
        self.hamiltonian = hamiltonian
        self.method = method
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, initial: Sequence[float] | None = None) -> VQEResult:
        outcome: OptimizationOutcome = minimize_energy(
            self.energy,
            self.program.num_parameters,
            method=self.method,
            initial=initial,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        return VQEResult(
            energy=outcome.energy,
            parameters=outcome.parameters,
            iterations=outcome.iterations,
            function_evaluations=outcome.function_evaluations,
            success=outcome.success,
            history=outcome.history,
            backend=self.backend,
        )
