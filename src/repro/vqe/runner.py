"""The VQE object: ansatz + Hamiltonian + optimizer + backend.

Mirrors the paper's execution flow (Figure 3): the inner loop evaluates
``E(theta)`` through one of the energy backends, the outer loop adjusts
``theta`` with SLSQP, and the reported cost is the number of outer
iterations to convergence.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.ir import PauliProgram
from repro.pauli import PauliSum
from repro.sim.noise import DepolarizingNoiseModel
from repro.vqe.energy import (
    DensityMatrixEnergy,
    SamplingEnergy,
    StatevectorEnergy,
    TrajectoryEnergy,
)
from repro.vqe.optimizer import OptimizationOutcome, minimize_energy


def _reject_noise(backend: str, noise: DepolarizingNoiseModel | None) -> None:
    """Fail loudly when a noise model would be silently discarded.

    A user "reproducing Figure 10" through a backend that cannot apply
    gate noise must get an error, not noiseless numbers labeled noisy.
    """
    if noise is not None and not noise.is_trivial():
        raise ValueError(
            f"VQE backend {backend!r} cannot apply a noise model, so the "
            "given noise= would be silently ignored; use "
            "backend='trajectory' (unbiased, scales past 12 qubits) or "
            "backend='density_matrix' (exact, <= 12 qubits) for noisy "
            "energies, or pass noise=None"
        )


def _statevector_backend(
    program, hamiltonian, *, noise, shots_per_group, seed, engine, fusion, cache,
    array_backend=None,
):
    _reject_noise("statevector", noise)
    return StatevectorEnergy(
        program, hamiltonian, engine=engine, fusion=fusion, cache=cache,
        array_backend=array_backend,
    )


def _density_matrix_backend(program, hamiltonian, *, noise, shots_per_group, seed):
    return DensityMatrixEnergy(program, hamiltonian, noise)


def _trajectory_backend(
    program, hamiltonian, *, noise, shots_per_group, seed, trajectories,
    array_backend=None, executor="serial", workers=None,
):
    return TrajectoryEnergy(
        program, hamiltonian, noise, trajectories=trajectories, seed=seed,
        array_backend=array_backend, executor=executor, workers=workers,
    )


def _sampling_backend(program, hamiltonian, *, noise, shots_per_group, seed):
    _reject_noise("sampling", noise)
    return SamplingEnergy(
        program, hamiltonian, shots_per_group=shots_per_group, seed=seed
    )


#: Registry of energy-backend factories; keys are the valid ``backend``
#: names for :class:`VQE`.  Extend with :func:`register_backend`.
ENERGY_BACKENDS: dict[str, Callable[..., Any]] = {
    "statevector": _statevector_backend,
    "density_matrix": _density_matrix_backend,
    "trajectory": _trajectory_backend,
    "sampling": _sampling_backend,
}


def available_backends() -> list[str]:
    return sorted(ENERGY_BACKENDS)


def register_backend(
    name: str, factory: Callable[..., Any], *, overwrite: bool = False
) -> None:
    """Register an energy-backend factory under ``name``.

    The factory is called as ``factory(program, hamiltonian, noise=...,
    shots_per_group=..., seed=...)`` and must return a callable mapping
    a parameter vector to a float energy.  Factories that declare an
    ``engine``, ``trajectories``, ``fusion``, ``cache``,
    ``array_backend``, ``executor``, or ``workers`` keyword (or
    ``**kwargs``) additionally receive the simulation-engine name
    (:data:`repro.sim.statevector.ENGINES`), the trajectory count,
    the gate-fusion level, the compile-cache selector, the array-backend
    name (:mod:`repro.sim.backend`), and/or the scale-out executor
    knobs; backends that don't use them may simply not declare them.  A
    factory that cannot honor a non-trivial ``noise`` model must raise
    rather than drop it silently.
    """
    if name in ENERGY_BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    ENERGY_BACKENDS[name] = factory


@dataclass
class VQEResult:
    """Outcome of one VQE run."""

    energy: float
    parameters: np.ndarray
    iterations: int
    function_evaluations: int
    success: bool
    history: list[float]
    backend: str

    @property
    def hartree_fock_energy(self) -> float:
        """The first evaluated energy (the all-zero Hartree-Fock start).

        NaN when the optimizer recorded no evaluations at all.
        """
        return float(self.history[0]) if len(self.history) > 0 else float("nan")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the run."""
        return {
            "energy": float(self.energy),
            "parameters": [float(p) for p in np.asarray(self.parameters).ravel()],
            "iterations": int(self.iterations),
            "function_evaluations": int(self.function_evaluations),
            "success": bool(self.success),
            "history": [float(e) for e in self.history],
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "VQEResult":
        return cls(
            energy=float(data["energy"]),
            parameters=np.asarray(data["parameters"], dtype=float),
            iterations=int(data["iterations"]),
            function_evaluations=int(data["function_evaluations"]),
            success=bool(data["success"]),
            history=[float(e) for e in data["history"]],
            backend=str(data["backend"]),
        )


class VQE:
    """Variational quantum eigensolver over a Pauli-string program."""

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        *,
        backend: str = "statevector",
        engine: str = "inplace",
        fusion: str = "2q",
        cache=True,
        array_backend: str | None = None,
        executor: str = "serial",
        workers: int | str | None = None,
        gradient: str | None = None,
        noise: DepolarizingNoiseModel | None = None,
        shots_per_group: int = 4096,
        trajectories: int = 256,
        seed: int | None = 17,
        method: str = "SLSQP",
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ):
        from repro.sim.backend import get_array_backend
        from repro.sim.statevector import check_engine
        from repro.sim.trajectory import check_executor

        check_engine(engine)
        get_array_backend(array_backend)  # validate the name early
        check_executor(executor)
        try:
            factory = ENERGY_BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown VQE backend {backend!r}; valid backends: "
                f"{', '.join(available_backends())}"
            ) from None
        factory_kwargs: dict[str, Any] = {
            "noise": noise,
            "shots_per_group": shots_per_group,
            "seed": seed,
        }
        # Only hand optional knobs to factories that take them, so
        # backends registered against older signatures keep working.
        factory_params = inspect.signature(factory).parameters
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in factory_params.values()
        )
        for knob, value in (
            ("engine", engine),
            ("trajectories", trajectories),
            ("fusion", fusion),
            ("cache", cache),
            ("array_backend", array_backend),
            ("executor", executor),
            ("workers", workers),
        ):
            if knob in factory_params or accepts_kwargs:
                factory_kwargs[knob] = value
        self.energy = factory(program, hamiltonian, **factory_kwargs)
        if gradient is not None:
            from repro.vqe.gradient import GRADIENT_METHODS

            try:
                gradient_cls = GRADIENT_METHODS[gradient]
            except KeyError:
                raise ValueError(
                    f"unknown gradient method {gradient!r}; valid methods: "
                    f"{', '.join(sorted(GRADIENT_METHODS))}"
                ) from None
            if backend != "statevector":
                raise ValueError(
                    "analytic gradients require the statevector backend"
                )
            # Share the backend's evaluator so the gradient honors the
            # engine selection and its evaluations are accounted.
            self.gradient = gradient_cls(program, hamiltonian, energy=self.energy)
        else:
            self.gradient = None
        self.backend = backend
        self.engine = engine
        self.fusion = fusion
        self.cache = cache
        self.array_backend = array_backend
        self.executor = executor
        self.workers = workers
        self.program = program
        self.hamiltonian = hamiltonian
        self.method = method
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, initial: Sequence[float] | None = None) -> VQEResult:
        outcome: OptimizationOutcome = minimize_energy(
            self.energy,
            self.program.num_parameters,
            method=self.method,
            initial=initial,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            gradient=self.gradient.gradient if self.gradient is not None else None,
            value_and_gradient=(
                self.gradient.value_and_gradient
                if self.gradient is not None
                # Fused objectives are only a win when value and gradient
                # actually share the forward sweep (adjoint mode); shift-
                # rule gradients stay a separate jac callback so scipy's
                # line-search points don't pay full gradients.
                and getattr(self.gradient, "fused_evaluation", False)
                else None
            ),
        )
        return VQEResult(
            energy=outcome.energy,
            parameters=outcome.parameters,
            iterations=outcome.iterations,
            function_evaluations=outcome.function_evaluations,
            success=outcome.success,
            history=outcome.history,
            backend=self.backend,
        )
