"""VQE driver (Section II-B execution flow).

* :mod:`repro.vqe.energy`      -- energy evaluators: exact statevector
  (Aer-statevector stand-in), exact density matrix with noise
  (Aer-qasm + noise-model stand-in), stochastic Pauli-trajectory noisy
  energies (the unbiased noisy path past 12 qubits), and shot-based
  sampling;
* :mod:`repro.vqe.measurement` -- qubit-wise-commuting measurement
  grouping (the inner loop);
* :mod:`repro.vqe.gradient`    -- analytic gradients: adjoint mode (one
  forward + one backward sweep) and the parameter-shift reference;
* :mod:`repro.vqe.optimizer`   -- SLSQP/COBYLA outer loop [55] with
  iteration accounting and optional analytic Jacobian;
* :mod:`repro.vqe.runner`      -- the VQE object tying them together
  (energy backends x simulation engines x gradient methods);
* :mod:`repro.vqe.scan`        -- bond-length scans (Figure 9 workloads)
  and batched parameter sweeps (:func:`repro.vqe.scan.sweep_energies`).
"""

from repro.vqe.energy import (
    StatevectorEnergy,
    DensityMatrixEnergy,
    TrajectoryEnergy,
    SamplingEnergy,
)
from repro.vqe.gradient import AdjointGradient, ParameterShiftGradient
from repro.vqe.measurement import group_commuting_terms, MeasurementGroup
from repro.vqe.optimizer import minimize_energy, OptimizationOutcome
from repro.vqe.runner import VQE, VQEResult, available_backends, register_backend
from repro.vqe.scan import bond_scan, ScanPoint, sweep_energies

__all__ = [
    "StatevectorEnergy",
    "DensityMatrixEnergy",
    "TrajectoryEnergy",
    "SamplingEnergy",
    "AdjointGradient",
    "ParameterShiftGradient",
    "group_commuting_terms",
    "MeasurementGroup",
    "minimize_energy",
    "OptimizationOutcome",
    "VQE",
    "VQEResult",
    "available_backends",
    "register_backend",
    "bond_scan",
    "ScanPoint",
    "sweep_energies",
]
