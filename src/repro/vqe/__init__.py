"""VQE driver (Section II-B execution flow).

* :mod:`repro.vqe.energy`      -- energy evaluators: exact statevector
  (Aer-statevector stand-in), exact density matrix with noise
  (Aer-qasm + noise-model stand-in), and shot-based sampling;
* :mod:`repro.vqe.measurement` -- qubit-wise-commuting measurement
  grouping (the inner loop);
* :mod:`repro.vqe.optimizer`   -- SLSQP/COBYLA outer loop [55] with
  iteration accounting;
* :mod:`repro.vqe.runner`      -- the VQE object tying them together;
* :mod:`repro.vqe.scan`        -- bond-length scans (Figure 9 workloads).
"""

from repro.vqe.energy import (
    StatevectorEnergy,
    DensityMatrixEnergy,
    SamplingEnergy,
)
from repro.vqe.measurement import group_commuting_terms, MeasurementGroup
from repro.vqe.optimizer import minimize_energy, OptimizationOutcome
from repro.vqe.runner import VQE, VQEResult
from repro.vqe.scan import bond_scan, ScanPoint

__all__ = [
    "StatevectorEnergy",
    "DensityMatrixEnergy",
    "SamplingEnergy",
    "group_commuting_terms",
    "MeasurementGroup",
    "minimize_energy",
    "OptimizationOutcome",
    "VQE",
    "VQEResult",
    "bond_scan",
    "ScanPoint",
]
