"""Energy evaluators: E(theta) = <psi(theta)| H |psi(theta)>.

Four backends mirror the paper's experimental setups:

* :class:`StatevectorEnergy` -- exact, fast (Pauli-level ansatz evolution
  plus the grouped expectation engine); the "noise-free simulations ...
  with Qiskit Aer statevector simulator".
* :class:`DensityMatrixEnergy` -- exact open-system propagation of the
  chain-synthesized circuit with depolarizing CNOT noise; the "noisy
  simulations ... with Qiskit Aer qasm simulator" (Figure 10).  O(4^n),
  capped at 12 qubits.
* :class:`TrajectoryEnergy` -- the same depolarizing channel unraveled
  into K stochastic Pauli trajectories (:mod:`repro.sim.trajectory`):
  an unbiased O(K*T*2^n) estimate of the density-matrix energy, the
  noisy path past 12 qubits (Figure 10 on BH3/NH3/CH4).
* :class:`SamplingEnergy` -- finite-shot estimation with qubit-wise
  commuting measurement grouping (the realistic inner loop).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bits import popcount
from repro.core.ir import PauliProgram
from repro.core.seeding import seeded_rng
from repro.pauli import PauliString, PauliSum
from repro.sim.backend import ArrayBackend, get_array_backend
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.expectation import ExpectationEngine
from repro.sim.noise import DepolarizingNoiseModel
from repro.sim.pauli_evolution import PauliEvolutionWorkspace, evolve_pauli_sequence
from repro.sim.statevector import basis_state, check_engine, checked_probabilities
from repro.vqe.measurement import MeasurementGroup, group_commuting_terms


def _initial_state(program: PauliProgram) -> np.ndarray:
    index = 0
    for qubit in program.initial_occupations:
        index |= 1 << qubit
    return basis_state(program.num_qubits, index)


class StatevectorEnergy:
    """Exact noise-free energy of a Pauli program.

    ``engine`` selects the simulation fast path (see
    ``docs/performance.md``):

    * ``"inplace"`` (default) -- evolves a preallocated buffer with the
      allocation-free workspace kernels; fastest single-point path.
    * ``"batched"`` -- same single-point path, plus :meth:`values`
      evaluates K parameter sets through one ``(K, 2**n)`` stack.
    * ``"fused"`` -- chain-synthesizes the program once into a gate
      template, fuses adjacent gates into dense unitary blocks
      (:mod:`repro.compiler.fusion`; the plan is content-addressed, so
      every evaluation reuses it), and rebinds only the per-term RZ
      angles.  :meth:`values` binds all K rows at once into
      ``(K, 4, 4)`` matrix stacks applied by batched GEMMs -- the
      gate-level sweep fast path.  ``fusion`` selects the fusion level
      (:data:`repro.compiler.fusion.FUSION_LEVELS`) and ``cache`` the
      compile cache (True = global, False = off, or an instance).
    * ``"legacy"`` -- the original out-of-place per-term evolution, kept
      as the reference semantics and benchmark baseline.
    """

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        *,
        engine: str = "inplace",
        fusion: str = "2q",
        cache=True,
        array_backend: str | ArrayBackend | None = None,
    ):
        if program.num_qubits != hamiltonian.num_qubits:
            raise ValueError("program and Hamiltonian sizes differ")
        check_engine(engine)
        self.array_backend = get_array_backend(array_backend)
        if not self.array_backend.supports_inplace_kernels and engine != "batched":
            raise ValueError(
                f"array backend {self.array_backend.name!r} has no in-place "
                f"kernel support; engine={engine!r} is numpy-specific -- "
                "use engine='batched' (the backend-generic sweep path)"
            )
        if engine == "fused":
            from repro.compiler.fusion import check_fusion_level

            check_fusion_level(fusion)
        self.program = program
        self.hamiltonian = hamiltonian
        self.engine = ExpectationEngine(hamiltonian, backend=self.array_backend)
        self.simulation_engine = engine
        self.fusion = fusion
        self.cache = cache
        self._reference = _initial_state(program)
        self._paulis = program.paulis()
        self._workspace: PauliEvolutionWorkspace | None = None
        self._buffer: np.ndarray | None = None
        self._template: tuple | None = None
        self.evaluations = 0

    def _fused_template(self):
        """The chain-synthesized gate template and its RZ positions."""
        if self._template is None:
            from repro.compiler.synthesis import (
                synthesize_program_chain_with_positions,
            )

            self._template = synthesize_program_chain_with_positions(
                self.program, np.zeros(self.program.num_parameters)
            )
        return self._template

    def _fused_stack(self, parameter_sets: np.ndarray) -> np.ndarray:
        """Evolve K parameter rows through the fused template at once."""
        from repro.compiler.fusion import fusion_plan

        circuit, positions = self._fused_template()
        bound = self.program.bound_angles(parameter_sets)
        # Chain synthesis realizes exp(i a P) with RZ(-2a) on the root.
        overrides = {
            position: -2.0 * bound[:, term]
            for term, position in enumerate(positions)
            if position is not None
        }
        plan = fusion_plan(circuit, level=self.fusion, cache=self.cache)
        fused = plan.bind_sweep(circuit, overrides)
        stack = np.zeros((len(parameter_sets), self._reference.shape[0]), dtype=complex)
        stack[:, 0] = 1.0  # the template includes the Hartree-Fock X gates
        return fused.apply(stack)

    def state(self, parameters: Sequence[float]) -> np.ndarray:
        """The ansatz state ``|psi(theta)>``.

        The fast engines return a view of an internal buffer that is
        overwritten by the next evaluation; copy it to keep it.
        """
        if self.simulation_engine == "fused":
            return self._fused_stack(
                np.asarray(parameters, dtype=float).reshape(1, -1)
            )[0]
        bound = self.program.bound_terms(parameters)
        if self.simulation_engine == "legacy":
            return evolve_pauli_sequence(bound, self._reference)
        if self._buffer is None:
            self._buffer = np.empty_like(self._reference)
            self._workspace = PauliEvolutionWorkspace(self._reference.shape)
        np.copyto(self._buffer, self._reference)
        angles = np.array([angle for _, angle in bound], dtype=float)
        return self._workspace.evolve_inplace(self._paulis, angles, self._buffer)

    #: Rows per batched block.  Each block keeps ``block x 2**n`` state
    #: plus one scratch buffer resident; 8 rows at 12 qubits is ~1 MiB,
    #: inside L2 on commodity cores -- larger stacks go memory-bound and
    #: lose the vectorization win (measured in ``BENCH_sim.json``).
    batch_block_size = 8

    def values(self, parameter_sets: Sequence[Sequence[float]]) -> np.ndarray:
        """Energies of K parameter sets, shape ``(K,)``.

        Under the ``"batched"`` engine the points evolve per gate in
        vectorized cache-sized blocks (see :attr:`batch_block_size`);
        the other engines fall back to a sequential loop (the baseline
        the ``BENCH_sim.json`` speedup is measured against).
        """
        parameter_sets = np.asarray(parameter_sets, dtype=float)
        if self.simulation_engine == "fused":
            self.evaluations += len(parameter_sets)
            return self.engine.values(self._fused_stack(parameter_sets))
        if self.simulation_engine != "batched":
            return np.array([self(theta) for theta in parameter_sets])
        from repro.sim.batched import sweep_expectations

        self.evaluations += len(parameter_sets)
        return sweep_expectations(
            self._paulis,
            self.program.bound_angles(parameter_sets),
            self._reference,
            self.engine,
            block_size=self.batch_block_size,
            backend=self.array_backend,
        )

    def __call__(self, parameters: Sequence[float]) -> float:
        if not self.array_backend.supports_inplace_kernels:
            # Single points ride the backend-generic sweep path (the
            # workspace kernels behind state() are numpy-only).
            return float(self.values(np.reshape(parameters, (1, -1)))[0])
        self.evaluations += 1
        return self.engine.value(self.state(parameters))


class DensityMatrixEnergy:
    """Exact noisy energy: gate-level circuit + depolarizing channels."""

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        noise: DepolarizingNoiseModel | None = None,
    ):
        from repro.compiler.synthesis import synthesize_program_chain

        self.program = program
        self.hamiltonian = hamiltonian
        self.noise = noise or DepolarizingNoiseModel(two_qubit_error=1e-4)
        self._synthesize = synthesize_program_chain
        self._observable_matrix = hamiltonian.to_matrix()
        self.evaluations = 0

    def __call__(self, parameters: Sequence[float]) -> float:
        self.evaluations += 1
        circuit = self._synthesize(self.program, parameters)
        simulator = DensityMatrixSimulator(self.program.num_qubits, self.noise)
        simulator.run(circuit)
        return simulator.expectation_matrix(self._observable_matrix)


class TrajectoryEnergy:
    """Noisy energy by stochastic Pauli-trajectory averaging.

    Unbiased estimator of the :class:`DensityMatrixEnergy` result at
    O(K*T*2^n) instead of O(4^n) -- the only noisy backend that scales
    past the density-matrix simulator's 12-qubit cap.  After each call,
    :attr:`last_standard_error` / :attr:`last_error_events` report the
    Monte-Carlo error bar and the number of injected error Paulis.

    With the default ``common_randomness=True`` (and a non-``None``
    seed), every evaluation reuses the same noise realizations, making
    ``E(theta)`` a deterministic function the outer-loop optimizer can
    minimize (the classic common-random-numbers smoothing; the estimate
    stays unbiased over the seed distribution).  Set it to ``False`` for
    fresh realizations per call (independent error bars).
    """

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        noise: DepolarizingNoiseModel | None = None,
        *,
        trajectories: int = 256,
        seed: int | None = 17,
        block_size: int | None = None,
        common_randomness: bool = True,
        executor: str = "serial",
        workers: "int | str | None" = None,
        array_backend: str | ArrayBackend | None = None,
    ):
        from repro.compiler.synthesis import synthesize_program_chain
        from repro.sim.trajectory import DEFAULT_BLOCK_SIZE, check_executor

        if program.num_qubits != hamiltonian.num_qubits:
            raise ValueError("program and Hamiltonian sizes differ")
        self.program = program
        self.hamiltonian = hamiltonian
        self.noise = noise or DepolarizingNoiseModel(two_qubit_error=1e-4)
        self.trajectories = trajectories
        self.block_size = block_size or DEFAULT_BLOCK_SIZE
        self.common_randomness = common_randomness
        self.executor = check_executor(executor)
        self.workers = workers
        self.array_backend = get_array_backend(array_backend)
        self.engine = ExpectationEngine(hamiltonian, backend=self.array_backend)
        self._synthesize = synthesize_program_chain
        self._seed = seed
        self._seeds = np.random.SeedSequence(seed) if seed is not None else None
        self.evaluations = 0
        self.last_standard_error = float("nan")
        self.last_error_events = 0

    def _next_seed(self):
        if self._seeds is None:
            return None
        if self.common_randomness:
            return self._seed
        return self._seeds.spawn(1)[0]

    def __call__(self, parameters: Sequence[float]) -> float:
        from repro.sim.trajectory import trajectory_estimate

        self.evaluations += 1
        circuit = self._synthesize(self.program, parameters)
        estimate = trajectory_estimate(
            circuit,
            self.engine,
            self.noise,
            trajectories=self.trajectories,
            seed=self._next_seed(),
            block_size=self.block_size,
            executor=self.executor,
            workers=self.workers,
            backend=self.array_backend,
        )
        self.last_standard_error = estimate.standard_error
        self.last_error_events = estimate.error_events
        return estimate.value


class SamplingEnergy:
    """Finite-shot energy with qubit-wise-commuting grouping.

    Each group is measured in a common basis: the basis-change layer from
    the group's "witness" string is appended and the group's terms are
    estimated from the sampled bitstrings' parities.
    """

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        shots_per_group: int = 4096,
        seed: int | None = 17,
    ):
        self.program = program
        self.hamiltonian = hamiltonian
        self.shots_per_group = shots_per_group
        self.groups: list[MeasurementGroup] = group_commuting_terms(hamiltonian)
        self._reference = _initial_state(program)
        self._rng = seeded_rng(seed)
        self.evaluations = 0

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def __call__(self, parameters: Sequence[float]) -> float:
        self.evaluations += 1
        state = evolve_pauli_sequence(
            self.program.bound_terms(parameters), self._reference
        )
        total = 0.0
        for group in self.groups:
            if group.is_identity_group():
                total += sum(c.real for c, _ in group.terms)
                continue
            rotated = self._rotate(state, group.witness)
            # Basis changes are unitary, so a norm leak here is an
            # evolution bug -- surface it (shared check with
            # StatevectorSimulator.sample) instead of renormalizing.
            probabilities = checked_probabilities(
                rotated, context="rotated measurement state"
            )
            samples = self._rng.choice(
                len(probabilities), size=self.shots_per_group, p=probabilities
            )
            for coefficient, pauli in group.terms:
                if pauli.is_identity():
                    total += coefficient.real
                    continue
                mask = np.uint64(pauli.support_mask)
                parities = popcount(samples.astype(np.uint64) & mask) & 1
                expectation = 1.0 - 2.0 * parities.mean()
                total += coefficient.real * float(expectation)
        return total

    @staticmethod
    def _rotate(state: np.ndarray, witness: PauliString) -> np.ndarray:
        """Apply the basis-change layer diagonalizing the witness string."""
        from repro.circuit import Circuit
        from repro.compiler.synthesis import basis_change_gates
        from repro.sim.statevector import apply_circuit

        circuit = Circuit(witness.num_qubits, basis_change_gates(witness))
        return apply_circuit(circuit, state)
