"""Classical outer-loop optimizers (Section II-B).

The paper uses Sequential Least Squares Programming [55]; we wrap scipy's
SLSQP (plus COBYLA as an alternative) and report the figure the paper's
convergence plots use: the number of *outer-loop iterations*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np
from scipy.optimize import minimize

_SUPPORTED = ("SLSQP", "COBYLA", "L-BFGS-B", "Powell")


@dataclass
class OptimizationOutcome:
    """Converged parameters plus the iteration accounting."""

    energy: float
    parameters: np.ndarray
    iterations: int              # outer-loop steps (paper's convergence metric)
    function_evaluations: int
    success: bool
    message: str
    history: list[float] = field(default_factory=list)


def minimize_energy(
    energy: Callable[[Sequence[float]], float],
    num_parameters: int,
    *,
    method: str = "SLSQP",
    initial: Sequence[float] | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    gradient: Callable[[Sequence[float]], np.ndarray] | None = None,
    value_and_gradient: Callable[[Sequence[float]], tuple[float, np.ndarray]] | None = None,
) -> OptimizationOutcome:
    """Minimize an energy functional from the Hartree-Fock start.

    The all-zero start makes the first iterate exactly the Hartree-Fock
    energy, which is the standard VQE initialization.  ``gradient``, when
    given, is handed to scipy as the analytic Jacobian (used by SLSQP
    and L-BFGS-B; the derivative-free methods ignore it), replacing the
    2P-evaluations-per-step numerical differencing with e.g. the adjoint
    gradient's single forward/backward sweep.  ``value_and_gradient``
    (preferred when available) supplies both at once through scipy's
    ``jac=True`` protocol, sharing the forward sweep between objective
    and Jacobian.
    """
    if method not in _SUPPORTED:
        raise ValueError(f"method must be one of {_SUPPORTED}")
    x0 = np.zeros(num_parameters) if initial is None else np.asarray(initial, float)
    if x0.shape != (num_parameters,):
        raise ValueError("initial parameter vector has the wrong length")

    history: list[float] = []

    def tracked(parameters: np.ndarray) -> float:
        value = float(energy(parameters))
        history.append(value)
        return value

    if num_parameters == 0:
        value = float(energy(np.zeros(0)))
        return OptimizationOutcome(
            energy=value,
            parameters=np.zeros(0),
            iterations=0,
            function_evaluations=1,
            success=True,
            message="no parameters to optimize",
            history=[value],
        )

    options = {"maxiter": max_iterations}
    if method == "SLSQP":
        options["ftol"] = tolerance
    elif method == "L-BFGS-B":
        options["ftol"] = tolerance
    elif method == "COBYLA":
        options["tol"] = tolerance  # scipy maps this through 'tol' kwarg

    fun: Callable = tracked
    jac: Any = None
    if method in ("SLSQP", "L-BFGS-B"):
        if value_and_gradient is not None:

            def fused(parameters: np.ndarray) -> tuple[float, np.ndarray]:
                value, grad = value_and_gradient(parameters)
                history.append(float(value))
                return float(value), np.asarray(grad, dtype=float)

            fun, jac = fused, True
        elif gradient is not None:

            def jac(parameters: np.ndarray) -> np.ndarray:
                return np.asarray(gradient(parameters), dtype=float)

    result = minimize(fun, x0, method=method, jac=jac, options=options)
    iterations = int(getattr(result, "nit", 0) or 0)
    if iterations == 0:  # COBYLA reports no nit; fall back to nfev
        iterations = int(result.nfev)
    return OptimizationOutcome(
        energy=float(result.fun),
        parameters=np.asarray(result.x),
        iterations=iterations,
        function_evaluations=int(result.nfev),
        success=bool(result.success),
        message=str(result.message),
        history=history,
    )
