"""Analytic gradients via the parameter-shift rule.

For an ansatz factor ``exp(i theta c P)`` (P a Pauli string, so the
generator has eigenvalues +-c), the derivative of any expectation value
obeys the parameter-shift identity

    dE/dtheta = c * [ E(theta + s) - E(theta - s) ],   s = pi / (4 c)

When a parameter drives several strings (every UCCSD double does), the
product rule sums one shift pair per string.  The gradient is exact --
tests compare it against finite differences -- and gives the optimizer an
alternative to SLSQP's numerical differencing.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.ir import PauliProgram
from repro.pauli import PauliSum
from repro.vqe.energy import StatevectorEnergy


class ParameterShiftGradient:
    """Exact gradient of the statevector energy of a Pauli program."""

    def __init__(self, program: PauliProgram, hamiltonian: PauliSum):
        self.program = program
        self.energy = StatevectorEnergy(program, hamiltonian)
        self._terms_of_parameter = program.parameters_of_terms()

    def value(self, parameters: Sequence[float]) -> float:
        return self.energy(parameters)

    def gradient(self, parameters: Sequence[float]) -> np.ndarray:
        """dE/dtheta_k for every parameter, via shifted evaluations.

        Cost: two energy evaluations per (parameter, string) pair.  The
        shift is applied to a *clone* program in which the target string
        gets its own temporary parameter slot.
        """
        base = np.asarray(parameters, dtype=float)
        if base.shape != (self.program.num_parameters,):
            raise ValueError("parameter vector has the wrong length")
        gradient = np.zeros(self.program.num_parameters)
        for parameter, positions in self._terms_of_parameter.items():
            for position in positions:
                coefficient = self.program.terms[position].coefficient
                if coefficient == 0.0:
                    continue
                shift = math.pi / (4.0 * coefficient)
                plus = self._shifted_energy(base, position, +shift)
                minus = self._shifted_energy(base, position, -shift)
                gradient[parameter] += coefficient * (plus - minus)
        return gradient

    def _shifted_energy(
        self, parameters: np.ndarray, position: int, shift: float
    ) -> float:
        """Energy with one string's angle shifted (others unchanged)."""
        bound = self.program.bound_terms(parameters)
        pauli, angle = bound[position]
        bound[position] = (pauli, angle + shift * self.program.terms[position].coefficient)
        from repro.sim.pauli_evolution import evolve_pauli_sequence
        from repro.vqe.energy import _initial_state

        state = evolve_pauli_sequence(bound, _initial_state(self.program))
        return self.energy.engine.value(state)
