"""Analytic gradients: adjoint mode (fast path) and parameter shift.

:class:`AdjointGradient` computes the full gradient with **one forward
and one backward sweep** over the ansatz.  For the product ansatz

    |psi> = U_M ... U_1 |phi_0>,     U_j = exp(i a_j P_j),
    a_j = theta_{k_j} * c_j,

the chain rule gives

    dE/da_j = 2 Re <lambda_j| i P_j |phi_j>,
    phi_j    = U_j ... U_1 |phi_0>,
    lambda_j = U_{j+1}^dag ... U_M^dag H |psi>,

so after computing ``|psi>`` forward and ``H|psi>`` once, a single
backward sweep peels one exponential per step off both vectors (each
undo is one Pauli application, and ``P_j |phi_j>`` is shared between the
gradient bracket and the undo).  Total cost ~3 Pauli applications per
term versus parameter-shift's two full simulations per (parameter,
string) pair -- O(M) instead of O(M^2) statevector work.

:class:`ParameterShiftGradient` retains the shift-rule evaluation

    dE/dtheta = c * [ E(theta + s) - E(theta - s) ],   s = pi / (4 c)

(one shift pair per string; exact for generators with eigenvalues +-c).
It is the independent cross-check the adjoint gradient is validated
against in tests, and the form that remains available on sampling
hardware where adjoint mode does not exist.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.ir import PauliProgram
from repro.pauli import PauliSum
from repro.sim.pauli_evolution import PauliEvolutionWorkspace
from repro.vqe.energy import StatevectorEnergy


class AdjointGradient:
    """Exact gradient via one forward + one backward sweep.

    Usage:

    >>> from repro.ansatz import build_uccsd_program
    >>> from repro.chem import build_molecule_hamiltonian
    >>> problem = build_molecule_hamiltonian("H2")
    >>> program = build_uccsd_program(problem).program
    >>> gradient = AdjointGradient(program, problem.hamiltonian)
    >>> g = gradient.gradient([0.1] * program.num_parameters)
    >>> g.shape == (program.num_parameters,)
    True
    """

    #: The forward sweep is shared between value and gradient, so the
    #: optimizer may use this object as a fused objective (scipy's
    #: ``jac=True`` protocol) without redundant simulations.
    fused_evaluation = True

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        *,
        energy: StatevectorEnergy | None = None,
    ):
        self.program = program
        # Reuse the caller's energy evaluator when given (shares the
        # grouped ExpectationEngine and honors its engine selection).
        self.energy = energy or StatevectorEnergy(
            program, hamiltonian, engine="inplace"
        )
        self._paulis = program.paulis()
        self._coefficients = np.array(
            [term.coefficient for term in program.terms], dtype=float
        )
        self._parameter_indices = np.array(
            [term.parameter_index for term in program.terms], dtype=int
        )

    def value(self, parameters: Sequence[float]) -> float:
        return self.energy(parameters)

    def value_and_gradient(
        self, parameters: Sequence[float]
    ) -> tuple[float, np.ndarray]:
        """``(E(theta), dE/dtheta)`` sharing the single forward sweep."""
        base = np.asarray(parameters, dtype=float)
        if base.shape != (self.program.num_parameters,):
            raise ValueError("parameter vector has the wrong length")
        angles = self._coefficients * base[self._parameter_indices] if len(
            self._paulis
        ) else np.zeros(0)

        # Forward sweep: phi = |psi(theta)> (internal buffer; copy it --
        # the backward sweep mutates phi through its own workspace).
        phi = self.energy.state(base).copy()
        engine = self.energy.engine
        # lambda = H |psi>; peeled backward alongside phi.
        lam = engine.apply(phi)
        value = float(np.vdot(phi, lam).real)
        gradient = np.zeros(self.program.num_parameters)
        workspace = PauliEvolutionWorkspace(phi.shape)      # undoes lam
        pauli_workspace = PauliEvolutionWorkspace(phi.shape)  # holds P|phi>
        for j in range(len(self._paulis) - 1, -1, -1):
            pauli = self._paulis[j]
            angle = float(angles[j])
            if pauli.is_identity():
                # exp(i a I) is a global phase: contributes 2 Re(i c <l|f>)
                # which vanishes for lambda = (global phase) * H phi ...
                # except intermediate undos keep the relative phase, so
                # evaluate it honestly.
                bracket = np.vdot(lam, phi)
                gradient[self._parameter_indices[j]] += (
                    -2.0 * self._coefficients[j] * bracket.imag
                )
                phase = complex(math.cos(angle), -math.sin(angle))
                phi *= phase
                lam *= phase
                continue
            p_phi = pauli_workspace.apply_pauli_into(pauli, phi)
            # dE/da_j = 2 Re( <lambda| i P |phi> ) = -2 Im( <lambda| P |phi> )
            bracket = np.vdot(lam, p_phi)
            gradient[self._parameter_indices[j]] += (
                -2.0 * self._coefficients[j] * bracket.imag
            )
            # Undo U_j on both vectors: U^dag v = cos(a) v - i sin(a) P v.
            cos_a, sin_a = math.cos(angle), math.sin(angle)
            phi *= cos_a
            phi -= (1j * sin_a) * p_phi
            workspace.apply_exponential_inplace(pauli, -angle, lam)
        return value, gradient

    def gradient(self, parameters: Sequence[float]) -> np.ndarray:
        """dE/dtheta_k for every parameter (adjoint mode)."""
        return self.value_and_gradient(parameters)[1]


class ParameterShiftGradient:
    """Exact gradient of the statevector energy of a Pauli program.

    Cost: two energy evaluations per (parameter, string) pair.  Kept as
    the independent validation reference for :class:`AdjointGradient`
    and as the method available on sampling backends.
    """

    #: Value and gradient share no work here; the optimizer should keep
    #: them as separate callbacks (a fused objective would pay the full
    #: 2-simulations-per-string gradient at every line-search point).
    fused_evaluation = False

    def __init__(
        self,
        program: PauliProgram,
        hamiltonian: PauliSum,
        *,
        energy: StatevectorEnergy | None = None,
    ):
        self.program = program
        self.energy = energy or StatevectorEnergy(program, hamiltonian)
        self._terms_of_parameter = program.parameters_of_terms()

    def value(self, parameters: Sequence[float]) -> float:
        return self.energy(parameters)

    def value_and_gradient(
        self, parameters: Sequence[float]
    ) -> tuple[float, np.ndarray]:
        """``(E(theta), dE/dtheta)`` -- no shared work here (unlike the
        adjoint method), provided for interface uniformity."""
        return self.value(parameters), self.gradient(parameters)

    def gradient(self, parameters: Sequence[float]) -> np.ndarray:
        """dE/dtheta_k for every parameter, via shifted evaluations.

        The shift is applied to a *clone* program in which the target
        string gets its own temporary parameter slot.
        """
        base = np.asarray(parameters, dtype=float)
        if base.shape != (self.program.num_parameters,):
            raise ValueError("parameter vector has the wrong length")
        gradient = np.zeros(self.program.num_parameters)
        for parameter, positions in self._terms_of_parameter.items():
            for position in positions:
                coefficient = self.program.terms[position].coefficient
                if coefficient == 0.0:
                    continue
                shift = math.pi / (4.0 * coefficient)
                plus = self._shifted_energy(base, position, +shift)
                minus = self._shifted_energy(base, position, -shift)
                gradient[parameter] += coefficient * (plus - minus)
        return gradient

    def _shifted_energy(
        self, parameters: np.ndarray, position: int, shift: float
    ) -> float:
        """Energy with one string's angle shifted (others unchanged)."""
        bound = self.program.bound_terms(parameters)
        pauli, angle = bound[position]
        bound[position] = (pauli, angle + shift * self.program.terms[position].coefficient)
        from repro.sim.pauli_evolution import evolve_pauli_sequence
        from repro.vqe.energy import _initial_state

        state = evolve_pauli_sequence(bound, _initial_state(self.program))
        return self.energy.engine.value(state)


#: Gradient evaluator factories keyed by the ``gradient`` argument of
#: :class:`repro.vqe.runner.VQE`.
GRADIENT_METHODS = {
    "adjoint": AdjointGradient,
    "parameter_shift": ParameterShiftGradient,
}
