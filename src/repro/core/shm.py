"""Shared-memory array slabs for process-pool scale-out.

The process-pool executors (:func:`repro.core.pipeline.run_batch`,
:func:`repro.sim.trajectory.trajectory_estimate`) move large numeric
tables between workers -- Hamiltonian coefficient tables, grouped
expectation diagonals, per-trajectory output values.  Pickling them
through the pool's pipes copies every byte per task; this module places
them in one POSIX shared-memory segment instead, so workers *map* the
arrays (zero-copy views) and only a tiny :class:`SlabHandle` (segment
name + array specs) travels through the pickle channel.

Usage -- parent creates, workers attach::

    slabs = SharedSlabs.create({"coefficients": coeffs, "masks": masks})
    pool.submit(worker, slabs.handle)     # handle is tiny and picklable
    ...
    slabs.close(); slabs.unlink()         # parent owns the lifetime

    def worker(handle):
        slabs = SharedSlabs.attach(handle)
        coeffs = slabs["coefficients"]    # zero-copy ndarray view
        ...
        slabs.close()                     # detach; never unlink

Ownership is explicit: exactly one process (usually the creator) calls
:meth:`SharedSlabs.unlink`; everyone else only ever detaches with
:meth:`SharedSlabs.close`.  Workers that attach are unregistered from
the :mod:`multiprocessing.resource_tracker` so the tracker does not
destroy the segment out from under its owner when the worker exits (the
well-known CPython gotcha for cross-process ``SharedMemory`` use).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator, Mapping

import numpy as np

#: Byte alignment of each array inside the segment; keeps every slab on
#: its own cache line so concurrent readers never false-share.
_ALIGNMENT = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a shared segment (picklable)."""

    key: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SlabHandle:
    """Everything a worker needs to attach: segment name + array specs.

    A few hundred bytes regardless of how many gigabytes the slabs
    hold -- this is what crosses the process boundary.
    """

    segment: str
    specs: tuple[ArraySpec, ...]


def _unregister_from_tracker(name: str) -> None:
    """Stop the resource tracker from owning this attachment.

    Attaching registers the segment with the resource tracker, which
    unlinks it when the registering process exits -- destroying a
    segment some other process still owns.  Lifetime here is managed
    explicitly by the creator, so attachments opt out -- but only under
    *spawn*-style start methods, where each child runs its own tracker.
    Fork children share the parent's tracker process, where repeated
    registrations of one name dedupe harmlessly and an unregister here
    would instead cancel the *parent's* registration (turning the
    owner's eventual ``unlink`` into a tracker KeyError).
    """
    if multiprocessing.get_start_method(allow_none=True) == "fork":
        return
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - tracker internals vary per platform
        pass


class SharedSlabs:
    """A named bundle of NumPy arrays in one shared-memory segment."""

    def __init__(
        self,
        memory: shared_memory.SharedMemory,
        specs: tuple[ArraySpec, ...],
        *,
        owner: bool,
    ) -> None:
        self._memory = memory
        self._specs = {spec.key: spec for spec in specs}
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedSlabs":
        """Copy ``arrays`` into a fresh shared segment (creator owns it)."""
        if not arrays:
            raise ValueError("SharedSlabs.create needs at least one array")
        specs: list[ArraySpec] = []
        offset = 0
        staged: dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            staged[key] = contiguous
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    key=key,
                    shape=tuple(int(s) for s in contiguous.shape),
                    dtype=str(contiguous.dtype),
                    offset=offset,
                )
            )
            offset += contiguous.nbytes
        memory = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        slabs = cls(memory, tuple(specs), owner=True)
        for spec in specs:
            slabs[spec.key][...] = staged[spec.key]
        return slabs

    @classmethod
    def attach(cls, handle: SlabHandle) -> "SharedSlabs":
        """Map an existing segment (zero-copy; never owns the lifetime)."""
        memory = shared_memory.SharedMemory(name=handle.segment)
        _unregister_from_tracker(memory.name)
        return cls(memory, handle.specs, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def handle(self) -> SlabHandle:
        return SlabHandle(
            segment=self._memory.name,
            specs=tuple(self._specs.values()),
        )

    def __getitem__(self, key: str) -> np.ndarray:
        if self._closed:
            raise ValueError("SharedSlabs is closed")
        spec = self._specs[key]
        view: np.ndarray = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=self._memory.buf,
            offset=spec.offset,
        )
        return view

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        if not self._closed:
            self._closed = True
            self._memory.close()

    def unlink(self) -> None:
        """Destroy the segment; only the owner should call this."""
        self.close()
        try:
            self._memory.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass

    def __enter__(self) -> "SharedSlabs":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        keys = ", ".join(self._specs)
        return (
            f"SharedSlabs({self._memory.name!r}, owner={self._owner}, "
            f"arrays=[{keys}])"
        )
