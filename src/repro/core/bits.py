"""Shared bit-level primitives.

:func:`popcount` is the single place the codebase depends on a vectorized
population count.  NumPy grew ``np.bitwise_count`` in 2.0 (the version
``setup.py`` pins); the helper routes through it when present and falls
back to a branch-free SWAR reduction on older NumPy, so every caller --
the parity-sign kernels of :mod:`repro.sim.pauli_evolution`, the sampled
parities of :class:`repro.vqe.energy.SamplingEnergy` -- shares one
implementation instead of scattering version-gated ``np.bitwise_count``
calls.
"""

from __future__ import annotations

import numpy as np

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SHIFT = np.uint64(56)


def _popcount_swar(values: np.ndarray) -> np.ndarray:
    """Branch-free 64-bit SWAR popcount (NumPy < 2.0 fallback)."""
    v = values.astype(np.uint64, copy=True)
    v -= (v >> np.uint64(1)) & _M1
    v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
    v = (v + (v >> np.uint64(4))) & _M4
    return (v * _H01) >> _SHIFT


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element number of set bits of an unsigned integer array.

    Accepts anything castable to ``uint64`` (masks in this codebase stay
    well under 64 bits); returns an unsigned-integer array of the same
    shape (the exact width follows the underlying kernel).
    """
    values = np.asarray(values, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values)
    return _popcount_swar(values)
