"""The paper's primary contribution: Pauli-string-centric co-optimization.

* :mod:`repro.core.ir`          -- the Pauli-string IR between algorithm
  and compiler ("a new intermediate representation above quantum
  circuits");
* :mod:`repro.core.importance`  -- parameter importance estimation
  (Algorithm 1);
* :mod:`repro.core.compression` -- hardware-friendly compressed ansatz
  construction (Section III-B);
* :mod:`repro.core.passes`      -- the composable pass-manager: named
  pipeline stages over a shared context, configured by
  :class:`~repro.core.passes.PipelineConfig`;
* :mod:`repro.core.cache`       -- the content-addressed compile cache:
  canonical SHA-256 hashes over circuits/DAGs/programs/Hamiltonians plus
  a thread-safe LRU store with hit/miss/eviction counters, shared by the
  pipeline passes and the gate-fusion engine;
* :mod:`repro.core.pipeline`    -- the end-to-end co-optimization flow of
  Figure 1 as a :class:`~repro.core.pipeline.Pipeline` of passes, plus
  batch execution and serializable results.
"""

from repro.core.cache import (
    CacheStats,
    ContentAddressedCache,
    canonical_hash,
    circuit_key,
    clear_compile_cache,
    compile_cache,
    coupling_key,
    dag_key,
    pauli_sum_key,
    program_key,
)
from repro.core.ir import IRTerm, PauliProgram
from repro.core.importance import decay_factor, parameter_importance, string_score
from repro.core.compression import CompressedAnsatz, compress_ansatz, random_ansatz
from repro.core.passes import (
    BuildAnsatz,
    BuildProblem,
    Compress,
    Energy,
    InitialLayout,
    Metrics,
    Pass,
    PipelineConfig,
    PipelineContext,
    PipelineError,
    Route,
)
from repro.core.pipeline import (
    DEFAULT_PASSES,
    BatchItemError,
    CoOptimizationResult,
    Pipeline,
    co_optimize,
    default_passes,
    load_batch,
    run_batch,
    save_batch,
)

__all__ = [
    "CacheStats",
    "ContentAddressedCache",
    "canonical_hash",
    "circuit_key",
    "clear_compile_cache",
    "compile_cache",
    "coupling_key",
    "dag_key",
    "pauli_sum_key",
    "program_key",
    "IRTerm",
    "PauliProgram",
    "decay_factor",
    "string_score",
    "parameter_importance",
    "CompressedAnsatz",
    "compress_ansatz",
    "random_ansatz",
    "Pass",
    "PipelineConfig",
    "PipelineContext",
    "PipelineError",
    "BuildProblem",
    "BuildAnsatz",
    "Compress",
    "InitialLayout",
    "Route",
    "Metrics",
    "Energy",
    "DEFAULT_PASSES",
    "default_passes",
    "Pipeline",
    "BatchItemError",
    "CoOptimizationResult",
    "co_optimize",
    "run_batch",
    "save_batch",
    "load_batch",
]
