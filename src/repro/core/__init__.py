"""The paper's primary contribution: Pauli-string-centric co-optimization.

* :mod:`repro.core.ir`          -- the Pauli-string IR between algorithm
  and compiler ("a new intermediate representation above quantum
  circuits");
* :mod:`repro.core.importance`  -- parameter importance estimation
  (Algorithm 1);
* :mod:`repro.core.compression` -- hardware-friendly compressed ansatz
  construction (Section III-B);
* :mod:`repro.core.pipeline`    -- the end-to-end co-optimization flow of
  Figure 1 (Hamiltonian -> compressed IR -> X-Tree circuit).
"""

from repro.core.ir import IRTerm, PauliProgram
from repro.core.importance import decay_factor, parameter_importance, string_score
from repro.core.compression import CompressedAnsatz, compress_ansatz, random_ansatz
from repro.core.pipeline import CoOptimizationResult, co_optimize

__all__ = [
    "IRTerm",
    "PauliProgram",
    "decay_factor",
    "string_score",
    "parameter_importance",
    "CompressedAnsatz",
    "compress_ansatz",
    "random_ansatz",
    "CoOptimizationResult",
    "co_optimize",
]
