"""The Pauli-string intermediate representation.

The paper's key abstraction: an ansatz is *not* a gate-level circuit but an
ordered sequence of parameterized Pauli strings ("a new intermediate
representation (IR) above quantum circuits").  The compression pass emits
this IR and the customized compilation flow consumes it directly, which is
what lets synthesis adapt each string to the current qubit mapping.

Each :class:`IRTerm` represents one factor ``exp(i * theta_k * c * P)`` of
the Trotterized ansatz, where ``theta_k`` is the shared variational
parameter of excitation ``k`` and ``c`` is the string's fixed Jordan-Wigner
coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.pauli import PauliString


@dataclass(frozen=True)
class IRTerm:
    """One parameterized Pauli-string evolution ``exp(i theta_k c P)``."""

    pauli: PauliString
    coefficient: float      # fixed JW coefficient c (real)
    parameter_index: int    # which variational parameter theta_k drives it

    @property
    def weight(self) -> int:
        return self.pauli.weight


@dataclass
class PauliProgram:
    """An ordered Pauli-string program plus its parameter space.

    This is the object handed from the algorithm level (ansatz
    construction / compression) to the compiler level (hierarchical
    layout + Merge-to-Root).
    """

    num_qubits: int
    num_parameters: int
    terms: list[IRTerm] = field(default_factory=list)
    initial_occupations: list[int] = field(default_factory=list)

    def __iter__(self) -> Iterator[IRTerm]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    # ------------------------------------------------------------------
    # Views used across the stack
    # ------------------------------------------------------------------
    def paulis(self) -> list[PauliString]:
        return [term.pauli for term in self.terms]

    def bound_terms(self, parameters: Sequence[float]) -> list[tuple[PauliString, float]]:
        """Bind parameters: ``[(P, theta_k * c), ...]`` in program order."""
        values = np.asarray(parameters, dtype=float)
        if values.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {values.shape}"
            )
        return [
            (term.pauli, float(values[term.parameter_index]) * term.coefficient)
            for term in self.terms
        ]

    def bound_angles(self, parameter_sets: Sequence[Sequence[float]]) -> np.ndarray:
        """Batched binding: the ``(K, len(terms))`` angle matrix.

        Row ``k``, column ``j`` holds ``theta_k[parameter_index_j] * c_j``
        -- the angle term ``j`` evolves by under parameter set ``k``.
        Feeds :meth:`repro.sim.batched.BatchedStatevector.evolve`, which
        applies each term to all K states in one vectorized call.
        """
        values = np.asarray(parameter_sets, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected parameter sets of shape (K, {self.num_parameters}), "
                f"got {values.shape}"
            )
        indices = np.array([term.parameter_index for term in self.terms], dtype=int)
        coefficients = np.array([term.coefficient for term in self.terms], dtype=float)
        if len(self.terms) == 0:
            return np.zeros((values.shape[0], 0), dtype=float)
        return values[:, indices] * coefficients

    def parameters_of_terms(self) -> dict[int, list[int]]:
        """parameter index -> positions of its terms in the program."""
        mapping: dict[int, list[int]] = {}
        for position, term in enumerate(self.terms):
            mapping.setdefault(term.parameter_index, []).append(position)
        return mapping

    def restricted_to(self, parameter_indices: Sequence[int]) -> "PauliProgram":
        """A sub-program keeping only the given parameters, renumbered in
        the given order (the order is significant: the paper sorts kept
        parameters by decreasing importance for locality)."""
        order = {old: new for new, old in enumerate(parameter_indices)}
        kept = [
            IRTerm(term.pauli, term.coefficient, order[term.parameter_index])
            for term in self.terms
            if term.parameter_index in order
        ]
        # Stable sort on the new index preserves the original term order
        # within each parameter while realizing the requested ordering.
        kept.sort(key=lambda term: term.parameter_index)
        return PauliProgram(
            num_qubits=self.num_qubits,
            num_parameters=len(parameter_indices),
            terms=kept,
            initial_occupations=list(self.initial_occupations),
        )

    # ------------------------------------------------------------------
    # Cost metrics (paper Table I conventions, verified analytically)
    # ------------------------------------------------------------------
    def cnot_count(self) -> int:
        """CNOTs under chain synthesis: ``2 * (weight - 1)`` per string."""
        return sum(2 * (term.weight - 1) for term in self.terms if term.weight > 1)

    def gate_count(self) -> int:
        """Total gates under chain synthesis, including the Hartree-Fock
        X gates: per string ``2*#XY`` basis changes + CNOTs + 1 RZ."""
        total = len(self.initial_occupations)
        for term in self.terms:
            if term.weight == 0:
                continue
            total += 2 * term.pauli.num_xy + 2 * (term.weight - 1) + 1
        return total

    def qubit_cooccurrence(self) -> np.ndarray:
        """Mat[j, k] = number of strings where qubits j and k co-occur
        (Algorithm 2's statistics, also used by the swap lookahead)."""
        matrix = np.zeros((self.num_qubits, self.num_qubits), dtype=np.int64)
        for term in self.terms:
            support = term.pauli.support()
            for i, qubit_a in enumerate(support):
                for qubit_b in support[i + 1:]:
                    matrix[qubit_a, qubit_b] += 1
                    matrix[qubit_b, qubit_a] += 1
        return matrix
