"""Content-addressed compile cache: canonical hashes + LRU memo store.

The co-optimization loop recompiles the same artifacts hundreds of times:
a bond scan rebuilds the UCCSD ansatz, the importance compression, the
routed circuit, and the fused kernel plan for every point and every
optimizer restart, even though most of that work depends only on the
*content* of its inputs.  This module provides the two halves of the
caching subsystem:

* **Canonical hashes** -- deterministic SHA-256 digests over the content
  that actually determines an artifact: gate kinds, qubits, and
  parameter structure for circuits and DAGs (:func:`circuit_key`,
  :func:`dag_key`), Pauli terms + coefficients + parameter wiring for
  programs (:func:`program_key`), Hamiltonian terms
  (:func:`pauli_sum_key`), and coupling-graph edges
  (:func:`coupling_key`).  Two objects with the same content hash to the
  same key regardless of identity, which is what lets ``run_batch``
  workers and repeated ``Pipeline`` runs share artifacts.
* :class:`ContentAddressedCache` -- a thread-safe LRU store with
  hit/miss/eviction counters, used through :func:`compile_cache` (the
  process-global instance the pipeline passes and the fusion engine
  share) or as private instances (the importance-score memo).

Circuit hashes come in two flavors, selected by ``values=``:

* ``values=True`` includes rotation-angle bytes -- the key for artifacts
  that bake values in (a bound :class:`~repro.compiler.fusion.FusedProgram`);
* ``values=False`` records only the *parameter structure* (how many
  angles each gate carries) -- the key for value-independent artifacts
  (fusion plans, schedule reports, routed structure), so every point of
  a parameter sweep hits the same entry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

if TYPE_CHECKING:
    from repro.circuit.circuit import Circuit
    from repro.circuit.dag import CircuitDAG
    from repro.circuit.gates import Gate
    from repro.core.ir import PauliProgram
    from repro.hardware.coupling import CouplingGraph
    from repro.pauli import PauliSum


# ----------------------------------------------------------------------
# Canonical hashing
# ----------------------------------------------------------------------
def _feed(hasher: "hashlib._Hash", part: Any) -> None:
    """Feed one key part into the hasher with an unambiguous encoding.

    Each part is prefixed by a type tag and (for variable-length parts)
    its byte length, so distinct structures can never collide by
    concatenation (e.g. ``("ab", "c")`` vs ``("a", "bc")``).
    """
    if part is None:
        hasher.update(b"N")
    elif isinstance(part, bool):
        hasher.update(b"B1" if part else b"B0")
    elif isinstance(part, int):
        encoded = str(part).encode()
        hasher.update(b"I%d:" % len(encoded) + encoded)
    elif isinstance(part, float):
        hasher.update(b"F" + np.float64(part).tobytes())
    elif isinstance(part, str):
        encoded = part.encode()
        hasher.update(b"S%d:" % len(encoded) + encoded)
    elif isinstance(part, bytes):
        hasher.update(b"Y%d:" % len(part) + part)
    elif isinstance(part, np.ndarray):
        data = np.ascontiguousarray(part)
        hasher.update(b"A" + str(data.dtype).encode() + b":")
        _feed(hasher, data.shape)
        hasher.update(data.tobytes())
    elif isinstance(part, (tuple, list)):
        hasher.update(b"T%d:" % len(part))
        for item in part:
            _feed(hasher, item)
    else:
        raise TypeError(f"unhashable cache-key part of type {type(part).__name__}")


def canonical_hash(*parts: Any) -> str:
    """SHA-256 hex digest of a canonical encoding of ``parts``."""
    hasher = hashlib.sha256()
    for part in parts:
        _feed(hasher, part)
    return hasher.hexdigest()


def _feed_gates(hasher: "hashlib._Hash", gates: Iterable["Gate"], *, values: bool) -> None:
    for gate in gates:
        _feed(hasher, gate.name)
        _feed(hasher, gate.qubits)
        if values:
            _feed(hasher, np.asarray(gate.params, dtype=float))
        else:
            _feed(hasher, len(gate.params))


def circuit_key(circuit: "Circuit", *, values: bool = True) -> str:
    """Canonical hash of a circuit: gate kinds, qubits, parameters.

    With ``values=False`` only the parameter *structure* (arity per
    gate) is hashed, so all bindings of one template share a key.
    """
    hasher = hashlib.sha256()
    _feed(hasher, ("circuit", circuit.num_qubits, values))
    _feed_gates(hasher, circuit.gates, values=values)
    return hasher.hexdigest()


def dag_key(dag: "CircuitDAG", *, values: bool = True) -> str:
    """Canonical hash of a :class:`~repro.circuit.dag.CircuitDAG`.

    The append order is a topological order by construction, so hashing
    the node sequence is deterministic; the ``commute`` flag is part of
    the key because it changes the dependency structure compiler passes
    see (two DAGs over the same gates are different IR objects).
    """
    hasher = hashlib.sha256()
    _feed(hasher, ("dag", dag.num_qubits, bool(dag.commute), values))
    _feed_gates(hasher, dag.topological_gates(), values=values)
    return hasher.hexdigest()


def program_key(program: "PauliProgram") -> str:
    """Canonical hash of a Pauli program (terms, coefficients, wiring)."""
    hasher = hashlib.sha256()
    _feed(
        hasher,
        (
            "program",
            program.num_qubits,
            program.num_parameters,
            tuple(program.initial_occupations),
        ),
    )
    for term in program.terms:
        x, z = term.pauli.key()
        _feed(hasher, (x, z, float(term.coefficient), term.parameter_index))
    return hasher.hexdigest()


def pauli_sum_key(pauli_sum: "PauliSum") -> str:
    """Canonical hash of a Pauli sum (e.g. a Hamiltonian)."""
    hasher = hashlib.sha256()
    _feed(hasher, ("pauli_sum", pauli_sum.num_qubits))
    for (x, z), coefficient in pauli_sum.items():
        _feed(hasher, (x, z, float(coefficient.real), float(coefficient.imag)))
    return hasher.hexdigest()


def coupling_key(device: "CouplingGraph") -> str:
    """Canonical hash of a coupling graph (name, size, edge set)."""
    return canonical_hash(
        "coupling",
        device.name,
        device.num_qubits,
        tuple(tuple(edge) for edge in sorted(device.edges)),
    )


# ----------------------------------------------------------------------
# The LRU store
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, hit_rate={self.hit_rate:.2%})"
        )


class ContentAddressedCache:
    """Thread-safe LRU memo keyed by canonical content hashes.

    Values are treated as immutable shared artifacts: a hit returns the
    same object every caller sees, which is safe for the compiled /
    fused / scheduled records stored here (none are mutated after
    construction).  ``max_entries`` bounds memory; the least recently
    used entry is evicted (and counted) on overflow.
    """

    def __init__(self, max_entries: int = 512, name: str = "compile-cache") -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.name = name
        self.stats = CacheStats()
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing on a miss.

        ``compute`` runs outside the lock so concurrent pipeline workers
        never serialize on a slow compile; two threads racing the same
        cold key may both compute, and the later result wins -- wasted
        work, never a wrong answer (values are content-determined).
        """
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
        value = compute()
        self._store(key, value)
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        self._store(key, value)

    def _store(self, key: Any, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"ContentAddressedCache({self.name!r}, {len(self._entries)}"
            f"/{self.max_entries} entries, {self.stats!r})"
        )


_COMPILE_CACHE = ContentAddressedCache(max_entries=512, name="compile-cache")


def compile_cache() -> ContentAddressedCache:
    """The process-global compile cache (pipelines, fusion plans)."""
    return _COMPILE_CACHE


def clear_compile_cache() -> None:
    """Drop all globally cached compile artifacts and reset counters."""
    _COMPILE_CACHE.clear()


def resolve_cache(
    cache: "ContentAddressedCache | bool | None",
) -> "ContentAddressedCache | None":
    """Normalize a ``cache=`` knob: True -> global, False/None -> off."""
    if cache is True:
        return _COMPILE_CACHE
    if cache is False or cache is None:
        return None
    return cache
