"""Parameter importance estimation (Algorithm 1 of the paper).

For an ansatz Pauli string ``Pa`` and a Hamiltonian string ``PH`` the
*importance decay factor* ``d`` counts the qubits on which tuning Pa's
parameter is unlikely to move PH's measured value:

1. Pa has ``I`` on the qubit (the simulation circuit touches nothing);
2. PH has ``I`` on the qubit (the measurement ignores the qubit);
3. the two operators are equal (rotation about an axis does not change
   the projection onto that same axis -- Figure 5).

Equivalently, ``d = n - #{qubits where both are non-identity and
different}``, which is three bitmask operations in the symplectic
representation.  The string's score is ``sum_PH 2^-d * |w_H|`` and a
parameter's importance is the sum over its strings.
"""

from __future__ import annotations

import numpy as np

from repro.core.ir import PauliProgram
from repro.pauli import PauliString, PauliSum


def decay_factor(ansatz_pauli: PauliString, hamiltonian_pauli: PauliString) -> int:
    """The exponent ``d`` comparing one ansatz / Hamiltonian string pair."""
    if ansatz_pauli.num_qubits != hamiltonian_pauli.num_qubits:
        raise ValueError("qubit count mismatch")
    both_non_identity = ansatz_pauli.support_mask & hamiltonian_pauli.support_mask
    differ = (ansatz_pauli.x ^ hamiltonian_pauli.x) | (
        ansatz_pauli.z ^ hamiltonian_pauli.z
    )
    active_difference = both_non_identity & differ
    return ansatz_pauli.num_qubits - active_difference.bit_count()


def string_score(
    ansatz_pauli: PauliString, hamiltonian: PauliSum, *, decay_base: float = 2.0
) -> float:
    """Importance score of one ansatz Pauli string against H (Alg. 1).

    ``decay_base`` parameterizes the exponential decay ``base^-d`` (the
    paper uses 2; the ablation benchmark sweeps it).
    """
    if decay_base <= 1.0:
        raise ValueError("decay base must exceed 1")
    score = 0.0
    for coefficient, hamiltonian_pauli in hamiltonian:
        if hamiltonian_pauli.is_identity():
            continue  # the constant term is insensitive to every parameter
        d = decay_factor(ansatz_pauli, hamiltonian_pauli)
        score += (decay_base ** -d) * abs(coefficient)
    return score


#: String-score memos keyed per (Hamiltonian content, decay base): each
#: entry is a lazily filled ``pauli.key() -> score`` dict shared across
#: calls, so sweep loops that score many programs against one
#: Hamiltonian (ratio scans, ablations, repeated compression) pay for
#: each distinct string once per process instead of once per call.
_SCORE_MEMOS = None


def _score_memo(hamiltonian: PauliSum, decay_base: float) -> dict:
    global _SCORE_MEMOS
    from repro.core.cache import ContentAddressedCache, pauli_sum_key

    if _SCORE_MEMOS is None:
        # lint: ignore[RR101] - benign lazy init: a racing loser's memo is
        # orphaned but every returned dict still yields correct scores
        _SCORE_MEMOS = ContentAddressedCache(max_entries=32, name="importance-scores")
    key = (pauli_sum_key(hamiltonian), float(decay_base))
    return _SCORE_MEMOS.get_or_compute(key, dict)


def parameter_importance(
    program: PauliProgram, hamiltonian: PauliSum, *, decay_base: float = 2.0
) -> np.ndarray:
    """Importance of every parameter: sum of its strings' scores.

    Complexity O(n * #Pa * #PH), as stated in Section III-A, with the
    per-string scores memoized across calls (see :data:`_SCORE_MEMOS`).
    """
    if program.num_qubits != hamiltonian.num_qubits:
        raise ValueError("program and Hamiltonian qubit counts differ")
    importance = np.zeros(program.num_parameters)
    score_cache = _score_memo(hamiltonian, decay_base)
    for term in program:
        key = term.pauli.key()
        score = score_cache.get(key)
        if score is None:
            score = string_score(term.pauli, hamiltonian, decay_base=decay_base)
            score_cache[key] = score
        importance[term.parameter_index] += score
    return importance
