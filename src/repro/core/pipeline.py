"""End-to-end Pauli-string-centric co-optimization (Figure 1).

The flow is a :class:`Pipeline` of named, swappable passes (see
:mod:`repro.core.passes`):

    Hamiltonian of the chemical system          (BuildProblem)
      -> UCCSD Pauli strings                    (BuildAnsatz)
      -> importance compression                 (Compress)
      -> hierarchical initial layout            (InitialLayout)
      -> Merge-to-Root / SABRE routing          (Route)
      -> JSON-safe summary scalars              (Metrics)

``co_optimize`` remains as a thin compatibility wrapper that builds the
default pipeline; :func:`run_batch` fans a list of configs out over a
serial loop, a thread pool with shared per-problem Hamiltonian caching,
or a process pool that ships Hamiltonian tables through shared memory
(``executor="serial" | "thread" | "process"``), aggregating per-item
failures as :class:`BatchItemError` records, and results serialize
through ``to_dict``/``from_dict`` for persistence and diffing.

Usage -- run one instance, swap a stage, batch a sweep:

>>> from repro.core.pipeline import Pipeline, run_batch
>>> from repro.core.passes import PipelineConfig
>>> result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
>>> result.metrics["num_parameters"], result.metrics["compiler"]
(2, 'mtr')
>>> baseline = Pipeline(
...     PipelineConfig(molecule="H2", ratio=0.5, compiler="sabre")
... ).run()
>>> baseline.metrics["compiler"]
'sabre'
>>> curve = run_batch(
...     [PipelineConfig(molecule="H2", bond_length=b) for b in (0.6, 0.735)]
... )
>>> [round(r.metrics["bond_length"], 3) for r in curve]
[0.6, 0.735]

Appending the optional :class:`~repro.core.passes.Energy` stage turns the
compile pipeline into the VQE accuracy workload; its simulation fast
path follows ``PipelineConfig.engine`` (see ``docs/performance.md``).
"""

from __future__ import annotations

import copy
import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro.chem.hamiltonian import MolecularProblem, build_molecule_hamiltonian
from repro.core.compression import CompressedAnsatz
from repro.core.passes import (
    BuildAnsatz,
    BuildProblem,
    Compress,
    InitialLayout,
    Metrics,
    Pass,
    PipelineConfig,
    PipelineContext,
    PipelineError,
    Route,
    collect_metrics,
)
from repro.hardware.coupling import CouplingGraph

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from repro.ansatz.circuit_ansatz import CircuitAnsatz
    from repro.ansatz.qaoa import QAOAAnsatz
    from repro.ansatz.uccsd import UCCSDAnsatz
    from repro.problems.registry import CircuitProblem, GraphProblem
    from repro.vqe.runner import VQEResult

#: Stage classes of the default co-optimization pipeline, in order.
DEFAULT_PASSES: tuple[type[Pass], ...] = (
    BuildProblem,
    BuildAnsatz,
    Compress,
    InitialLayout,
    Route,
    Metrics,
)

SCHEMA_VERSION = 1

#: Context keys :meth:`Pipeline.run` can pre-seed from its arguments.
#: Construction-time contract validation treats them as potentially
#: available; the run-time re-validation checks what was actually
#: injected.
INJECTABLE_CONTEXT_KEYS = ("problem", "device")


def default_passes() -> list[Pass]:
    """Fresh instances of the default stages."""
    return [cls() for cls in DEFAULT_PASSES]


def _producers_of(key: str) -> list[str]:
    """Names of known stage classes whose contract produces ``key``."""
    from repro.core.passes import Energy

    names = []
    for cls in (*DEFAULT_PASSES, Energy):
        if key in cls.produces:
            names.append(cls.name)
    return names


def _layout_pairs(layout: dict[int, int] | None) -> list[list[int]] | None:
    if layout is None:
        return None
    return [[int(l), int(p)] for l, p in sorted(layout.items())]


@dataclass
class CoOptimizationResult:
    """Artifacts of the full co-optimization flow for one instance.

    Results come in two flavors: **live** results from a pipeline run
    carry the heavy in-memory artifacts (problem, ansatz, compiled
    circuit, device), while **deserialized** results
    (:meth:`from_dict`) carry only the JSON-safe summary in ``metrics``
    and ``record``.  The scalar accessors work on both.
    """

    problem: "MolecularProblem | GraphProblem | CircuitProblem | None"
    full_ansatz: "UCCSDAnsatz | QAOAAnsatz | CircuitAnsatz | None"
    compressed: "CompressedAnsatz | CircuitAnsatz | None"
    compiled: Any
    device: CouplingGraph | None
    config: PipelineConfig | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    vqe_result: "VQEResult | None" = None
    record: dict[str, Any] = field(default_factory=dict, repr=False)

    @classmethod
    def from_context(cls, context: PipelineContext) -> "CoOptimizationResult":
        return cls(
            problem=context.problem,
            full_ansatz=context.ansatz,
            compressed=context.compressed,
            compiled=context.compiled,
            device=context.device,
            config=context.config,
            metrics=context.metrics,
            vqe_result=context.vqe_result,
        )

    # ------------------------------------------------------------------
    # Scalar accessors (live or deserialized)
    # ------------------------------------------------------------------
    @property
    def original_cnots(self) -> int:
        if isinstance(self.compressed, CompressedAnsatz):
            return self.compressed.program.cnot_count()
        if self.compressed is not None:
            return self.compressed.circuit.num_cnots()
        return int(self.metrics["original_cnots"])

    @property
    def overhead_cnots(self) -> int:
        if self.compiled is not None:
            return self.compiled.overhead_cnots
        return int(self.metrics["overhead_cnots"])

    @property
    def num_swaps(self) -> int:
        if self.compiled is not None:
            return self.compiled.num_swaps
        return int(self.metrics["num_swaps"])

    @property
    def device_name(self) -> str:
        if self.device is not None:
            return self.device.name
        return str(self.metrics.get("device", "?"))

    def summary(self) -> str:
        if (
            isinstance(self.compressed, CompressedAnsatz)
            and self.full_ansatz is not None
            and isinstance(self.problem, MolecularProblem)
        ):
            kept = self.compressed.num_parameters
            total = self.full_ansatz.num_parameters
            return (
                f"{self.problem.molecule.name}: kept {kept}/{total} parameters "
                f"({self.compressed.ratio:.0%}), {len(self.compressed.program)} "
                f"Pauli strings, {self.original_cnots} CNOTs + "
                f"{self.overhead_cnots} overhead on {self.device_name}"
            )
        if self.compressed is not None and self.config is not None:
            label = self.config.describe()
            return (
                f"{label}: {self.original_cnots} CNOTs + "
                f"{self.overhead_cnots} overhead on {self.device_name}"
            )
        m = self.metrics
        return (
            f"{m.get('molecule', '?')}: kept {m.get('num_parameters', '?')}"
            f"/{m.get('total_parameters', '?')} parameters, "
            f"{m.get('original_cnots', '?')} CNOTs + "
            f"{m.get('overhead_cnots', '?')} overhead on {self.device_name}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot: config + scalar metrics + layouts."""
        if self.record:
            return copy.deepcopy(self.record)
        metrics = dict(self.metrics)
        if "original_cnots" not in metrics and self.compressed is not None:
            context = PipelineContext(
                config=self.config or self._fallback_config(),
                problem=self.problem,
                ansatz=self.full_ansatz,
                compressed=self.compressed,
                device=self.device,
                compiled=self.compiled,
            )
            metrics = {**collect_metrics(context), **metrics}
        kept = (
            [int(k) for k in self.compressed.kept_parameters]
            if isinstance(self.compressed, CompressedAnsatz)
            else None
        )
        initial_layout = final_layout = None
        if self.compiled is not None:
            initial_layout = _layout_pairs(self.compiled.initial_layout)
            final_layout = _layout_pairs(self.compiled.final_layout)
        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.config.to_dict() if self.config else None,
            "metrics": metrics,
            "kept_parameters": kept,
            "initial_layout": initial_layout,
            "final_layout": final_layout,
        }

    def _fallback_config(self) -> PipelineConfig:
        molecule = (
            self.problem.molecule.name
            if isinstance(self.problem, MolecularProblem)
            else "?"
        )
        ratio = (
            self.compressed.ratio
            if isinstance(self.compressed, CompressedAnsatz)
            else 1.0
        )
        return PipelineConfig(molecule=molecule, ratio=ratio)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CoOptimizationResult":
        """Rebuild a lightweight (metrics-only) result from a snapshot."""
        config = (
            PipelineConfig.from_dict(data["config"])
            if data.get("config") is not None
            else None
        )
        return cls(
            problem=None,
            full_ansatz=None,
            compressed=None,
            compiled=None,
            device=None,
            config=config,
            metrics=dict(data.get("metrics", {})),
            record=copy.deepcopy(data),
        )

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CoOptimizationResult":
        return cls.from_dict(json.loads(text))


class Pipeline:
    """A configured sequence of passes over one shared context.

    >>> result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()

    Stages are plain objects in ``self.passes``; use :meth:`replacing`,
    :meth:`without` and :meth:`appending` to derive variant pipelines
    (ablations swap one stage, workloads append an ``Energy`` stage).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        passes: Sequence[Pass] | None = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = PipelineConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.passes: list[Pass] = (
            list(passes) if passes is not None else default_passes()
        )
        # Contract check at construction: a misordered pass list is a
        # configuration bug, so reject it before any chemistry runs.
        # Keys run() can inject are assumed available here; run() itself
        # re-validates against what was actually injected.
        self.validate(available=INJECTABLE_CONTEXT_KEYS)

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def _index_of(self, name: str) -> int:
        for index, p in enumerate(self.passes):
            if p.name == name:
                return index
        raise ValueError(
            f"pipeline has no pass named {name!r}; stages: {self.pass_names()}"
        )

    def replacing(self, name: str, new_pass: Pass) -> "Pipeline":
        """A new pipeline with the stage called ``name`` swapped out."""
        passes = list(self.passes)
        passes[self._index_of(name)] = new_pass
        return Pipeline(self.config, passes)

    def without(self, name: str) -> "Pipeline":
        passes = list(self.passes)
        del passes[self._index_of(name)]
        return Pipeline(self.config, passes)

    def appending(self, *new_passes: Pass) -> "Pipeline":
        return Pipeline(self.config, list(self.passes) + list(new_passes))

    def validate(self, *, available: Iterable[str] = ()) -> "Pipeline":
        """Check the passes' ``requires``/``produces`` contracts in order.

        Walks the pass list tracking which context keys have been
        produced (starting from ``available``, the keys pre-seeded by
        the caller) and raises :class:`PipelineError` naming the first
        stage whose requirements are not met -- at construction time,
        instead of a mid-run failure after minutes of chemistry.
        Custom passes that declare no contract always validate.
        """
        have = set(available)
        for stage in self.passes:
            missing = [key for key in stage.requires if key not in have]
            if missing:
                hints = []
                for key in missing:
                    producers = _producers_of(key)
                    if producers:
                        hints.append(
                            f"context.{key} is produced by "
                            f"{' / '.join(repr(p) for p in producers)}"
                        )
                    else:
                        hints.append(f"context.{key} has no known producer")
                raise PipelineError(
                    f"pass {stage.name!r} needs "
                    + ", ".join(f"context.{key}" for key in missing)
                    + "; run the stage that produces it first "
                    f"({'; '.join(hints)}); stage order: {self.pass_names()}"
                )
            have.update(stage.produces)
        return self

    def run(
        self,
        *,
        problem: MolecularProblem | None = None,
        device: CouplingGraph | None = None,
    ) -> CoOptimizationResult:
        """Execute the stages in order and package the context.

        ``problem``/``device`` pre-seed the context, letting callers
        share a built Hamiltonian or target a hand-built graph.
        """
        # Re-validate against what was actually injected: a config that
        # passed the optimistic construction-time check (which assumes
        # run() may seed any injectable key) can still be short a key.
        injected = [
            key
            for key, value in (("problem", problem), ("device", device))
            if value is not None
        ]
        self.validate(available=injected)
        context = PipelineContext(config=self.config, problem=problem, device=device)
        for stage in self.passes:
            stage.run(context)
        return CoOptimizationResult.from_context(context)

    def __repr__(self) -> str:
        return f"Pipeline({self.config.describe()}; stages={self.pass_names()})"


def co_optimize(
    molecule: str | MolecularProblem,
    *,
    ratio: float = 0.5,
    bond_length: float | None = None,
    device: CouplingGraph | str | None = None,
    compiler: str = "mtr",
) -> CoOptimizationResult:
    """Run the default co-optimization pipeline on one molecule instance.

    Compatibility wrapper over :class:`Pipeline`.

    Args:
        molecule: benchmark molecule name or a prebuilt problem.
        ratio: parameter compression ratio (Section III-B).
        bond_length: geometry parameter, equilibrium by default.
        device: target architecture -- a registry name or a prebuilt
            :class:`CouplingGraph`; XTree17Q by default.
        compiler: compiler registry name ("mtr" or "sabre").
    """
    problem: MolecularProblem | None = None
    if isinstance(molecule, MolecularProblem):
        problem = molecule
        name = problem.molecule.name
        bond_length = problem.molecule.bond_length
    else:
        name = molecule

    device_graph: CouplingGraph | None = None
    device_name = "xtree17"
    if isinstance(device, CouplingGraph):
        device_graph = device
        device_name = device.name
    elif device is not None:
        device_name = device

    config = PipelineConfig(
        molecule=name,
        bond_length=bond_length,
        ratio=ratio,
        device=device_name,
        compiler=compiler,
    )
    return Pipeline(config).run(problem=problem, device=device_graph)


@dataclass(frozen=True)
class BatchItemError:
    """Failure record for one config of a :func:`run_batch` call.

    A worker exception no longer aborts the whole batch: the failed
    item's slot in the result list holds one of these (index into the
    input configs, the config itself, and the stringified error) while
    every sibling keeps its completed result.  Filter with
    ``isinstance`` to split successes from failures.
    """

    index: int
    config: PipelineConfig | None
    error: str
    error_type: str

    def __str__(self) -> str:
        label = self.config.describe() if self.config is not None else "?"
        return f"batch item {self.index} ({label}): {self.error_type}: {self.error}"


def _hamiltonian_tables(hamiltonian: Any) -> dict[str, np.ndarray] | None:
    """Pauli-term coefficient tables of one Hamiltonian, as flat arrays.

    Returns ``None`` past 64 qubits (masks no longer fit ``uint64``;
    such problems fall back to pickling the Hamiltonian itself).
    """
    if hamiltonian.num_qubits > 64:
        return None
    keys = []
    coefficients = []
    for (x_mask, z_mask), coefficient in hamiltonian.items():
        keys.append((x_mask, z_mask))
        coefficients.append(coefficient)
    return {
        "x": np.array([k[0] for k in keys], dtype=np.uint64),
        "z": np.array([k[1] for k in keys], dtype=np.uint64),
        "coeff": np.array(coefficients, dtype=np.complex128),
    }


#: Per-process memo of problems restored from shared-memory tables,
#: keyed by (segment name, slot): a worker rebuilds each unique
#: Hamiltonian once and every later task for the same problem reuses it.
_RESTORED_PROBLEMS: dict[tuple[str, int], MolecularProblem] = {}


def _restore_problem(handle: Any, slot: int, skeleton: MolecularProblem) -> MolecularProblem:
    """Rebuild a molecular problem from its shared-memory Pauli tables."""
    from repro.core.shm import SharedSlabs
    from repro.pauli import PauliSum

    key = (handle.segment, slot)
    if key not in _RESTORED_PROBLEMS:
        slabs = SharedSlabs.attach(handle)
        try:
            x_masks = slabs[f"{slot}:x"]
            z_masks = slabs[f"{slot}:z"]
            coefficients = slabs[f"{slot}:coeff"]
            terms = {
                (int(x_masks[i]), int(z_masks[i])): complex(coefficients[i])
                for i in range(len(coefficients))
            }
        finally:
            slabs.close()
        hamiltonian = PauliSum(skeleton.num_qubits, terms)
        # lint: ignore[RR101] - per-process memo by design; workers never share it
        _RESTORED_PROBLEMS[key] = dataclasses.replace(
            skeleton, hamiltonian=hamiltonian
        )
    return _RESTORED_PROBLEMS[key]


def _batch_item_task(
    payload: tuple[int, PipelineConfig, Callable[..., Any], Any, int | None, Any],
) -> dict[str, Any] | BatchItemError:
    """Run one batch config in a pool worker (module-level: picklable).

    Returns the result's JSON-safe snapshot (``to_dict``) rather than
    the live object so only a small dict crosses the process boundary,
    or a :class:`BatchItemError` when the pipeline raises.
    """
    index, config, factory, handle, slot, skeleton = payload
    try:
        problem = None
        if handle is not None and slot is not None and skeleton is not None:
            problem = _restore_problem(handle, slot, skeleton)
        result = factory(config).run(problem=problem)
        return result.to_dict()
    except Exception as exc:  # noqa: BLE001 - aggregated, not swallowed
        return BatchItemError(
            index=index,
            config=config,
            error=str(exc),
            error_type=type(exc).__name__,
        )


def _run_batch_item(
    index: int,
    config: PipelineConfig,
    factory: Callable[[PipelineConfig], Pipeline],
) -> CoOptimizationResult | BatchItemError:
    """In-process (serial/thread) batch item: live result or error record."""
    try:
        return factory(config).run()
    except Exception as exc:  # noqa: BLE001 - aggregated, not swallowed
        return BatchItemError(
            index=index,
            config=config,
            error=str(exc),
            error_type=type(exc).__name__,
        )


def _run_batch_process(
    configs: list[PipelineConfig],
    factory: Callable[[PipelineConfig], Pipeline],
    count: int,
) -> list[CoOptimizationResult | BatchItemError]:
    """Process-pool fan-out with Hamiltonian tables in shared memory.

    The parent builds each unique (molecule, bond length) Hamiltonian
    once, places its Pauli coefficient tables in one shared-memory
    segment (:class:`repro.core.shm.SharedSlabs`), and ships workers a
    *skeleton* problem (everything but the Hamiltonian) plus the slab
    handle; workers map the tables zero-copy and rebuild the problem
    through a per-process memo, so the heavyweight chemistry runs once
    total instead of once per worker.
    """
    from repro.core.shm import SharedSlabs
    from repro.pauli import PauliSum

    unique: dict[tuple[str, float | None], MolecularProblem] = {}
    for config in configs:
        if config.problem is not None:
            continue  # non-molecular workloads rebuild in the worker
        key = (config.molecule, config.bond_length)
        if key not in unique:
            try:
                unique[key] = build_molecule_hamiltonian(
                    config.molecule, config.bond_length
                )
            except Exception:  # noqa: BLE001 - recorded by the item's own run
                continue

    tables: dict[str, np.ndarray] = {}
    slots: dict[tuple[str, float | None], int] = {}
    skeletons: dict[tuple[str, float | None], MolecularProblem] = {}
    for slot, (key, problem) in enumerate(unique.items()):
        exported = _hamiltonian_tables(problem.hamiltonian)
        if exported is None:
            continue
        slots[key] = slot
        tables[f"{slot}:x"] = exported["x"]
        tables[f"{slot}:z"] = exported["z"]
        tables[f"{slot}:coeff"] = exported["coeff"]
        # The skeleton pickles per task but is tiny next to the tables.
        skeletons[key] = dataclasses.replace(
            problem, hamiltonian=PauliSum(problem.num_qubits)
        )

    slabs = SharedSlabs.create(tables) if tables else None
    try:
        handle = slabs.handle if slabs is not None else None
        payloads = []
        for index, config in enumerate(configs):
            key = (config.molecule, config.bond_length)
            if config.problem is None and key in slots:
                payloads.append(
                    (index, config, factory, handle, slots[key], skeletons[key])
                )
            else:
                payloads.append((index, config, factory, None, None, None))
        with ProcessPoolExecutor(max_workers=count) as pool:
            raw = list(pool.map(_batch_item_task, payloads))
    finally:
        if slabs is not None:
            slabs.unlink()
    return [
        item
        if isinstance(item, BatchItemError)
        else CoOptimizationResult.from_dict(item)
        for item in raw
    ]


def run_batch(
    configs: Iterable[PipelineConfig],
    *,
    executor: str = "thread",
    workers: int | str | None = None,
    pipeline_factory: Callable[[PipelineConfig], Pipeline] | None = None,
) -> list[CoOptimizationResult | BatchItemError]:
    """Run many pipeline configs concurrently (bond scans, yield studies).

    ``executor`` picks the fan-out strategy (``"serial"`` / ``"thread"``
    / ``"process"``); ``workers`` the pool width (``None``/``"auto"``
    means the CPU count, capped at the task count).  The thread pool
    (default) shares the in-process Hamiltonian cache, so each unique
    (molecule, bond length) problem is built exactly once up front; the
    process pool sidesteps the GIL for compile-heavy sweeps by shipping
    each unique Hamiltonian's Pauli coefficient tables through shared
    memory (:mod:`repro.core.shm`) -- workers map the tables zero-copy
    instead of unpickling per task.  Every config is an independent,
    deterministic task, so all three executors produce identical
    results item for item (process-mode results are metrics-only
    snapshots, the :meth:`CoOptimizationResult.from_dict` flavor, since
    results cross a process boundary).

    A config whose pipeline raises does not abort the batch: its slot in
    the returned list carries a :class:`BatchItemError` (index, config,
    stringified error) while completed siblings keep their results.

    Results are returned in input order.

    Args:
        configs: pipeline configurations to run.
        executor: ``"serial"``, ``"thread"`` (default), or ``"process"``
            (the latter needs a picklable ``pipeline_factory``).
        workers: pool width; ``None``/``"auto"`` = CPU count.
        pipeline_factory: builds the pipeline for one config; defaults to
            the standard ``Pipeline(config)`` (pass a custom factory to
            append stages, e.g. ``Energy`` for VQE sweeps).
    """
    from repro.sim.trajectory import check_executor, resolve_workers

    check_executor(executor)
    configs = list(configs)
    if not configs:
        return []
    factory = pipeline_factory or Pipeline
    count = resolve_workers(workers, len(configs))

    if executor == "serial" or count == 1 or len(configs) == 1:
        return [
            _run_batch_item(index, config, factory)
            for index, config in enumerate(configs)
        ]

    if executor == "process":
        return _run_batch_process(configs, factory, count)

    unique_problems: dict[tuple[str, float | None], PipelineConfig] = {}
    for config in configs:
        unique_problems.setdefault((config.molecule, config.bond_length), config)

    def _warm(config: PipelineConfig) -> None:
        # Warm the per-problem Hamiltonian cache without duplicate work;
        # best-effort -- a bad config fails in its own run, where the
        # error is recorded against the right item.
        try:
            build_molecule_hamiltonian(config.molecule, config.bond_length)
        except Exception:  # noqa: BLE001
            pass

    with ThreadPoolExecutor(max_workers=count) as pool:
        list(pool.map(_warm, unique_problems.values()))
        return list(
            pool.map(
                lambda pair: _run_batch_item(pair[0], pair[1], factory),
                enumerate(configs),
            )
        )


def save_batch(
    results: Iterable[CoOptimizationResult], path: str | Path
) -> Path:
    """Persist batch results as a sorted, indented (diff-able) JSON file."""
    path = Path(path)
    payload = [result.to_dict() for result in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_batch(path: str | Path) -> list[CoOptimizationResult]:
    """Load results saved by :func:`save_batch` (metrics-only records)."""
    payload = json.loads(Path(path).read_text())
    return [CoOptimizationResult.from_dict(entry) for entry in payload]
