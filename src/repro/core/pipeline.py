"""End-to-end Pauli-string-centric co-optimization (Figure 1).

``co_optimize`` wires the three contributions together:

    Hamiltonian of the chemical system
      -> UCCSD Pauli strings + parameter importance (ansatz compression)
      -> Pauli-string IR (importance-ordered)
      -> hierarchical initial layout + Merge-to-Root synthesis/routing
      -> hardware-compatible circuit for an X-Tree device
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.chem.hamiltonian import MolecularProblem, build_molecule_hamiltonian
from repro.core.compression import CompressedAnsatz, compress_ansatz
from repro.hardware.coupling import CouplingGraph

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from repro.ansatz.uccsd import UCCSDAnsatz
    from repro.compiler.merge_to_root import CompiledProgram


@dataclass
class CoOptimizationResult:
    """Artifacts of the full co-optimization flow for one instance."""

    problem: MolecularProblem
    full_ansatz: "UCCSDAnsatz"
    compressed: CompressedAnsatz
    compiled: "CompiledProgram"
    device: CouplingGraph

    @property
    def original_cnots(self) -> int:
        return self.compressed.program.cnot_count()

    @property
    def overhead_cnots(self) -> int:
        return self.compiled.overhead_cnots

    def summary(self) -> str:
        kept = self.compressed.num_parameters
        total = self.full_ansatz.num_parameters
        return (
            f"{self.problem.molecule.name}: kept {kept}/{total} parameters "
            f"({self.compressed.ratio:.0%}), {len(self.compressed.program)} Pauli "
            f"strings, {self.original_cnots} CNOTs + {self.overhead_cnots} overhead "
            f"on {self.device.name}"
        )


def co_optimize(
    molecule: str | MolecularProblem,
    *,
    ratio: float = 0.5,
    bond_length: float | None = None,
    device: CouplingGraph | None = None,
) -> CoOptimizationResult:
    """Run the full co-optimization flow on one molecule instance.

    Args:
        molecule: benchmark molecule name or a prebuilt problem.
        ratio: parameter compression ratio (Section III-B).
        bond_length: geometry parameter, equilibrium by default.
        device: target architecture; XTree17Q by default.
    """
    from repro.ansatz.uccsd import build_uccsd_program
    from repro.compiler.layout import hierarchical_initial_layout
    from repro.compiler.merge_to_root import MergeToRootCompiler
    from repro.hardware.xtree import xtree

    if isinstance(molecule, MolecularProblem):
        problem = molecule
    else:
        problem = build_molecule_hamiltonian(molecule, bond_length)
    device = device or xtree(17)
    ansatz = build_uccsd_program(problem)
    compressed = compress_ansatz(ansatz.program, problem.hamiltonian, ratio)
    layout = hierarchical_initial_layout(compressed.program, device)
    compiled = MergeToRootCompiler(device).compile(
        compressed.program, initial_layout=layout
    )
    return CoOptimizationResult(
        problem=problem,
        full_ansatz=ansatz,
        compressed=compressed,
        compiled=compiled,
        device=device,
    )
