"""The determinism contract's seeding discipline, in one audited place.

Every random draw in the library must be a pure function of an explicit
seed, or the executor bit-identity guarantees (``run_batch``,
``trajectory_expectations``: serial == thread == process, any worker
count) silently die.  The discipline (see docs/analysis.md):

1. normalize whatever the caller passed -- int, ``SeedSequence``, or
   ``None`` -- into a :class:`numpy.random.SeedSequence` root;
2. give parallel unit ``i`` child ``i`` of that root via
   :meth:`~numpy.random.SeedSequence.spawn`, so each unit's stream is
   independent of which executor runs it and of how units are packed
   onto workers;
3. build generators only from those roots/children.

``default_rng(int)`` internally wraps the seed in ``SeedSequence(int)``,
so :func:`seeded_rng` is *bit-identical* to a direct ``default_rng``
call for int seeds -- converting call sites changes no results.

This module is the one sanctioned home of seed normalization: the RR112
analyzer (:mod:`repro.analysis.static`) flags ``default_rng`` calls
elsewhere whose seed is not provably an int or SeedSequence-flow, and
the fix is to route them through here.  ``None`` still means fresh OS
entropy -- explicitly, at this audited boundary, instead of implicitly
at scattered call sites.
"""

from __future__ import annotations

import numpy as np


def seed_sequence(seed: int | np.random.SeedSequence | None) -> np.random.SeedSequence:
    """Normalize a seed knob into a :class:`~numpy.random.SeedSequence` root.

    An existing ``SeedSequence`` passes through untouched (so spawned
    children keep their spawn-tree position); ints seed deterministically;
    ``None`` draws fresh OS entropy -- the one place that choice is made.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seeds(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent children of one root: unit ``i`` gets child ``i``.

    The spawn discipline is what makes block/task randomness independent
    of executor choice and worker count: the stream of unit ``i`` is a
    function of ``(seed, i)`` alone.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return seed_sequence(seed).spawn(count)


def seeded_rng(seed: int | np.random.SeedSequence | None) -> np.random.Generator:
    """A :class:`~numpy.random.Generator` from a normalized seed.

    Bit-identical to ``np.random.default_rng(seed)`` for every legal
    ``seed`` (``default_rng`` wraps ints in ``SeedSequence`` itself);
    exists so call sites route through the audited normalization above.
    """
    return np.random.default_rng(seed_sequence(seed))
