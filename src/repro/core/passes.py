"""Composable pass-manager for the co-optimization flow (Figure 1).

The end-to-end flow is decomposed into named, swappable :class:`Pass`
stages operating on a shared mutable :class:`PipelineContext`:

    BuildProblem -> BuildAnsatz -> Compress -> InitialLayout -> Route -> Metrics

configured by one :class:`PipelineConfig` record (molecule, bond length,
compression ratio, device name, compiler name, ...).  Stages resolve
devices and compilers through the string-keyed registries
(:func:`repro.hardware.get_device`, :func:`repro.compiler.get_compiler`),
so a benchmark swaps Merge-to-Root for SABRE or XTree17Q for Grid17Q by
changing a config field, not by rewiring constructors.

An optional :class:`Energy` stage (not in the default pipeline) runs VQE
on the staged ansatz, turning the same pipeline into the Figure 9/10
workload driver.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any

from repro.chem.hamiltonian import MolecularProblem, build_molecule_hamiltonian
from repro.core.compression import CompressedAnsatz, compress_ansatz
from repro.hardware.coupling import CouplingGraph

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from repro.ansatz.circuit_ansatz import CircuitAnsatz
    from repro.ansatz.qaoa import QAOAAnsatz
    from repro.ansatz.uccsd import UCCSDAnsatz
    from repro.core.cache import ContentAddressedCache
    from repro.core.ir import PauliProgram
    from repro.problems.registry import CircuitProblem, GraphProblem
    from repro.vqe.runner import VQEResult

#: Layout schemes the ``InitialLayout`` stage understands.  "auto" defers
#: to the configured compiler's preference: hierarchical for Merge-to-Root
#: (Algorithm 2 is part of the co-designed flow), none for SABRE (the
#: baseline picks its own mapping by reverse-traversal refinement, as in
#: the paper's Table II methodology).
LAYOUT_SCHEMES = ("auto", "hierarchical", "trivial", "none")


class PipelineError(RuntimeError):
    """A pass ran (or was ordered to run) before the stages it depends on."""


@dataclass(frozen=True)
class PipelineConfig:
    """Declarative description of one co-optimization instance.

    ``device`` and ``compiler`` are registry names (see
    :func:`repro.hardware.get_device` / :func:`repro.compiler.get_compiler`);
    ``layout`` is one of :data:`LAYOUT_SCHEMES`; ``seed`` feeds the SABRE
    baseline's tie-breaking RNG; ``engine`` selects the simulation fast
    path (:data:`repro.sim.statevector.ENGINES`:
    ``"inplace"``/``"batched"``/``"fused"``/``"legacy"``) used by the optional
    :class:`Energy` stage and anything else that simulates the staged
    ansatz; ``trajectories`` sizes the stochastic Pauli-trajectory
    noise engine when the :class:`Energy` stage runs with
    ``backend="trajectory"`` (the noisy path past the density-matrix
    simulator's 12-qubit cap).

    ``dag`` and ``commute`` control the shared circuit DAG IR
    (:class:`repro.circuit.dag.CircuitDAG`): with ``dag`` on, the
    :class:`Metrics` stage reports ASAP-scheduled depth and
    critical-path duration of the compiled circuit; with ``commute`` on,
    the :class:`Route` stage hands the commutation-aware frontier to the
    compiler and the :class:`Compress` stage reports how many CNOTs the
    adjacency vs. commutation-aware peephole passes remove from the
    compressed circuit.

    ``validate`` (on by default) runs the static verification layer
    (:mod:`repro.analysis`) over the artifacts the stages produce: the
    :class:`Compress` stage sanitizes the compressed Pauli program, the
    :class:`Route` stage sanitizes the routed circuit and its layouts
    against the device, and the :class:`Metrics` stage sanitizes the
    scheduling DAG it consumes.  Checks are linear-time; opt out only
    for throughput-critical inner loops that re-run validated configs.

    ``fusion`` selects the gate-fusion level for the ``"fused"``
    simulation engine (:data:`repro.compiler.fusion.FUSION_LEVELS`);
    ``cache`` turns the content-addressed compile cache
    (:mod:`repro.core.cache`) on or off: with it on (the default), the
    ansatz build, compression, layout, routing, and schedule metrics of
    a run are memoized under canonical content hashes, so repeated
    pipelines, ``run_batch`` workers, and ``bond_scan`` points sharing
    structure skip recompilation entirely.

    ``array_backend`` selects the tensor library behind every simulation
    the pipeline performs (:mod:`repro.sim.backend`): ``"numpy"`` (the
    default) runs the in-place fast paths; ``"cupy"``/``"torch"``
    dispatch the same math through those libraries' array APIs when they
    are importable.
    """

    molecule: str = "H2"
    #: Non-molecular workload spec (:func:`repro.problems.get_problem`):
    #: ``"maxcut:er-10-3"``, ``"ising:ring-8"``, ``"hubbard:4"`` or
    #: ``"qasm:<path>"``.  When set, it overrides ``molecule`` and the
    #: ``BuildAnsatz`` stage emits a QAOA program (graph problems, with
    #: ``qaoa_layers`` repetitions) or wraps the ingested circuit
    #: (``qasm:`` problems, routed gate-by-gate).
    problem: str | None = None
    qaoa_layers: int = 1
    bond_length: float | None = None
    ratio: float = 0.5
    device: str = "xtree17"
    compiler: str = "mtr"
    layout: str = "auto"
    engine: str = "inplace"
    fusion: str = "2q"
    cache: bool = True
    array_backend: str = "numpy"
    validate: bool = True
    trajectories: int = 256
    dag: bool = True
    commute: bool = False
    decay_base: float = 2.0
    seed: int = 11
    label: str | None = None

    def describe(self) -> str:
        if self.label:
            return self.label
        if self.problem is not None:
            return f"{self.problem} {self.compiler} on {self.device}"
        bond = f"@{self.bond_length}A" if self.bond_length is not None else ""
        return (
            f"{self.molecule}{bond} ratio={self.ratio} "
            f"{self.compiler} on {self.device}"
        )

    def replace(self, **changes: Any) -> "PipelineConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class PipelineContext:
    """Mutable state threaded through the passes of one pipeline run."""

    config: PipelineConfig
    problem: "MolecularProblem | GraphProblem | CircuitProblem | None" = None
    ansatz: "UCCSDAnsatz | QAOAAnsatz | CircuitAnsatz | None" = None
    compressed: "CompressedAnsatz | CircuitAnsatz | None" = None
    device: CouplingGraph | None = None
    initial_layout: dict[int, int] | None = None
    compiled: Any = None               # CompiledProgram or SabreResult
    vqe_result: "VQEResult | None" = None
    metrics: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)

    def require(self, attribute: str, needed_by: str) -> Any:
        value = getattr(self, attribute)
        if value is None:
            raise PipelineError(
                f"pass {needed_by!r} needs context.{attribute}; "
                "run the stage that produces it first"
            )
        return value


def _compile_store(context: PipelineContext) -> "ContentAddressedCache | None":
    """The compile cache selected by ``config.cache`` (None when off)."""
    from repro.core.cache import resolve_cache

    return resolve_cache(context.config.cache)


def _hamiltonian_key(context: PipelineContext) -> str:
    """The problem Hamiltonian's content hash, computed once per run."""
    from repro.core.cache import pauli_sum_key

    key = context.artifacts.get("hamiltonian_key")
    if key is None:
        hamiltonian = getattr(context.problem, "hamiltonian", None)
        if hamiltonian is None:
            raise PipelineError(
                "content-addressing needs a problem with a Hamiltonian; "
                f"got {type(context.problem).__name__}"
            )
        key = pauli_sum_key(hamiltonian)
        context.artifacts["hamiltonian_key"] = key
    return str(key)


class Pass:
    """One named stage of the pipeline.

    ``requires`` and ``produces`` declare the stage's contract over the
    shared context: which :class:`PipelineContext` attributes must be
    staged before it runs and which it fills in.  The declarations power
    :meth:`repro.core.pipeline.Pipeline.validate`, which rejects an
    ill-ordered pass list at construction time instead of failing
    mid-run; custom passes default to an empty contract (always valid).
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()

    def run(self, context: PipelineContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class BuildProblem(Pass):
    """Workload spec -> problem instance.

    ``config.problem`` set: resolve through the problem registry
    (:func:`repro.problems.get_problem` -- graph costs for QAOA or an
    ingested QASM circuit).  Otherwise: the molecule name through the
    chemistry substrate.  Skipped when the context already carries a
    problem (injected by ``Pipeline.run(problem=...)`` or a prior
    pipeline), which is how batch runs share one Hamiltonian across
    configs.
    """

    name = "build_problem"
    produces = ("problem",)

    def run(self, context: PipelineContext) -> None:
        if context.problem is not None:
            return
        if context.config.problem is not None:
            from repro.problems import get_problem

            context.problem = get_problem(context.config.problem)
        else:
            context.problem = build_molecule_hamiltonian(
                context.config.molecule, context.config.bond_length
            )


class BuildAnsatz(Pass):
    """Problem -> ansatz: UCCSD (molecular), QAOA (graph) or raw circuit.

    Pauli-program ansatze are content-addressed under the Hamiltonian
    hash when ``config.cache`` is on: every pipeline, batch worker, or
    scan point over the same instance shares one built ansatz.
    """

    name = "build_ansatz"
    requires = ("problem",)
    produces = ("ansatz",)

    def run(self, context: PipelineContext) -> None:
        from repro.problems.registry import CircuitProblem, GraphProblem

        problem = context.require("problem", self.name)
        if isinstance(problem, CircuitProblem):
            from repro.ansatz.circuit_ansatz import CircuitAnsatz

            # Wrapping is free; nothing worth caching.
            context.ansatz = CircuitAnsatz(problem.circuit, name=problem.name)
            return
        store = _compile_store(context)
        if isinstance(problem, GraphProblem):
            from repro.ansatz.qaoa import build_qaoa_ansatz

            layers = context.config.qaoa_layers

            def build_qaoa() -> "QAOAAnsatz":
                return build_qaoa_ansatz(problem.hamiltonian, layers)

            if store is None:
                context.ansatz = build_qaoa()
                return
            key = ("qaoa-ansatz", _hamiltonian_key(context), int(layers))
            context.ansatz = store.get_or_compute(key, build_qaoa)
            return
        from repro.ansatz.uccsd import build_uccsd_program

        if store is None:
            context.ansatz = build_uccsd_program(problem)
            return
        key = ("uccsd-ansatz", _hamiltonian_key(context))
        context.ansatz = store.get_or_compute(
            key, lambda: build_uccsd_program(problem)
        )


class Compress(Pass):
    """Importance-based ansatz compression (Section III-B).

    With ``config.commute`` on, also chain-synthesizes the compressed
    program and records how many CNOTs the adjacency-only vs. the
    commutation-aware peephole cancellation remove (the Section VII
    "deeper optimization" numbers) in the metrics.
    """

    name = "compress"
    requires = ("problem", "ansatz")
    produces = ("compressed",)

    def run(self, context: PipelineContext) -> None:
        from repro.ansatz.circuit_ansatz import CircuitAnsatz
        from repro.ansatz.qaoa import QAOAAnsatz

        problem = context.require("problem", self.name)
        ansatz = context.require("ansatz", self.name)
        if isinstance(ansatz, CircuitAnsatz):
            # Gate-level workloads have no parameter space to compress;
            # the circuit flows through untouched.
            context.compressed = ansatz
            if context.config.validate:
                from repro.analysis import assert_clean

                assert_clean(
                    ansatz.circuit,
                    context=f"compress({context.config.describe()})",
                )
            return
        if isinstance(ansatz, QAOAAnsatz):
            # QAOA term order is semantic (layers do not commute), so
            # importance reordering would change the prepared state;
            # ``ratio`` is ignored on this path.
            from repro.core.compression import identity_compression

            context.compressed = identity_compression(ansatz.program)
            self._commute_metrics(context)
            self._validate(context)
            return
        store = _compile_store(context)

        def compress() -> CompressedAnsatz:
            return compress_ansatz(
                ansatz.program,
                problem.hamiltonian,
                context.config.ratio,
                decay_base=context.config.decay_base,
            )

        if store is None:
            context.compressed = compress()
        else:
            from repro.core.cache import program_key

            key = (
                "compress",
                program_key(ansatz.program),
                _hamiltonian_key(context),
                float(context.config.ratio),
                float(context.config.decay_base),
            )
            context.compressed = store.get_or_compute(key, compress)
        self._commute_metrics(context)
        self._validate(context)

    def _commute_metrics(self, context: PipelineContext) -> None:
        """Record the Section VII cancellation numbers when asked to."""
        if not context.config.commute or not isinstance(
            context.compressed, CompressedAnsatz
        ):
            return
        program = context.compressed.program
        store = _compile_store(context)
        if store is None:
            context.metrics.update(_chain_cnot_metrics(program))
        else:
            from repro.core.cache import program_key

            key = ("chain-cnot-metrics", program_key(program))
            context.metrics.update(
                store.get_or_compute(key, lambda: _chain_cnot_metrics(program))
            )

    def _validate(self, context: PipelineContext) -> None:
        if not context.config.validate or not isinstance(
            context.compressed, CompressedAnsatz
        ):
            return
        from repro.analysis import assert_clean

        assert_clean(
            context.compressed.program,
            context=f"compress({context.config.describe()})",
        )


def _chain_cnot_metrics(program: "PauliProgram") -> dict[str, int]:
    """CNOT counts of the chain-synthesized program under the peephole
    cancellation passes (the Section VII "deeper optimization" numbers)."""
    from repro.compiler.cancellation import cancel_gates
    from repro.compiler.synthesis import synthesize_program_chain

    chain = synthesize_program_chain(program, [0.0] * program.num_parameters)
    return {
        "chain_cnots": int(chain.num_cnots()),
        "chain_cnots_adjacency": int(cancel_gates(chain).num_cnots()),
        "chain_cnots_commute": int(cancel_gates(chain, commute=True).num_cnots()),
    }


class InitialLayout(Pass):
    """Resolve the device and compute the initial mapping (Algorithm 2)."""

    name = "initial_layout"
    requires = ("compressed",)
    produces = ("device", "initial_layout")

    def run(self, context: PipelineContext) -> None:
        from repro.ansatz.circuit_ansatz import CircuitAnsatz
        from repro.compiler.registry import get_compiler
        from repro.hardware.registry import get_device

        compressed = context.require("compressed", self.name)
        if context.device is None:
            context.device = get_device(context.config.device)
        device = context.device
        scheme = context.config.layout
        if scheme == "auto":
            scheme = get_compiler(context.config.compiler).default_layout
        if scheme == "none":
            context.initial_layout = None
            return
        if scheme not in ("hierarchical", "trivial"):
            raise ValueError(
                f"unknown layout scheme {scheme!r}; "
                f"valid schemes: {', '.join(LAYOUT_SCHEMES)}"
            )

        def build_layout() -> dict[int, int]:
            if isinstance(compressed, CircuitAnsatz):
                from repro.compiler.layout import hierarchical_circuit_layout

                if scheme == "trivial":
                    return {
                        q: q for q in range(compressed.circuit.num_qubits)
                    }
                return hierarchical_circuit_layout(compressed.circuit, device)
            from repro.compiler.layout import (
                hierarchical_initial_layout,
                trivial_layout,
            )

            if scheme == "trivial":
                return trivial_layout(compressed.program, device)
            return hierarchical_initial_layout(compressed.program, device)

        store = _compile_store(context)
        if store is None:
            context.initial_layout = build_layout()
            return
        from repro.core.cache import circuit_key, coupling_key, program_key

        if isinstance(compressed, CircuitAnsatz):
            staged_key = circuit_key(compressed.circuit, values=False)
        else:
            staged_key = program_key(compressed.program)
        key = (
            "initial-layout",
            scheme,
            staged_key,
            coupling_key(context.device),
        )
        context.initial_layout = store.get_or_compute(key, build_layout)


class Route(Pass):
    """Synthesize and route through the configured compiler.

    With ``config.validate`` on (the default), the routed artifact is
    statically sanitized against the device before it leaves the stage:
    qubit bounds, gate-set conformance, bound parameters, coupling
    legality of every two-qubit gate, and layout-permutation consistency
    (see :mod:`repro.analysis`).  This is the linear-time complement of
    the exponential dynamic check
    (:func:`repro.compiler.verify.assert_routed_equivalent`), so it runs
    on every compile, not just small test circuits.
    """

    name = "route"
    requires = ("compressed",)
    produces = ("device", "compiled")

    #: Checks applied to the routed result; the DAG checks are left to
    #: the :class:`Metrics` stage, which is what consumes the DAG.
    VALIDATION_CHECKS = (
        "qubit-bounds",
        "gate-set",
        "gate-parameters",
        "coupling-legality",
        "layout-permutation",
    )

    def run(self, context: PipelineContext) -> None:
        from repro.ansatz.circuit_ansatz import CircuitAnsatz
        from repro.compiler.registry import get_compiler
        from repro.hardware.registry import get_device

        compressed = context.require("compressed", self.name)
        if context.device is None:
            context.device = get_device(context.config.device)
        device = context.device
        compiler = get_compiler(context.config.compiler)

        def compile_program() -> Any:
            if isinstance(compressed, CircuitAnsatz):
                return compiler.compile_circuit(
                    compressed.circuit,
                    device,
                    initial_layout=context.initial_layout,
                    seed=context.config.seed,
                    commute=context.config.commute,
                )
            return compiler.compile(
                compressed.program,
                device,
                initial_layout=context.initial_layout,
                seed=context.config.seed,
                commute=context.config.commute,
            )

        store = _compile_store(context)
        if store is None:
            context.compiled = compile_program()
            self._validate(context)
            return
        from repro.core.cache import circuit_key, coupling_key, program_key

        if isinstance(compressed, CircuitAnsatz):
            staged_key = circuit_key(compressed.circuit)
        else:
            staged_key = program_key(compressed.program)
        layout = context.initial_layout
        key = (
            "route",
            context.config.compiler,
            coupling_key(context.device),
            staged_key,
            None if layout is None else tuple(sorted(layout.items())),
            context.config.seed,
            context.config.commute,
        )
        context.compiled = store.get_or_compute(key, compile_program)
        self._validate(context)

    def _validate(self, context: PipelineContext) -> None:
        if not context.config.validate:
            return
        from repro.analysis import assert_clean

        assert_clean(
            context.compiled,
            device=context.device,
            checks=self.VALIDATION_CHECKS,
            context=f"route({context.config.describe()})",
        )


class Energy(Pass):
    """Optional stage: run VQE on the staged (compressed) ansatz.

    Not part of the default pipeline; append it for accuracy/convergence
    workloads.  Records ``energy``, ``iterations``, and (when
    ``compute_exact``) ``exact_energy``/``energy_error`` in the metrics.
    The simulation engine and trajectory count default to the config's
    ``engine``/``trajectories`` fields, so batch sweeps switch fast
    paths (or size the noisy trajectory backend) without touching the
    stage.  ``backend="trajectory"`` with ``noise=`` runs the noisy
    stochastic-trajectory path; backends that cannot honor a noise
    model raise instead of silently ignoring it.
    """

    name = "energy"
    requires = ("problem", "ansatz")
    produces = ("vqe_result",)

    def __init__(
        self,
        *,
        backend: str = "statevector",
        engine: str | None = None,
        fusion: str | None = None,
        cache: bool | None = None,
        array_backend: str | None = None,
        gradient: str | None = None,
        noise: Any = None,
        trajectories: int | None = None,
        max_iterations: int = 200,
        compute_exact: bool = True,
    ) -> None:
        self.backend = backend
        self.engine = engine
        self.fusion = fusion
        self.cache = cache
        self.array_backend = array_backend
        self.gradient = gradient
        self.noise = noise
        self.trajectories = trajectories
        self.max_iterations = max_iterations
        self.compute_exact = compute_exact

    def run(self, context: PipelineContext) -> None:
        from repro.vqe.runner import VQE

        problem = context.require("problem", self.name)
        if not isinstance(problem, MolecularProblem):
            raise PipelineError(
                "the Energy stage runs VQE against a molecular problem; "
                f"got {type(problem).__name__}"
            )
        staged = (
            context.compressed.program
            if isinstance(context.compressed, CompressedAnsatz)
            else None
        )
        if staged is None:
            ansatz = context.require("ansatz", self.name)
            staged = getattr(ansatz, "program", None)
            if staged is None:
                raise PipelineError(
                    "the Energy stage needs a Pauli-program ansatz"
                )
        result = VQE(
            staged,
            problem.hamiltonian,
            backend=self.backend,
            engine=self.engine or context.config.engine,
            fusion=self.fusion or context.config.fusion,
            cache=context.config.cache if self.cache is None else self.cache,
            array_backend=self.array_backend or context.config.array_backend,
            gradient=self.gradient,
            noise=self.noise,
            trajectories=self.trajectories or context.config.trajectories,
            max_iterations=self.max_iterations,
        ).run()
        context.vqe_result = result
        context.metrics["energy"] = float(result.energy)
        context.metrics["iterations"] = int(result.iterations)
        context.metrics["hf_energy"] = float(problem.hf_energy)
        if self.compute_exact:
            exact = _exact_ground_state_energy(problem)
            context.metrics["exact_energy"] = exact
            context.metrics["energy_error"] = float(result.energy - exact)


#: Exact ground-state energies keyed per molecular instance, so sweeps
#: that revisit one Hamiltonian (ratio scans, decay-base ablations) pay
#: for the diagonalization once.  Safe because the chem layer memoizes
#: the Hamiltonian itself on the same key.
_EXACT_ENERGY_CACHE: dict[tuple[str, float], float] = {}


def _exact_ground_state_energy(problem: MolecularProblem) -> float:
    from repro.sim.exact import ground_state_energy

    key = (problem.molecule.name, float(problem.molecule.bond_length))
    if key not in _EXACT_ENERGY_CACHE:
        _EXACT_ENERGY_CACHE[key] = float(ground_state_energy(problem.hamiltonian))
    return _EXACT_ENERGY_CACHE[key]


class Metrics(Pass):
    """Summarize the run into JSON-safe scalars (Table II conventions).

    With ``config.validate`` on, the compiled artifact's DAG is checked
    for structural soundness (edge symmetry, topological order,
    commute-edge validity, DAG/circuit agreement) before the scheduling
    metrics read it -- a corrupt DAG would silently skew
    ``scheduled_depth`` and ``duration_ns``.
    """

    name = "metrics"

    #: DAG checks applied before the schedule report consumes the IR.
    VALIDATION_CHECKS = ("dag-invariants", "dag-circuit-consistency")

    def run(self, context: PipelineContext) -> None:
        if (
            context.config.validate
            and context.config.dag
            and context.compiled is not None
            and getattr(context.compiled, "dag", None) is not None
        ):
            from repro.analysis import assert_clean

            assert_clean(
                context.compiled,
                device=context.device,
                checks=self.VALIDATION_CHECKS,
                context=f"metrics({context.config.describe()})",
            )
        context.metrics.update(collect_metrics(context))


def collect_metrics(context: PipelineContext) -> dict[str, Any]:
    """The scalar summary serialized with every result.

    Tolerates partially staged contexts so custom pipelines that stop
    early still get a meaningful record.
    """
    config = context.config
    metrics: dict[str, Any] = {
        "molecule": config.molecule,
        "ratio": config.ratio,
        "compiler": config.compiler,
    }
    if config.problem is not None:
        metrics["problem"] = config.problem
        del metrics["molecule"]
    if isinstance(context.problem, MolecularProblem):
        metrics["bond_length"] = float(context.problem.molecule.bond_length)
    elif context.problem is None and config.bond_length is not None:
        metrics["bond_length"] = float(config.bond_length)
    if context.problem is not None:
        metrics["num_qubits"] = int(context.problem.num_qubits)
    if context.ansatz is not None:
        metrics["total_parameters"] = int(context.ansatz.num_parameters)
    if isinstance(context.compressed, CompressedAnsatz):
        metrics["num_parameters"] = int(context.compressed.num_parameters)
        metrics["num_pauli_strings"] = int(len(context.compressed.program))
        metrics["original_cnots"] = int(context.compressed.program.cnot_count())
    elif context.compressed is not None:
        # Gate-level workload: the "original" cost is the logical circuit.
        circuit = context.compressed.circuit
        metrics["original_cnots"] = int(circuit.num_cnots())
        metrics["original_gates"] = int(circuit.num_gates())
    if context.device is not None:
        metrics["device"] = context.device.name
        metrics["device_edges"] = int(context.device.num_edges)
    else:
        metrics["device"] = config.device
    if context.compiled is not None:
        metrics["overhead_cnots"] = int(context.compiled.overhead_cnots)
        metrics["num_swaps"] = int(context.compiled.num_swaps)
        metrics["total_cnots"] = int(context.compiled.total_cnots)
        if config.dag:
            from repro.compiler.metrics import schedule_report

            circuit = context.compiled.circuit
            store = _compile_store(context)
            if store is None:
                schedule = schedule_report(circuit)
            else:
                from repro.core.cache import circuit_key

                # Depth/duration depend only on the gate structure, so
                # the value-blind hash shares one report across bindings.
                key = ("schedule-report", circuit_key(circuit, values=False))
                schedule = store.get_or_compute(
                    key, lambda: schedule_report(circuit)
                )
            metrics["depth"] = int(schedule.depth)
            metrics["scheduled_depth"] = int(schedule.scheduled_depth)
            metrics["duration_ns"] = float(schedule.duration_ns)
    return metrics
