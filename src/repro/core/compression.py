"""Hardware-friendly ansatz construction (Section III-B).

Given a compression ratio ``alpha`` and the K-parameter UCCSD program,
keep the ``ceil(alpha * K)`` most important parameters and order them by
*decreasing* importance.  The ordering is the hardware-friendliness lever:
early strings concentrate on low-energy orbitals, creating the gate
locality the Merge-to-Root compiler exploits (Section VI-F).

A random-selection baseline ("Rand. 50%" in Figure 9) is provided for the
effectiveness comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.importance import parameter_importance
from repro.core.ir import PauliProgram
from repro.core.seeding import seeded_rng
from repro.pauli import PauliSum


@dataclass
class CompressedAnsatz:
    """A compressed Pauli program plus provenance information."""

    program: PauliProgram
    kept_parameters: list[int]      # original parameter indices, in new order
    importance: np.ndarray          # importance of *all* original parameters
    ratio: float

    @property
    def num_parameters(self) -> int:
        return self.program.num_parameters


def _kept_count(total: int, ratio: float) -> int:
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    return min(total, math.ceil(ratio * total))


def compress_ansatz(
    program: PauliProgram,
    hamiltonian: PauliSum,
    ratio: float,
    *,
    decay_base: float = 2.0,
) -> CompressedAnsatz:
    """Keep the top ``ceil(ratio * K)`` parameters, importance-ordered."""
    importance = parameter_importance(program, hamiltonian, decay_base=decay_base)
    keep = _kept_count(program.num_parameters, ratio)
    # Stable sort: ties broken by original parameter order (determinism).
    order = np.argsort(-importance, kind="stable")[:keep]
    kept = [int(k) for k in order]
    return CompressedAnsatz(
        program=program.restricted_to(kept),
        kept_parameters=kept,
        importance=importance,
        ratio=ratio,
    )


def identity_compression(program: PauliProgram) -> CompressedAnsatz:
    """A no-op compression keeping every parameter in program order.

    Used for ansatze whose term order is semantic rather than
    importance-ranked (QAOA layers do not commute across layers, so
    reordering them would change the prepared state).
    """
    kept = list(range(program.num_parameters))
    return CompressedAnsatz(
        program=program,
        kept_parameters=kept,
        importance=np.ones(program.num_parameters),
        ratio=1.0,
    )


def random_ansatz(
    program: PauliProgram,
    ratio: float,
    seed: int | None = None,
) -> CompressedAnsatz:
    """Baseline: keep a uniformly random parameter subset (program order)."""
    rng = seeded_rng(seed)
    keep = _kept_count(program.num_parameters, ratio)
    kept = sorted(int(k) for k in rng.choice(program.num_parameters, keep, replace=False))
    return CompressedAnsatz(
        program=program.restricted_to(kept),
        kept_parameters=kept,
        importance=np.zeros(program.num_parameters),
        ratio=ratio,
    )
