"""Static verification layer: diagnostics core + circuit sanitizer.

The dynamic equivalence checker simulates circuits and is exponential in
qubit count; this package validates every compiled artifact *statically*
in milliseconds.  One entry point covers all artifact families:

>>> import repro.analysis as analysis
>>> from repro.core import Pipeline, PipelineConfig
>>> result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
>>> report = analysis.check(result.compiled, device=result.device)
>>> report.ok
True
>>> sorted(report.checks_run)[:3]
['coupling-legality', 'dag-circuit-consistency', 'dag-invariants']

``check`` dispatches on the artifact: circuits and DAGs get bounds /
gate-set / parameter checks (plus coupling legality when a device is
given), compiled results add layout-permutation and SWAP-accounting
checks, fusion plans get coverage checks, and Pauli programs get IR
sanity checks.  :func:`assert_clean` is the raising form the pipeline's
``validate=`` knob uses.  Custom invariants plug in through
:func:`repro.analysis.diagnostics.register_check`.

The same registry also hosts *source-level* checks: the
:mod:`repro.analysis.static` subpackage models the whole ``src/repro``
tree (call graph + per-function effect summaries) and dispatches the
RR1xx concurrency-safety / determinism / backend-purity analyzers on
:class:`~repro.analysis.static.ProjectModel` objects -- see
``docs/analysis.md`` for the rule catalog.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.diagnostics import (
    AnalysisError,
    Check,
    CheckReport,
    CheckRunner,
    Diagnostic,
    Severity,
    default_checks,
    get_check,
    list_checks,
    register_check,
)
from repro.analysis.circuit_checks import (
    KNOWN_GATES,
    CouplingLegalityCheck,
    DagCircuitConsistencyCheck,
    DagInvariantCheck,
    FusionCoverageCheck,
    GateParameterCheck,
    GateSetCheck,
    LayoutPermutationCheck,
    PauliProgramCheck,
    QubitBoundsCheck,
    is_compiled_result,
)
from repro.analysis.static import (
    BackendPurityCheck,
    ConcurrencySafetyCheck,
    DeterminismCheck,
    ProjectModel,
    analyze,
    load_project,
)


def check(
    obj: Any,
    *,
    device: Any = None,
    checks: Iterable[Check | str] | None = None,
    subject: str | None = None,
) -> CheckReport:
    """Run every applicable static check over ``obj``.

    ``device`` enables the device-dependent checks (coupling legality,
    declared-gate-set conformance, layout bounds); pass it whenever the
    artifact is physical.  ``checks`` restricts the run to a subset of
    registered checks (names or instances).
    """
    return CheckRunner(checks).run(obj, device=device, subject=subject)


def assert_clean(
    obj: Any,
    *,
    device: Any = None,
    checks: Iterable[Check | str] | None = None,
    context: str = "",
) -> CheckReport:
    """:func:`check`, raising :class:`AnalysisError` on any ERROR finding."""
    return check(obj, device=device, checks=checks).raise_if_errors(context)


__all__ = [
    "AnalysisError",
    "Check",
    "CheckReport",
    "CheckRunner",
    "Diagnostic",
    "Severity",
    "KNOWN_GATES",
    "check",
    "assert_clean",
    "default_checks",
    "get_check",
    "list_checks",
    "register_check",
    "is_compiled_result",
    "QubitBoundsCheck",
    "GateSetCheck",
    "GateParameterCheck",
    "CouplingLegalityCheck",
    "LayoutPermutationCheck",
    "DagInvariantCheck",
    "DagCircuitConsistencyCheck",
    "FusionCoverageCheck",
    "PauliProgramCheck",
    "ProjectModel",
    "ConcurrencySafetyCheck",
    "DeterminismCheck",
    "BackendPurityCheck",
    "analyze",
    "load_project",
]
