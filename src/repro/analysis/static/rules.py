"""RR1xx project rules: concurrency safety, determinism, backend purity.

Each rule is a pure function over a :class:`~repro.analysis.static.model.ProjectModel`
(plus the :class:`~repro.analysis.static.callgraph.CallGraph` where
reachability matters) returning :class:`RuleFinding` records.  The rules
encode the three conventions the scale-out layer (PR 9) rests on:

RR101  module-level state mutated by code transitively reachable from a
       task submitted to a thread/process executor.  Shared memos are
       racy under threads and silently divergent under processes; every
       surviving site must either be made task-local or carry a pragma
       stating why the shared write is safe (idempotent memo, per-
       process by design, ...).
RR102  non-picklable callable submitted to a *process* pool: lambdas,
       nested functions, and bound methods of nested (unimportable)
       classes all fail inside ``ProcessPoolExecutor`` with an opaque
       ``PicklingError`` at runtime; this catches them at lint time.
RR103  ``SharedSlabs`` lifecycle violations: a worker that ``attach``-es
       a segment must never ``unlink`` it (the parent owns the segment
       -- see :mod:`repro.core.shm`), no handle may be used after its
       ``close()``, and a created segment that neither unlinks nor
       escapes the creating function is leaked shared memory.
RR111  nondeterministic sources -- ``np.random.*`` conveniences bound to
       global state, ``random.*``, wall-clock ``time`` reads -- outside
       benchmark code.  Library results must be functions of their
       seeds, or executor bit-identity dies.
RR112  ``default_rng(seed)`` where ``seed`` does not provably come from
       a deterministic source (int literal / int-typed parameter /
       module int constant / ``SeedSequence``-flow).  ``int | None``
       seeds silently switch to fresh OS entropy when ``None`` arrives;
       route them through :mod:`repro.core.seeding` so the one audited
       helper owns that decision.
RR121  dataflow sharpening of RR006: values produced by
       :class:`~repro.sim.backend.ArrayBackend` hooks may live on a GPU;
       feeding them to a host ``np.*`` call works on the numpy backend
       and explodes (or silently syncs) on CuPy/torch.  The sanctioned
       bridge is ``backend.to_numpy``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.static.callgraph import CallGraph, Node
from repro.analysis.static.model import (
    FunctionInfo,
    ModuleModel,
    ProjectModel,
    root_name,
    symbol_of,
)

#: The one module allowed to implement the SharedSlabs lifecycle (RR103).
RR103_HOME = "src/repro/core/shm.py"

#: The one module allowed to normalize arbitrary seeds (RR112).
RR112_HOME = "src/repro/core/seeding.py"

#: Modules where wall-clock and convenience randomness are legitimate
#: (benchmark timing / corpus workload synthesis) -- RR111/RR112 exempt.
DETERMINISM_EXEMPT_PREFIXES = (
    "src/repro/bench/",
    "benchmarks/",
    "tools/",
    "tests/",
)

#: Backend-purity scope (RR121) mirrors RR006: sim/ engines, with the
#: dispatch layer itself exempt.
RR121_SCOPE = "src/repro/sim/"
RR121_HOME = "src/repro/sim/backend.py"

#: ``np.random`` members that are deterministic machinery rather than
#: global-state conveniences (RR111 allows, RR112 audits default_rng).
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Wall-clock readers banned by RR111 (``time.monotonic`` included: any
#: clock read folded into a result breaks run-to-run identity).
BANNED_TIME = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)

#: Call names accepted as SeedSequence-flow evidence by RR112.
SEED_HELPER_NAMES = frozenset({"seed_sequence", "spawn_seeds", "seeded_rng"})

#: ArrayBackend hook fallback when sim/backend.py is outside the model.
DEFAULT_BACKEND_HOOKS = frozenset(
    {
        "asarray",
        "zeros",
        "empty_like",
        "copyto",
        "einsum",
        "take",
        "take_into",
        "axpy",
        "conjugate",
        "matmul",
        "tensordot",
        "moveaxis",
        "ascontiguous",
        "real",
    }
)


@dataclass(frozen=True)
class RuleFinding:
    """One project-rule diagnostic, pre-suppression."""

    code: str
    rel: str
    line: int
    message: str


def _is_determinism_exempt(rel: str) -> bool:
    return rel.startswith(DETERMINISM_EXEMPT_PREFIXES)


# ----------------------------------------------------------------------
# RR101 / RR102 -- executor submissions
# ----------------------------------------------------------------------
def _submission_roots(
    graph: CallGraph, model: ModuleModel, info: FunctionInfo
) -> list[tuple["Submission", Node | None]]:
    from repro.analysis.static.model import Submission  # local: typing only

    roots: list[tuple[Submission, Node | None]] = []
    for submission in info.submissions:
        node: Node | None = None
        if submission.target is not None:
            if submission.kind == "lambda":
                qualname = f"{info.qualname}.<locals>.{submission.target}"
                if qualname in model.functions:
                    node = (model.rel, qualname)
            else:
                node = graph.resolve(model, info, submission.target)
        roots.append((submission, node))
    return roots


def rr101_executor_reachable_writes(
    project: ProjectModel, graph: CallGraph
) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    seen: set[tuple[str, int, str]] = set()
    for model in project.modules.values():
        for info in model.functions.values():
            for submission, node in _submission_roots(graph, model, info):
                if node is None:
                    continue
                target = submission.target or node[1]
                for reached in graph.reached_writes(node):
                    key = (reached.rel, reached.write.line, reached.write.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    chain = ""
                    if len(reached.chain) > 1:
                        chain = " via " + " -> ".join(reached.chain)
                    findings.append(
                        RuleFinding(
                            "RR101",
                            reached.rel,
                            reached.write.line,
                            f"module-level state {reached.write.name!r} is "
                            f"mutated here and reachable from the "
                            f"{submission.executor}-pool task {target!r} "
                            f"submitted at {model.rel}:{submission.line}"
                            f"{chain}; make the task self-contained or "
                            "document why the shared write is safe with "
                            "'# lint: ignore[RR101] - <reason>'",
                        )
                    )
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


def rr102_unpicklable_submissions(
    project: ProjectModel, graph: CallGraph
) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    for model in project.modules.values():
        for info in model.functions.values():
            for submission, node in _submission_roots(graph, model, info):
                if submission.executor != "process":
                    continue
                reason: str | None = None
                if submission.kind == "lambda":
                    reason = "a lambda"
                elif node is not None:
                    target_info = graph.function(node)
                    if target_info is not None and target_info.is_lambda:
                        reason = "a lambda"
                    elif target_info is not None and target_info.is_nested:
                        reason = f"the nested function {target_info.name!r}"
                    elif (
                        target_info is not None
                        and target_info.owner_class is not None
                        and submission.kind == "bound-method"
                    ):
                        owner = project.modules[node[0]].classes.get(
                            target_info.owner_class
                        )
                        if owner is not None and owner.is_nested:
                            reason = (
                                f"a bound method of the nested class "
                                f"{target_info.owner_class!r}"
                            )
                if reason is not None:
                    findings.append(
                        RuleFinding(
                            "RR102",
                            model.rel,
                            submission.line,
                            f"{reason} is submitted to a process pool but "
                            "cannot be pickled; process-pool tasks must be "
                            "module-level functions (see _batch_item_task in "
                            "repro.core.pipeline for the idiom)",
                        )
                    )
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


# ----------------------------------------------------------------------
# RR103 -- SharedSlabs lifecycle
# ----------------------------------------------------------------------
def _slab_role_of(value: ast.expr) -> str | None:
    """``"owner"``/``"attached"`` when the expression builds a slab handle."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            symbol = symbol_of(node.func)
            if symbol is None:
                continue
            parts = symbol.split(".")
            if len(parts) >= 2 and parts[-2] == "SharedSlabs":
                if parts[-1] == "create":
                    return "owner"
                if parts[-1] == "attach":
                    return "attached"
    return None


def _ordered_nodes(body: list[ast.stmt]) -> list[ast.AST]:
    """All nodes of one scope in source order, nested scopes excluded."""
    nodes: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # separate scope, separate analysis
            visit(child)

    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a scope of its own even when listed at the top level
        visit(stmt)
    nodes.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    return nodes


def rr103_slab_lifecycle(project: ProjectModel) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    for model in project.modules.values():
        if model.rel == RR103_HOME:
            continue
        for info in model.functions.values():
            if info.is_lambda:
                continue
            body = info.node.body
            if not isinstance(body, list):
                continue
            slab_vars: dict[str, tuple[str, int]] = {}
            for node in _ordered_nodes(body):
                if isinstance(node, ast.Assign):
                    role = _slab_role_of(node.value)
                    if role is not None:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                slab_vars[target.id] = (role, node.lineno)
            if not slab_vars:
                continue
            for var, (role, created_line) in slab_vars.items():
                findings.extend(
                    _check_slab_var(model, info, body, var, role, created_line)
                )
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


def _check_slab_var(
    model: ModuleModel,
    info: FunctionInfo,
    body: list[ast.stmt],
    var: str,
    role: str,
    created_line: int,
) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    lifecycle_receivers: set[int] = set()
    events: list[tuple[int, int, str, ast.AST]] = []  # (line, col, event, node)
    escapes = False
    for node in _ordered_nodes(body):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.func.attr in ("close", "unlink")
            ):
                lifecycle_receivers.add(id(node.func.value))
                events.append(
                    (node.lineno, node.col_offset, node.func.attr, node)
                )
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, ast.Name) and arg.id == var:
                    escapes = True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if isinstance(value, ast.Name) and value.id == var:
                escapes = True
            elif value is not None and any(
                isinstance(child, ast.Name) and child.id == var
                for child in ast.walk(value)
            ):
                escapes = True
    for node in _ordered_nodes(body):
        if (
            isinstance(node, ast.Name)
            and node.id == var
            and isinstance(node.ctx, ast.Load)
            and id(node) not in lifecycle_receivers
            and node.lineno > created_line
        ):
            events.append((node.lineno, node.col_offset, "use", node))
    events.sort(key=lambda e: (e[0], e[1]))

    closed_at: int | None = None
    unlinked = False
    for line, _col, event, _node in events:
        if event == "close":
            closed_at = line
        elif event == "unlink":
            unlinked = True
            if role == "attached":
                findings.append(
                    RuleFinding(
                        "RR103",
                        model.rel,
                        line,
                        f"attached SharedSlabs handle {var!r} calls unlink(): "
                        "the creating parent owns segment teardown; workers "
                        "must only close() (see repro.core.shm)",
                    )
                )
        elif event == "use" and closed_at is not None:
            findings.append(
                RuleFinding(
                    "RR103",
                    model.rel,
                    line,
                    f"SharedSlabs handle {var!r} is used after close() "
                    f"(closed at {model.rel}:{closed_at}); the mapped views "
                    "are invalid once the segment is detached",
                )
            )
    if role == "owner" and not unlinked and not escapes:
        findings.append(
            RuleFinding(
                "RR103",
                model.rel,
                created_line,
                f"SharedSlabs segment {var!r} is created here but never "
                "unlink()ed and the handle does not leave "
                f"{info.qualname}(); the shared-memory segment leaks",
            )
        )
    return findings


# ----------------------------------------------------------------------
# RR111 -- nondeterministic sources
# ----------------------------------------------------------------------
def rr111_nondeterministic_sources(project: ProjectModel) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    for model in project.modules.values():
        if _is_determinism_exempt(model.rel):
            continue
        for call in ast.walk(model.tree):
            if not isinstance(call, ast.Call):
                continue
            symbol = symbol_of(call.func)
            if symbol is None:
                continue
            verdict = _rr111_classify(model, symbol)
            if verdict is not None:
                findings.append(RuleFinding("RR111", model.rel, call.lineno, verdict))
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


def _rr111_classify(model: ModuleModel, symbol: str) -> str | None:
    parts = symbol.split(".")
    head = parts[0]
    resolved_head = model.imports.get(head)
    if resolved_head == "numpy" and len(parts) == 3 and parts[1] == "random":
        if parts[2] not in ALLOWED_NP_RANDOM:
            return (
                f"nondeterministic source {symbol}(): legacy np.random "
                "conveniences draw from hidden global state; use a "
                "Generator seeded through repro.core.seeding"
            )
    elif resolved_head == "random" and len(parts) == 2:
        if parts[1] != "Random":
            return (
                f"nondeterministic source {symbol}(): the random module's "
                "global state breaks run-to-run identity; use a seeded "
                "numpy Generator (repro.core.seeding)"
            )
    elif resolved_head == "time" and len(parts) == 2 and parts[1] in BANNED_TIME:
        return (
            f"wall-clock read {symbol}() in library code: results must be "
            "functions of their inputs and seeds (timing belongs in "
            "benchmarks/)"
        )
    elif len(parts) == 1 and head in model.from_imports:
        source_module, original = model.from_imports[head]
        if source_module == "random":
            return (
                f"nondeterministic source {original}() (from random): use a "
                "seeded numpy Generator (repro.core.seeding)"
            )
        if source_module == "time" and original in BANNED_TIME:
            return (
                f"wall-clock read {original}() (from time) in library code: "
                "results must be functions of their inputs and seeds "
                "(timing belongs in benchmarks/)"
            )
        if source_module == "numpy.random" and original not in ALLOWED_NP_RANDOM:
            return (
                f"nondeterministic source {original}() (from numpy.random): "
                "use a Generator seeded through repro.core.seeding"
            )
    return None


# ----------------------------------------------------------------------
# RR112 -- default_rng seed provenance
# ----------------------------------------------------------------------
def _is_default_rng_call(model: ModuleModel, call: ast.Call) -> bool:
    symbol = symbol_of(call.func)
    if symbol is None:
        return False
    parts = symbol.split(".")
    if len(parts) == 3 and parts[1] == "random" and parts[2] == "default_rng":
        return model.imports.get(parts[0]) == "numpy"
    if len(parts) == 1 and parts[0] == "default_rng":
        origin = model.from_imports.get("default_rng")
        return origin is not None and origin[0] in ("numpy.random", "numpy")
    return False


def _is_seedish(model: ModuleModel, expr: ast.expr) -> bool:
    """True when the expression visibly flows from a SeedSequence source."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            if node.id == "SeedSequence" or node.id in SEED_HELPER_NAMES:
                return True
            origin = model.from_imports.get(node.id)
            if origin is not None and origin[0] == "repro.core.seeding":
                return True
        elif isinstance(node, ast.Attribute):
            if node.attr in ("SeedSequence", "spawn") or node.attr in SEED_HELPER_NAMES:
                return True
    return False


def _int_annotation(annotation: str | None) -> bool:
    return annotation is not None and annotation.strip() == "int"


def _seed_sequence_annotation(annotation: str | None) -> bool:
    return annotation is not None and "SeedSequence" in annotation


def rr112_unseeded_default_rng(project: ProjectModel) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    for model in project.modules.values():
        if model.rel == RR112_HOME or _is_determinism_exempt(model.rel):
            continue
        for info in model.functions.values():
            body = info.node.body
            statements = body if isinstance(body, list) else [ast.Expr(body)]
            findings.extend(_rr112_scope(model, info, statements))
        findings.extend(_rr112_scope(model, None, model.tree.body))
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


def _rr112_scope(
    model: ModuleModel, info: FunctionInfo | None, body: list[ast.stmt]
) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    assigned_ok: set[str] = set()
    for node in _ordered_nodes(body):
        if isinstance(node, ast.Assign):
            ok = _is_seedish(model, node.value) or (
                isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            )
            if ok:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned_ok.add(target.id)
        if not isinstance(node, ast.Call) or not _is_default_rng_call(model, node):
            continue
        seed = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
        verdict = _rr112_verdict(model, info, assigned_ok, seed)
        if verdict is not None:
            findings.append(RuleFinding("RR112", model.rel, node.lineno, verdict))
    return findings


def _rr112_verdict(
    model: ModuleModel,
    info: FunctionInfo | None,
    assigned_ok: set[str],
    seed: ast.expr | None,
) -> str | None:
    remedy = (
        "; normalize it through repro.core.seeding (seeded_rng / "
        "seed_sequence) so the determinism contract holds (docs/analysis.md)"
    )
    if seed is None:
        return "default_rng() with no seed draws fresh OS entropy" + remedy
    if isinstance(seed, ast.Constant):
        if seed.value is None:
            return "default_rng(None) draws fresh OS entropy" + remedy
        if isinstance(seed.value, int):
            return None
        return f"default_rng({seed.value!r}) seed is not an int" + remedy
    if _is_seedish(model, seed):
        return None
    if isinstance(seed, ast.Name):
        name = seed.id
        if name in assigned_ok or name in model.int_constants:
            return None
        annotation = info.param_annotations.get(name) if info else None
        if _seed_sequence_annotation(annotation) or _int_annotation(annotation):
            return None
        described = f"annotated {annotation!r}" if annotation else "of unproven origin"
        return (
            f"default_rng({name}) seed is {described}: it does not provably "
            "flow from a SeedSequence/spawn or plain-int source" + remedy
        )
    if isinstance(seed, ast.Subscript):
        name = root_name(seed)
        if name is not None and name in assigned_ok:
            return None
    return (
        "default_rng(...) seed expression does not provably flow from a "
        "SeedSequence/spawn or plain-int source" + remedy
    )


# ----------------------------------------------------------------------
# RR121 -- backend-purity taint
# ----------------------------------------------------------------------
def _backend_hooks(project: ProjectModel) -> frozenset[str]:
    backend = project.modules.get(RR121_HOME)
    if backend is not None:
        klass = backend.classes.get("ArrayBackend")
        if klass is not None:
            hooks = {
                name
                for name in klass.methods
                if not name.startswith("_") and name != "to_numpy"
            }
            if hooks:
                return frozenset(hooks)
    return DEFAULT_BACKEND_HOOKS


def _is_backendish(expr: ast.expr, backend_vars: set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in backend_vars or "backend" in expr.id
    symbol = symbol_of(expr)
    if symbol is None:
        return False
    return "backend" in symbol.rsplit(".", 1)[-1]


def _hook_call(
    expr: ast.expr, hooks: frozenset[str], backend_vars: set[str]
) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in hooks
        and _is_backendish(expr.func.value, backend_vars)
    )


def _refs_tainted(
    expr: ast.expr,
    tainted: set[str],
    tainted_attrs: set[str],
    hooks: frozenset[str],
    backend_vars: set[str],
) -> bool:
    """Does ``expr`` carry backend-produced data?

    ``to_numpy`` calls are the sanctioned device->host bridge, so their
    subtrees are not scanned; any other hook call is itself a source.
    """
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr == "to_numpy":
            return False
        if _hook_call(expr, hooks, backend_vars):
            return True
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, ast.Attribute):
        symbol = symbol_of(expr)
        if symbol in tainted_attrs:
            return True
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr) and _refs_tainted(
            child, tainted, tainted_attrs, hooks, backend_vars
        ):
            return True
    return False


def _collect_backend_vars(info: FunctionInfo, body: list[ast.stmt]) -> set[str]:
    backend_vars = {
        name for name in info.params if "backend" in name
    }
    for node in _ordered_nodes(body):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            symbol = symbol_of(node.value.func)
            if symbol and symbol.rsplit(".", 1)[-1] == "get_array_backend":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        backend_vars.add(target.id)
    return backend_vars


def _class_tainted_attrs(
    model: ModuleModel, class_qualname: str, hooks: frozenset[str]
) -> set[str]:
    tainted: set[str] = set()
    for info in model.functions.values():
        if info.owner_class != class_qualname:
            continue
        body = info.node.body
        if not isinstance(body, list):
            continue
        backend_vars = _collect_backend_vars(info, body)
        for node in _ordered_nodes(body):
            if isinstance(node, ast.Assign) and _hook_call(
                node.value, hooks, backend_vars
            ):
                for target in node.targets:
                    symbol = symbol_of(target)
                    if symbol is not None and symbol.startswith("self."):
                        tainted.add(symbol)
    return tainted


def rr121_backend_taint(project: ProjectModel) -> list[RuleFinding]:
    hooks = _backend_hooks(project)
    findings: list[RuleFinding] = []
    for model in project.modules.values():
        if not model.rel.startswith(RR121_SCOPE) or model.rel == RR121_HOME:
            continue
        if model.imports.get("np") != "numpy" and "numpy" not in model.imports.values():
            continue
        attr_cache: dict[str, set[str]] = {}
        for info in model.functions.values():
            body = info.node.body
            if not isinstance(body, list):
                continue
            tainted_attrs: set[str] = set()
            if info.owner_class is not None:
                if info.owner_class not in attr_cache:
                    attr_cache[info.owner_class] = _class_tainted_attrs(
                        model, info.owner_class, hooks
                    )
                tainted_attrs = attr_cache[info.owner_class]
            findings.extend(
                _rr121_function(model, info, body, hooks, tainted_attrs)
            )
    findings.sort(key=lambda f: (f.rel, f.line, f.message))
    return findings


def _rr121_function(
    model: ModuleModel,
    info: FunctionInfo,
    body: list[ast.stmt],
    hooks: frozenset[str],
    tainted_attrs: set[str],
) -> list[RuleFinding]:
    findings: list[RuleFinding] = []
    backend_vars = _collect_backend_vars(info, body)
    tainted: set[str] = set()
    numpy_aliases = {
        alias for alias, module in model.imports.items() if module == "numpy"
    }

    for node in _ordered_nodes(body):
        if isinstance(node, ast.Call):
            func_root = root_name(node.func)
            func_symbol = symbol_of(node.func)
            if (
                func_root in numpy_aliases
                and isinstance(node.func, ast.Attribute)
                and func_symbol is not None
                and not func_symbol.split(".")[1:2] == ["random"]
            ):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if _refs_tainted(arg, tainted, tainted_attrs, hooks, backend_vars):
                        findings.append(
                            RuleFinding(
                                "RR121",
                                model.rel,
                                node.lineno,
                                f"host numpy call {func_symbol}(...) consumes "
                                "a backend-produced array: on CuPy/torch "
                                "backends this value may live on an "
                                "accelerator; route the operation through an "
                                "ArrayBackend hook or bridge explicitly with "
                                "backend.to_numpy(...)",
                            )
                        )
                        break
        if isinstance(node, ast.Assign):
            value_tainted = _refs_tainted(
                node.value, tainted, tainted_attrs, hooks, backend_vars
            )
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if value_tainted:
                        tainted.add(target.id)
                    else:
                        tainted.discard(target.id)
                else:
                    symbol = symbol_of(target)
                    if symbol is not None and symbol.startswith("self."):
                        if value_tainted:
                            tainted_attrs = tainted_attrs | {symbol}
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if _refs_tainted(node.value, tainted, tainted_attrs, hooks, backend_vars):
                tainted.add(node.target.id)
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_project(project: ProjectModel) -> list[RuleFinding]:
    """Run every RR1xx rule; returns raw (pre-suppression) findings."""
    graph = CallGraph(project)
    findings = [
        *rr101_executor_reachable_writes(project, graph),
        *rr102_unpicklable_submissions(project, graph),
        *rr103_slab_lifecycle(project),
        *rr111_nondeterministic_sources(project),
        *rr112_unseeded_default_rng(project),
        *rr121_backend_taint(project),
    ]
    findings.sort(key=lambda f: (f.rel, f.line, f.code, f.message))
    return findings
