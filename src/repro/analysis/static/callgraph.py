"""Call-graph construction and transitive effect propagation.

Resolution is *symbolic and conservative*: an edge is added only when
the callee can be pinned to a function the model actually contains --

* plain names: nested defs of the caller, then module functions, then
  ``from``-imports into other modeled modules, then classes (a class
  call resolves to its ``__init__``);
* dotted names: ``mod.f`` through import aliases, ``self.m`` through
  the owning class (and its bases in the same module), ``var.m``
  through locally-instantiated variables (``var = ClassName(...)``).

Calls through parameters, factories, or attributes the model cannot
type stay unresolved, so reachability is an under-approximation: the
race analyzer (RR101) reports only mutations it can actually chain to a
submitted task, never guesses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.static.model import (
    FunctionInfo,
    GlobalWrite,
    ModuleModel,
    ProjectModel,
)

#: A node is one function: (repo-relative path, qualname).
Node = tuple[str, str]


@dataclass(frozen=True)
class ReachedWrite:
    """A module-level mutation reachable from a call-graph root."""

    rel: str  # module containing the mutation
    write: GlobalWrite
    chain: tuple[str, ...]  # qualnames from root to the writing function


class CallGraph:
    """Resolved call edges over a :class:`ProjectModel`."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.edges: dict[Node, list[Node]] = {}
        self._modules_by_dotted = {
            model.module: model for model in project.modules.values()
        }
        for model in project.modules.values():
            for info in model.functions.values():
                node = (model.rel, info.qualname)
                self.edges[node] = self._resolve_calls(model, info)

    # -- resolution -----------------------------------------------------
    def resolve(self, model: ModuleModel, info: FunctionInfo, callee: str) -> Node | None:
        """Resolve one symbolic callee from ``info``'s scope, or None."""
        if "." not in callee:
            return self._resolve_name(model, info, callee)
        head, rest = callee.split(".", 1)
        if head == "self" and info.owner_class is not None and "." not in rest:
            return self._resolve_method(model, info.owner_class, rest)
        if "." not in rest:
            class_symbol = info.instance_types.get(head)
            if class_symbol is not None:
                resolved = self._resolve_class(model, class_symbol)
                if resolved is not None:
                    class_rel, class_qualname = resolved
                    return self._resolve_method_in(
                        self.project.modules[class_rel], class_qualname, rest
                    )
        if head in model.imports:
            target = self._modules_by_dotted.get(model.imports[head])
            if target is not None and "." not in rest:
                return self._resolve_name(target, None, rest)
        return None

    def _resolve_name(
        self,
        model: ModuleModel,
        info: FunctionInfo | None,
        name: str,
        _visited: frozenset[tuple[str, str]] = frozenset(),
    ) -> Node | None:
        if (model.rel, name) in _visited:
            return None  # circular re-export
        _visited = _visited | {(model.rel, name)}
        if info is not None:
            nested = f"{info.qualname}.<locals>.{name}"
            if nested in model.functions:
                return (model.rel, nested)
        if name in model.functions:
            return (model.rel, name)
        if name in model.classes:
            return self._resolve_method_in(model, name, "__init__")
        if name in model.from_imports:
            source_module, original = model.from_imports[name]
            target = self._modules_by_dotted.get(source_module)
            if target is not None:
                return self._resolve_name(target, None, original, _visited)
        return None

    def _resolve_class(self, model: ModuleModel, symbol: str) -> Node | None:
        """Class symbol -> (rel, class qualname) if it names a modeled class."""
        name = symbol.rsplit(".", 1)[-1]
        if name in model.classes:
            return (model.rel, name)
        if name in model.from_imports:
            source_module, original = model.from_imports[name]
            target = self._modules_by_dotted.get(source_module)
            if target is not None and original in target.classes:
                return (target.rel, original)
        return None

    def _resolve_method(
        self, model: ModuleModel, class_name: str, method: str
    ) -> Node | None:
        return self._resolve_method_in(model, class_name, method)

    def _resolve_method_in(
        self, model: ModuleModel, class_name: str, method: str
    ) -> Node | None:
        seen: set[str] = set()
        queue = deque([class_name])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            klass = model.classes.get(current)
            if klass is None:
                continue
            qualname = klass.methods.get(method)
            if qualname is not None:
                return (model.rel, qualname)
            for base in klass.bases:
                queue.append(base.rsplit(".", 1)[-1])
        return None

    def _resolve_calls(self, model: ModuleModel, info: FunctionInfo) -> list[Node]:
        resolved: list[Node] = []
        seen: set[Node] = set()
        for call in info.calls:
            node = self.resolve(model, info, call.callee)
            if node is not None and node not in seen:
                seen.add(node)
                resolved.append(node)
        return resolved

    # -- propagation -----------------------------------------------------
    def function(self, node: Node) -> FunctionInfo | None:
        model = self.project.modules.get(node[0])
        return model.functions.get(node[1]) if model else None

    def reachable(self, root: Node) -> dict[Node, tuple[str, ...]]:
        """BFS closure from ``root``: node -> qualname chain from root."""
        chains: dict[Node, tuple[str, ...]] = {root: (root[1],)}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee[1],)
                    queue.append(callee)
        return chains

    def reached_writes(self, root: Node) -> list[ReachedWrite]:
        """Every module-level mutation transitively reachable from ``root``."""
        writes: list[ReachedWrite] = []
        for node, chain in self.reachable(root).items():
            info = self.function(node)
            if info is None:
                continue
            for write in info.global_writes:
                writes.append(ReachedWrite(rel=node[0], write=write, chain=chain))
        writes.sort(key=lambda r: (r.rel, r.write.line, r.write.name))
        return writes
