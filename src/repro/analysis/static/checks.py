"""RR1xx rules surfaced through the :class:`repro.analysis.Check` registry.

``repro.analysis.check(model)`` on a :class:`ProjectModel` runs the same
analyzers ``tools/lint_repro.py`` gates CI with, packaged as three check
families so programmatic consumers (tests, notebooks, the pipeline's
``validate=`` knob someday) get :class:`Diagnostic` records instead of
lint lines.  Suppression pragmas are honored identically: a finding
covered by a ``# lint: ignore[RRxxx]`` span never becomes a diagnostic.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.diagnostics import Check, Diagnostic, register_check
from repro.analysis.static.model import ProjectModel
from repro.analysis.static.rules import (
    RuleFinding,
    rr101_executor_reachable_writes,
    rr102_unpicklable_submissions,
    rr103_slab_lifecycle,
    rr111_nondeterministic_sources,
    rr112_unseeded_default_rng,
    rr121_backend_taint,
)
from repro.analysis.static.suppress import SuppressionIndex


def suppressed(
    project: ProjectModel, findings: Iterable[RuleFinding]
) -> list[RuleFinding]:
    """Drop findings covered by a pragma span in their module."""
    indexes: dict[str, SuppressionIndex] = {}
    kept: list[RuleFinding] = []
    for finding in findings:
        model = project.modules.get(finding.rel)
        if model is not None:
            index = indexes.get(finding.rel)
            if index is None:
                index = indexes[finding.rel] = SuppressionIndex(
                    model.source, model.tree
                )
            if index.is_suppressed(finding.code, finding.line):
                continue
        kept.append(finding)
    return kept


class _ProjectRuleCheck(Check):
    """Base: applicability on ProjectModel + finding -> diagnostic glue."""

    codes: tuple[str, ...] = ()

    def applies_to(self, obj: Any) -> bool:
        return isinstance(obj, ProjectModel)

    def _findings(self, project: ProjectModel) -> list[RuleFinding]:
        raise NotImplementedError

    def run(self, obj: Any, device: Any = None) -> Iterable[Diagnostic]:
        for finding in suppressed(obj, self._findings(obj)):
            yield self.error(
                f"{finding.code} {finding.message}",
                location=f"{finding.rel}:{finding.line}",
                fix_hint=(
                    "fix the flagged site, or suppress a reviewed-safe one "
                    f"with '# lint: ignore[{finding.code}] - <reason>'"
                ),
            )


class ConcurrencySafetyCheck(_ProjectRuleCheck):
    """RR101/RR102/RR103: executor-reachable mutation, pickling, slabs."""

    name = "concurrency-safety"
    codes = ("RR101", "RR102", "RR103")

    def _findings(self, project: ProjectModel) -> list[RuleFinding]:
        from repro.analysis.static.callgraph import CallGraph

        graph = CallGraph(project)
        return [
            *rr101_executor_reachable_writes(project, graph),
            *rr102_unpicklable_submissions(project, graph),
            *rr103_slab_lifecycle(project),
        ]


class DeterminismCheck(_ProjectRuleCheck):
    """RR111/RR112: nondeterministic sources and unproven seeds."""

    name = "determinism"
    codes = ("RR111", "RR112")

    def _findings(self, project: ProjectModel) -> list[RuleFinding]:
        return [
            *rr111_nondeterministic_sources(project),
            *rr112_unseeded_default_rng(project),
        ]


class BackendPurityCheck(_ProjectRuleCheck):
    """RR121: host numpy calls on ArrayBackend-produced values."""

    name = "backend-purity"
    codes = ("RR121",)

    def _findings(self, project: ProjectModel) -> list[RuleFinding]:
        return rr121_backend_taint(project)


def _register_builtin_checks() -> None:
    for check_type in (ConcurrencySafetyCheck, DeterminismCheck, BackendPurityCheck):
        register_check(check_type(), overwrite=True)


_register_builtin_checks()
