"""Concurrency-safety & determinism static analyzer (RR1xx rules).

A lightweight AST dataflow layer over ``src/repro``: per-function effect
summaries (:mod:`.model`), a conservatively-resolved call graph with
transitive effect propagation (:mod:`.callgraph`), and the analyzer
families built on them (:mod:`.rules`) --

* **concurrency-safety** (RR101-RR103): executor-reachable module-state
  mutation, non-picklable process-pool tasks, SharedSlabs lifecycle;
* **determinism** (RR111-RR112): hidden-global randomness / wall-clock
  reads, and ``default_rng`` seeds that do not provably flow from a
  SeedSequence or plain-int source;
* **backend-purity** (RR121): host ``np.*`` calls on values produced by
  :class:`~repro.sim.backend.ArrayBackend` hooks.

Surfaced two ways: ``tools/lint_repro.py`` formats the findings as lint
lines / GitHub annotations / JSON and gates CI; importing this package
registers the same rules as :class:`~repro.analysis.Check` families, so
``repro.analysis.check(load_project(root))`` yields diagnostics.

>>> from pathlib import Path
>>> from repro.analysis.static import analyze, load_project
>>> findings = analyze(load_project(Path(".")))  # doctest: +SKIP
"""

from __future__ import annotations

from repro.analysis.static import checks as _checks  # registers Check families
from repro.analysis.static.callgraph import CallGraph, Node, ReachedWrite
from repro.analysis.static.checks import (
    BackendPurityCheck,
    ConcurrencySafetyCheck,
    DeterminismCheck,
    suppressed,
)
from repro.analysis.static.model import (
    FunctionInfo,
    GlobalWrite,
    ModuleModel,
    ProjectModel,
    Submission,
    build_project_model,
    load_project,
)
from repro.analysis.static.rules import (
    RuleFinding,
    analyze_project,
    rr101_executor_reachable_writes,
    rr102_unpicklable_submissions,
    rr103_slab_lifecycle,
    rr111_nondeterministic_sources,
    rr112_unseeded_default_rng,
    rr121_backend_taint,
)
from repro.analysis.static.suppress import IGNORE_PRAGMA, SuppressionIndex

del _checks


def analyze(project: ProjectModel) -> list[RuleFinding]:
    """All unsuppressed RR1xx findings of a modeled project."""
    return suppressed(project, analyze_project(project))


__all__ = [
    "BackendPurityCheck",
    "CallGraph",
    "ConcurrencySafetyCheck",
    "DeterminismCheck",
    "FunctionInfo",
    "GlobalWrite",
    "IGNORE_PRAGMA",
    "ModuleModel",
    "Node",
    "ProjectModel",
    "ReachedWrite",
    "RuleFinding",
    "Submission",
    "SuppressionIndex",
    "analyze",
    "analyze_project",
    "build_project_model",
    "load_project",
    "rr101_executor_reachable_writes",
    "rr102_unpicklable_submissions",
    "rr103_slab_lifecycle",
    "rr111_nondeterministic_sources",
    "rr112_unseeded_default_rng",
    "rr121_backend_taint",
    "suppressed",
]
