"""Span-aware ``# lint: ignore[RRxxx]`` suppression.

The original pragma matcher looked only at the physical line of the
flagged AST node, so a pragma on the closing line of a multi-line call
(or on a decorator) silently failed to suppress.  This index maps every
pragma to its *suppression unit* -- the innermost simple statement,
compound-statement header, or decorator expression containing it -- and
suppresses matching findings anywhere inside that unit's line span.

Usage is tracked per pragma so the linter can warn (RR007) about
suppressions that no longer suppress anything: a stale pragma is a
claim about the code that stopped being true, which is exactly the kind
of rot a lint layer exists to catch.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

IGNORE_PRAGMA = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token.

    Tokenizing (rather than regexing raw lines) keeps pragma syntax
    mentioned inside string literals and docstrings from being read as
    live pragmas.  Falls back to a raw line scan if tokenization fails
    (the AST parse already gated out genuinely broken sources).
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


@dataclass
class Pragma:
    """One ``# lint: ignore[...]`` comment and its suppression span."""

    line: int  # physical line of the comment (1-based)
    codes: frozenset[str]
    start: int  # first line the pragma suppresses
    end: int  # last line the pragma suppresses
    used: set[str] = field(default_factory=set)


def _header_end(node: ast.stmt) -> int:
    """Last line of a compound statement's header expressions.

    The header is everything before the indented body: condition, loop
    iterable, ``with`` items, a ``def``'s signature.  Scanning the
    non-statement children (recursively, stopping at nested statements)
    finds its true end even when it wraps over several lines.
    """
    end = node.lineno

    def scan(child: ast.AST) -> None:
        nonlocal end
        if isinstance(child, (ast.stmt, ast.ExceptHandler)):
            return
        child_end = getattr(child, "end_lineno", None)
        if child_end is not None:
            end = max(end, child_end)
        for grand in ast.iter_child_nodes(child):
            scan(grand)

    for child in ast.iter_child_nodes(node):
        scan(child)
    return end


def _units(tree: ast.Module) -> list[tuple[int, int]]:
    """Suppression-unit line spans, for containment tests.

    * a simple statement spans ``lineno..end_lineno``;
    * a compound statement contributes only its *header* (``lineno``
      through the end of its header expressions), so a pragma on a
      ``def``/``if``/``with`` line does not blanket the whole body;
    * each decorator expression is its own unit.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            spans.append((node.lineno, _header_end(node)))
            for decorator in getattr(node, "decorator_list", []):
                spans.append(
                    (decorator.lineno, decorator.end_lineno or decorator.lineno)
                )
        else:
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


class SuppressionIndex:
    """All pragmas of one source file, with span-aware matching."""

    def __init__(self, source: str, tree: ast.Module | None = None):
        if tree is None:
            tree = ast.parse(source)
        spans = _units(tree)
        self.pragmas: list[Pragma] = []
        for lineno, line in _comment_lines(source):
            match = IGNORE_PRAGMA.search(line)
            if not match:
                continue
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            start = end = lineno
            # Innermost containing unit: smallest span covering the line.
            best: tuple[int, int] | None = None
            for span in spans:
                if span[0] <= lineno <= span[1]:
                    if best is None or (span[1] - span[0]) < (best[1] - best[0]):
                        best = span
            if best is None:
                # Standalone comment line: the pragma governs the next
                # statement (the disable-next idiom), so a pragma that
                # will not fit beside a long line can sit above it.
                following = [span for span in spans if span[0] > lineno]
                if following:
                    best = min(following, key=lambda span: (span[0], span[1] - span[0]))
            if best is not None:
                start, end = best
            self.pragmas.append(Pragma(lineno, codes, start, end))

    def is_suppressed(self, code: str, line: int) -> bool:
        """True (and mark the pragma used) if ``code`` at ``line`` is covered."""
        hit = False
        for pragma in self.pragmas:
            if code in pragma.codes and pragma.start <= line <= pragma.end:
                pragma.used.add(code)
                hit = True
        return hit

    def unused(self) -> list[tuple[int, str]]:
        """(line, code) pairs of pragma codes that never suppressed anything."""
        stale = []
        for pragma in self.pragmas:
            for code in sorted(pragma.codes - pragma.used):
                stale.append((pragma.line, code))
        return sorted(stale)
