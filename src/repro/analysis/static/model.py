"""AST project model: per-function effect summaries over ``src/repro``.

This is the substrate of the RR1xx analyzers (:mod:`.rules`): every
module is parsed once and boiled down to the facts the concurrency /
determinism / backend-purity rules need --

* which names a module binds at top level (the mutable state surface),
* which functions exist (including nested defs and lambdas, which get
  synthetic qualnames so the call graph can reach them),
* which *calls* each function makes (symbolic, resolved against import
  tables by :mod:`.callgraph`),
* which module-level names each function mutates and how,
* which callables each function submits to thread / process executors,
* the raw AST of each function body, for the rules that walk deeper
  (slab lifecycle, seed provenance, backend taint).

Everything here is linear in source size and dependency-free (stdlib
``ast`` only), so the whole tree models in well under a second.  The
model is deliberately *conservative where it must be and honest about
it*: calls through parameters or factories are left unresolved rather
than guessed, so reachability under-approximates and the race rules
never fire on code the analyzer cannot actually see into.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

#: Method names that mutate their receiver in place.  Used to classify
#: ``GLOBAL.method(...)`` statements as writes to module-level state.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Executor constructor names and the pool family they create.
_EXECUTOR_KINDS = {
    "ThreadPoolExecutor": "thread",
    "ProcessPoolExecutor": "process",
    "Pool": "process",
}

#: Executor methods that take a task callable as their first argument.
_SUBMIT_METHODS = frozenset({"submit", "map"})


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, before resolution.

    ``callee`` is the dotted source spelling: ``"f"``, ``"mod.f"``,
    ``"self.m"``, ``"var.m"`` or ``"Class"``.
    """

    callee: str
    line: int


@dataclass(frozen=True)
class GlobalWrite:
    """A mutation of module-level state inside a function body."""

    name: str
    line: int
    kind: str  # "assign" | "augassign" | "subscript" | "attribute" | "method" | "delete"


@dataclass(frozen=True)
class Submission:
    """A callable handed to an executor's ``submit``/``map``."""

    executor: str  # "thread" | "process"
    target: str | None  # symbolic callee (resolved later); None if opaque
    kind: str  # "name" | "lambda" | "nested" | "bound-method" | "opaque"
    line: int


@dataclass
class FunctionInfo:
    """Effect summary + retained AST of one function-like object."""

    rel: str
    qualname: str
    name: str
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    owner_class: str | None = None
    is_nested: bool = False
    is_lambda: bool = False
    params: tuple[str, ...] = ()
    param_annotations: dict[str, str] = field(default_factory=dict)
    return_annotation: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    global_writes: list[GlobalWrite] = field(default_factory=list)
    submissions: list[Submission] = field(default_factory=list)
    #: Local name -> class-name symbol it was instantiated from
    #: (``sim = TrajectorySimulator(...)``), for ``var.m`` resolution.
    instance_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassModel:
    name: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)  # method -> qualname
    is_nested: bool = False


@dataclass
class ModuleModel:
    rel: str
    module: str  # dotted import name, e.g. "repro.sim.trajectory"
    source: str
    tree: ast.Module
    module_globals: set[str] = field(default_factory=set)
    int_constants: set[str] = field(default_factory=set)
    imports: dict[str, str] = field(default_factory=dict)  # alias -> module
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassModel] = field(default_factory=dict)


@dataclass
class ProjectModel:
    """All modules of one analysis run, keyed by repo-relative path."""

    modules: dict[str, ModuleModel] = field(default_factory=dict)

    def by_dotted(self, dotted: str) -> ModuleModel | None:
        for model in self.modules.values():
            if model.module == dotted:
                return model
        return None

    def functions(self) -> Iterable[FunctionInfo]:
        for model in self.modules.values():
            yield from model.functions.values()


def dotted_name(rel: str) -> str:
    """``src/repro/sim/backend.py`` -> ``repro.sim.backend``."""
    parts = rel[:-3] if rel.endswith(".py") else rel
    if parts.startswith("src/"):
        parts = parts[len("src/"):]
    if parts.endswith("/__init__"):
        parts = parts[: -len("/__init__")]
    return parts.replace("/", ".")


def root_name(node: ast.expr) -> str | None:
    """Leftmost ``Name`` of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def symbol_of(node: ast.expr) -> str | None:
    """Dotted spelling of a Name/Attribute chain (``a.b.c``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_symbol(call: ast.Call) -> str | None:
    return symbol_of(call.func)


def _bound_names(target: ast.expr) -> Iterable[str]:
    """Names bound by an assignment target (tuple targets unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


class _LocalCollector(ast.NodeVisitor):
    """Names bound inside one function body (not descending into defs)."""

    def __init__(self) -> None:
        self.locals: set[str] = set()
        self.globals: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.locals.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.locals.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.locals.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # separate scope

    def visit_Global(self, node: ast.Global) -> None:
        self.globals.update(node.names)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Store):
            self.locals.add(node.id)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        for name in _bound_names(node.target):
            self.locals.add(name)
        self.generic_visit(node)


def _executor_kind_of_call(node: ast.expr) -> str | None:
    """``ThreadPoolExecutor(...)`` -> ``"thread"`` (attr paths too)."""
    if not isinstance(node, ast.Call):
        return None
    symbol = _call_symbol(node)
    if symbol is None:
        return None
    return _EXECUTOR_KINDS.get(symbol.rsplit(".", 1)[-1])


class _FunctionExtractor(ast.NodeVisitor):
    """Summarize one function body without entering nested scopes."""

    def __init__(self, info: FunctionInfo, module: ModuleModel):
        self.info = info
        self.module = module
        collector = _LocalCollector()
        body = info.node.body
        for stmt in body if isinstance(body, list) else [body]:
            collector.visit(stmt)
        self.declared_globals = collector.globals
        self.local_names = (
            set(info.params) | collector.locals
        ) - collector.globals
        self.executor_vars: dict[str, str] = {}

    # -- helpers --------------------------------------------------------
    def _is_module_global(self, name: str) -> bool:
        return (
            name in self.module.module_globals
            and name not in self.local_names
        ) or name in self.declared_globals

    def _record_write(self, name: str, node: ast.AST, kind: str) -> None:
        self.info.global_writes.append(GlobalWrite(name, node.lineno, kind))

    def _record_call(self, call: ast.Call) -> None:
        symbol = _call_symbol(call)
        if symbol is not None:
            self.info.calls.append(CallSite(symbol, call.lineno))

    def _classify_target(self, target: ast.expr) -> tuple[str | None, str]:
        """Submission target -> (symbolic callee, kind)."""
        if isinstance(target, ast.Lambda):
            return f"<lambda:{target.lineno}>", "lambda"
        if isinstance(target, ast.Call):
            # functools.partial(f, ...) submits f.
            symbol = _call_symbol(target)
            if symbol and symbol.rsplit(".", 1)[-1] == "partial" and target.args:
                return self._classify_target(target.args[0])
            return None, "opaque"
        symbol = symbol_of(target)
        if symbol is None:
            return None, "opaque"
        if "." in symbol:
            return symbol, "bound-method"
        return symbol, "name"

    # -- scope boundaries ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # summarized separately

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- facts ----------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        kind = _executor_kind_of_call(node.value)
        symbol = (
            _call_symbol(node.value) if isinstance(node.value, ast.Call) else None
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                if kind is not None:
                    self.executor_vars[target.id] = kind
                if symbol is not None:
                    self.info.instance_types[target.id] = symbol
                if self._is_module_global(target.id) and target.id in self.declared_globals:
                    self._record_write(target.id, node, "assign")
            else:
                self._check_store_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if node.target.id in self.declared_globals:
                self._record_write(node.target.id, node, "assign")
        else:
            self._check_store_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            if node.target.id in self.declared_globals:
                self._record_write(node.target.id, node, "augassign")
        else:
            self._check_store_target(node.target, node, aug=True)
        self.generic_visit(node)

    def _check_store_target(
        self, target: ast.expr, node: ast.AST, *, aug: bool = False
    ) -> None:
        if isinstance(target, ast.Subscript):
            name = root_name(target.value)
            if name and self._is_module_global(name):
                self._record_write(name, node, "augassign" if aug else "subscript")
        elif isinstance(target, ast.Attribute):
            name = root_name(target.value)
            if name and self._is_module_global(name):
                self._record_write(name, node, "attribute")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, node, aug=aug)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            name = None
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                name = root_name(target.value)
            elif isinstance(target, ast.Name) and target.id in self.declared_globals:
                name = target.id
            if name and self._is_module_global(name):
                self._record_write(name, node, "delete")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            kind = _executor_kind_of_call(item.context_expr)
            if kind is not None and isinstance(item.optional_vars, ast.Name):
                self.executor_vars[item.optional_vars.id] = kind
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        # GLOBAL.method(...) mutation
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            name = root_name(receiver)
            if (
                isinstance(receiver, ast.Name)
                and name is not None
                and node.func.attr in MUTATING_METHODS
                and self._is_module_global(name)
            ):
                self._record_write(name, node, "method")
            # pool.submit(f, ...) / pool.map(f, ...)
            kind = None
            if isinstance(receiver, ast.Name):
                kind = self.executor_vars.get(receiver.id)
            else:
                kind = _executor_kind_of_call(receiver)
            if kind is not None and node.func.attr in _SUBMIT_METHODS and node.args:
                target, target_kind = self._classify_target(node.args[0])
                self.info.submissions.append(
                    Submission(kind, target, target_kind, node.lineno)
                )
        self.generic_visit(node)


def _format_annotation(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return None


def _param_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> tuple[tuple[str, ...], dict[str, str]]:
    args = node.args
    every = [
        *args.posonlyargs,
        *args.args,
        *([args.vararg] if args.vararg else []),
        *args.kwonlyargs,
        *([args.kwarg] if args.kwarg else []),
    ]
    names = tuple(a.arg for a in every)
    annotations = {}
    for a in every:
        rendered = _format_annotation(getattr(a, "annotation", None))
        if rendered is not None:
            annotations[a.arg] = rendered
    return names, annotations


class _ModuleExtractor:
    """Builds a :class:`ModuleModel` from one parsed module."""

    def __init__(self, rel: str, source: str, tree: ast.Module):
        self.model = ModuleModel(
            rel=rel, module=dotted_name(rel), source=source, tree=tree
        )

    def build(self) -> ModuleModel:
        self._collect_toplevel()
        for stmt in self.model.tree.body:
            self._walk_definitions(stmt, prefix="", nested=False, owner=None)
        for info in self.model.functions.values():
            _FunctionExtractor(info, self.model).generic_visit(info.node)
        return self.model

    # -- pass 1: module-global surface ---------------------------------
    def _collect_toplevel(self) -> None:
        for stmt in self.model.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in _bound_names(target):
                        self.model.module_globals.add(name)
                        if isinstance(stmt.value, ast.Constant) and isinstance(
                            stmt.value.value, int
                        ):
                            self.model.int_constants.add(name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.model.module_globals.add(stmt.target.id)
                if isinstance(stmt.value, ast.Constant) and isinstance(
                    stmt.value.value, int
                ):
                    self.model.int_constants.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.model.imports[local] = alias.name
                    self.model.module_globals.add(local)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module is None or stmt.level:
                    continue  # relative imports: out of model scope
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.model.from_imports[local] = (stmt.module, alias.name)
                    self.model.module_globals.add(local)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.model.module_globals.add(stmt.name)

    # -- pass 2: function / class registry ------------------------------
    def _register_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        qualname: str,
        *,
        nested: bool,
        owner: str | None,
    ) -> FunctionInfo:
        params, annotations = _param_facts(node)
        is_lambda = isinstance(node, ast.Lambda)
        info = FunctionInfo(
            rel=self.model.rel,
            qualname=qualname,
            name=qualname.rsplit(".", 1)[-1],
            lineno=node.lineno,
            node=node,
            owner_class=owner,
            is_nested=nested,
            is_lambda=is_lambda,
            params=params,
            param_annotations=annotations,
            return_annotation=(
                None
                if is_lambda
                else _format_annotation(node.returns)  # type: ignore[union-attr]
            ),
        )
        self.model.functions[qualname] = info
        return info

    def _walk_definitions(
        self, node: ast.AST, *, prefix: str, nested: bool, owner: str | None
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            self._register_function(node, qualname, nested=nested, owner=owner)
            inner = f"{qualname}.<locals>."
            for child in ast.iter_child_nodes(node):
                self._walk_definitions(child, prefix=inner, nested=True, owner=None)
        elif isinstance(node, ast.Lambda):
            qualname = f"{prefix}<lambda:{node.lineno}>"
            self._register_function(node, qualname, nested=nested, owner=owner)
            inner = f"{qualname}.<locals>."
            for child in ast.iter_child_nodes(node):
                self._walk_definitions(child, prefix=inner, nested=True, owner=None)
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                symbol for symbol in (symbol_of(b) for b in node.bases) if symbol
            )
            klass = ClassModel(
                name=node.name, lineno=node.lineno, bases=bases, is_nested=nested
            )
            self.model.classes[f"{prefix}{node.name}"] = klass
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{node.name}.{child.name}"
                    self._register_function(
                        child, qualname, nested=nested, owner=f"{prefix}{node.name}"
                    )
                    klass.methods[child.name] = qualname
                    inner = f"{qualname}.<locals>."
                    for grand in ast.iter_child_nodes(child):
                        self._walk_definitions(
                            grand, prefix=inner, nested=True, owner=None
                        )
                else:
                    self._walk_definitions(
                        child, prefix=prefix, nested=nested, owner=None
                    )
        else:
            for child in ast.iter_child_nodes(node):
                self._walk_definitions(child, prefix=prefix, nested=nested, owner=owner)


def build_project_model(files: Mapping[str, str]) -> ProjectModel:
    """Model a set of ``{repo-relative path: source}`` modules.

    Sources that fail to parse are skipped (the per-file linter reports
    the syntax error; the project rules stay quiet rather than crash).
    """
    project = ProjectModel()
    for rel, source in sorted(files.items()):
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError:
            continue
        project.modules[rel] = _ModuleExtractor(rel, source, tree).build()
    return project


def load_project(root: Path, package: str = "src/repro") -> ProjectModel:
    """Model every ``*.py`` under ``root/package``."""
    base = root / package
    files = {
        path.relative_to(root).as_posix(): path.read_text()
        for path in sorted(base.rglob("*.py"))
    }
    return build_project_model(files)
