"""The circuit sanitizer: static checks over every compiled artifact.

Each check here validates one structural invariant of the co-optimization
flow in linear time -- the complement of the exponential dynamic verifier
(:func:`repro.compiler.verify.assert_routed_equivalent`), which is
skipped on big circuits.  The checks walk four artifact families:

* **Circuits and DAGs** (:class:`~repro.circuit.circuit.Circuit`,
  :class:`~repro.circuit.dag.CircuitDAG`): qubit-index bounds, gate-set
  conformance, unbound/NaN parameters, and -- when a device is supplied
  -- coupling-graph legality of every two-qubit gate;
* **Compiled results** (:class:`~repro.compiler.merge_to_root.CompiledProgram`,
  :class:`~repro.compiler.sabre.SabreResult`, anything satisfying the
  compiled-result protocol): everything above on the physical circuit,
  plus layout permutation consistency -- injectivity, bounds, and that
  replaying the circuit's SWAPs transforms ``initial_layout`` into
  exactly ``final_layout`` -- plus SWAP accounting and DAG/circuit
  agreement;
* **DAG invariants**: predecessor/successor symmetry, forward-pointing
  (topologically ordered) edges, per-wire consistency, and commute-edge
  soundness via canonical reconstruction;
* **Fusion plans** (:class:`~repro.compiler.fusion.FusionPlan`): every
  source gate covered exactly once, block arities, qubit bounds;
* **Pauli programs** (:class:`~repro.core.ir.PauliProgram`): support
  bounds, parameter wiring, finite coefficients, occupation sanity.

All checks are registered into the :mod:`repro.analysis.diagnostics`
registry at import; :func:`repro.analysis.check` runs the applicable
subset over any artifact.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.analysis.diagnostics import Check, Diagnostic, register_check
from repro.circuit.circuit import Circuit
from repro.circuit.dag import CircuitDAG
from repro.circuit.gates import Gate, _MATRIX_BUILDERS
from repro.compiler.fusion import FUSION_LEVELS, FusionPlan
from repro.core.ir import PauliProgram
from repro.hardware.coupling import CouplingGraph

#: Gate names the simulators and synthesis layers understand.  A gate
#: outside this vocabulary has no matrix, no kernel, and no QASM export.
KNOWN_GATES = frozenset(_MATRIX_BUILDERS) | {"barrier", "measure"}

#: Gates that carry no semantics for coupling legality.
_NON_INTERACTING = frozenset({"barrier", "measure"})

#: Expected parameter arity per known gate (rotations take one angle).
_PARAM_ARITY = {name: (1 if name in ("rx", "ry", "rz") else 0) for name in KNOWN_GATES}


def is_compiled_result(obj: Any) -> bool:
    """True for objects satisfying the compiled-result protocol."""
    return all(
        hasattr(obj, attribute)
        for attribute in ("circuit", "initial_layout", "final_layout", "num_swaps")
    )


def _circuit_of(obj: Any) -> Circuit | None:
    """The gate container behind an artifact (None when there is none)."""
    if isinstance(obj, Circuit):
        return obj
    if isinstance(obj, CircuitDAG):
        return obj.to_circuit()
    if is_compiled_result(obj):
        circuit = obj.circuit
        return circuit if isinstance(circuit, Circuit) else None
    return None


def _gate_location(index: int, gate: Gate) -> str:
    return f"gate {index} ({gate!r})"


class CircuitLevelCheck(Check):
    """Base for checks that walk the gate list of circuit-like artifacts."""

    def applies_to(self, obj: Any) -> bool:
        return _circuit_of(obj) is not None

    def run(self, obj: Any, device: Any = None) -> Iterable[Diagnostic]:
        circuit = _circuit_of(obj)
        assert circuit is not None  # applies_to guarantees it
        return self.run_circuit(circuit, device)

    def run_circuit(
        self, circuit: Circuit, device: CouplingGraph | None
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


class QubitBoundsCheck(CircuitLevelCheck):
    """Every gate's qubits are in-range, distinct, and fit the device."""

    name = "qubit-bounds"

    def run_circuit(
        self, circuit: Circuit, device: CouplingGraph | None
    ) -> Iterator[Diagnostic]:
        width = circuit.num_qubits
        if device is not None and width > device.num_qubits:
            yield self.error(
                f"circuit spans {width} qubits but device "
                f"{device.name} has only {device.num_qubits}",
                location="circuit header",
                fix_hint="route onto a larger device or shrink the program",
            )
        for index, gate in enumerate(circuit.gates):
            for qubit in gate.qubits:
                if not 0 <= qubit < width:
                    yield self.error(
                        f"qubit {qubit} out of range for a {width}-qubit circuit",
                        location=_gate_location(index, gate),
                        fix_hint="qubit indices must satisfy 0 <= q < num_qubits",
                    )
            if gate.name not in _NON_INTERACTING and len(set(gate.qubits)) != len(
                gate.qubits
            ):
                yield self.error(
                    "gate lists the same qubit twice",
                    location=_gate_location(index, gate),
                    fix_hint="two-qubit gates need two distinct qubits",
                )


class GateSetCheck(CircuitLevelCheck):
    """Gates are drawn from the known vocabulary and the device's basis."""

    name = "gate-set"

    def run_circuit(
        self, circuit: Circuit, device: CouplingGraph | None
    ) -> Iterator[Diagnostic]:
        native = getattr(device, "gate_set", None) if device is not None else None
        for index, gate in enumerate(circuit.gates):
            if gate.name not in KNOWN_GATES:
                yield self.error(
                    f"unknown gate {gate.name!r}: no matrix, kernel, or QASM "
                    "export exists for it",
                    location=_gate_location(index, gate),
                    fix_hint=f"use one of: {', '.join(sorted(KNOWN_GATES))}",
                )
            elif (
                native is not None
                and gate.name not in native
                and gate.name not in _NON_INTERACTING
            ):
                yield self.error(
                    f"gate {gate.name!r} is outside the native gate set of "
                    f"device {device.name}",
                    location=_gate_location(index, gate),
                    fix_hint=f"decompose into: {', '.join(sorted(native))}",
                )


class GateParameterCheck(CircuitLevelCheck):
    """Rotation angles are bound, finite, and of the right arity."""

    name = "gate-parameters"

    def run_circuit(
        self, circuit: Circuit, device: CouplingGraph | None
    ) -> Iterator[Diagnostic]:
        for index, gate in enumerate(circuit.gates):
            for value in gate.params:
                if not isinstance(value, (int, float)) or not math.isfinite(value):
                    yield self.error(
                        f"unbound or non-finite parameter {value!r}",
                        location=_gate_location(index, gate),
                        fix_hint="bind concrete finite angles before compiling "
                        "(NaN usually means an unbound template parameter)",
                    )
            expected = _PARAM_ARITY.get(gate.name)
            if expected is not None and len(gate.params) != expected:
                yield self.error(
                    f"gate {gate.name!r} carries {len(gate.params)} parameter(s), "
                    f"expected {expected}",
                    location=_gate_location(index, gate),
                    fix_hint="rotations take exactly one angle; other gates none",
                )


class CouplingLegalityCheck(CircuitLevelCheck):
    """Every two-qubit gate of a physical circuit lies on a device edge.

    Only meaningful for *physical* circuits (routed results, or circuits
    the caller asserts are laid out on the device); it is skipped when no
    device is supplied.  Out-of-range gates are left to ``qubit-bounds``.
    """

    name = "coupling-legality"
    requires_device = True

    def run_circuit(
        self, circuit: Circuit, device: CouplingGraph | None
    ) -> Iterator[Diagnostic]:
        assert device is not None  # requires_device guarantees it
        for index, gate in enumerate(circuit.gates):
            if not gate.is_two_qubit() or gate.name in _NON_INTERACTING:
                continue
            a, b = gate.qubits
            if not (
                0 <= a < device.num_qubits
                and 0 <= b < device.num_qubits
                and a != b
            ):
                continue  # qubit-bounds reports these
            if not device.are_connected(a, b):
                yield self.error(
                    f"two-qubit gate on ({a}, {b}): not an edge of "
                    f"{device.name}",
                    location=_gate_location(index, gate),
                    fix_hint="insert routing SWAPs or fix the layout; "
                    "physical 2q gates must act on coupled qubits",
                )


def _replay_swaps(
    circuit: Circuit, initial_layout: dict[int, int]
) -> dict[int, int]:
    """The final layout implied by the circuit's SWAPs."""
    position = dict(initial_layout)
    occupant = {p: l for l, p in position.items()}
    for gate in circuit.gates:
        if gate.name != "swap":
            continue
        a, b = gate.qubits
        logical_a = occupant.pop(a, None)
        logical_b = occupant.pop(b, None)
        if logical_a is not None:
            position[logical_a] = b
            occupant[b] = logical_a
        if logical_b is not None:
            position[logical_b] = a
            occupant[a] = logical_b
    return position


class LayoutPermutationCheck(Check):
    """Layouts are injective, in-bounds, and consistent with the SWAPs.

    The strongest static statement about a routed artifact short of
    simulation: ``final_layout`` must be exactly the permutation obtained
    by pushing ``initial_layout`` through the circuit's SWAP gates, and
    ``num_swaps`` must match the circuit's SWAP count (the paper's
    ``3 * #SWAPs`` overhead accounting depends on it).
    """

    name = "layout-permutation"

    def applies_to(self, obj: Any) -> bool:
        return is_compiled_result(obj)

    def run(self, obj: Any, device: Any = None) -> Iterator[Diagnostic]:
        circuit: Circuit = obj.circuit
        width = device.num_qubits if device is not None else circuit.num_qubits
        layouts_sane = True
        for label in ("initial_layout", "final_layout"):
            layout: dict[int, int] = getattr(obj, label)
            values = list(layout.values())
            if len(set(values)) != len(values):
                layouts_sane = False
                yield self.error(
                    f"{label} maps two logical qubits to one physical qubit",
                    location=label,
                    fix_hint="layouts must be injective logical -> physical maps",
                )
            out_of_range = [p for p in values if not 0 <= p < width]
            if out_of_range:
                layouts_sane = False
                yield self.error(
                    f"{label} targets physical qubit(s) {out_of_range} outside "
                    f"the {width}-qubit device",
                    location=label,
                    fix_hint="physical indices must satisfy 0 <= p < num_qubits",
                )
        if set(obj.initial_layout) != set(obj.final_layout):
            layouts_sane = False
            yield self.error(
                "initial and final layouts cover different logical qubits",
                location="final_layout",
                fix_hint="routing permutes logical qubits; it never adds or "
                "drops them",
            )
        swap_count = circuit.num_swaps()
        if int(obj.num_swaps) != swap_count:
            yield self.error(
                f"result claims {obj.num_swaps} SWAPs but the circuit "
                f"contains {swap_count}",
                location="num_swaps",
                fix_hint="overhead accounting (3 CNOTs per SWAP) relies on "
                "this counter matching the circuit",
            )
        if not layouts_sane:
            return  # replay would only cascade noise
        replayed = _replay_swaps(circuit, obj.initial_layout)
        if replayed != dict(obj.final_layout):
            moved = sorted(
                l
                for l in obj.final_layout
                if replayed.get(l) != obj.final_layout[l]
            )
            yield self.error(
                f"final_layout disagrees with the SWAP replay of "
                f"initial_layout for logical qubit(s) {moved}",
                location="final_layout",
                fix_hint="the final layout must equal the initial layout "
                "pushed through the circuit's SWAP gates in order",
            )


def _edge_set(dag: CircuitDAG) -> set[tuple[int, int]]:
    return {
        (predecessor.index, node.index)
        for node in dag.nodes
        for predecessor in node.predecessors
    }


class DagInvariantCheck(Check):
    """Structural soundness of a :class:`CircuitDAG`.

    Checks predecessor/successor symmetry, forward-pointing edges (the
    append order must be a topological order), per-wire membership, and
    -- via canonical reconstruction from the gate sequence -- that the
    edge set is exactly the one the builder's wire/commutation rules
    imply (a missing edge is an unsound commute-edge; an extra edge is a
    lost parallelism bug that corrupts scheduling metrics).
    """

    name = "dag-invariants"

    def applies_to(self, obj: Any) -> bool:
        if isinstance(obj, CircuitDAG):
            return True
        return is_compiled_result(obj) and isinstance(
            getattr(obj, "dag", None), CircuitDAG
        )

    def run(self, obj: Any, device: Any = None) -> Iterator[Diagnostic]:
        dag: CircuitDAG = obj if isinstance(obj, CircuitDAG) else obj.dag
        sound = True
        for node in dag.nodes:
            for predecessor in node.predecessors:
                if predecessor.index >= node.index:
                    sound = False
                    yield self.error(
                        f"edge {predecessor.index} -> {node.index} points "
                        "backward: the node order is not topological",
                        location=f"node {node.index}",
                        fix_hint="DAG appends must only depend on earlier nodes",
                    )
                if node not in predecessor.successors:
                    sound = False
                    yield self.error(
                        f"asymmetric edge: node {node.index} lists "
                        f"{predecessor.index} as predecessor but not vice versa",
                        location=f"node {node.index}",
                        fix_hint="predecessors and successors must mirror "
                        "each other",
                    )
            for successor in node.successors:
                if node not in successor.predecessors:
                    sound = False
                    yield self.error(
                        f"asymmetric edge: node {node.index} lists "
                        f"{successor.index} as successor but not vice versa",
                        location=f"node {node.index}",
                        fix_hint="predecessors and successors must mirror "
                        "each other",
                    )
        for qubit in range(dag.num_qubits):
            for node in dag.wire(qubit):
                if qubit not in node.gate.qubits:
                    sound = False
                    yield self.error(
                        f"node {node.index} sits on wire {qubit} but its gate "
                        "does not touch that qubit",
                        location=f"wire {qubit}",
                        fix_hint="wires may only hold gates acting on them",
                    )
        if not sound:
            return  # reconstruction diff would repeat the same findings
        reference = CircuitDAG(dag.num_qubits, commute=dag.commute)
        try:
            reference.extend(dag.topological_gates())
        except ValueError:
            return  # out-of-range gates are qubit-bounds findings
        actual, expected = _edge_set(dag), _edge_set(reference)
        for a, b in sorted(expected - actual):
            yield self.error(
                f"missing dependency edge {a} -> {b}: the builder's "
                "wire/commutation rules require it",
                location=f"node {a} -> {b}",
                fix_hint="an unsound commute-edge lets the scheduler reorder "
                "non-commuting gates",
            )
        for a, b in sorted(actual - expected):
            yield self.error(
                f"spurious dependency edge {a} -> {b}: the gates commute "
                "(or never share a wire)",
                location=f"node {a} -> {b}",
                fix_hint="extra edges inflate scheduled depth and shrink "
                "the router's frontier",
            )


class DagCircuitConsistencyCheck(Check):
    """A compiled result's DAG and circuit describe the same gates."""

    name = "dag-circuit-consistency"

    def applies_to(self, obj: Any) -> bool:
        return is_compiled_result(obj) and isinstance(
            getattr(obj, "dag", None), CircuitDAG
        )

    def run(self, obj: Any, device: Any = None) -> Iterator[Diagnostic]:
        dag: CircuitDAG = obj.dag
        circuit: Circuit = obj.circuit
        if dag.num_qubits != circuit.num_qubits:
            yield self.error(
                f"DAG spans {dag.num_qubits} qubits, circuit "
                f"{circuit.num_qubits}",
                location="dag",
                fix_hint="both views must describe the same register",
            )
            return
        dag_gates = dag.topological_gates()
        if dag_gates != circuit.gates:
            first = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(dag_gates, circuit.gates))
                    if a != b
                ),
                min(len(dag_gates), len(circuit.gates)),
            )
            yield self.error(
                f"DAG and circuit diverge (DAG has {len(dag_gates)} gates, "
                f"circuit {len(circuit.gates)}; first difference at "
                f"position {first})",
                location=f"gate {first}",
                fix_hint="scheduling metrics read the DAG while simulation "
                "reads the circuit; they must agree gate-for-gate",
            )


class FusionCoverageCheck(Check):
    """A fusion plan covers every source gate exactly once."""

    name = "fusion-coverage"

    def applies_to(self, obj: Any) -> bool:
        return isinstance(obj, FusionPlan)

    def run(self, obj: FusionPlan, device: Any = None) -> Iterator[Diagnostic]:
        if obj.level not in FUSION_LEVELS:
            yield self.error(
                f"unknown fusion level {obj.level!r}",
                location="plan header",
                fix_hint=f"valid levels: {', '.join(FUSION_LEVELS)}",
            )
        seen: dict[int, int] = {}
        for op_index, op in enumerate(obj.ops):
            location = f"op {op_index} (qubits {op.qubits})"
            if not op.dense and len(op.indices) != 1:
                yield self.error(
                    f"passthrough op carries {len(op.indices)} gates",
                    location=location,
                    fix_hint="passthrough ops wrap exactly one source gate",
                )
            if op.dense and len(op.indices) < 2:
                yield self.error(
                    "dense block with a single gate",
                    location=location,
                    fix_hint="single-gate blocks must stay passthrough so the "
                    "specialized kernels keep handling them",
                )
            if op.dense and not 1 <= len(op.qubits) <= 2:
                yield self.error(
                    f"dense block spans {len(op.qubits)} qubits",
                    location=location,
                    fix_hint="the dense kernels handle 2x2 and 4x4 blocks only",
                )
            for qubit in op.qubits:
                if not 0 <= qubit < obj.num_qubits:
                    yield self.error(
                        f"block qubit {qubit} out of range for "
                        f"{obj.num_qubits} qubits",
                        location=location,
                        fix_hint="block qubits must index the source register",
                    )
            for index in op.indices:
                if not 0 <= index < obj.source_gates:
                    yield self.error(
                        f"source index {index} out of range for "
                        f"{obj.source_gates} gates",
                        location=location,
                        fix_hint="plan indices address the source gate list",
                    )
                elif index in seen:
                    yield self.error(
                        f"source gate {index} fused into ops {seen[index]} "
                        f"and {op_index}",
                        location=location,
                        fix_hint="each source gate must be applied exactly once",
                    )
                else:
                    seen[index] = op_index
        missing = [i for i in range(obj.source_gates) if i not in seen]
        if missing:
            yield self.error(
                f"source gate(s) {missing[:8]}{'...' if len(missing) > 8 else ''} "
                "absent from every block: the fused program would silently "
                "drop them",
                location="plan coverage",
                fix_hint="every source gate index must appear in exactly "
                "one PlanOp",
            )


class PauliProgramCheck(Check):
    """Structural sanity of the Pauli-string IR feeding the compilers."""

    name = "pauli-program"

    def applies_to(self, obj: Any) -> bool:
        return isinstance(obj, PauliProgram)

    def run(self, obj: PauliProgram, device: Any = None) -> Iterator[Diagnostic]:
        for index, term in enumerate(obj.terms):
            location = f"term {index}"
            if term.pauli.num_qubits != obj.num_qubits:
                yield self.error(
                    f"Pauli string spans {term.pauli.num_qubits} qubits, "
                    f"program {obj.num_qubits}",
                    location=location,
                    fix_hint="every term must live on the program's register",
                )
            if not 0 <= term.parameter_index < obj.num_parameters:
                yield self.error(
                    f"parameter index {term.parameter_index} out of range for "
                    f"{obj.num_parameters} parameters",
                    location=location,
                    fix_hint="binding would read past the parameter vector",
                )
            if not math.isfinite(term.coefficient):
                yield self.error(
                    f"non-finite Jordan-Wigner coefficient {term.coefficient!r}",
                    location=location,
                    fix_hint="coefficients feed rotation angles; NaN poisons "
                    "the whole statevector",
                )
        occupations = list(obj.initial_occupations)
        if len(set(occupations)) != len(occupations):
            yield self.error(
                "duplicate qubit in initial occupations",
                location="initial_occupations",
                fix_hint="each Hartree-Fock X gate targets a distinct qubit",
            )
        for qubit in occupations:
            if not 0 <= qubit < obj.num_qubits:
                yield self.error(
                    f"initial occupation on qubit {qubit}, program has "
                    f"{obj.num_qubits}",
                    location="initial_occupations",
                    fix_hint="occupations must index the program register",
                )


def _register_builtin_checks() -> None:
    for check in (
        QubitBoundsCheck(),
        GateSetCheck(),
        GateParameterCheck(),
        CouplingLegalityCheck(),
        LayoutPermutationCheck(),
        DagInvariantCheck(),
        DagCircuitConsistencyCheck(),
        FusionCoverageCheck(),
        PauliProgramCheck(),
    ):
        register_check(check)


_register_builtin_checks()
