"""Diagnostics core of the static verification layer.

The dynamic verifier (:func:`repro.compiler.verify.assert_routed_equivalent`)
simulates both sides of an equivalence and is therefore exponential in
qubit count; it is skipped on large circuits.  The static checks built on
this module validate every compiled artifact in linear time, the role
compiler verifiers play in production ML stacks: each :class:`Check`
walks one structural invariant (coupling legality, gate-set conformance,
layout permutation consistency, ...) and emits :class:`Diagnostic`
records instead of raising, so one run reports *every* violation with a
severity, a location, and a fix hint.

The pieces:

* :class:`Severity` / :class:`Diagnostic` -- one finding: which check,
  how bad, where, and what to do about it;
* :class:`CheckReport` -- the findings of one run, with ``ok``/``errors``
  accessors, a JSON-safe :meth:`CheckReport.to_dict`, and
  :meth:`CheckReport.raise_if_errors` for callers that want the
  assert-style contract;
* :class:`Check` -- base class: declares what it applies to and yields
  diagnostics;
* :class:`CheckRunner` -- runs every applicable check from a pluggable
  registry (:func:`register_check` / :func:`default_checks`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` marks a violated structural invariant: the artifact is
    wrong and downstream stages (simulation, hardware execution) would
    produce garbage.  ``WARNING`` marks legal-but-suspicious structure.
    ``INFO`` carries statistics a check wants to surface.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one check.

    ``location`` is a human-readable anchor ("gate 12", "qubit 5",
    "node 3 -> 7"); ``fix_hint`` says what would make the finding go
    away.  Both are optional but every built-in check sets them.
    """

    check: str
    severity: Severity
    message: str
    location: str | None = None
    fix_hint: str | None = None

    def format(self) -> str:
        where = f" at {self.location}" if self.location else ""
        hint = f" (hint: {self.fix_hint})" if self.fix_hint else ""
        return f"[{self.severity}] {self.check}{where}: {self.message}{hint}"

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
            "fix_hint": self.fix_hint,
        }


class AnalysisError(RuntimeError):
    """A static check found ERROR-severity diagnostics.

    Raised by :meth:`CheckReport.raise_if_errors` (and therefore by the
    pipeline's ``validate=`` path); carries the full report so callers
    can inspect every finding, not just the first.
    """

    def __init__(self, report: "CheckReport", context: str = "") -> None:
        self.report = report
        prefix = f"{context}: " if context else ""
        lines = [d.format() for d in report.errors]
        super().__init__(
            f"{prefix}{len(report.errors)} static-check error(s):\n  "
            + "\n  ".join(lines)
        )


@dataclass
class CheckReport:
    """Findings of one :class:`CheckRunner` run over one artifact."""

    subject: str = "artifact"
    checks_run: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was produced."""
        return not self.errors

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_check(self, name: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.check == name]

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def raise_if_errors(self, context: str = "") -> "CheckReport":
        """Raise :class:`AnalysisError` when any ERROR was found."""
        if not self.ok:
            raise AnalysisError(self, context or self.subject)
        return self

    def summary(self) -> str:
        return (
            f"{self.subject}: {len(self.checks_run)} check(s), "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (the CI diagnostics-report artifact rows)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class Check:
    """One static invariant: applicability predicate + diagnostic walk.

    Subclasses set ``name`` (the registry key and the ``check`` field of
    emitted diagnostics), override :meth:`applies_to`, and implement
    :meth:`run` as a generator of diagnostics.  ``requires_device``
    marks checks that are silently skipped when the caller has no
    coupling graph to check against (e.g. coupling legality of a
    logical, not-yet-routed circuit).
    """

    name: str = "check"
    requires_device: bool = False

    def applies_to(self, obj: Any) -> bool:
        raise NotImplementedError

    def run(self, obj: Any, device: Any = None) -> Iterable[Diagnostic]:
        raise NotImplementedError

    # Shorthand for subclasses.
    def error(
        self, message: str, *, location: str | None = None, fix_hint: str | None = None
    ) -> Diagnostic:
        return Diagnostic(self.name, Severity.ERROR, message, location, fix_hint)

    def warning(
        self, message: str, *, location: str | None = None, fix_hint: str | None = None
    ) -> Diagnostic:
        return Diagnostic(self.name, Severity.WARNING, message, location, fix_hint)

    def info(
        self, message: str, *, location: str | None = None, fix_hint: str | None = None
    ) -> Diagnostic:
        return Diagnostic(self.name, Severity.INFO, message, location, fix_hint)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


#: The process-global check registry (name -> instance).  Populated by
#: :mod:`repro.analysis.circuit_checks` at import; extensible at runtime
#: through :func:`register_check` for project-specific invariants.
_CHECKS: dict[str, Check] = {}


def register_check(check: Check, *, overwrite: bool = False) -> Check:
    """Register ``check`` under its name; returns it for chaining."""
    if not check.name or check.name == "check":
        raise ValueError("checks must define a distinctive name")
    if check.name in _CHECKS and not overwrite:
        raise ValueError(f"check {check.name!r} already registered")
    _CHECKS[check.name] = check
    return check


def list_checks() -> list[str]:
    """Registered check names, sorted."""
    return sorted(_CHECKS)


def get_check(name: str) -> Check:
    if name not in _CHECKS:
        raise ValueError(
            f"unknown check {name!r}; registered checks: {', '.join(list_checks())}"
        )
    return _CHECKS[name]


def default_checks() -> list[Check]:
    """All registered checks in deterministic (name) order."""
    return [_CHECKS[name] for name in list_checks()]


class CheckRunner:
    """Run every applicable check over one artifact.

    ``checks`` defaults to the full registry; pass an explicit subset
    (instances or registered names) to scope a run.
    """

    def __init__(self, checks: Iterable[Check | str] | None = None) -> None:
        if checks is None:
            self.checks: list[Check] = default_checks()
        else:
            self.checks = [
                c if isinstance(c, Check) else get_check(c) for c in checks
            ]

    def run(self, obj: Any, *, device: Any = None, subject: str | None = None) -> CheckReport:
        report = CheckReport(subject=subject or type(obj).__name__)
        for check in self.checks:
            if not check.applies_to(obj):
                continue
            if check.requires_device and device is None:
                continue
            report.checks_run.append(check.name)
            report.extend(check.run(obj, device))
        return report
