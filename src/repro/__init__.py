"""repro -- reproduction of the ISCA 2021 paper "Software-Hardware
Co-Optimization for Computational Chemistry on Superconducting Quantum
Processors" (Li, Shi, Javadi-Abhari).

The public API re-exports the main entry points of each layer:

* end-to-end flow:       :class:`repro.Pipeline` +
  :class:`repro.PipelineConfig` (the Figure-1 pass manager),
  :func:`repro.run_batch` for config sweeps, and the legacy one-call
  :func:`repro.co_optimize`
* chemistry substrate:   :func:`repro.chem.build_molecule_hamiltonian`
* ansatz:                :class:`repro.ansatz.UCCSDAnsatz`
* contribution 1:        :func:`repro.core.compress_ansatz`
* contribution 2:        :func:`repro.get_device` (device registry over
  the X-Tree family and grid baselines)
* contribution 3:        :func:`repro.get_compiler` (Merge-to-Root /
  SABRE behind one interface)
* VQE driver:            :class:`repro.VQE`
* static verification:   :mod:`repro.analysis` --
  :func:`repro.analysis.check` / :func:`repro.analysis.assert_clean`
  over circuits, routed results, DAGs, fusion plans, and Pauli programs
  (see ``docs/analysis.md``)
"""

from repro import analysis
from repro.pauli import PauliString, PauliSum
from repro.core import (
    CoOptimizationResult,
    Pipeline,
    PipelineConfig,
    co_optimize,
    load_batch,
    run_batch,
    save_batch,
)
from repro.hardware import get_device, list_devices, register_device
from repro.compiler import get_compiler, list_compilers, register_compiler
from repro.vqe import VQE, VQEResult

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "PauliString",
    "PauliSum",
    "Pipeline",
    "PipelineConfig",
    "CoOptimizationResult",
    "co_optimize",
    "run_batch",
    "save_batch",
    "load_batch",
    "get_device",
    "list_devices",
    "register_device",
    "get_compiler",
    "list_compilers",
    "register_compiler",
    "VQE",
    "VQEResult",
    "__version__",
]
