"""repro -- reproduction of the ISCA 2021 paper "Software-Hardware
Co-Optimization for Computational Chemistry on Superconducting Quantum
Processors" (Li, Shi, Javadi-Abhari).

The public API re-exports the main entry points of each layer:

* chemistry substrate:   :func:`repro.chem.build_molecule_hamiltonian`
* ansatz:                :class:`repro.ansatz.UCCSDAnsatz`
* contribution 1:        :func:`repro.core.compress_ansatz`
* contribution 2:        :func:`repro.hardware.xtree`, :func:`repro.hardware.grid17q`
* contribution 3:        :class:`repro.compiler.MergeToRootCompiler`
* VQE driver:            :class:`repro.vqe.VQE`
"""

from repro.pauli import PauliString, PauliSum

__version__ = "1.0.0"

__all__ = ["PauliString", "PauliSum", "__version__"]
