"""Pauli-string algebra substrate.

Pauli strings are the key abstraction layer of the paper: the molecular
Hamiltonian is a weighted sum of Pauli strings, the UCCSD ansatz is a
sequence of Pauli-string time-evolution circuits, and all three
co-optimizations (ansatz compression, X-Tree architecture, Merge-to-Root
compilation) reason directly about Pauli strings.

This package provides an efficient symplectic (bitmask) representation:

* :class:`PauliString` -- a single n-qubit Pauli operator ``G_{n-1}...G_0``.
* :class:`PauliSum`    -- a complex-weighted sum of Pauli strings.
"""

from repro.pauli.pauli_string import PauliString
from repro.pauli.pauli_sum import PauliSum

__all__ = ["PauliString", "PauliSum"]
