"""Weighted sums of Pauli strings (Hamiltonians and ansatz generators).

A :class:`PauliSum` holds a mapping from symplectic keys ``(x, z)`` to
complex coefficients.  The molecular Hamiltonian ``H = sum_j w_j P_j`` and
the anti-Hermitian UCCSD generators are both PauliSums; the paper's
importance estimation (Algorithm 1) compares the strings of the two sums.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.pauli.pauli_string import PauliString

_DEFAULT_TOLERANCE = 1e-12


class PauliSum:
    """A complex-weighted sum of n-qubit Pauli strings."""

    __slots__ = ("num_qubits", "_terms")

    def __init__(self, num_qubits: int, terms: dict[tuple[int, int], complex] | None = None):
        self.num_qubits = num_qubits
        self._terms: dict[tuple[int, int], complex] = dict(terms) if terms else {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        return cls(num_qubits)

    @classmethod
    def identity(cls, num_qubits: int, coefficient: complex = 1.0) -> "PauliSum":
        return cls(num_qubits, {(0, 0): coefficient})

    @classmethod
    def from_pauli(cls, pauli: PauliString, coefficient: complex = 1.0) -> "PauliSum":
        return cls(pauli.num_qubits, {pauli.key(): coefficient})

    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[complex, PauliString]], num_qubits: int | None = None
    ) -> "PauliSum":
        terms = list(terms)
        if num_qubits is None:
            if not terms:
                raise ValueError("num_qubits required for an empty term list")
            num_qubits = terms[0][1].num_qubits
        result = cls(num_qubits)
        for coefficient, pauli in terms:
            result.add_term(coefficient, pauli)
        return result

    @classmethod
    def from_label_dict(cls, labels: dict[str, complex]) -> "PauliSum":
        """Build from ``{"XIYZ": w, ...}`` labels (all the same length)."""
        paulis = [(w, PauliString.from_label(label)) for label, w in labels.items()]
        if not paulis:
            raise ValueError("empty label dict")
        return cls.from_terms(paulis)

    # ------------------------------------------------------------------
    # Mutation (builder-style; the sums are mutable during construction)
    # ------------------------------------------------------------------
    def add_term(self, coefficient: complex, pauli: PauliString) -> None:
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        key = pauli.key()
        value = self._terms.get(key, 0.0) + coefficient
        if value == 0:
            self._terms.pop(key, None)
        else:
            self._terms[key] = value

    def add_key(self, coefficient: complex, key: tuple[int, int]) -> None:
        value = self._terms.get(key, 0.0) + coefficient
        if value == 0:
            self._terms.pop(key, None)
        else:
            self._terms[key] = value

    def chop(self, tolerance: float = _DEFAULT_TOLERANCE) -> "PauliSum":
        """Drop terms with magnitude below ``tolerance`` (returns self)."""
        self._terms = {k: v for k, v in self._terms.items() if abs(v) > tolerance}
        return self

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[tuple[complex, PauliString]]:
        """Iterate ``(coefficient, PauliString)`` in deterministic order."""
        for (x, z) in sorted(self._terms):
            yield self._terms[(x, z)], PauliString(self.num_qubits, x, z)

    def items(self) -> Iterator[tuple[tuple[int, int], complex]]:
        return iter(sorted(self._terms.items()))

    def coefficient(self, pauli: PauliString) -> complex:
        return self._terms.get(pauli.key(), 0.0)

    def paulis(self) -> list[PauliString]:
        return [pauli for _, pauli in self]

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        return all(abs(v.imag) < tolerance for v in self._terms.values())

    def norm1(self) -> float:
        """Sum of coefficient magnitudes (induced 1-norm on Pauli weights)."""
        return sum(abs(v) for v in self._terms.values())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "PauliSum") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")

    def __add__(self, other: "PauliSum") -> "PauliSum":
        self._check_compatible(other)
        result = PauliSum(self.num_qubits, self._terms)
        for key, value in other._terms.items():
            result.add_key(value, key)
        return result

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliSum":
        if isinstance(scalar, PauliSum):
            return self.compose(scalar)
        return PauliSum(
            self.num_qubits, {k: v * scalar for k, v in self._terms.items() if v * scalar != 0}
        )

    __rmul__ = __mul__

    def compose(self, other: "PauliSum") -> "PauliSum":
        """Operator product ``self @ other`` expanded into Pauli terms."""
        self._check_compatible(other)
        result = PauliSum(self.num_qubits)
        n = self.num_qubits
        for (x1, z1), c1 in self._terms.items():
            p1 = PauliString(n, x1, z1)
            for (x2, z2), c2 in other._terms.items():
                phase, product = p1.compose(PauliString(n, x2, z2))
                result.add_key(c1 * c2 * phase, product.key())
        return result

    def __matmul__(self, other: "PauliSum") -> "PauliSum":
        return self.compose(other)

    def dagger(self) -> "PauliSum":
        """Hermitian conjugate (Pauli strings are self-adjoint)."""
        return PauliSum(self.num_qubits, {k: v.conjugate() for k, v in self._terms.items()})

    def commutator(self, other: "PauliSum") -> "PauliSum":
        return (self @ other - other @ self).chop()

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def to_matrix(self):
        """Dense matrix (test/diagnostic use, small n only)."""
        import numpy as np

        if self.num_qubits > 12:
            raise ValueError("to_matrix is only intended for small qubit counts")
        dim = 1 << self.num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for coefficient, pauli in self:
            matrix += coefficient * pauli.to_matrix()
        return matrix

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliSum):
            return NotImplemented
        if self.num_qubits != other.num_qubits:
            return False
        keys = set(self._terms) | set(other._terms)
        return all(
            math.isclose(
                abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)), 0.0, abs_tol=1e-10
            )
            for k in keys
        )

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{coefficient:+.4g}*{pauli}" for coefficient, pauli in list(self)[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return f"PauliSum({len(self)} terms: {preview}{suffix})"
