"""Symplectic representation of a single n-qubit Pauli string.

A Pauli string ``P = G_{n-1} G_{n-2} ... G_0`` with ``G_i`` in
``{I, X, Y, Z}`` is stored as a pair of integer bitmasks ``(x, z)``:

* bit ``i`` of ``x`` is set when ``G_i`` is ``X`` or ``Y``;
* bit ``i`` of ``z`` is set when ``G_i`` is ``Z`` or ``Y``.

This matches the paper's indexing convention: in the textual label the
*leftmost* character acts on the *highest* qubit (``"XIYZ"`` on four qubits
means ``q3=X, q2=I, q1=Y, q0=Z``, exactly as in Figure 2 of the paper).

The representation makes the operations the co-optimization stack needs --
products, commutation checks, support masks, per-qubit comparisons --
cheap bit arithmetic rather than per-character string work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

_LABEL_TO_BITS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_BITS_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


@dataclass(frozen=True)
class PauliString:
    """An immutable n-qubit Pauli string in symplectic form.

    Attributes:
        num_qubits: number of qubits n.
        x: bitmask of qubits carrying an X component (X or Y).
        z: bitmask of qubits carrying a Z component (Z or Y).
    """

    num_qubits: int
    x: int = 0
    z: int = 0

    def __post_init__(self) -> None:
        if self.num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        mask = (1 << self.num_qubits) - 1
        if self.x & ~mask or self.z & ~mask:
            raise ValueError(
                f"bitmasks exceed {self.num_qubits} qubits: x={self.x:#x} z={self.z:#x}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Build from a textual label such as ``"XIYZ"`` (qubit 0 rightmost)."""
        x = 0
        z = 0
        n = len(label)
        for position, char in enumerate(label):
            qubit = n - 1 - position
            try:
                xbit, zbit = _LABEL_TO_BITS[char]
            except KeyError:
                raise ValueError(f"invalid Pauli character {char!r} in {label!r}") from None
            x |= xbit << qubit
            z |= zbit << qubit
        return cls(n, x, z)

    @classmethod
    def from_ops(cls, num_qubits: int, ops: dict[int, str]) -> "PauliString":
        """Build from a sparse ``{qubit: 'X'|'Y'|'Z'}`` mapping."""
        x = 0
        z = 0
        for qubit, char in ops.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
            xbit, zbit = _LABEL_TO_BITS[char]
            if (xbit, zbit) == (0, 0):
                continue
            x |= xbit << qubit
            z |= zbit << qubit
        return cls(num_qubits, x, z)

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(num_qubits, 0, 0)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, op: str) -> "PauliString":
        """A single-qubit Pauli ``op`` on ``qubit``, identity elsewhere."""
        return cls.from_ops(num_qubits, {qubit: op})

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def op_on(self, qubit: int) -> str:
        """The single-qubit operator ('I', 'X', 'Y' or 'Z') on ``qubit``."""
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        xbit = (self.x >> qubit) & 1
        zbit = (self.z >> qubit) & 1
        return _BITS_TO_LABEL[(xbit, zbit)]

    def label(self) -> str:
        """Textual label, qubit 0 rightmost (paper convention)."""
        return "".join(self.op_on(q) for q in reversed(range(self.num_qubits)))

    @property
    def support_mask(self) -> int:
        """Bitmask of qubits with a non-identity operator."""
        return self.x | self.z

    def support(self) -> list[int]:
        """Sorted list of qubits with a non-identity operator."""
        mask = self.support_mask
        return [q for q in range(self.num_qubits) if (mask >> q) & 1]

    @property
    def weight(self) -> int:
        """Number of non-identity operators (the string's Hamming weight)."""
        return self.support_mask.bit_count()

    @property
    def num_xy(self) -> int:
        """Number of qubits carrying X or Y (they need basis-change gates)."""
        return self.x.bit_count()

    def is_identity(self) -> bool:
        return self.x == 0 and self.z == 0

    def y_count(self) -> int:
        """Number of Y operators in the string."""
        return (self.x & self.z).bit_count()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two strings commute (symplectic inner product even)."""
        self._check_compatible(other)
        overlap = (self.x & other.z).bit_count() + (self.z & other.x).bit_count()
        return overlap % 2 == 0

    def compose(self, other: "PauliString") -> tuple[complex, "PauliString"]:
        """The product ``self * other`` as ``(phase, string)``.

        The phase is a power of ``i`` determined per qubit by the
        single-qubit products (e.g. ``X*Y = iZ``).
        """
        self._check_compatible(other)
        x1, z1 = self.x, self.z
        x2, z2 = other.x, other.z
        # Per-qubit classification masks.
        x_only_1, y_1, z_only_1 = x1 & ~z1, x1 & z1, z1 & ~x1
        x_only_2, y_2, z_only_2 = x2 & ~z2, x2 & z2, z2 & ~x2
        # Cyclic products X*Y=iZ, Y*Z=iX, Z*X=iY contribute +i each;
        # the reversed orders contribute -i each.
        plus = (
            (x_only_1 & y_2).bit_count()
            + (y_1 & z_only_2).bit_count()
            + (z_only_1 & x_only_2).bit_count()
        )
        minus = (
            (y_1 & x_only_2).bit_count()
            + (z_only_1 & y_2).bit_count()
            + (x_only_1 & z_only_2).bit_count()
        )
        phase = (1j) ** ((plus - minus) % 4)
        return phase, PauliString(self.num_qubits, x1 ^ x2, z1 ^ z2)

    def __mul__(self, other: "PauliString") -> tuple[complex, "PauliString"]:
        return self.compose(other)

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def to_matrix(self):
        """Dense ``2^n x 2^n`` complex matrix (small n only; used by tests)."""
        import numpy as np

        if self.num_qubits > 12:
            raise ValueError("to_matrix is only intended for small qubit counts")
        dim = 1 << self.num_qubits
        indices = np.arange(dim)
        columns = indices ^ self.x
        # Phase per basis state: i^{y_count} * (-1)^{popcount(z & column)}.
        # Convention: P|c> = phase(c) |c ^ x>, derived from per-qubit action
        # X|b>=|b^1>, Z|b>=(-1)^b |b>, Y|b> = i(-1)^b |b^1>.
        z_and = indices & self.z
        signs = np.ones(dim, dtype=complex)
        parity = np.zeros(dim, dtype=np.int64)
        col = z_and
        while col.any():
            parity ^= col & 1
            col = col >> 1
        signs = np.where(parity, -1.0, 1.0).astype(complex)
        global_phase = (1j) ** (self.y_count() % 4)
        matrix = np.zeros((dim, dim), dtype=complex)
        matrix[columns, indices] = global_phase * signs
        return matrix

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "PauliString") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError(
                f"qubit count mismatch: {self.num_qubits} vs {other.num_qubits}"
            )

    def __str__(self) -> str:
        return self.label()

    def __repr__(self) -> str:
        return f"PauliString({self.label()!r})"

    def __iter__(self) -> Iterator[str]:
        """Iterate operators from qubit 0 upward."""
        return (self.op_on(q) for q in range(self.num_qubits))

    def key(self) -> tuple[int, int]:
        """Hashable (x, z) pair used by :class:`~repro.pauli.PauliSum`."""
        return (self.x, self.z)


def paulis_from_labels(labels: Sequence[str]) -> list[PauliString]:
    """Convenience constructor for test fixtures and examples."""
    return [PauliString.from_label(label) for label in labels]
