"""Enumeration of UCCSD excitations over an active space.

Counting convention (verified against Table I of the paper):

* singles:            ``occ * virt`` per spin sector;
* same-spin doubles:  ``C(occ, 2) * C(virt, 2)`` per spin sector;
* mixed-spin doubles: ``(occ_a * virt_a) * (occ_b * virt_b)`` -- every
  combination counted, no spatial deduplication.

With the per-molecule active spaces of :mod:`repro.chem.molecules` this
gives exactly 3, 8, 15, 24, 92, 92, 204, 204, 360 parameters for the nine
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.chem.fermion import FermionOperator
from repro.chem.mo_integrals import spin_orbital_index


@dataclass(frozen=True)
class Excitation:
    """A single or double excitation; indices are spin orbitals.

    ``occupied`` and ``virtual`` each hold one index (single) or two
    (double).  The generator is ``T - T+`` with
    ``T = a_{v0}+ [a_{v1}+] a_{o1} a_{o0}``.
    """

    occupied: tuple[int, ...]
    virtual: tuple[int, ...]

    @property
    def is_single(self) -> bool:
        return len(self.occupied) == 1

    @property
    def is_double(self) -> bool:
        return len(self.occupied) == 2

    def generator(self) -> FermionOperator:
        """The anti-Hermitian generator ``T - T+``."""
        if self.is_single:
            excite = FermionOperator.from_term(
                [(self.virtual[0], True), (self.occupied[0], False)]
            )
        else:
            excite = FermionOperator.from_term(
                [
                    (self.virtual[0], True),
                    (self.virtual[1], True),
                    (self.occupied[1], False),
                    (self.occupied[0], False),
                ]
            )
        return excite - excite.dagger()

    def support(self) -> tuple[int, ...]:
        return tuple(sorted(self.occupied + self.virtual))


def generate_excitations(
    num_spatial: int, num_alpha: int, num_beta: int
) -> list[Excitation]:
    """All UCCSD excitations in deterministic order: singles first
    (alpha then beta), then same-spin doubles, then mixed doubles."""
    if num_alpha > num_spatial or num_beta > num_spatial:
        raise ValueError("more electrons of one spin than spatial orbitals")

    def orbitals(spin: int, occupied_count: int) -> tuple[list[int], list[int]]:
        occupied = [
            spin_orbital_index(p, spin, num_spatial) for p in range(occupied_count)
        ]
        virtual = [
            spin_orbital_index(p, spin, num_spatial)
            for p in range(occupied_count, num_spatial)
        ]
        return occupied, virtual

    occ_alpha, virt_alpha = orbitals(0, num_alpha)
    occ_beta, virt_beta = orbitals(1, num_beta)

    excitations: list[Excitation] = []
    # Singles.
    for occupied, virtual in ((occ_alpha, virt_alpha), (occ_beta, virt_beta)):
        for i in occupied:
            for a in virtual:
                excitations.append(Excitation((i,), (a,)))
    # Same-spin doubles.
    for occupied, virtual in ((occ_alpha, virt_alpha), (occ_beta, virt_beta)):
        for i, j in combinations(occupied, 2):
            for a, b in combinations(virtual, 2):
                excitations.append(Excitation((i, j), (a, b)))
    # Mixed-spin doubles (all combinations, Table I convention).
    for i in occ_alpha:
        for a in virt_alpha:
            for j in occ_beta:
                for b in virt_beta:
                    excitations.append(Excitation((i, j), (a, b)))
    return excitations


def count_uccsd_parameters(num_spatial: int, num_alpha: int, num_beta: int) -> int:
    """Closed-form parameter count (used by tests against Table I)."""
    def comb2(k: int) -> int:
        return k * (k - 1) // 2

    virt_alpha = num_spatial - num_alpha
    virt_beta = num_spatial - num_beta
    singles = num_alpha * virt_alpha + num_beta * virt_beta
    same_spin = comb2(num_alpha) * comb2(virt_alpha) + comb2(num_beta) * comb2(virt_beta)
    mixed = num_alpha * virt_alpha * num_beta * virt_beta
    return singles + same_spin + mixed
