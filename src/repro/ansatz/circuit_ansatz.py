"""Gate-level ansatz wrapper for arbitrary ingested circuits.

A :class:`CircuitAnsatz` is what the pipeline stages between
``BuildAnsatz`` and ``Route`` is handed when the workload is an
arbitrary OpenQASM circuit rather than a Pauli program: there is no
parameter space to compress and no Pauli IR to synthesize, so the
``Compress`` stage passes it through untouched and the ``Route`` stage
dispatches to the compilers' gate-stream entry point
(:meth:`repro.compiler.registry.CompilerAdapter.compile_circuit`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit


@dataclass(frozen=True)
class CircuitAnsatz:
    """An opaque gate-level circuit flowing through the pipeline."""

    circuit: Circuit
    name: str = "circuit"

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates()

    #: The pipeline's metrics stage reads ``num_parameters`` off every
    #: ansatz; an ingested circuit has no variational parameters.
    @property
    def num_parameters(self) -> int:
        return 0
