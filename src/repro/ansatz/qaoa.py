"""p-layer QAOA ansatz over diagonal cost Hamiltonians.

The ansatz is emitted directly in the Pauli-string IR
(:class:`~repro.core.ir.PauliProgram`), so everything downstream --
compression, hierarchical layout, Merge-to-Root and SABRE compilation,
the batched/fused/adjoint simulation engines -- consumes QAOA workloads
unchanged:

* **State preparation.** ``|+>^n`` is itself a product of Pauli
  evolutions: ``exp(-i pi/4 Y_q)|0> = RY(pi/2)|0> = |+>``.  The builder
  emits one weight-1 Y term per qubit, all driven by a dedicated shared
  parameter (index 0) that :meth:`QAOAAnsatz.parameters` pins to
  ``-pi/4``, keeping "prepare plus states" inside the IR instead of as a
  compiler special case.
* **Cost layers.** Each non-identity term ``c * P`` of the cost
  Hamiltonian becomes ``exp(i theta c P)`` with the layer's shared gamma
  parameter (so a layer is one parameter, exactly like a UCCSD
  excitation).
* **Mixer layers.** One weight-1 X term per qubit under the layer's
  shared beta parameter.

Our IR convention is ``exp(+i theta c P)`` while the textbook QAOA
unitary is ``exp(-i gamma C) exp(-i beta B)``; the
:meth:`QAOAAnsatz.parameters` helper performs the sign flip so callers
think in ``(gammas, betas)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ir import IRTerm, PauliProgram
from repro.pauli import PauliString, PauliSum

_QUARTER_PI = np.pi / 4.0

#: Supported initial states for the builder.
INITIAL_STATES = ("plus", "zero")


@dataclass(frozen=True)
class QAOAAnsatz:
    """A built QAOA program plus its provenance.

    Mirrors :class:`~repro.ansatz.uccsd.UCCSDAnsatz`: the ``program``
    field is what the pipeline stages consume; the rest is metadata.
    """

    program: PauliProgram
    cost_hamiltonian: PauliSum
    layers: int
    initial_state: str = "plus"

    @property
    def num_qubits(self) -> int:
        return self.program.num_qubits

    @property
    def num_parameters(self) -> int:
        return self.program.num_parameters

    @property
    def num_pauli_strings(self) -> int:
        return len(self.program.terms)

    def parameters(
        self,
        gammas: Sequence[float],
        betas: Sequence[float],
    ) -> np.ndarray:
        """Map QAOA angles to the program's parameter vector.

        Returns ``[-pi/4, -gamma_1, -beta_1, ..., -gamma_p, -beta_p]``
        (without the leading prep entry when ``initial_state="zero"``):
        the sign flip converts the textbook ``exp(-i gamma C)`` /
        ``exp(-i beta B)`` convention into the IR's ``exp(+i theta c P)``.
        """
        if len(gammas) != self.layers or len(betas) != self.layers:
            raise ValueError(
                f"expected {self.layers} gammas and betas, "
                f"got {len(gammas)} and {len(betas)}"
            )
        values = [] if self.initial_state == "zero" else [-_QUARTER_PI]
        for gamma, beta in zip(gammas, betas):
            values.append(-float(gamma))
            values.append(-float(beta))
        return np.array(values, dtype=float)


def build_qaoa_ansatz(
    cost_hamiltonian: PauliSum,
    layers: int = 1,
    *,
    initial_state: str = "plus",
) -> QAOAAnsatz:
    """Build the p-layer QAOA program for a cost Hamiltonian.

    Identity terms of the Hamiltonian (constant energy offsets, e.g.
    the ``sum w/2`` part of MaxCut) are skipped: they contribute a
    global phase only.  Complex coefficients are rejected -- QAOA cost
    functions are real diagonal observables.
    """
    if layers < 1:
        raise ValueError(f"QAOA needs at least one layer, got {layers}")
    if initial_state not in INITIAL_STATES:
        raise ValueError(
            f"unknown initial state {initial_state!r}; "
            f"expected one of {INITIAL_STATES}"
        )
    num_qubits = cost_hamiltonian.num_qubits
    cost_terms: list[tuple[float, PauliString]] = []
    for coefficient, pauli in cost_hamiltonian:
        if pauli.is_identity():
            continue
        if abs(coefficient.imag) > 1e-12:
            raise ValueError(
                f"cost Hamiltonian has a complex coefficient {coefficient} "
                f"on {pauli.label()}; QAOA costs must be real"
            )
        cost_terms.append((float(coefficient.real), pauli))
    if not cost_terms:
        raise ValueError("cost Hamiltonian has no non-identity terms")

    terms: list[IRTerm] = []
    offset = 0
    if initial_state == "plus":
        offset = 1
        for qubit in range(num_qubits):
            terms.append(
                IRTerm(PauliString.single(num_qubits, qubit, "Y"), 1.0, 0)
            )
    for layer in range(layers):
        gamma_index = offset + 2 * layer
        beta_index = gamma_index + 1
        for coefficient, pauli in cost_terms:
            terms.append(IRTerm(pauli, coefficient, gamma_index))
        for qubit in range(num_qubits):
            terms.append(
                IRTerm(PauliString.single(num_qubits, qubit, "X"), 1.0, beta_index)
            )
    program = PauliProgram(
        num_qubits=num_qubits,
        num_parameters=offset + 2 * layers,
        terms=terms,
        initial_occupations=[],
    )
    return QAOAAnsatz(
        program=program,
        cost_hamiltonian=cost_hamiltonian,
        layers=layers,
        initial_state=initial_state,
    )
