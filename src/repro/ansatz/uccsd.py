"""UCCSD ansatz as a Pauli-string program.

Each excitation generator ``T_k - T_k+`` maps under Jordan-Wigner to
``i * sum_j c_{kj} P_{kj}`` with real ``c_{kj}``; the (single-step
Trotterized) UCCSD unitary is

    U(theta) = prod_k prod_j exp(i theta_k c_{kj} P_{kj}).

Singles expand to 2 strings and doubles to 8, reproducing the paper's
"# of Pauli" column in Table I exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansatz.excitations import Excitation, generate_excitations
from repro.chem.hamiltonian import MolecularProblem
from repro.chem.jordan_wigner import jordan_wigner
from repro.core.ir import IRTerm, PauliProgram
from repro.pauli import PauliSum

_IMAG_TOLERANCE = 1e-10


@dataclass
class UCCSDAnsatz:
    """The full (uncompressed) UCCSD ansatz of a molecular problem."""

    program: PauliProgram
    excitations: list[Excitation]
    generators: list[PauliSum]   # Hermitian G_k with T_k - T_k+ = i G_k

    @property
    def num_parameters(self) -> int:
        return self.program.num_parameters

    @property
    def num_pauli_strings(self) -> int:
        return len(self.program)


def build_uccsd_program(problem: MolecularProblem) -> UCCSDAnsatz:
    """Build the UCCSD Pauli-string IR for a molecular problem."""
    num_qubits = problem.num_qubits
    excitations = generate_excitations(
        problem.num_spatial_orbitals, problem.num_alpha, problem.num_beta
    )
    terms: list[IRTerm] = []
    generators: list[PauliSum] = []
    for parameter_index, excitation in enumerate(excitations):
        qubit_generator = jordan_wigner(excitation.generator(), num_qubits)
        # T - T+ is anti-Hermitian: all coefficients purely imaginary.
        hermitian = PauliSum.zero(num_qubits)
        for coefficient, pauli in qubit_generator:
            if abs(coefficient.real) > _IMAG_TOLERANCE:
                raise ValueError(
                    f"generator for excitation {excitation} is not anti-Hermitian"
                )
            c = float(coefficient.imag)
            hermitian.add_term(c, pauli)
            terms.append(IRTerm(pauli, c, parameter_index))
        generators.append(hermitian)
    program = PauliProgram(
        num_qubits=num_qubits,
        num_parameters=len(excitations),
        terms=terms,
        initial_occupations=problem.hartree_fock_occupations(),
    )
    return UCCSDAnsatz(program=program, excitations=excitations, generators=generators)
