"""UCCSD ansatz construction (the paper's "standard" chemistry ansatz).

* :mod:`repro.ansatz.excitations` enumerates single and double
  excitations over the active space (blocked spin ordering).
* :mod:`repro.ansatz.uccsd` maps each excitation through Jordan-Wigner
  into the Pauli-string IR, one shared parameter per excitation.
"""

from repro.ansatz.excitations import Excitation, generate_excitations
from repro.ansatz.uccsd import UCCSDAnsatz, build_uccsd_program

__all__ = ["Excitation", "generate_excitations", "UCCSDAnsatz", "build_uccsd_program"]
