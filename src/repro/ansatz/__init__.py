"""Ansatz construction: UCCSD (chemistry), QAOA (graphs), raw circuits.

* :mod:`repro.ansatz.excitations` enumerates single and double
  excitations over the active space (blocked spin ordering).
* :mod:`repro.ansatz.uccsd` maps each excitation through Jordan-Wigner
  into the Pauli-string IR, one shared parameter per excitation.
* :mod:`repro.ansatz.qaoa` emits p-layer QAOA programs over diagonal
  cost Hamiltonians in the same IR.
* :mod:`repro.ansatz.circuit_ansatz` wraps arbitrary ingested circuits
  for the gate-stream compilation path.
"""

from repro.ansatz.circuit_ansatz import CircuitAnsatz
from repro.ansatz.excitations import Excitation, generate_excitations
from repro.ansatz.qaoa import QAOAAnsatz, build_qaoa_ansatz
from repro.ansatz.uccsd import UCCSDAnsatz, build_uccsd_program

__all__ = [
    "Excitation",
    "generate_excitations",
    "UCCSDAnsatz",
    "build_uccsd_program",
    "QAOAAnsatz",
    "build_qaoa_ansatz",
    "CircuitAnsatz",
]
