"""Expectation values of Pauli sums on statevectors.

The naive path evaluates ``<psi|P|psi>`` term by term.  The
:class:`ExpectationEngine` groups Hamiltonian terms by their X mask: all
terms sharing ``x`` act as ``perm_x . diag`` with a combined diagonal

    D_x[b] = sum_z c_{x,z} * i^{#Y(x,z)} * (-1)^{popcount(b & z)}

so ``<psi|H|psi> = sum_x <psi| perm_x (D_x * psi)>``.  Molecular
Hamiltonians have far fewer distinct X masks than terms, which makes the
grouped evaluation several times faster -- it is also the operator the
exact ground-state solver applies inside Lanczos iterations.

Usage -- build the engine once per observable, evaluate per state:

>>> import numpy as np
>>> from repro.pauli import PauliSum
>>> from repro.sim.expectation import ExpectationEngine
>>> from repro.sim.statevector import basis_state
>>> observable = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
>>> engine = ExpectationEngine(observable)
>>> engine.num_groups        # two distinct X masks -> two grouped diagonals
2
>>> round(engine.value(basis_state(2, 0)), 12)   # <00|ZZ|00> = 1, <00|XI|00> = 0
1.0
>>> states = np.stack([basis_state(2, 0), basis_state(2, 3)])
>>> engine.values(states)    # batched: one row per state, one vectorized pass
array([1., 1.])
"""

from __future__ import annotations

import numpy as np

from repro.pauli import PauliSum
from repro.sim.pauli_evolution import cached_xor_indices, parity_signs


def expectation(observable: PauliSum, state: np.ndarray) -> float:
    """Term-by-term ``<state|observable|state>`` (real part).

    Intended for tests and small observables; use
    :class:`ExpectationEngine` in loops.
    """
    from repro.sim.pauli_evolution import apply_pauli

    value = 0.0 + 0.0j
    for coefficient, pauli in observable:
        value += coefficient * np.vdot(state, apply_pauli(pauli, state))
    return float(value.real)


class ExpectationEngine:
    """Precompiled evaluator of one Pauli-sum observable.

    Groups terms by X mask and caches the combined diagonals; construction
    is O(#terms * 2^n) once, evaluation is O(#groups * 2^n) per state.
    """

    def __init__(self, observable: PauliSum, max_bytes: int = 1 << 30):
        self.num_qubits = observable.num_qubits
        self.num_terms = len(observable)
        dim = 1 << self.num_qubits
        groups: dict[int, list[tuple[int, complex]]] = {}
        for (x, z), coefficient in observable.items():
            groups.setdefault(x, []).append((z, coefficient))

        estimated = len(groups) * dim * 16
        if estimated > max_bytes:
            raise MemoryError(
                f"grouped diagonals would need ~{estimated >> 20} MiB; "
                "raise max_bytes or evaluate term-by-term"
            )

        self._x_masks: list[int] = []
        self._diagonals: list[np.ndarray] = []
        for x, zs in sorted(groups.items()):
            diagonal = np.zeros(dim, dtype=complex)
            for z, coefficient in zs:
                y_count = (x & z).bit_count()
                phase = (1j) ** (y_count % 4)
                diagonal += coefficient * phase * parity_signs(self.num_qubits, z)
            self._x_masks.append(x)
            self._diagonals.append(diagonal)

        #: Real parts of the grouped diagonals, built lazily on the first
        #: real-arithmetic evaluation (see :meth:`values_real`).
        self._real_diagonals: list[np.ndarray] | None = None

    @property
    def num_groups(self) -> int:
        return len(self._x_masks)

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``H |state>`` (used by the exact eigensolver)."""
        result = np.zeros_like(state, dtype=complex)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = term[cached_xor_indices(self.num_qubits, x)]
            result += term
        return result

    def value(self, state: np.ndarray) -> float:
        """Return ``<state|H|state>`` (real part)."""
        total = 0.0 + 0.0j
        conj = np.conjugate(state)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = term[cached_xor_indices(self.num_qubits, x)]
            total += np.dot(conj, term)
        return float(total.real)

    def _batched_quadratic(
        self, states: np.ndarray, conj: np.ndarray, diagonals: list[np.ndarray]
    ) -> np.ndarray:
        """``sum_x <conj_k| perm_x (D_x states_k)>`` per row ``k``."""
        if states.ndim != 2 or states.shape[1] != (1 << self.num_qubits):
            raise ValueError(
                f"states must have shape (K, {1 << self.num_qubits}), "
                f"got {states.shape}"
            )
        totals = np.zeros(states.shape[0], dtype=states.dtype)
        for x, diagonal in zip(self._x_masks, diagonals):
            term = diagonal * states
            if x:
                term = term[:, cached_xor_indices(self.num_qubits, x)]
            totals += np.einsum("kd,kd->k", conj, term)
        return totals

    def values(self, states: np.ndarray) -> np.ndarray:
        """Batched ``<state|H|state>`` over a ``(K, 2**n)`` stack.

        One vectorized pass per X-mask group, shared across all K rows;
        the workhorse of the batched parameter-sweep engine.
        """
        states = np.asarray(states, dtype=complex)
        return self._batched_quadratic(
            states, np.conjugate(states), self._diagonals
        ).real

    def values_real(self, states: np.ndarray) -> np.ndarray:
        """Batched expectations of *real* float64 states, shape ``(K,)``.

        Each per-X-mask group operator is Hermitian, so for real states
        the imaginary parts of its combined diagonal cancel in the
        quadratic form and ``Re(D_x)`` gives the exact value -- the
        whole evaluation stays in float arithmetic (used by the real
        fast path of :func:`repro.sim.batched.sweep_expectations`).
        """
        states = np.asarray(states, dtype=float)
        if self._real_diagonals is None:
            self._real_diagonals = [d.real.copy() for d in self._diagonals]
        return self._batched_quadratic(states, states, self._real_diagonals)
