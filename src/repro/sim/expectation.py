"""Expectation values of Pauli sums on statevectors.

The naive path evaluates ``<psi|P|psi>`` term by term.  The
:class:`ExpectationEngine` groups Hamiltonian terms by their X mask: all
terms sharing ``x`` act as ``perm_x . diag`` with a combined diagonal

    D_x[b] = sum_z c_{x,z} * i^{#Y(x,z)} * (-1)^{popcount(b & z)}

so ``<psi|H|psi> = sum_x <psi| perm_x (D_x * psi)>``.  Molecular
Hamiltonians have far fewer distinct X masks than terms, which makes the
grouped evaluation several times faster -- it is also the operator the
exact ground-state solver applies inside Lanczos iterations.

Usage -- build the engine once per observable, evaluate per state:

>>> import numpy as np
>>> from repro.pauli import PauliSum
>>> from repro.sim.expectation import ExpectationEngine
>>> from repro.sim.statevector import basis_state
>>> observable = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
>>> engine = ExpectationEngine(observable)
>>> engine.num_groups        # two distinct X masks -> two grouped diagonals
2
>>> round(engine.value(basis_state(2, 0)), 12)   # <00|ZZ|00> = 1, <00|XI|00> = 0
1.0
>>> states = np.stack([basis_state(2, 0), basis_state(2, 3)])
>>> engine.values(states)    # batched: one row per state, one vectorized pass
array([1., 1.])
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np  # lint: ignore[RR006] - diagonal construction is host-side

from repro.pauli import PauliSum
from repro.sim.backend import ArrayBackend, get_array_backend
from repro.sim.pauli_evolution import cached_xor_indices, parity_signs


def expectation(observable: PauliSum, state: np.ndarray) -> float:
    """Term-by-term ``<state|observable|state>`` (real part).

    Intended for tests and small observables; use
    :class:`ExpectationEngine` in loops.
    """
    from repro.sim.pauli_evolution import apply_pauli

    value = 0.0 + 0.0j
    for coefficient, pauli in observable:
        value += coefficient * np.vdot(state, apply_pauli(pauli, state))
    return float(value.real)


class ExpectationEngine:
    """Precompiled evaluator of one Pauli-sum observable.

    Groups terms by X mask and caches the combined diagonals; construction
    is O(#terms * 2^n) once, evaluation is O(#groups * 2^n) per state.
    """

    def __init__(
        self,
        observable: PauliSum,
        max_bytes: int = 1 << 30,
        *,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        self.backend = get_array_backend(backend)
        self.num_qubits = observable.num_qubits
        self.num_terms = len(observable)
        dim = 1 << self.num_qubits
        groups: dict[int, list[tuple[int, complex]]] = {}
        for (x, z), coefficient in observable.items():
            groups.setdefault(x, []).append((z, coefficient))

        estimated = len(groups) * dim * 16
        if estimated > max_bytes:
            raise MemoryError(
                f"grouped diagonals would need ~{estimated >> 20} MiB; "
                "raise max_bytes or evaluate term-by-term"
            )

        self._x_masks: list[int] = []
        diagonals: list[np.ndarray] = []
        for x, zs in sorted(groups.items()):
            diagonal = np.zeros(dim, dtype=complex)
            for z, coefficient in zs:
                y_count = (x & z).bit_count()
                phase = (1j) ** (y_count % 4)
                diagonal += coefficient * phase * parity_signs(self.num_qubits, z)
            self._x_masks.append(x)
            diagonals.append(diagonal)
        # Diagonals are always *built* host-side (numpy), then moved onto
        # the selected backend once; with the numpy backend this is a
        # no-op view and nothing changes.
        self._diagonals = [
            self.backend.asarray(d, dtype=self.backend.complex_dtype)
            for d in diagonals
        ]

        #: Real parts of the grouped diagonals, built lazily on the first
        #: real-arithmetic evaluation (see :meth:`values_real`).
        self._real_diagonals: list[Any] | None = None

    @classmethod
    def from_arrays(
        cls,
        num_qubits: int,
        x_masks: Sequence[int],
        diagonals: Any,
        *,
        num_terms: int = 0,
        backend: str | ArrayBackend | None = None,
    ) -> "ExpectationEngine":
        """Rebuild an engine from exported tables without a PauliSum.

        The zero-copy path of the process-pool executors: a worker maps
        the ``(G, 2**n)`` diagonal stack and G-vector of X masks exported
        by :meth:`export_tables` out of shared memory and wires them
        straight in, skipping both pickling and reconstruction.
        """
        engine = cls.__new__(cls)
        engine.backend = get_array_backend(backend)
        engine.num_qubits = int(num_qubits)
        engine.num_terms = int(num_terms)
        engine._x_masks = [int(x) for x in x_masks]
        engine._diagonals = [
            engine.backend.asarray(d, dtype=engine.backend.complex_dtype)
            for d in diagonals
        ]
        engine._real_diagonals = None
        return engine

    def export_tables(self) -> dict[str, np.ndarray]:
        """Flat numpy tables for :meth:`from_arrays` (shared-memory safe).

        ``x_masks`` is ``(G,)`` uint64 and ``diagonals`` is ``(G, 2**n)``
        complex128 -- contiguous arrays a :class:`repro.core.shm.SharedSlabs`
        segment can hold directly.
        """
        return {
            "x_masks": np.asarray(self._x_masks, dtype=np.uint64),
            "diagonals": np.stack(
                [self.backend.to_numpy(d) for d in self._diagonals]
            ),
        }

    @property
    def num_groups(self) -> int:
        return len(self._x_masks)

    def apply(self, state: Any) -> Any:
        """Return ``H |state>`` (used by the exact eigensolver)."""
        backend = self.backend
        state = backend.asarray(state, dtype=backend.complex_dtype)
        result = backend.zeros(state.shape, dtype=state.dtype)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = backend.take(
                    term, cached_xor_indices(self.num_qubits, x), axis=-1
                )
            result = backend.axpy(term, result, 1.0)
        return result

    def value(self, state: Any) -> float:
        """Return ``<state|H|state>`` (real part)."""
        backend = self.backend
        state = backend.asarray(state, dtype=backend.complex_dtype)
        total = 0.0 + 0.0j
        conj = backend.conjugate(state)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = backend.take(
                    term, cached_xor_indices(self.num_qubits, x), axis=-1
                )
            total += complex(backend.to_numpy(backend.einsum("d,d->", conj, term)))
        return float(total.real)

    def _batched_quadratic(
        self, states: Any, conj: Any, diagonals: list[Any]
    ) -> Any:
        """``sum_x <conj_k| perm_x (D_x states_k)>`` per row ``k``."""
        backend = self.backend
        if states.ndim != 2 or states.shape[1] != (1 << self.num_qubits):
            raise ValueError(
                f"states must have shape (K, {1 << self.num_qubits}), "
                f"got {tuple(states.shape)}"
            )
        totals = backend.zeros(states.shape[0], dtype=states.dtype)
        for x, diagonal in zip(self._x_masks, diagonals):
            term = diagonal * states
            if x:
                term = backend.take(
                    term, cached_xor_indices(self.num_qubits, x), axis=-1
                )
            totals = backend.axpy(backend.einsum("kd,kd->k", conj, term), totals, 1.0)
        return totals

    def values(self, states: Any) -> np.ndarray:
        """Batched ``<state|H|state>`` over a ``(K, 2**n)`` stack.

        One vectorized pass per X-mask group, shared across all K rows;
        the workhorse of the batched parameter-sweep engine.  Accepts
        host or backend arrays; always returns a host numpy result.
        """
        backend = self.backend
        states = backend.asarray(states, dtype=backend.complex_dtype)
        totals = self._batched_quadratic(
            states, backend.conjugate(states), self._diagonals
        )
        return backend.to_numpy(backend.real(totals))

    def values_real(self, states: Any) -> np.ndarray:
        """Batched expectations of *real* float64 states, shape ``(K,)``.

        Each per-X-mask group operator is Hermitian, so for real states
        the imaginary parts of its combined diagonal cancel in the
        quadratic form and ``Re(D_x)`` gives the exact value -- the
        whole evaluation stays in float arithmetic (used by the real
        fast path of :func:`repro.sim.batched.sweep_expectations`).
        """
        backend = self.backend
        states = backend.asarray(states, dtype=backend.float_dtype)
        if self._real_diagonals is None:
            self._real_diagonals = [
                backend.ascontiguous(backend.real(d)) for d in self._diagonals
            ]
        return backend.to_numpy(
            self._batched_quadratic(states, states, self._real_diagonals)
        )
