"""Expectation values of Pauli sums on statevectors.

The naive path evaluates ``<psi|P|psi>`` term by term.  The
:class:`ExpectationEngine` groups Hamiltonian terms by their X mask: all
terms sharing ``x`` act as ``perm_x . diag`` with a combined diagonal

    D_x[b] = sum_z c_{x,z} * i^{#Y(x,z)} * (-1)^{popcount(b & z)}

so ``<psi|H|psi> = sum_x <psi| perm_x (D_x * psi)>``.  Molecular
Hamiltonians have far fewer distinct X masks than terms, which makes the
grouped evaluation several times faster -- it is also the operator the
exact ground-state solver applies inside Lanczos iterations.
"""

from __future__ import annotations

import numpy as np

from repro.pauli import PauliSum
from repro.sim.pauli_evolution import _all_indices, parity_signs


def expectation(observable: PauliSum, state: np.ndarray) -> float:
    """Term-by-term ``<state|observable|state>`` (real part).

    Intended for tests and small observables; use
    :class:`ExpectationEngine` in loops.
    """
    from repro.sim.pauli_evolution import apply_pauli

    value = 0.0 + 0.0j
    for coefficient, pauli in observable:
        value += coefficient * np.vdot(state, apply_pauli(pauli, state))
    return float(value.real)


class ExpectationEngine:
    """Precompiled evaluator of one Pauli-sum observable.

    Groups terms by X mask and caches the combined diagonals; construction
    is O(#terms * 2^n) once, evaluation is O(#groups * 2^n) per state.
    """

    def __init__(self, observable: PauliSum, max_bytes: int = 1 << 30):
        self.num_qubits = observable.num_qubits
        self.num_terms = len(observable)
        dim = 1 << self.num_qubits
        groups: dict[int, list[tuple[int, complex]]] = {}
        for (x, z), coefficient in observable.items():
            groups.setdefault(x, []).append((z, coefficient))

        estimated = len(groups) * dim * 16
        if estimated > max_bytes:
            raise MemoryError(
                f"grouped diagonals would need ~{estimated >> 20} MiB; "
                "raise max_bytes or evaluate term-by-term"
            )

        self._x_masks: list[int] = []
        self._diagonals: list[np.ndarray] = []
        for x, zs in sorted(groups.items()):
            diagonal = np.zeros(dim, dtype=complex)
            for z, coefficient in zs:
                y_count = (x & z).bit_count()
                phase = (1j) ** (y_count % 4)
                diagonal += coefficient * phase * parity_signs(self.num_qubits, z)
            self._x_masks.append(x)
            self._diagonals.append(diagonal)

    @property
    def num_groups(self) -> int:
        return len(self._x_masks)

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``H |state>`` (used by the exact eigensolver)."""
        result = np.zeros_like(state, dtype=complex)
        indices = _all_indices(self.num_qubits)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = term[indices ^ np.uint64(x)]
            result += term
        return result

    def value(self, state: np.ndarray) -> float:
        """Return ``<state|H|state>`` (real part)."""
        indices = _all_indices(self.num_qubits)
        total = 0.0 + 0.0j
        conj = np.conjugate(state)
        for x, diagonal in zip(self._x_masks, self._diagonals):
            term = diagonal * state
            if x:
                term = term[indices ^ np.uint64(x)]
            total += np.dot(conj, term)
        return float(total.real)
