"""Exact ground-state solver for qubit Hamiltonians.

Provides the "Ground State" reference line of Figure 9: the lowest
eigenvalue of ``H = sum w_j P_j`` computed with a matrix-free Lanczos
(scipy ``eigsh`` over a LinearOperator built on the grouped Pauli
evaluator), falling back to dense diagonalization for tiny systems.
"""

from __future__ import annotations

import numpy as np  # lint: ignore[RR006] - host-side sparse Lanczos reference solver
from scipy.sparse.linalg import LinearOperator, eigsh

from repro.pauli import PauliSum
from repro.sim.expectation import ExpectationEngine

_DENSE_QUBIT_LIMIT = 6

#: Fixed seed of the Lanczos starting vector.  ``eigsh`` defaults to a
#: *random* ``v0``, which makes the last float bits of the reference
#: energy run-to-run (and process-to-process) dependent -- poison for
#: the executor-determinism guarantees of ``bond_scan``/``run_batch``.
_LANCZOS_V0_SEED = 97


def _lanczos_v0(dim: int) -> np.ndarray:
    """A deterministic dense starting vector for ``eigsh``."""
    return np.random.default_rng(_LANCZOS_V0_SEED).standard_normal(dim)


def ground_state_energy(hamiltonian: PauliSum, *, k: int = 1) -> float:
    """Lowest eigenvalue of the Hamiltonian (Hartree for molecules)."""
    return ground_state(hamiltonian, k=k)[0]


def ground_state(hamiltonian: PauliSum, *, k: int = 1) -> tuple[float, np.ndarray]:
    """Lowest eigenvalue and eigenvector of the Hamiltonian.

    Deterministic: the dense path exactly so, the Lanczos path through a
    fixed seeded starting vector (identical results in every process).
    """
    n = hamiltonian.num_qubits
    dim = 1 << n
    if n <= _DENSE_QUBIT_LIMIT:
        matrix = hamiltonian.to_matrix()
        values, vectors = np.linalg.eigh(matrix)
        return float(values[0]), vectors[:, 0]

    engine = ExpectationEngine(hamiltonian)

    def matvec(vector: np.ndarray) -> np.ndarray:
        return engine.apply(vector.astype(complex))

    operator = LinearOperator((dim, dim), matvec=matvec, dtype=complex)
    values, vectors = eigsh(operator, k=max(k, 1), which="SA", v0=_lanczos_v0(dim))
    order = np.argsort(values)
    return float(values[order[0]]), vectors[:, order[0]]


def spectrum(hamiltonian: PauliSum, k: int = 4) -> np.ndarray:
    """The ``k`` lowest eigenvalues (diagnostics / tests)."""
    n = hamiltonian.num_qubits
    if n <= _DENSE_QUBIT_LIMIT:
        return np.sort(np.linalg.eigvalsh(hamiltonian.to_matrix()))[:k]
    engine = ExpectationEngine(hamiltonian)
    dim = 1 << n
    operator = LinearOperator(
        (dim, dim), matvec=lambda v: engine.apply(v.astype(complex)), dtype=complex
    )
    values, _ = eigsh(operator, k=k, which="SA", v0=_lanczos_v0(dim))
    return np.sort(values)
