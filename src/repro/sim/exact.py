"""Exact ground-state solver for qubit Hamiltonians.

Provides the "Ground State" reference line of Figure 9: the lowest
eigenvalue of ``H = sum w_j P_j`` computed with a matrix-free Lanczos
(scipy ``eigsh`` over a LinearOperator built on the grouped Pauli
evaluator), falling back to dense diagonalization for tiny systems.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, eigsh

from repro.pauli import PauliSum
from repro.sim.expectation import ExpectationEngine

_DENSE_QUBIT_LIMIT = 6


def ground_state_energy(hamiltonian: PauliSum, *, k: int = 1) -> float:
    """Lowest eigenvalue of the Hamiltonian (Hartree for molecules)."""
    return ground_state(hamiltonian, k=k)[0]


def ground_state(hamiltonian: PauliSum, *, k: int = 1) -> tuple[float, np.ndarray]:
    """Lowest eigenvalue and eigenvector of the Hamiltonian."""
    n = hamiltonian.num_qubits
    dim = 1 << n
    if n <= _DENSE_QUBIT_LIMIT:
        matrix = hamiltonian.to_matrix()
        values, vectors = np.linalg.eigh(matrix)
        return float(values[0]), vectors[:, 0]

    engine = ExpectationEngine(hamiltonian)

    def matvec(vector: np.ndarray) -> np.ndarray:
        return engine.apply(vector.astype(complex))

    operator = LinearOperator((dim, dim), matvec=matvec, dtype=complex)
    values, vectors = eigsh(operator, k=max(k, 1), which="SA")
    order = np.argsort(values)
    return float(values[order[0]]), vectors[:, order[0]]


def spectrum(hamiltonian: PauliSum, k: int = 4) -> np.ndarray:
    """The ``k`` lowest eigenvalues (diagnostics / tests)."""
    n = hamiltonian.num_qubits
    if n <= _DENSE_QUBIT_LIMIT:
        return np.sort(np.linalg.eigvalsh(hamiltonian.to_matrix()))[:k]
    engine = ExpectationEngine(hamiltonian)
    operator = LinearOperator(
        (1 << n, 1 << n), matvec=lambda v: engine.apply(v.astype(complex)), dtype=complex
    )
    values, _ = eigsh(operator, k=k, which="SA")
    return np.sort(values)
