"""Exact density-matrix simulator with depolarizing noise.

Used for the paper's noisy case studies (Figure 10, LiH and NaH).  The
density matrix rho (dimension ``2^n x 2^n``) is propagated exactly:

* unitary gates act as ``rho -> U rho U+`` (a contraction on the ket
  index followed by the conjugate contraction on the bra index);
* depolarizing channels act as convex mixtures of Pauli conjugations.

Exact propagation removes the shot noise of the paper's sampled qasm
simulation while keeping the identical channel, so the reported signal
(energy error vs compression under noise) is preserved.
"""

from __future__ import annotations

import numpy as np  # lint: ignore[RR006] - exact O(4^n) density matrix is numpy by design

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.pauli import PauliSum
from repro.sim.noise import DepolarizingNoiseModel, depolarizing_paulis

_MAX_QUBITS = 12


class DensityMatrixSimulator:
    """Propagate density matrices through circuits with optional noise."""

    def __init__(
        self, num_qubits: int, noise: DepolarizingNoiseModel | None = None
    ) -> None:
        if num_qubits > _MAX_QUBITS:
            raise ValueError(
                f"density-matrix simulation capped at {_MAX_QUBITS} qubits "
                f"(requested {num_qubits})"
            )
        self.num_qubits = num_qubits
        self.noise = noise or DepolarizingNoiseModel(two_qubit_error=0.0)
        self.rho = self._initial_rho()

    def _initial_rho(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho

    def reset(self) -> "DensityMatrixSimulator":
        self.rho = self._initial_rho()
        return self

    # ------------------------------------------------------------------
    # Core maps
    # ------------------------------------------------------------------
    def _apply_unitary(self, gate: Gate) -> None:
        """In-place ``rho -> U rho U+``.

        The density matrix is viewed as a rank-2n tensor; ket axes occupy
        the first n positions (axis ``n-1-q`` for qubit q) and bra axes
        the last n (axis ``2n-1-q``).
        """
        n = self.num_qubits
        dim = 1 << n
        matrix = gate.matrix()
        tensor = self.rho.reshape([2] * (2 * n))
        if gate.num_qubits == 1:
            qubit = gate.qubits[0]
            axis_ket = n - 1 - qubit
            axis_bra = 2 * n - 1 - qubit
            tensor = np.tensordot(matrix, tensor, axes=([1], [axis_ket]))
            tensor = np.moveaxis(tensor, 0, axis_ket)
            tensor = np.tensordot(np.conjugate(matrix), tensor, axes=([1], [axis_bra]))
            tensor = np.moveaxis(tensor, 0, axis_bra)
        elif gate.num_qubits == 2:
            qubit_a, qubit_b = gate.qubits
            gate_tensor = matrix.reshape(2, 2, 2, 2)
            axis_a_ket, axis_b_ket = n - 1 - qubit_a, n - 1 - qubit_b
            axis_a_bra, axis_b_bra = 2 * n - 1 - qubit_a, 2 * n - 1 - qubit_b
            tensor = np.tensordot(gate_tensor, tensor, axes=([2, 3], [axis_b_ket, axis_a_ket]))
            tensor = np.moveaxis(tensor, [0, 1], [axis_b_ket, axis_a_ket])
            tensor = np.tensordot(
                np.conjugate(gate_tensor), tensor, axes=([2, 3], [axis_b_bra, axis_a_bra])
            )
            tensor = np.moveaxis(tensor, [0, 1], [axis_b_bra, axis_a_bra])
        else:
            raise ValueError(f"unsupported gate arity: {gate!r}")
        self.rho = np.ascontiguousarray(tensor).reshape(dim, dim)

    def _apply_depolarizing(self, qubits: tuple[int, ...], probability: float) -> None:
        """rho -> (1-p) rho + p/(4^k-1) sum_P P rho P."""
        if probability <= 0.0:
            return
        input_rho = self.rho
        mixed = np.zeros_like(input_rho)
        for local_pauli in depolarizing_paulis(len(qubits)):
            self.rho = input_rho
            for i, qubit in enumerate(qubits):
                op = local_pauli.op_on(i)
                if op != "I":
                    self._apply_unitary(Gate(op.lower(), (qubit,)))
            mixed += self.rho
        weight = probability / (4 ** len(qubits) - 1)
        self.rho = (1.0 - probability) * input_rho + weight * mixed

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def run(self, circuit: Circuit) -> np.ndarray:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        hardware_view = circuit.decompose_swaps()
        for gate in hardware_view.gates:
            if gate.name in ("barrier", "measure"):
                continue
            self._apply_unitary(gate)
            error = self.noise.error_for(gate.name, gate.num_qubits)
            self._apply_depolarizing(gate.qubits, error)
        return self.rho

    def expectation(self, observable: PauliSum) -> float:
        """``Tr(rho H)`` evaluated term-by-term."""
        value = 0.0 + 0.0j
        for coefficient, pauli in observable:
            value += coefficient * np.trace(pauli.to_matrix() @ self.rho)
        return float(value.real)

    def expectation_matrix(self, observable_matrix: np.ndarray) -> float:
        """``Tr(rho H)`` with a prebuilt dense observable (fast path)."""
        return float(np.einsum("ij,ji->", observable_matrix, self.rho).real)

    def purity(self) -> float:
        return float(np.trace(self.rho @ self.rho).real)

    def trace(self) -> float:
        return float(np.trace(self.rho).real)
