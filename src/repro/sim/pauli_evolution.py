"""Fast Pauli-string action and exponential on statevectors.

Because every Pauli string is a signed permutation in the computational
basis, ``P |psi>`` can be evaluated in O(2^n) with bit arithmetic, and

    exp(i theta P) |psi> = cos(theta) |psi> + i sin(theta) P |psi>

(P is an involution).  The VQE energy loop evolves the ansatz directly at
the Pauli level through this identity, which is dramatically faster than
gate-by-gate simulation of the synthesized circuit while being exactly
equivalent (the synthesized circuits are verified against this in tests).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np  # lint: ignore[RR006] - allocation-free workspace kernels are numpy-native

from repro.core.bits import popcount
from repro.pauli import PauliString

_INDEX_CACHE: dict[int, np.ndarray] = {}


def _all_indices(num_qubits: int) -> np.ndarray:
    """Cached ``arange(2^n)`` (uint64) reused across calls."""
    cached = _INDEX_CACHE.get(num_qubits)
    if cached is None:
        cached = np.arange(1 << num_qubits, dtype=np.uint64)
        if num_qubits <= 24:
            # lint: ignore[RR101] - idempotent memo: racing writers store equal values
            _INDEX_CACHE[num_qubits] = cached
    return cached


def parity_signs(num_qubits: int, z_mask: int) -> np.ndarray:
    """Vector of ``(-1)^{popcount(b & z_mask)}`` over all basis states b."""
    indices = _all_indices(num_qubits)
    parity = popcount(indices & np.uint64(z_mask)) & 1
    return 1.0 - 2.0 * parity.astype(np.float64)


def apply_pauli(pauli: PauliString, state: np.ndarray) -> np.ndarray:
    """Return ``P |state>``.

    Derivation: ``P|c> = i^{#Y} (-1)^{popcount(c & z)} |c ^ x>``, so the
    new amplitude at ``b`` is ``phase(b ^ x) * psi[b ^ x]``.
    """
    n = pauli.num_qubits
    if state.shape[0] != (1 << n):
        raise ValueError("state dimension does not match Pauli size")
    signs = parity_signs(n, pauli.z)
    phase = (1j) ** (pauli.y_count() % 4)
    result = phase * (signs * state)
    if pauli.x:
        indices = _all_indices(n) ^ np.uint64(pauli.x)
        result = result[indices]
    return result


def apply_pauli_exponential(pauli: PauliString, theta: float, state: np.ndarray) -> np.ndarray:
    """Return ``exp(i theta P) |state>``."""
    if pauli.is_identity():
        return np.exp(1j * theta) * state
    return math.cos(theta) * state + 1j * math.sin(theta) * apply_pauli(pauli, state)


def evolve_pauli_sequence(
    terms: list[tuple[PauliString, float]], state: np.ndarray
) -> np.ndarray:
    """Apply ``prod_k exp(i theta_k P_k)`` (first term applied first)."""
    current = state
    for pauli, theta in terms:
        current = apply_pauli_exponential(pauli, theta, current)
    return current


# ----------------------------------------------------------------------
# In-place / batched fast path
# ----------------------------------------------------------------------
#: Byte budget for cached parity-sign vectors (keyed by (n, z)); molecular
#: programs revisit the same Z masks every sweep point and optimizer
#: iteration, so the cache turns the per-term popcount pass into a lookup.
_SIGNS_CACHE: dict[tuple[int, int], np.ndarray] = {}
_SIGNS_CACHE_BYTE_LIMIT = 64 << 20


def cached_parity_signs(num_qubits: int, z_mask: int) -> np.ndarray:
    """Memoized :func:`parity_signs` (fast-path engines only).

    The returned array is shared -- callers must not mutate it.  The
    legacy engine deliberately keeps calling the uncached function so it
    stays a faithful baseline.
    """
    key = (num_qubits, z_mask)
    signs = _SIGNS_CACHE.get(key)
    if signs is None:
        signs = parity_signs(num_qubits, z_mask)
        cached_bytes = sum(v.nbytes for v in _SIGNS_CACHE.values())
        if cached_bytes + signs.nbytes <= _SIGNS_CACHE_BYTE_LIMIT:
            # lint: ignore[RR101] - idempotent memo: racing writers store equal values
            _SIGNS_CACHE[key] = signs
    return signs


_XOR_INDEX_CACHE: dict[tuple[int, int], np.ndarray] = {}


def cached_xor_indices(num_qubits: int, x_mask: int) -> np.ndarray:
    """Memoized gather indices ``b -> b ^ x`` (shared; do not mutate)."""
    key = (num_qubits, x_mask)
    indices = _XOR_INDEX_CACHE.get(key)
    if indices is None:
        indices = _all_indices(num_qubits) ^ np.uint64(x_mask)
        cached_bytes = sum(v.nbytes for v in _XOR_INDEX_CACHE.values())
        if cached_bytes + indices.nbytes <= _SIGNS_CACHE_BYTE_LIMIT:
            # lint: ignore[RR101] - idempotent memo: racing writers store equal values
            _XOR_INDEX_CACHE[key] = indices
    return indices


def pauli_sign_factor(pauli: PauliString) -> complex:
    """The scalar ``(-i)**#Y`` making ``P = factor * signs(z) . perm_x``.

    Follows from ``signs_z[b ^ x] = signs_z[b] * (-1)**popcount(x & z)``
    and ``popcount(x & z) = #Y``: the permuted parity vector is the
    unpermuted one times a global sign, so the whole Pauli action needs
    only the cached Z-parity vector, the XOR view, and this scalar.
    """
    return (-1j) ** (pauli.y_count() % 4)


class PauliEvolutionWorkspace:
    """Preallocated scratch for allocation-free exponential application.

    The two scratch buffers match the state's shape: ``shape=(dim,)`` for
    a single statevector or ``(K, dim)`` for a batch.  One workspace is
    reused across every term of an evolution and across evaluations,
    which is what eliminates the per-gate allocations of the legacy path.
    """

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = tuple(shape)
        self._a = np.empty(self.shape, dtype=complex)

    def apply_pauli_into(self, pauli: PauliString, state: np.ndarray) -> np.ndarray:
        """Compute ``P |state>`` into scratch and return that buffer.

        The result aliases workspace scratch -- consume it before the
        next call.  Broadcasts over leading batch axes.
        """
        n = pauli.num_qubits
        if pauli.x:
            np.take(state, cached_xor_indices(n, pauli.x), axis=-1, out=self._a)
        else:
            np.copyto(self._a, state)
        self._a *= cached_parity_signs(n, pauli.z)
        factor = pauli_sign_factor(pauli)
        if factor != 1.0:
            self._a *= factor
        return self._a

    def apply_exponential_inplace(
        self, pauli: PauliString, theta: float | np.ndarray, state: np.ndarray
    ) -> np.ndarray:
        """Mutate ``state`` to ``exp(i theta P) |state>``; returns it.

        ``theta`` is a scalar for a single state, or an array of per-row
        angles for a ``(K, dim)`` batch (each row gets its own angle --
        the vectorization the batched parameter sweeps rely on).
        """
        theta = np.asarray(theta, dtype=float)
        scalar = theta.ndim == 0
        if pauli.is_identity():
            phase = np.exp(1j * theta)
            state *= phase if scalar else phase[:, None]
            return state
        n = pauli.num_qubits
        rotated = self._a
        if pauli.x:
            np.take(state, cached_xor_indices(n, pauli.x), axis=-1, out=rotated)
        else:
            np.copyto(rotated, state)
        rotated *= cached_parity_signs(n, pauli.z)
        # i * sin(theta) * (-i)**#Y folds the permuted-parity sign and the
        # Y phase into one scalar (see pauli_sign_factor): the gathered
        # signs vector equals the unpermuted one times (-1)**#Y.
        factor = 1j * pauli_sign_factor(pauli)
        if scalar:
            state *= math.cos(float(theta))
            rotated *= factor * math.sin(float(theta))
        else:
            state *= np.cos(theta)[:, None]
            rotated *= (factor * np.sin(theta))[:, None]
        state += rotated
        return state

    def evolve_inplace(
        self,
        paulis: Sequence[PauliString],
        angles: np.ndarray,
        state: np.ndarray,
    ) -> np.ndarray:
        """Apply ``prod_k exp(i angles[..., k] P_k)`` in place.

        ``angles`` has shape ``(len(paulis),)`` for a single state or
        ``(K, len(paulis))`` for a batch (column ``k`` holds every row's
        angle for term ``k``).
        """
        angles = np.asarray(angles, dtype=float)
        batched = angles.ndim == 2
        for position, pauli in enumerate(paulis):
            theta = angles[:, position] if batched else float(angles[position])
            self.apply_exponential_inplace(pauli, theta, state)
        return state
