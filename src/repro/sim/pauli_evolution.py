"""Fast Pauli-string action and exponential on statevectors.

Because every Pauli string is a signed permutation in the computational
basis, ``P |psi>`` can be evaluated in O(2^n) with bit arithmetic, and

    exp(i theta P) |psi> = cos(theta) |psi> + i sin(theta) P |psi>

(P is an involution).  The VQE energy loop evolves the ansatz directly at
the Pauli level through this identity, which is dramatically faster than
gate-by-gate simulation of the synthesized circuit while being exactly
equivalent (the synthesized circuits are verified against this in tests).
"""

from __future__ import annotations

import math

import numpy as np

from repro.pauli import PauliString

_INDEX_CACHE: dict[int, np.ndarray] = {}


def _all_indices(num_qubits: int) -> np.ndarray:
    """Cached ``arange(2^n)`` (uint64) reused across calls."""
    cached = _INDEX_CACHE.get(num_qubits)
    if cached is None:
        cached = np.arange(1 << num_qubits, dtype=np.uint64)
        if num_qubits <= 24:
            _INDEX_CACHE[num_qubits] = cached
    return cached


def parity_signs(num_qubits: int, z_mask: int) -> np.ndarray:
    """Vector of ``(-1)^{popcount(b & z_mask)}`` over all basis states b."""
    indices = _all_indices(num_qubits)
    parity = np.bitwise_count(indices & np.uint64(z_mask)) & 1
    return 1.0 - 2.0 * parity.astype(np.float64)


def apply_pauli(pauli: PauliString, state: np.ndarray) -> np.ndarray:
    """Return ``P |state>``.

    Derivation: ``P|c> = i^{#Y} (-1)^{popcount(c & z)} |c ^ x>``, so the
    new amplitude at ``b`` is ``phase(b ^ x) * psi[b ^ x]``.
    """
    n = pauli.num_qubits
    if state.shape[0] != (1 << n):
        raise ValueError("state dimension does not match Pauli size")
    signs = parity_signs(n, pauli.z)
    phase = (1j) ** (pauli.y_count() % 4)
    result = phase * (signs * state)
    if pauli.x:
        indices = _all_indices(n) ^ np.uint64(pauli.x)
        result = result[indices]
    return result


def apply_pauli_exponential(pauli: PauliString, theta: float, state: np.ndarray) -> np.ndarray:
    """Return ``exp(i theta P) |state>``."""
    if pauli.is_identity():
        return np.exp(1j * theta) * state
    return math.cos(theta) * state + 1j * math.sin(theta) * apply_pauli(pauli, state)


def evolve_pauli_sequence(
    terms: list[tuple[PauliString, float]], state: np.ndarray
) -> np.ndarray:
    """Apply ``prod_k exp(i theta_k P_k)`` (first term applied first)."""
    current = state
    for pauli, theta in terms:
        current = apply_pauli_exponential(pauli, theta, current)
    return current
