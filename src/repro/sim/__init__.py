"""Simulation substrate.

* :mod:`repro.sim.statevector` -- gate-level statevector simulator with
  in-place index-slice kernels plus the legacy tensordot engine
  (the stand-in for Qiskit Aer's statevector simulator).
* :mod:`repro.sim.batched` -- K statevectors in one ``(K, 2**n)`` array,
  evolved per gate in one vectorized call (parameter sweeps).
* :mod:`repro.sim.pauli_evolution` -- fast application of ``exp(i theta P)``
  directly to statevectors (the workhorse of the VQE energy loop),
  including the allocation-free workspace used by the fast engines.
* :mod:`repro.sim.expectation` -- grouped Pauli-sum expectation values
  (single, batched, and real-arithmetic evaluation).
* :mod:`repro.sim.density_matrix` -- exact density-matrix simulator with
  noise channels (the stand-in for Aer's qasm simulator + noise model);
  O(4^n), capped at 12 qubits.
* :mod:`repro.sim.trajectory` -- stochastic Pauli-trajectory unraveling
  of the same depolarizing channels: K batched statevector trajectories
  give an unbiased O(K*T*2^n) estimate of the density-matrix result
  (the path past 12 qubits for noisy studies).
* :mod:`repro.sim.exact` -- sparse exact ground-state solver ("Ground
  State" reference curves in Figure 9).

Engine selection (``"inplace"`` / ``"batched"`` / ``"fused"`` /
``"legacy"``) is documented in ``docs/performance.md``; the ``"fused"``
engine's dense-block planner lives in :mod:`repro.compiler.fusion`.

Array-library dispatch lives in :mod:`repro.sim.backend`: every engine
takes a ``backend=`` (name or :class:`~repro.sim.backend.ArrayBackend`)
selecting the tensor library -- NumPy by default, CuPy/torch when
importable -- and scale-out across processes is driven by the
``executor=``/``workers=`` knobs (:data:`repro.sim.trajectory.EXECUTORS`).
"""

from repro.sim.backend import (
    ArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
)
from repro.sim.statevector import (
    ENGINES,
    StatevectorSimulator,
    apply_circuit,
    apply_circuit_inplace,
    apply_gate_inplace,
    apply_unitary_inplace,
    basis_state,
    check_engine,
    checked_probabilities,
)
from repro.sim.trajectory import (
    EXECUTORS,
    TrajectoryEstimate,
    TrajectorySimulator,
    check_executor,
    resolve_workers,
    trajectory_estimate,
    trajectory_expectations,
)
from repro.sim.pauli_evolution import (
    PauliEvolutionWorkspace,
    apply_pauli,
    apply_pauli_exponential,
)
from repro.sim.batched import BatchedStatevector
from repro.sim.expectation import ExpectationEngine, expectation
from repro.sim.exact import ground_state_energy
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import DepolarizingNoiseModel

__all__ = [
    "ENGINES",
    "EXECUTORS",
    "ArrayBackend",
    "StatevectorSimulator",
    "BatchedStatevector",
    "DensityMatrixSimulator",
    "DepolarizingNoiseModel",
    "ExpectationEngine",
    "PauliEvolutionWorkspace",
    "TrajectoryEstimate",
    "TrajectorySimulator",
    "trajectory_estimate",
    "trajectory_expectations",
    "basis_state",
    "checked_probabilities",
    "apply_circuit",
    "apply_circuit_inplace",
    "apply_gate_inplace",
    "apply_unitary_inplace",
    "apply_pauli",
    "apply_pauli_exponential",
    "available_array_backends",
    "check_engine",
    "check_executor",
    "expectation",
    "get_array_backend",
    "ground_state_energy",
    "register_array_backend",
    "resolve_workers",
]
