"""Simulation substrate.

* :mod:`repro.sim.statevector` -- gate-level statevector simulator
  (the stand-in for Qiskit Aer's statevector simulator).
* :mod:`repro.sim.pauli_evolution` -- fast application of ``exp(i theta P)``
  directly to statevectors (the workhorse of the VQE energy loop).
* :mod:`repro.sim.expectation` -- grouped Pauli-sum expectation values.
* :mod:`repro.sim.density_matrix` -- exact density-matrix simulator with
  noise channels (the stand-in for Aer's qasm simulator + noise model).
* :mod:`repro.sim.exact` -- sparse exact ground-state solver ("Ground
  State" reference curves in Figure 9).
"""

from repro.sim.statevector import StatevectorSimulator, basis_state, apply_circuit
from repro.sim.pauli_evolution import apply_pauli, apply_pauli_exponential
from repro.sim.expectation import ExpectationEngine, expectation
from repro.sim.exact import ground_state_energy
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import DepolarizingNoiseModel

__all__ = [
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "DepolarizingNoiseModel",
    "ExpectationEngine",
    "basis_state",
    "apply_circuit",
    "apply_pauli",
    "apply_pauli_exponential",
    "expectation",
    "ground_state_energy",
]
