"""Stochastic Pauli-trajectory (quantum-jump) noise engine.

The exact :class:`repro.sim.density_matrix.DensityMatrixSimulator` costs
O(4^n) memory and time and is hard-capped at 12 qubits, which locks the
paper's Figure-10 noise studies out of BH3/NH3/CH4 (14-16 qubits).  This
module unravels the same depolarizing channel into statevector
trajectories instead: after each noisy gate, every trajectory applies a
uniformly random *non-identity* Pauli from the gate's depolarizing set
with probability ``p`` (and nothing otherwise).  Averaging the resulting
pure-state density matrices reproduces the channel exactly,

    E[|psi_traj><psi_traj|] = (1 - p) rho + p/(4^k - 1) sum_P P rho P,

so any expectation averaged over K trajectories is an *unbiased*
estimate of the density-matrix result with statistical error
O(1/sqrt(K)) -- at O(K * T * 2^n) cost instead of O(4^n).

The K trajectories live in one ``(K, 2^n)``
:class:`repro.sim.batched.BatchedStatevector` stack, so every gate is
applied to all trajectories in a single vectorized NumPy call (the same
in-place index-slice kernels as the noise-free fast path), error
injections touch only the sampled rows, and expectations read through
:meth:`repro.sim.expectation.ExpectationEngine.values` in one batched
pass.  Large trajectory counts stream through cache-sized blocks
(:data:`DEFAULT_BLOCK_SIZE` rows at a time) so resident memory stays
bounded by the block, not by K.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np  # lint: ignore[RR006] - host-side sampling and reductions

from repro.circuit import Circuit
from repro.core.seeding import seeded_rng, spawn_seeds
from repro.pauli import PauliString, PauliSum
from repro.sim.backend import ArrayBackend, get_array_backend
from repro.sim.batched import BatchedStatevector
from repro.sim.expectation import ExpectationEngine
from repro.sim.noise import DepolarizingNoiseModel, depolarizing_paulis
from repro.sim.pauli_evolution import cached_parity_signs, cached_xor_indices

#: Valid values of the ``executor=`` knob of the streaming helpers (and
#: of :func:`repro.core.pipeline.run_batch`).
EXECUTORS = ("serial", "thread", "process")


def check_executor(executor: str) -> str:
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; valid executors: "
            f"{', '.join(EXECUTORS)}"
        )
    return executor


def resolve_workers(workers: "int | str | None", tasks: int) -> int:
    """Resolve the ``workers=`` knob: ``"auto"``/``None`` -> CPU count.

    Never more workers than tasks; always at least 1.
    """
    if workers in (None, "auto"):
        count = os.cpu_count() or 1
    else:
        count = int(workers)  # type: ignore[arg-type]
        if count < 1:
            raise ValueError("workers must be at least 1")
    return max(1, min(count, tasks))

#: Trajectories evolved per block by the streaming helpers.  One block
#: keeps ``block x 2**n`` amplitudes resident (64 rows at 14 qubits is
#: ~16 MiB); bigger blocks buy nothing once the gate kernels go
#: memory-bound, smaller ones repay Python dispatch per gate K/block
#: times.
DEFAULT_BLOCK_SIZE = 64

#: Full-width error Paulis per (n, gate qubits): the depolarizing channel
#: of one gate location draws from the same 3 (1q) / 15 (2q) strings on
#: every shot of every trajectory, so embed the local Paulis once.
_CHANNEL_CACHE: dict[tuple[int, tuple[int, ...]], list[PauliString]] = {}


def channel_paulis(num_qubits: int, qubits: tuple[int, ...]) -> list[PauliString]:
    """The non-identity error Paulis of a depolarizing channel on
    ``qubits``, embedded into ``num_qubits``-wide strings (cached)."""
    key = (num_qubits, tuple(qubits))
    cached = _CHANNEL_CACHE.get(key)
    if cached is None:
        cached = []
        for local in depolarizing_paulis(len(qubits)):
            ops = {
                qubit: local.op_on(position)
                for position, qubit in enumerate(qubits)
                if local.op_on(position) != "I"
            }
            cached.append(PauliString.from_ops(num_qubits, ops))
        # lint: ignore[RR101] - idempotent memo: racing writers store equal values
        _CHANNEL_CACHE[key] = cached
    return cached


def _apply_pauli_rows(
    states: Any,
    pauli: PauliString,
    rows: np.ndarray,
    backend: ArrayBackend | None = None,
) -> None:
    """Apply ``P`` to the selected rows of a ``(K, 2**n)`` stack.

    Same signed-permutation identity as
    :func:`repro.sim.pauli_evolution.apply_pauli`, restricted to the rows
    that actually drew this error (at realistic error rates almost all
    rows draw none, so the common case touches a handful of rows).
    """
    backend = get_array_backend(backend)
    n = pauli.num_qubits
    sub = states[rows]
    sub = sub * backend.asarray(
        cached_parity_signs(n, pauli.z), dtype=backend.float_dtype
    )
    if pauli.x:
        sub = backend.take(sub, cached_xor_indices(n, pauli.x), axis=-1)
    phase = (1j) ** (pauli.y_count() % 4)
    if phase != 1.0:
        sub = sub * phase
    states[rows] = sub


class TrajectorySimulator:
    """K stochastic Pauli trajectories evolved through noisy circuits.

    Mirrors the :class:`~repro.sim.density_matrix.DensityMatrixSimulator`
    interface (``run`` a circuit, read expectations) but scales past its
    12-qubit cap: memory is ``K * 2**n`` amplitudes and every unitary is
    one vectorized batched-kernel call.  Pass ``rng`` to share one
    random stream across several simulators (the block-streaming helpers
    below do exactly that).
    """

    def __init__(
        self,
        num_qubits: int,
        noise: DepolarizingNoiseModel | None = None,
        *,
        trajectories: int = DEFAULT_BLOCK_SIZE,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if trajectories < 1:
            raise ValueError("trajectories must be at least 1")
        self.num_qubits = num_qubits
        self.noise = noise or DepolarizingNoiseModel(two_qubit_error=0.0)
        self.trajectories = trajectories
        self.backend = get_array_backend(backend)
        self.batch = BatchedStatevector(num_qubits, trajectories, backend=self.backend)
        self._rng = rng if rng is not None else seeded_rng(seed)
        #: Total error Paulis injected across all trajectories by ``run``
        #: calls since construction/reset (diagnostic: expected value is
        #: ``trajectories * sum_gates p_gate``).
        self.error_events = 0

    @property
    def states(self) -> np.ndarray:
        """The ``(K, 2**n)`` trajectory stack (a live view)."""
        return self.batch.states

    def reset(self, state: np.ndarray | None = None) -> "TrajectorySimulator":
        """Reset every trajectory to ``|0...0>`` (or a given statevector)."""
        if state is None:
            self.batch.reset()
        else:
            self.backend.copyto(
                self.batch.states,
                self.backend.asarray(state, dtype=self.backend.complex_dtype),
            )
        self.error_events = 0
        return self

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def run(self, circuit: Circuit) -> np.ndarray:
        """Evolve all trajectories through the circuit with noise injection.

        SWAPs are decomposed into CNOTs first so the noise model sees the
        same gate stream as the density-matrix simulator.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        hardware_view = circuit.decompose_swaps()
        for gate in hardware_view.gates:
            if gate.name in ("barrier", "measure"):
                continue
            self.batch.apply_gate(gate)
            probability = self.noise.error_for(gate.name, gate.num_qubits)
            if probability > 0.0:
                self._inject_errors(gate.qubits, probability)
        return self.batch.states

    def _inject_errors(self, qubits: tuple[int, ...], probability: float) -> None:
        """One depolarizing shot per trajectory after a noisy gate."""
        hits = np.nonzero(self._rng.random(self.trajectories) < probability)[0]
        if hits.size == 0:
            return
        paulis = channel_paulis(self.num_qubits, qubits)
        choices = self._rng.integers(len(paulis), size=hits.size)
        self.error_events += int(hits.size)
        for index in np.unique(choices):
            _apply_pauli_rows(
                self.batch.states,
                paulis[index],
                hits[choices == index],
                self.backend,
            )

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def expectations(self, observable: ExpectationEngine | PauliSum) -> np.ndarray:
        """Per-trajectory ``<psi|H|psi>``, shape ``(K,)`` (one batched pass)."""
        engine = _as_engine(observable)
        return engine.values(self.batch.states)

    def expectation(self, observable: ExpectationEngine | PauliSum) -> float:
        """Trajectory-averaged expectation (unbiased estimate of ``Tr(rho H)``)."""
        return float(self.expectations(observable).mean())


@dataclass(frozen=True)
class TrajectoryEstimate:
    """A trajectory-averaged expectation with its statistical error."""

    value: float            # mean over trajectories (unbiased)
    standard_error: float   # sample std / sqrt(K); NaN when K == 1
    trajectories: int
    error_events: int       # total injected Paulis across all trajectories

    def agrees_with(self, reference: float, *, sigmas: float = 3.0) -> bool:
        """True when ``reference`` lies within ``sigmas`` standard errors."""
        return abs(self.value - reference) <= sigmas * self.standard_error


def _as_engine(
    observable: ExpectationEngine | PauliSum,
    backend: "str | ArrayBackend | None" = None,
) -> ExpectationEngine:
    if isinstance(observable, ExpectationEngine):
        return observable
    return ExpectationEngine(observable, backend=backend)


def _block_plan(trajectories: int, block_size: int) -> list[int]:
    """Block sizes covering ``trajectories`` (all ``block_size`` but the tail)."""
    if trajectories < 1:
        raise ValueError("trajectories must be at least 1")
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    full, tail = divmod(trajectories, block_size)
    return [block_size] * full + ([tail] if tail else [])


def _spawn_block_seeds(
    seed: int | np.random.SeedSequence | None, count: int
) -> list[np.random.SeedSequence]:
    """One independent child :class:`~numpy.random.SeedSequence` per block.

    Spawning (instead of streaming one generator through the blocks in
    order) is what makes every block's randomness independent of which
    executor runs it and of how blocks are distributed over workers:
    block ``i`` always draws from child ``i`` of the same root, so
    serial, threaded, and process runs are bit-identical given
    ``(seed, trajectories, block_size)``.  Delegates to the audited
    normalization in :mod:`repro.core.seeding`.
    """
    return spawn_seeds(seed, count)


def _run_one_block(
    circuit: Circuit,
    engine: ExpectationEngine,
    noise: DepolarizingNoiseModel | None,
    block: int,
    seed: np.random.SeedSequence,
    initial_state: np.ndarray | None,
    backend: "str | ArrayBackend | None" = None,
) -> tuple[np.ndarray, int]:
    """Evolve one trajectory block; returns (values, error events)."""
    simulator = TrajectorySimulator(
        circuit.num_qubits,
        noise,
        trajectories=block,
        rng=np.random.default_rng(seed),
        backend=backend,
    )
    if initial_state is not None:
        simulator.reset(initial_state)
    simulator.run(circuit)
    return engine.values(simulator.states), simulator.error_events


def _trajectory_block_worker(
    payload: tuple,
) -> tuple[np.ndarray, int]:
    """Process-pool task: map the shared tables, evolve one block.

    The observable's grouped diagonals (the only big constant of the
    computation -- ``(G, 2**n)`` complex128) and the optional initial
    state arrive as a :class:`repro.core.shm.SharedSlabs` handle, so
    every worker maps one shared copy instead of unpickling its own.
    """
    (circuit, noise, block, seed, handle, num_qubits, num_terms, has_initial) = payload
    from repro.core.shm import SharedSlabs

    slabs = SharedSlabs.attach(handle)
    try:
        engine = ExpectationEngine.from_arrays(
            num_qubits,
            slabs["x_masks"],
            slabs["diagonals"],
            num_terms=num_terms,
        )
        initial = slabs["initial_state"] if has_initial else None
        return _run_one_block(circuit, engine, noise, block, seed, initial)
    finally:
        slabs.close()


def _run_blocks(
    circuit: Circuit,
    engine: ExpectationEngine,
    noise: DepolarizingNoiseModel | None,
    trajectories: int,
    seed: int | np.random.SeedSequence | None,
    block_size: int,
    initial_state: np.ndarray | None,
    *,
    executor: str = "serial",
    workers: "int | str | None" = None,
    backend: "str | ArrayBackend | None" = None,
) -> tuple[np.ndarray, int]:
    """Stream trajectories through cache-sized blocks; values + events.

    Block ``i`` always draws from child ``i`` of one
    :class:`~numpy.random.SeedSequence` root (see
    :func:`_spawn_block_seeds`), so all executors and worker counts
    produce bit-identical results for the same
    ``(seed, trajectories, block_size)``.
    """
    check_executor(executor)
    resolved = get_array_backend(backend)
    if executor == "process" and resolved.name != "numpy":
        # Checked before the small-workload serial fallback so the
        # combination fails the same way regardless of block count.
        raise ValueError(
            "executor='process' shares tables through host shared "
            f"memory and requires the numpy backend, not {resolved.name!r}"
        )
    sizes = _block_plan(trajectories, block_size)
    seeds = _spawn_block_seeds(seed, len(sizes))
    count = resolve_workers(workers, len(sizes))
    values = np.empty(trajectories)
    events = 0

    def _store(results: Iterable[tuple[np.ndarray, int]]) -> None:
        nonlocal events
        done = 0
        for (block_values, block_events), block in zip(results, sizes):
            values[done:done + block] = block_values
            events += block_events
            done += block

    if executor == "serial" or count == 1 or len(sizes) == 1:
        _store(
            _run_one_block(
                circuit, engine, noise, block, block_seed, initial_state, resolved
            )
            for block, block_seed in zip(sizes, seeds)
        )
    elif executor == "thread":
        with ThreadPoolExecutor(max_workers=count) as pool:
            _store(
                pool.map(
                    lambda pair: _run_one_block(
                        circuit, engine, noise, pair[0], pair[1],
                        initial_state, resolved,
                    ),
                    zip(sizes, seeds),
                )
            )
    else:
        from repro.core.shm import SharedSlabs

        tables = engine.export_tables()
        if initial_state is not None:
            tables["initial_state"] = np.ascontiguousarray(
                np.asarray(initial_state, dtype=complex)
            )
        slabs = SharedSlabs.create(tables)
        try:
            payloads = [
                (
                    circuit, noise, block, block_seed, slabs.handle,
                    engine.num_qubits, engine.num_terms,
                    initial_state is not None,
                )
                for block, block_seed in zip(sizes, seeds)
            ]
            with ProcessPoolExecutor(max_workers=count) as pool:
                _store(pool.map(_trajectory_block_worker, payloads))
        finally:
            slabs.unlink()
    return values, events


def trajectory_expectations(
    circuit: Circuit,
    observable: ExpectationEngine | PauliSum,
    noise: DepolarizingNoiseModel | None = None,
    *,
    trajectories: int = 256,
    seed: int | np.random.SeedSequence | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    initial_state: np.ndarray | None = None,
    executor: str = "serial",
    workers: "int | str | None" = None,
    backend: "str | ArrayBackend | None" = None,
) -> np.ndarray:
    """Per-trajectory expectations of a noisy circuit, shape ``(K,)``.

    ``seed`` accepts anything ``np.random.default_rng`` does (int,
    ``SeedSequence``, ``None`` for fresh entropy).  Each block draws
    from its own spawned child of one ``SeedSequence`` root, so results
    are fully deterministic given ``(seed, trajectories, block_size)``
    -- and bit-identical across ``executor="serial" | "thread" |
    "process"`` and any ``workers`` count.  ``executor="process"``
    shares the observable's grouped diagonals with the workers through
    :class:`repro.core.shm.SharedSlabs` (numpy backend only).
    """
    values, _ = _run_blocks(
        circuit, _as_engine(observable, backend), noise, trajectories, seed,
        block_size, initial_state,
        executor=executor, workers=workers, backend=backend,
    )
    return values


def trajectory_estimate(
    circuit: Circuit,
    observable: ExpectationEngine | PauliSum,
    noise: DepolarizingNoiseModel | None = None,
    *,
    trajectories: int = 256,
    seed: int | np.random.SeedSequence | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    initial_state: np.ndarray | None = None,
    executor: str = "serial",
    workers: "int | str | None" = None,
    backend: "str | ArrayBackend | None" = None,
) -> TrajectoryEstimate:
    """Trajectory-averaged expectation with its standard error.

    The mean is an unbiased estimate of the density-matrix expectation
    (see the module docstring); ``standard_error`` quantifies the
    remaining Monte-Carlo noise, so DM-vs-trajectory agreement checks
    should compare within a few standard errors.  See
    :func:`trajectory_expectations` for the ``executor``/``workers``/
    ``backend`` scale-out knobs (results are bit-identical across
    executors for a fixed seed).
    """
    values, events = _run_blocks(
        circuit, _as_engine(observable, backend), noise, trajectories, seed,
        block_size, initial_state,
        executor=executor, workers=workers, backend=backend,
    )
    if trajectories > 1:
        standard_error = float(values.std(ddof=1) / math.sqrt(trajectories))
    else:
        standard_error = float("nan")
    return TrajectoryEstimate(
        value=float(values.mean()),
        standard_error=standard_error,
        trajectories=trajectories,
        error_events=events,
    )
