"""Gate-level statevector simulator.

States are little-endian: basis index ``b`` has qubit ``i`` in state
``(b >> i) & 1``.  Gates are applied by reshaping the state tensor so the
acted-on axes are contiguous, then contracting with the gate matrix --
the standard dense-simulation approach, entirely in NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit
from repro.circuit.gates import Gate


def basis_state(num_qubits: int, index: int = 0) -> np.ndarray:
    """The computational basis state ``|index>`` as a statevector."""
    if not 0 <= index < (1 << num_qubits):
        raise ValueError(f"basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(1 << num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def _apply_single_qubit(state: np.ndarray, matrix: np.ndarray, qubit: int, n: int) -> np.ndarray:
    """Contract a 2x2 matrix into axis ``qubit`` of the state tensor."""
    tensor = state.reshape([2] * n)
    # Axis order in the reshaped tensor: axis 0 is the *highest* qubit.
    axis = n - 1 - qubit
    tensor = np.tensordot(matrix, tensor, axes=([1], [axis]))
    # tensordot moved the contracted axis to the front; move it back.
    tensor = np.moveaxis(tensor, 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def _apply_two_qubit(
    state: np.ndarray, matrix: np.ndarray, qubit_a: int, qubit_b: int, n: int
) -> np.ndarray:
    """Contract a 4x4 matrix into axes (qubit_a, qubit_b).

    Matrix convention: within the gate, the first listed qubit is the least
    significant bit of the 2-bit index (see :mod:`repro.circuit.gates`).
    """
    tensor = state.reshape([2] * n)
    axis_a = n - 1 - qubit_a
    axis_b = n - 1 - qubit_b
    gate_tensor = matrix.reshape(2, 2, 2, 2)
    # gate_tensor indices: [out_b, out_a, in_b, in_a] because bit 1 of the
    # 4-dim index is qubit_b and bit 0 is qubit_a.
    tensor = np.tensordot(gate_tensor, tensor, axes=([2, 3], [axis_b, axis_a]))
    # Contracted axes land at the front as (out_b, out_a).
    tensor = np.moveaxis(tensor, [0, 1], [axis_b, axis_a])
    return np.ascontiguousarray(tensor).reshape(-1)


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a statevector, returning the new statevector."""
    if gate.name in ("barrier", "measure"):
        return state
    matrix = gate.matrix()
    if gate.num_qubits == 1:
        return _apply_single_qubit(state, matrix, gate.qubits[0], num_qubits)
    if gate.num_qubits == 2:
        return _apply_two_qubit(state, matrix, gate.qubits[0], gate.qubits[1], num_qubits)
    raise ValueError(f"unsupported gate arity: {gate!r}")


def apply_circuit(circuit: Circuit, state: np.ndarray | None = None) -> np.ndarray:
    """Run a circuit on ``state`` (defaults to ``|0...0>``)."""
    if state is None:
        state = basis_state(circuit.num_qubits)
    current = np.asarray(state, dtype=complex)
    for gate in circuit.gates:
        current = apply_gate(current, gate, circuit.num_qubits)
    return current


class StatevectorSimulator:
    """Stateful simulator wrapper with sampling support."""

    def __init__(self, num_qubits: int, seed: int | None = None):
        self.num_qubits = num_qubits
        self.state = basis_state(num_qubits)
        self._rng = np.random.default_rng(seed)

    def reset(self) -> "StatevectorSimulator":
        self.state = basis_state(self.num_qubits)
        return self

    def run(self, circuit: Circuit) -> np.ndarray:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        self.state = apply_circuit(circuit, self.state)
        return self.state

    def probabilities(self) -> np.ndarray:
        return np.abs(self.state) ** 2

    def sample(self, shots: int) -> np.ndarray:
        """Sample ``shots`` basis-state indices from the current state."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        return self._rng.choice(len(probs), size=shots, p=probs)

    def sample_counts(self, shots: int) -> dict[int, int]:
        outcomes, counts = np.unique(self.sample(shots), return_counts=True)
        return {int(o): int(c) for o, c in zip(outcomes, counts)}
