"""Gate-level statevector simulator.

States are little-endian: basis index ``b`` has qubit ``i`` in state
``(b >> i) & 1``.

Two engines implement gate application:

* ``"inplace"`` (default) -- index-slice kernels that mutate a
  preallocated buffer.  The state is viewed as a ``[2] * n`` tensor (a
  free reshape on the contiguous buffer) and the two (four) amplitude
  slabs selected by the acted-on qubit(s) are combined in place, with
  specialized updates for the common gates (X/Z/S/RZ/H, CX/CZ/SWAP)
  that avoid even the half-size temporary.  Kernels broadcast over any
  leading batch axes, which is what :class:`repro.sim.batched.BatchedStatevector`
  builds on.
* ``"legacy"`` -- the original out-of-place ``tensordot`` contraction,
  kept verbatim as the reference semantics (and regression guard).
* ``"fused"`` -- gate fusion (:mod:`repro.compiler.fusion`): runs of
  adjacent gates are merged into dense 2x2/4x4 unitaries ahead of time
  and applied through :func:`apply_unitary_inplace`, a low-op-count
  gather/GEMM/scatter kernel that also accepts per-row ``(K, 4, 4)``
  matrix stacks for vectorized parameter sweeps.

``apply_gate`` / ``apply_circuit`` keep their original copy-out
signatures as compatibility shims over the in-place kernels.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np  # lint: ignore[RR006] - in-place kernels are numpy-native

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.core.seeding import seeded_rng
from repro.sim.backend import ArrayBackend, get_array_backend

_SQRT1_2 = 1.0 / math.sqrt(2.0)

#: Valid values of the ``engine`` argument accepted across the stack
#: (simulator, energy backends, pipeline config).
ENGINES = ("inplace", "batched", "fused", "legacy")


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown simulation engine {engine!r}; valid engines: "
            f"{', '.join(ENGINES)}"
        )
    return engine


def checked_probabilities(
    state: np.ndarray, *, norm_tolerance: float = 1e-8, context: str = "statevector"
) -> np.ndarray:
    """The probability vector ``|psi|^2`` of a *normalized* state.

    A probability total further than ``norm_tolerance`` from 1 raises
    instead of being silently renormalized, so simulator bugs that leak
    or create norm surface at the sampling boundary instead of being
    masked.  Within tolerance, the residual float fuzz is divided out
    (``Generator.choice`` requires probabilities summing to exactly 1).
    Shared by :meth:`StatevectorSimulator.sample` and the finite-shot
    energy backend (:class:`repro.vqe.energy.SamplingEnergy`).
    """
    probabilities = np.abs(state) ** 2
    total = probabilities.sum()
    if abs(total - 1.0) > norm_tolerance:
        raise ValueError(
            f"{context} is not normalized: probabilities sum to {total!r} "
            f"(|total - 1| > {norm_tolerance}); this indicates a simulation "
            "bug rather than sampling noise"
        )
    return probabilities / total


def basis_state(num_qubits: int, index: int = 0) -> np.ndarray:
    """The computational basis state ``|index>`` as a statevector."""
    if not 0 <= index < (1 << num_qubits):
        raise ValueError(f"basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(1 << num_qubits, dtype=complex)
    state[index] = 1.0
    return state


# ----------------------------------------------------------------------
# Legacy engine: out-of-place tensordot contraction (reference semantics)
# ----------------------------------------------------------------------
def _apply_single_qubit(state: np.ndarray, matrix: np.ndarray, qubit: int, n: int) -> np.ndarray:
    """Contract a 2x2 matrix into axis ``qubit`` of the state tensor."""
    tensor = state.reshape([2] * n)
    # Axis order in the reshaped tensor: axis 0 is the *highest* qubit.
    axis = n - 1 - qubit
    tensor = np.tensordot(matrix, tensor, axes=([1], [axis]))
    # tensordot moved the contracted axis to the front; move it back.
    tensor = np.moveaxis(tensor, 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def _apply_two_qubit(
    state: np.ndarray, matrix: np.ndarray, qubit_a: int, qubit_b: int, n: int
) -> np.ndarray:
    """Contract a 4x4 matrix into axes (qubit_a, qubit_b).

    Matrix convention: within the gate, the first listed qubit is the least
    significant bit of the 2-bit index (see :mod:`repro.circuit.gates`).
    """
    tensor = state.reshape([2] * n)
    axis_a = n - 1 - qubit_a
    axis_b = n - 1 - qubit_b
    gate_tensor = matrix.reshape(2, 2, 2, 2)
    # gate_tensor indices: [out_b, out_a, in_b, in_a] because bit 1 of the
    # 4-dim index is qubit_b and bit 0 is qubit_a.
    tensor = np.tensordot(gate_tensor, tensor, axes=([2, 3], [axis_b, axis_a]))
    # Contracted axes land at the front as (out_b, out_a).
    tensor = np.moveaxis(tensor, [0, 1], [axis_b, axis_a])
    return np.ascontiguousarray(tensor).reshape(-1)


def _apply_gate_legacy(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    if gate.name in ("barrier", "measure"):
        return state
    matrix = gate.matrix()
    if gate.num_qubits == 1:
        return _apply_single_qubit(state, matrix, gate.qubits[0], num_qubits)
    if gate.num_qubits == 2:
        return _apply_two_qubit(state, matrix, gate.qubits[0], gate.qubits[1], num_qubits)
    raise ValueError(f"unsupported gate arity: {gate!r}")


# ----------------------------------------------------------------------
# Generic backend engine: out-of-place tensor contraction via hooks
# ----------------------------------------------------------------------
def apply_gate_backend(
    state: Any, gate: Gate, num_qubits: int, backend: ArrayBackend
) -> Any:
    """Apply one gate through :class:`~repro.sim.backend.ArrayBackend` hooks.

    The out-of-place tensor-contraction path (same semantics as the
    legacy engine, broadcast over any leading batch axes) used by
    backends without :attr:`~repro.sim.backend.ArrayBackend.supports_inplace_kernels`
    -- CuPy/torch execute the contraction natively on their own device.
    Returns the evolved array (the input is not mutated).
    """
    if gate.name in ("barrier", "measure"):
        return state
    matrix = backend.asarray(gate.matrix(), dtype=backend.complex_dtype)
    shape = state.shape
    tensor = state.reshape((-1,) + (2,) * num_qubits)
    ndim = tensor.ndim
    if gate.num_qubits == 1:
        axis = ndim - 1 - gate.qubits[0]
        tensor = backend.tensordot(matrix, tensor, axes=([1], [axis]))
        tensor = backend.moveaxis(tensor, 0, axis)
    elif gate.num_qubits == 2:
        axis_a = ndim - 1 - gate.qubits[0]
        axis_b = ndim - 1 - gate.qubits[1]
        gate_tensor = matrix.reshape(2, 2, 2, 2)
        # gate_tensor indices: [out_b, out_a, in_b, in_a] -- bit 0 of the
        # 4-dim matrix index is the first listed qubit.
        tensor = backend.tensordot(
            gate_tensor, tensor, axes=([2, 3], [axis_b, axis_a])
        )
        tensor = backend.moveaxis(tensor, [0, 1], [axis_b, axis_a])
    else:
        raise ValueError(f"unsupported gate arity: {gate!r}")
    return backend.ascontiguous(tensor).reshape(shape)


def _apply_unitary_backend(
    state: Any,
    matrix: Any,
    qubits: tuple[int, ...],
    num_qubits: int,
    backend: ArrayBackend,
) -> Any:
    """Backend-generic version of :func:`apply_unitary_inplace`.

    Computes out of place with backend einsum/moveaxis, then writes the
    result back into ``state`` so the in-place contract (mutate and
    return the same buffer) holds for callers either way.
    """
    matrix = backend.asarray(matrix, dtype=backend.complex_dtype)
    arity = len(qubits)
    if arity == 2 and qubits[0] == qubits[1]:
        raise ValueError("two-qubit unitary needs distinct qubits")
    if arity not in (1, 2):
        raise ValueError("dense unitary kernels support 1- and 2-qubit blocks only")
    shape = state.shape
    tensor = state.reshape((-1,) + (2,) * num_qubits)
    ndim = tensor.ndim
    if arity == 1:
        sources = [ndim - 1 - qubits[0]]
    else:
        # Last-axis order (bit_b, bit_a): flattened index (bit_b << 1) |
        # bit_a matches the gate-matrix convention (first listed qubit =
        # least significant bit).
        sources = [ndim - 1 - qubits[1], ndim - 1 - qubits[0]]
    destinations = list(range(ndim - arity, ndim))
    dim = 1 << arity
    moved = backend.ascontiguous(backend.moveaxis(tensor, sources, destinations))
    flat = moved.reshape(moved.shape[: ndim - arity] + (dim,))
    if matrix.ndim == 3:
        if len(shape) != 2 or matrix.shape[0] != shape[0]:
            raise ValueError(
                "per-row matrix stacks require a matching (K, 2**n) state stack"
            )
        updated = backend.einsum("kij,k...j->k...i", matrix, flat)
    else:
        updated = backend.einsum("ij,...j->...i", matrix, flat)
    restored = backend.moveaxis(updated.reshape(moved.shape), destinations, sources)
    backend.copyto(state, backend.ascontiguous(restored).reshape(shape))
    return state


# ----------------------------------------------------------------------
# In-place engine: index-slice kernels on the [2]*n tensor view
# ----------------------------------------------------------------------
def _qubit_slabs(
    tensor: np.ndarray, num_qubits: int, qubit: int
) -> tuple[np.ndarray, np.ndarray]:
    """The two amplitude slabs (views) selected by ``qubit``.

    ``tensor`` has shape ``batch + [2]*num_qubits``; qubit ``q`` lives on
    axis ``ndim - 1 - q`` (little-endian: axis -1 is qubit 0).
    """
    axis = tensor.ndim - 1 - qubit
    index: list = [slice(None)] * tensor.ndim
    index[axis] = 0
    slab0 = tensor[tuple(index)]
    index[axis] = 1
    return slab0, tensor[tuple(index)]


def _pair_slabs(
    tensor: np.ndarray, num_qubits: int, qubit_a: int, qubit_b: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The four slabs ``T[bit_b, bit_a]`` (views) for a two-qubit gate.

    Returned in gate-matrix index order ``(bit_b << 1) | bit_a`` (the
    first listed qubit is the least significant bit, as in
    :mod:`repro.circuit.gates`).
    """
    axis_a = tensor.ndim - 1 - qubit_a
    axis_b = tensor.ndim - 1 - qubit_b
    slabs = []
    for code in range(4):
        index: list = [slice(None)] * tensor.ndim
        index[axis_a] = code & 1
        index[axis_b] = (code >> 1) & 1
        slabs.append(tensor[tuple(index)])
    return slabs[0], slabs[1], slabs[2], slabs[3]


def _combine_single(slab0: np.ndarray, slab1: np.ndarray, matrix: np.ndarray) -> None:
    """Generic in-place 2x2 update of the two amplitude slabs."""
    m00, m01 = matrix[0, 0], matrix[0, 1]
    m10, m11 = matrix[1, 0], matrix[1, 1]
    old0 = slab0.copy()
    slab0 *= m00
    slab0 += m01 * slab1
    slab1 *= m11
    slab1 += m10 * old0


def _swap_slabs(a: np.ndarray, b: np.ndarray) -> None:
    tmp = a.copy()
    a[...] = b
    b[...] = tmp


def apply_gate_inplace(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to ``state`` by mutating it; returns ``state``.

    ``state`` must be complex, C-contiguous, and of shape
    ``(..., 2**num_qubits)``; any leading axes are treated as a batch and
    evolved under the same gate in one vectorized update.
    """
    name = gate.name
    if name in ("barrier", "measure"):
        return state
    _check_inplace_buffer(state)
    # Flatten any batch axes into one leading axis (always present, so
    # slab indexing below always yields writable views, never scalars).
    tensor = state.reshape((-1,) + (2,) * num_qubits)
    if gate.num_qubits == 1:
        slab0, slab1 = _qubit_slabs(tensor, num_qubits, gate.qubits[0])
        if name == "x":
            _swap_slabs(slab0, slab1)
        elif name == "z":
            slab1 *= -1.0
        elif name == "s":
            slab1 *= 1j
        elif name == "sdg":
            slab1 *= -1j
        elif name == "rz":
            half = 0.5 * gate.params[0]
            slab0 *= complex(math.cos(half), -math.sin(half))
            slab1 *= complex(math.cos(half), math.sin(half))
        elif name == "h":
            old0 = slab0.copy()
            slab0 += slab1
            slab0 *= _SQRT1_2
            old0 -= slab1
            old0 *= _SQRT1_2
            slab1[...] = old0
        else:
            _combine_single(slab0, slab1, gate.matrix())
        return state
    if gate.num_qubits == 2:
        slabs = _pair_slabs(tensor, num_qubits, gate.qubits[0], gate.qubits[1])
        if name == "cx":
            # control = first listed qubit (bit 0): flip the target bit
            # within the control=1 half, i.e. swap T[b=0,a=1] <-> T[b=1,a=1].
            _swap_slabs(slabs[1], slabs[3])
        elif name == "cz":
            np.multiply(slabs[3], -1.0, out=slabs[3])
        elif name == "swap":
            _swap_slabs(slabs[1], slabs[2])
        else:
            matrix = gate.matrix()
            old = [slab.copy() for slab in slabs]
            for row in range(4):
                slab = slabs[row]
                slab[...] = matrix[row, 0] * old[0]
                for col in range(1, 4):
                    if matrix[row, col] != 0.0:
                        slab += matrix[row, col] * old[col]
        return state
    raise ValueError(f"unsupported gate arity: {gate!r}")


#: Matrix-index permutation that swaps the roles of the two qubit bits
#: of a 4x4 unitary (index ``(b << 1) | a``  ->  ``(a << 1) | b``).
_SWAP_BITS_PERM = (0, 2, 1, 3)


def _check_inplace_buffer(state: np.ndarray) -> None:
    if not state.flags.c_contiguous or state.dtype != np.complex128:
        raise ValueError(
            "in-place kernels need a C-contiguous complex128 buffer "
            "(a non-contiguous view would silently reshape into a copy); "
            "use apply_gate/apply_circuit for arbitrary inputs"
        )


def apply_unitary_inplace(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: tuple[int, ...],
    num_qubits: int,
    backend: str | ArrayBackend | None = None,
) -> np.ndarray:
    """Apply a dense 1q/2q unitary to ``state`` by mutating it.

    ``state`` must be C-contiguous complex128 of shape
    ``(..., 2**num_qubits)``.  ``matrix`` is ``(2, 2)`` / ``(4, 4)``
    (shared across any leading batch axes) or a per-row stack
    ``(K, 2, 2)`` / ``(K, 4, 4)`` matched to a ``(K, 2**n)`` state --
    the vectorized-sweep path, where every row evolves under its own
    bound matrix in one batched GEMM.

    For two-qubit unitaries the matrix convention follows
    :mod:`repro.circuit.gates`: the first entry of ``qubits`` is the
    least significant bit of the 2-bit matrix index.  The kernel is a
    three-pass gather / GEMM / scatter (one strided copy into ``(.., 4)``
    rows, one ``matmul``, one strided write-back), deliberately far
    cheaper per amplitude than the generic slab loop -- that is what
    makes fused dense blocks profitable against the specialized
    single-gate kernels.

    ``backend=`` routes the kernel: backends without in-place support
    (CuPy/torch) take the out-of-place einsum path of
    :func:`_apply_unitary_backend` (same mutate-and-return contract).
    """
    if backend is not None:
        resolved = get_array_backend(backend)
        if not resolved.supports_inplace_kernels:
            return _apply_unitary_backend(state, matrix, qubits, num_qubits, resolved)
    _check_inplace_buffer(state)
    matrix = np.asarray(matrix, dtype=complex)
    arity = len(qubits)
    if arity == 1:
        qubit = qubits[0]
        lo = 1 << qubit
        hi = 1 << (num_qubits - 1 - qubit)
        view = state.reshape(-1, hi, 2, lo)
        # Move the qubit axis last so each amplitude pair is one GEMM row.
        moved = view.transpose(0, 1, 3, 2)
    elif arity == 2:
        qubit_a, qubit_b = qubits
        if qubit_a == qubit_b:
            raise ValueError("two-qubit unitary needs distinct qubits")
        if qubit_a > qubit_b:
            # Normalize to ascending qubits: permute the matrix so bit 0
            # of its index is the lower qubit.
            matrix = matrix[..., _SWAP_BITS_PERM, :][..., :, _SWAP_BITS_PERM]
            qubit_a, qubit_b = qubit_b, qubit_a
        lo = 1 << qubit_a
        mid = 1 << (qubit_b - qubit_a - 1)
        hi = 1 << (num_qubits - 1 - qubit_b)
        view = state.reshape(-1, hi, 2, mid, 2, lo)
        # Bring (qubit_b bit, qubit_a bit) last: combined index
        # ``(bit_b << 1) | bit_a`` matches the matrix convention.
        moved = view.transpose(0, 1, 3, 5, 2, 4)
    else:
        raise ValueError("dense unitary kernels support 1- and 2-qubit blocks only")
    dim = 1 << arity
    if matrix.ndim == 3:
        if state.ndim != 2 or matrix.shape[0] != state.shape[0]:
            raise ValueError(
                "per-row matrix stacks require a matching (K, 2**n) state stack"
            )
        rows = matrix.shape[0]
        gathered = moved.reshape(rows, -1, dim)  # strided view -> copy
        updated = np.matmul(gathered, matrix.transpose(0, 2, 1))
    else:
        gathered = moved.reshape(-1, dim)
        updated = gathered @ matrix.T
    moved[...] = updated.reshape(moved.shape)
    return state


def apply_circuit_inplace(circuit: Circuit, state: np.ndarray) -> np.ndarray:
    """Run a circuit on ``state`` by mutating it; returns ``state``.

    Accepts batched states of shape ``(..., 2**n)`` (see
    :func:`apply_gate_inplace`).
    """
    for gate in circuit.gates:
        apply_gate_inplace(state, gate, circuit.num_qubits)
    return state


# ----------------------------------------------------------------------
# Compatibility shims (original copy-out signatures)
# ----------------------------------------------------------------------
def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a statevector, returning the new statevector.

    Compatibility shim: copies the input, then runs the in-place kernel.
    """
    current = np.array(state, dtype=complex, copy=True)
    return apply_gate_inplace(current, gate, num_qubits)


def apply_circuit(
    circuit: Circuit, state: np.ndarray | None = None, *, engine: str = "inplace"
) -> np.ndarray:
    """Run a circuit on ``state`` (defaults to ``|0...0>``).

    The input state is never mutated.  ``engine="legacy"`` selects the
    original out-of-place tensordot path; ``"inplace"`` (and
    ``"batched"``, identical at this granularity) copy once and then
    mutate the copy gate by gate; ``"fused"`` merges adjacent gates into
    dense unitary blocks first (plans are content-addressed, so repeated
    runs of structurally identical circuits skip the planning).
    """
    check_engine(engine)
    if state is None:
        state = basis_state(circuit.num_qubits)
        current = state  # freshly allocated: safe to mutate
    else:
        current = np.array(state, dtype=complex, copy=True)
    if engine == "legacy":
        for gate in circuit.gates:
            current = _apply_gate_legacy(current, gate, circuit.num_qubits)
        return current
    if engine == "fused":
        from repro.compiler.fusion import fuse_circuit

        return fuse_circuit(circuit).apply(current)
    return apply_circuit_inplace(circuit, current)


class StatevectorSimulator:
    """Stateful simulator wrapper with sampling support.

    ``engine`` selects the gate-application path (see module docstring);
    the default in-place engine reuses ``self.state`` as its buffer.
    ``backend`` selects the tensor library (:mod:`repro.sim.backend`);
    backends without in-place kernel support route every engine except
    ``"fused"`` (which requires them) through the out-of-place
    contraction path executed on the backend's own device.
    """

    def __init__(
        self,
        num_qubits: int,
        seed: int | None = None,
        engine: str = "inplace",
        *,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.engine = check_engine(engine)
        self.backend = get_array_backend(backend)
        if engine == "fused" and not self.backend.supports_inplace_kernels:
            raise ValueError(
                f"engine='fused' requires in-place kernel support, which "
                f"backend {self.backend.name!r} does not provide; use "
                "engine='inplace' or 'batched'"
            )
        self.state = self.backend.asarray(
            basis_state(num_qubits), dtype=self.backend.complex_dtype
        )
        self._rng = seeded_rng(seed)

    def reset(self) -> "StatevectorSimulator":
        self.state = self.backend.asarray(
            basis_state(self.num_qubits), dtype=self.backend.complex_dtype
        )
        return self

    def run(self, circuit: Circuit) -> Any:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        if not self.backend.supports_inplace_kernels:
            for gate in circuit.gates:
                self.state = apply_gate_backend(
                    self.state, gate, self.num_qubits, self.backend
                )
        elif self.engine == "legacy":
            for gate in circuit.gates:
                self.state = _apply_gate_legacy(self.state, gate, self.num_qubits)
        elif self.engine == "fused":
            from repro.compiler.fusion import fuse_circuit

            fuse_circuit(circuit).apply(self.state)
        else:
            apply_circuit_inplace(circuit, self.state)
        return self.state

    def probabilities(self) -> np.ndarray:
        return np.abs(self.backend.to_numpy(self.state)) ** 2

    def sample(self, shots: int, *, norm_tolerance: float = 1e-8) -> np.ndarray:
        """Sample ``shots`` basis-state indices from the current state.

        The state must be normalized: a probability total further than
        ``norm_tolerance`` from 1 raises instead of being silently
        renormalized (see :func:`checked_probabilities`).
        """
        probs = checked_probabilities(
            self.backend.to_numpy(self.state), norm_tolerance=norm_tolerance
        )
        return self._rng.choice(len(probs), size=shots, p=probs)

    def sample_counts(self, shots: int) -> dict[int, int]:
        outcomes, counts = np.unique(self.sample(shots), return_counts=True)
        return {int(o): int(c) for o, c in zip(outcomes, counts)}
