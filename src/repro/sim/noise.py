"""Noise channels for the density-matrix simulator.

The paper's noisy case studies (Figure 10) use "a depolarizing error model
with realistic CNOT error rates of 0.0001".  We implement one- and
two-qubit depolarizing channels as Kraus maps plus a noise-model object
that attaches channels to gates by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pauli import PauliString


def depolarizing_paulis(num_qubits: int) -> list[PauliString]:
    """All 4^k - 1 non-identity Paulis on k qubits (k = 1 or 2)."""
    if num_qubits not in (1, 2):
        raise ValueError("depolarizing channels are defined for 1 or 2 qubits here")
    labels_1q = ["X", "Y", "Z"]
    if num_qubits == 1:
        return [PauliString.from_label(label) for label in labels_1q]
    labels = [
        a + b
        for a in ["I", "X", "Y", "Z"]
        for b in ["I", "X", "Y", "Z"]
        if (a, b) != ("I", "I")
    ]
    return [PauliString.from_label(label) for label in labels]


@dataclass
class DepolarizingNoiseModel:
    """Attach depolarizing channels to named gates.

    ``two_qubit_error`` is the depolarizing parameter applied after every
    CNOT/SWAP-decomposed CNOT; ``one_qubit_error`` after every single-qubit
    gate.  With parameter p the channel is

        rho -> (1 - p) rho + p/(4^k - 1) * sum_P P rho P

    over the non-identity Paulis P of the gate's qubits.
    """

    two_qubit_error: float = 1e-4
    one_qubit_error: float = 0.0
    noisy_gates: frozenset = field(
        default_factory=lambda: frozenset({"cx", "cz", "swap"})
    )

    def error_for(self, gate_name: str, num_qubits: int) -> float:
        if gate_name in ("barrier", "measure"):
            return 0.0
        if num_qubits == 2:
            return self.two_qubit_error if gate_name in self.noisy_gates else 0.0
        return self.one_qubit_error

    def is_trivial(self) -> bool:
        return self.two_qubit_error == 0.0 and self.one_qubit_error == 0.0
