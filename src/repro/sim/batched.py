"""Batched statevector: K states evolved per gate in one NumPy call.

:class:`BatchedStatevector` stacks K statevectors into a ``(K, 2**n)``
array so a parameter sweep -- K points of a dissociation curve, K
shifted evaluations of a gradient, K restarts of an optimizer -- pays
the Python- and NumPy-dispatch overhead of each gate/term *once* instead
of K times.  The per-gate kernels are the same in-place index-slice
kernels as the single-state engine (:mod:`repro.sim.statevector`); they
broadcast over the leading batch axis, so a batched gate touches the
same memory as K sequential gates but in one vectorized pass.

Usage::

    batch = BatchedStatevector(num_qubits=2, batch_size=3)
    batch.apply_circuit(bell_circuit)          # all 3 rows evolve at once
    batch.evolve(paulis, angles)               # angles: (3, num_terms)
    energies = batch.expectations(engine)      # (3,) via ExpectationEngine

The VQE fast path (:meth:`repro.vqe.energy.StatevectorEnergy.values`)
builds the ``(K, num_terms)`` angle matrix with
:meth:`repro.core.ir.PauliProgram.bound_angles` and evolves all K
parameter sets through one :meth:`evolve` call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np  # lint: ignore[RR006] - host-side tables and real fast path

from scipy.linalg.blas import daxpy as _daxpy

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.pauli import PauliString
from repro.sim.backend import ArrayBackend, get_array_backend
from repro.sim.pauli_evolution import (
    cached_parity_signs,
    cached_xor_indices,
    pauli_sign_factor,
)
from repro.sim.statevector import (
    apply_gate_backend,
    apply_gate_inplace,
    basis_state,
    check_engine,
)

if TYPE_CHECKING:
    from repro.sim.expectation import ExpectationEngine

#: Angles with |cos| below this fall back to the exact two-scaling
#: update instead of the deferred-cosine ``tan`` form (tan degrades
#: near pi/2).
_TAN_GUARD = 0.3

#: When the deferred cosine product drops below this, fold it back into
#: the states mid-evolution: the unnormalized amplitudes grow like
#: ``1 / scale`` and would otherwise overflow on very long programs.
_SCALE_REFOLD = 1e-60


class BatchedStatevector:
    """K statevectors in one ``(K, 2**n)`` buffer, evolved together."""

    def __init__(
        self,
        num_qubits: int,
        batch_size: int,
        *,
        states: Any | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.num_qubits = num_qubits
        self.batch_size = batch_size
        self.backend = get_array_backend(backend)
        dim = 1 << num_qubits
        if states is None:
            self.states = self.backend.zeros(
                (batch_size, dim), dtype=self.backend.complex_dtype
            )
            self.states[:, 0] = 1.0
        else:
            states = self.backend.ascontiguous(
                self.backend.asarray(states, dtype=self.backend.complex_dtype)
            )
            if tuple(states.shape) != (batch_size, dim):
                raise ValueError(
                    f"states must have shape {(batch_size, dim)}, "
                    f"got {tuple(states.shape)}"
                )
            self.states = states
        self._buffer: Any | None = None
        #: Backend-resident copies of the memoized sign tables, keyed by
        #: Pauli mask (only populated for non-numpy backends, where the
        #: host table would otherwise be converted every term).
        self._device_signs: dict[int, Any] = {}

    @classmethod
    def from_states(
        cls, states: Any, *, backend: str | ArrayBackend | None = None
    ) -> "BatchedStatevector":
        """Wrap an existing ``(K, 2**n)`` stack (copied to a fresh buffer)."""
        resolved = get_array_backend(backend)
        states = resolved.asarray(states, dtype=resolved.complex_dtype)
        if states.ndim != 2 or states.shape[1] & (states.shape[1] - 1):
            raise ValueError("states must be (K, 2**n)")
        copy = resolved.empty_like(resolved.ascontiguous(states))
        resolved.copyto(copy, states)
        num_qubits = int(states.shape[1]).bit_length() - 1
        return cls(
            num_qubits, int(states.shape[0]), states=copy, backend=resolved
        )

    @classmethod
    def broadcast(
        cls,
        state: Any,
        batch_size: int,
        *,
        backend: str | ArrayBackend | None = None,
    ) -> "BatchedStatevector":
        """K copies of one statevector (e.g. a shared reference state)."""
        resolved = get_array_backend(backend)
        host = np.tile(
            np.asarray(resolved.to_numpy(state), dtype=complex), (batch_size, 1)
        )
        return cls.from_states(host, backend=resolved)

    def reset(self, index: int = 0) -> "BatchedStatevector":
        """Reset every row to the basis state ``|index>``."""
        self.backend.copyto(
            self.states,
            self.backend.asarray(
                basis_state(self.num_qubits, index),
                dtype=self.backend.complex_dtype,
            ),
        )
        return self

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> "BatchedStatevector":
        if self.backend.supports_inplace_kernels:
            apply_gate_inplace(self.states, gate, self.num_qubits)
        else:
            self.states = apply_gate_backend(
                self.states, gate, self.num_qubits, self.backend
            )
        return self

    def apply_circuit(
        self, circuit: Circuit, *, engine: str = "inplace"
    ) -> "BatchedStatevector":
        """Run one circuit on every row.

        ``engine="fused"`` merges adjacent gates into dense unitary
        blocks first (:mod:`repro.compiler.fusion`); the other engines
        apply gate by gate (all equivalent at this granularity, and the
        per-gate kernels already broadcast over the batch axis).
        """
        check_engine(engine)
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        if engine == "fused":
            if not self.backend.supports_inplace_kernels:
                raise ValueError(
                    f"engine='fused' requires in-place kernel support, "
                    f"which backend {self.backend.name!r} does not provide"
                )
            from repro.compiler.fusion import fuse_circuit

            fuse_circuit(circuit).apply(self.states)
            return self
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    def evolve(
        self, paulis: Sequence[PauliString], angles: np.ndarray
    ) -> "BatchedStatevector":
        """Apply ``prod_k exp(i angles[:, k] P_k)`` -- one angle per row.

        ``angles`` has shape ``(batch_size, len(paulis))``; a 1-D vector
        of shared angles is broadcast to every row.

        The kernel is tuned for memory-bound batches: per term it runs
        one XOR gather (memoized indices), one cached-parity-sign
        multiply, and one fused BLAS ``axpy`` per row.  The
        ``cos(theta)`` row scalings are deferred into a per-row running
        product (``exp(i a P) = cos(a) (1 + i tan(a) P)``) folded back
        in a single pass at the end (or mid-evolution before the
        unnormalized amplitudes could overflow), except for angles near
        ``pi/2`` where ``tan`` degrades and the exact two-scaling update
        is used for that term.
        """
        angles = np.asarray(angles, dtype=float)
        if angles.ndim == 1:
            angles = np.broadcast_to(angles, (self.batch_size, angles.shape[0]))
        if angles.shape != (self.batch_size, len(paulis)):
            raise ValueError(
                f"angles must have shape {(self.batch_size, len(paulis))}, "
                f"got {angles.shape}"
            )
        if not self.backend.supports_inplace_kernels:
            return self._evolve_generic(paulis, angles)
        backend = self.backend
        states = self.states
        rows = self.batch_size
        n = self.num_qubits
        buf = self._get_buffer()
        cosines = np.cos(angles)
        sines = np.sin(angles)
        # Columns where every |cos| clears the guard take the deferred
        # (tan) form; the rest take the exact two-scaling update.
        deferrable = np.min(np.abs(cosines), axis=0) > _TAN_GUARD
        scale = np.ones(rows)
        deferred = False
        for position, pauli in enumerate(paulis):
            if pauli.is_identity():
                states *= np.exp(1j * angles[:, position])[:, None]
                continue
            cos_col = cosines[:, position]
            sin_col = sines[:, position]
            if pauli.x:
                backend.take_into(states, cached_xor_indices(n, pauli.x), buf)
            else:
                backend.copyto(buf, states)
            buf *= cached_parity_signs(n, pauli.z)
            factor = 1j * pauli_sign_factor(pauli)
            if deferrable[position]:
                coefficients = factor * sin_col / cos_col
                for k in range(rows):  # st_k += (i f tan a_k) P~ st_k (BLAS)
                    backend.axpy(buf[k], states[k], coefficients[k])
                scale *= cos_col
                deferred = True
                if np.min(np.abs(scale)) < _SCALE_REFOLD:
                    # Long programs can grow the unnormalized amplitudes
                    # toward overflow; fold the running product back in
                    # before it (or its inverse) leaves float range.
                    states *= scale[:, None]
                    scale[:] = 1.0
            else:
                states *= cos_col[:, None]
                buf *= (factor * sin_col)[:, None]
                states += buf
        if deferred:
            states *= scale[:, None]
        return self

    def _evolve_generic(
        self, paulis: Sequence[PauliString], angles: np.ndarray
    ) -> "BatchedStatevector":
        """Out-of-place ``evolve`` through backend hooks (CuPy/torch).

        One gather + two scaled adds per term, every factor applied in
        its exact two-scaling form (no deferred-cosine bookkeeping --
        the fused-BLAS trick it feeds is numpy-specific, and keeping the
        generic path normalized term by term is simpler and just as
        parallel on an accelerator).
        """
        backend = self.backend
        states = self.states
        n = self.num_qubits
        cosines = np.cos(angles)
        sines = np.sin(angles)
        for position, pauli in enumerate(paulis):
            if pauli.is_identity():
                states = states * backend.asarray(
                    np.exp(1j * angles[:, position])[:, None],
                    dtype=backend.complex_dtype,
                )
                continue
            if pauli.x:
                permuted = backend.take(
                    states, cached_xor_indices(n, pauli.x), axis=-1
                )
            else:
                permuted = states
            permuted = permuted * self._signs_on_device(pauli.z)
            factor = 1j * pauli_sign_factor(pauli)
            cos_col = backend.asarray(
                np.ascontiguousarray(cosines[:, position])[:, None].astype(complex),
                dtype=backend.complex_dtype,
            )
            sin_col = backend.asarray(
                (factor * sines[:, position])[:, None],
                dtype=backend.complex_dtype,
            )
            states = states * cos_col + permuted * sin_col
        self.states = backend.ascontiguous(states)
        return self

    def _signs_on_device(self, z_mask: int) -> Any:
        """The memoized parity-sign row moved onto the backend (cached)."""
        cached = self._device_signs.get(z_mask)
        if cached is None:
            cached = self.backend.asarray(
                cached_parity_signs(self.num_qubits, z_mask),
                dtype=self.backend.float_dtype,
            )
            self._device_signs[z_mask] = cached
        return cached

    def _get_buffer(self) -> Any:
        if self._buffer is None or tuple(self._buffer.shape) != tuple(self.states.shape):
            self._buffer = self.backend.empty_like(self.states)
        return self._buffer

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Per-row probability vectors, shape ``(K, 2**n)`` (host numpy)."""
        return np.abs(self.backend.to_numpy(self.states)) ** 2

    def norms(self) -> np.ndarray:
        """Per-row state norms (should all be ~1 after unitary evolution)."""
        return np.linalg.norm(self.backend.to_numpy(self.states), axis=1)

    def expectations(self, engine: ExpectationEngine) -> np.ndarray:
        """Per-row ``<psi|H|psi>`` through an :class:`ExpectationEngine`."""
        return engine.values(self.states)

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:
        return (
            f"BatchedStatevector(num_qubits={self.num_qubits}, "
            f"batch_size={self.batch_size})"
        )


# ----------------------------------------------------------------------
# Blocked parameter sweeps (the VQE fast path)
# ----------------------------------------------------------------------
def real_evolution_compatible(paulis: Sequence[PauliString]) -> bool:
    """True when every ``exp(i theta c P)`` factor is real orthogonal.

    A Pauli string with an odd Y count satisfies ``P = i R`` with ``R``
    real antisymmetric, so its exponential ``exp(-theta c R)`` is real
    orthogonal; starting from a real reference the whole evolution then
    stays in real arithmetic (float64 -- half the memory traffic of
    complex128).  Jordan-Wigner UCCSD programs qualify: every string of
    an anti-Hermitian excitation ``T - T^dag`` carries an odd number of
    Ys.
    """
    return all(pauli.y_count() % 2 == 1 for pauli in paulis)


def _sweep_block_real(
    paulis: Sequence[PauliString],
    angles: np.ndarray,
    states: np.ndarray,
    buf: np.ndarray,
) -> np.ndarray:
    """Evolve a real float64 ``(B, dim)`` block; returns per-row scales.

    Per term: one gather, one sign multiply, one fused DAXPY per row --
    with the ``cos`` normalizations deferred into the returned scale.
    ``i P = (-1)**((#Y + 1) / 2) * signs(z) . perm_x`` is entirely real.
    """
    rows = states.shape[0]
    n = paulis[0].num_qubits if paulis else 0
    cosines = np.cos(angles)
    tangents = np.tan(angles)
    deferrable = np.min(np.abs(cosines), axis=0) > _TAN_GUARD
    scale = np.ones(rows)
    for position, pauli in enumerate(paulis):
        # i * P = i * (-i)**#Y * signs(z) . perm_x = +-1 * signs . perm_x:
        # +1 when #Y % 4 == 1, -1 when #Y % 4 == 3.
        factor = 1.0 if pauli.y_count() % 4 == 1 else -1.0
        if pauli.x:
            np.take(states, cached_xor_indices(n, pauli.x), axis=-1, out=buf)
        else:
            np.copyto(buf, states)
        buf *= cached_parity_signs(n, pauli.z)
        if deferrable[position]:
            coefficients = factor * tangents[:, position]
            for k in range(rows):
                _daxpy(buf[k], states[k], a=coefficients[k])
            scale *= cosines[:, position]
            if np.min(np.abs(scale)) < _SCALE_REFOLD:
                states *= scale[:, None]  # refold before amplitudes overflow
                scale[:] = 1.0
        else:
            sin_col = np.sin(angles[:, position])
            states *= cosines[:, position][:, None]
            buf *= (factor * sin_col)[:, None]
            states += buf
    return scale


def sweep_expectations(
    paulis: Sequence[PauliString],
    angle_matrix: np.ndarray,
    reference: np.ndarray,
    engine: ExpectationEngine,
    block_size: int = 8,
    *,
    backend: "str | ArrayBackend | None" = None,
) -> np.ndarray:
    """Blocked batched energies for K bound-angle rows, shape ``(K,)``.

    Splits the sweep into cache-sized blocks (``block_size`` rows keep
    state plus scratch inside L2, where the vectorized kernels earn
    their keep -- bigger stacks go memory-bound), evolves each block
    per gate in one vectorized call, and reads all block energies
    through ``engine`` (:class:`repro.sim.expectation.ExpectationEngine`).
    Programs whose factors are real orthogonal
    (:func:`real_evolution_compatible`) and whose reference is real run
    the whole evolution in float64 -- but only on backends advertising
    :attr:`~repro.sim.backend.ArrayBackend.supports_real_orthogonal`
    (the path leans on fused CPU BLAS row updates; CuPy/torch opt out
    through the capability flag and take the complex batched path).
    """
    resolved = get_array_backend(backend)
    angle_matrix = np.asarray(angle_matrix, dtype=float)
    total = angle_matrix.shape[0]
    if total == 0:
        return np.zeros(0)
    reference_host = np.asarray(resolved.to_numpy(reference))
    use_real = (
        resolved.supports_real_orthogonal
        and real_evolution_compatible(paulis)
        and np.allclose(reference_host.imag, 0.0)
    )
    block = min(block_size, total)
    energies = np.empty(total)
    if use_real:
        states = np.empty((block, reference_host.shape[0]), dtype=float)
        buf = np.empty_like(states)
        reference = reference_host.real
    else:
        batch = BatchedStatevector.broadcast(reference_host, block, backend=resolved)
        reference_device = resolved.asarray(
            reference_host, dtype=resolved.complex_dtype
        )
    for start in range(0, total, block):
        stop = min(start + block, total)
        angles = angle_matrix[start:stop]
        if stop - start < block:  # ragged tail: pad, evolve, discard
            angles = np.vstack(
                [angles, np.zeros((block - (stop - start), angles.shape[1]))]
            )
        if use_real:
            states[...] = reference
            scales = _sweep_block_real(paulis, angles, states, buf)
            values = engine.values_real(states) * scales**2
        else:
            resolved.copyto(batch.states, reference_device)
            batch.evolve(paulis, angles)
            values = batch.expectations(engine)
        energies[start:stop] = values[: stop - start]
    return energies
