"""Array-API backend dispatch: one namespace object per tensor library.

Every engine in :mod:`repro.sim` used to hardcode NumPy.  Following
qibo's swappable-backend design, this module routes the tensor
operations the hot paths actually use through one
:class:`ArrayBackend` object -- an array namespace (``xp``), a dtype
policy, a handful of performance-critical hooks (``asarray``,
``einsum``, ``take``, ``axpy``), and capability flags the engines
consult instead of assuming NumPy semantics.

Backends register by name:

* ``"numpy"`` -- the default, always available; its hooks are the exact
  kernels the engines called before dispatch existed (``axpy`` is the
  fused scipy BLAS ``zaxpy``/``daxpy``), so selecting it changes
  nothing, byte for byte.
* ``"cupy"`` / ``"torch"`` -- auto-registered **only when the library
  imports**.  They advertise ``supports_real_orthogonal = False`` so
  the float64 real-orthogonal sweep fast path (a NumPy/BLAS-specific
  optimization, see :func:`repro.sim.batched.sweep_expectations`) is
  skipped cleanly, and ``supports_inplace_kernels = False`` so gate
  application falls back to the out-of-place tensor-contraction path,
  which their namespaces execute natively (on GPU for CuPy / CUDA
  torch).

Select a backend with the ``backend=`` knob on the simulator classes
(:class:`~repro.sim.statevector.StatevectorSimulator`,
:class:`~repro.sim.batched.BatchedStatevector`,
:class:`~repro.sim.trajectory.TrajectorySimulator`,
:class:`~repro.sim.expectation.ExpectationEngine`) or the
``array_backend=`` knob at the VQE/pipeline level
(:class:`repro.vqe.runner.VQE`, :func:`repro.vqe.scan.bond_scan`,
:class:`repro.core.passes.Energy`,
:class:`repro.core.passes.PipelineConfig`) -- the latter name avoids
colliding with the pre-existing *energy*-backend knob.  An unknown name
raises a :class:`ValueError` listing what is actually registered in
this process.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class ArrayBackend:
    """One tensor library behind a uniform namespace + hook surface.

    Subclasses set :attr:`xp` (the array namespace), the dtype policy,
    and the capability flags, and override the hooks whose generic
    implementation (written against the NumPy API) does not apply.
    Instances are stateless and shared process-wide through the
    registry; treat them as immutable.
    """

    #: Registry name (``backend.name`` round-trips through
    #: :func:`get_array_backend`).
    name: str = "abstract"

    #: The array namespace (``numpy``, ``cupy``, ``torch``...).
    xp: Any = None

    #: Dtype policy: every statevector is ``complex_dtype``; the
    #: real-orthogonal sweep (when supported) runs in ``float_dtype``.
    complex_dtype: Any = None
    float_dtype: Any = None

    #: True when the backend can run the float64 real-orthogonal UCCSD
    #: sweep fast path (odd-#Y programs evolve as real orthogonal
    #: matrices; see ``docs/performance.md``).  NumPy-only today: the
    #: path leans on fused BLAS DAXPY row updates.
    supports_real_orthogonal: bool = False

    #: True when the backend's arrays accept the in-place index-slice
    #: gate kernels of :mod:`repro.sim.statevector` (C-contiguous
    #: complex128 ndarray semantics).  Backends without it get the
    #: out-of-place tensor-contraction gate path.
    supports_inplace_kernels: bool = False

    # ------------------------------------------------------------------
    # Array creation / movement
    # ------------------------------------------------------------------
    def asarray(self, array: Any, dtype: Any = None) -> Any:
        """Bring ``array`` onto this backend (no copy when already there)."""
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        """Materialize a backend array as a host NumPy array."""
        return np.asarray(array)

    def zeros(self, shape: Sequence[int] | int, dtype: Any = None) -> Any:
        return self.xp.zeros(shape, dtype=dtype or self.complex_dtype)

    def empty_like(self, array: Any) -> Any:
        return self.xp.empty_like(array)

    def copyto(self, destination: Any, source: Any) -> None:
        """``destination[...] = source`` without allocating."""
        destination[...] = source

    # ------------------------------------------------------------------
    # Hot-path hooks
    # ------------------------------------------------------------------
    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return self.xp.einsum(subscripts, *operands)

    def take(self, array: Any, indices: Any, axis: int) -> Any:
        """Gather along ``axis`` (the XOR-permutation read)."""
        return self.xp.take(array, indices, axis=axis)

    def take_into(self, array: Any, indices: Any, out: Any) -> Any:
        """Gather along the last axis into a preallocated buffer."""
        out[...] = self.take(array, indices, axis=-1)
        return out

    def axpy(self, x: Any, y: Any, a: Any) -> Any:
        """``y += a * x`` in place (BLAS argument order); returns ``y``."""
        y += a * x
        return y

    def conjugate(self, array: Any) -> Any:
        return self.xp.conjugate(array)

    def matmul(self, a: Any, b: Any) -> Any:
        return self.xp.matmul(a, b)

    def tensordot(self, a: Any, b: Any, axes: Any) -> Any:
        return self.xp.tensordot(a, b, axes=axes)

    def moveaxis(self, array: Any, source: Any, destination: Any) -> Any:
        return self.xp.moveaxis(array, source, destination)

    def ascontiguous(self, array: Any) -> Any:
        return self.xp.ascontiguousarray(array)

    def real(self, array: Any) -> Any:
        return array.real

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(ArrayBackend):
    """The default backend: plain NumPy plus the fused scipy BLAS axpy.

    Selecting it reproduces the pre-dispatch engines exactly -- every
    hook is the call the hot paths made before the abstraction existed.
    """

    name = "numpy"
    xp = np
    complex_dtype = np.complex128
    float_dtype = np.float64
    supports_real_orthogonal = True
    supports_inplace_kernels = True

    def asarray(self, array: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def take_into(self, array: np.ndarray, indices: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.take(array, indices, axis=-1, out=out)
        return out

    def axpy(self, x: np.ndarray, y: np.ndarray, a: Any) -> np.ndarray:
        # Fused BLAS y += a*x: one pass over memory instead of the
        # temporary + add of the generic expression.
        from scipy.linalg.blas import daxpy, zaxpy

        if y.dtype == np.float64:
            daxpy(x, y, a=a)
        else:
            zaxpy(x, y, a=a)
        return y


class CupyBackend(ArrayBackend):
    """CuPy (GPU) backend; registered only when ``cupy`` imports.

    CuPy mirrors the NumPy API closely, so only array movement differs.
    The real-orthogonal sweep stays off (it is a CPU-BLAS-shaped
    optimization); complex GEMM/gather throughput is what a GPU is for.
    """

    name = "cupy"
    supports_real_orthogonal = False
    supports_inplace_kernels = False

    def __init__(self, cupy_module: Any) -> None:
        self.xp = cupy_module
        self.complex_dtype = cupy_module.complex128
        self.float_dtype = cupy_module.float64

    def to_numpy(self, array: Any) -> np.ndarray:
        return self.xp.asnumpy(array)

    def take_into(self, array: Any, indices: Any, out: Any) -> Any:
        self.xp.take(array, indices, axis=-1, out=out)
        return out


class TorchBackend(ArrayBackend):
    """PyTorch backend; registered only when ``torch`` imports.

    Runs on CPU by default (pass ``device=`` for CUDA).  Hooks bridge
    the API gaps: ``take`` maps to ``index_select``, contiguity to
    ``.contiguous()``, and host round-trips detach before converting.
    """

    name = "torch"
    supports_real_orthogonal = False
    supports_inplace_kernels = False

    def __init__(self, torch_module: Any, device: str = "cpu") -> None:
        self.xp = torch_module
        self.device = device
        self.complex_dtype = torch_module.complex128
        self.float_dtype = torch_module.float64

    def asarray(self, array: Any, dtype: Any = None) -> Any:
        torch = self.xp
        if isinstance(array, torch.Tensor):
            return array.to(dtype=dtype, device=self.device) if dtype else array
        return torch.as_tensor(
            np.asarray(array), dtype=dtype, device=self.device
        )

    def to_numpy(self, array: Any) -> np.ndarray:
        if isinstance(array, self.xp.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def zeros(self, shape: Sequence[int] | int, dtype: Any = None) -> Any:
        if isinstance(shape, int):
            shape = (shape,)
        return self.xp.zeros(
            tuple(shape), dtype=dtype or self.complex_dtype, device=self.device
        )

    def copyto(self, destination: Any, source: Any) -> None:
        destination.copy_(source)

    def take(self, array: Any, indices: Any, axis: int) -> Any:
        return self.xp.index_select(
            array, axis, self.asarray(indices, dtype=self.xp.long)
        )

    def take_into(self, array: Any, indices: Any, out: Any) -> Any:
        out.copy_(self.take(array, indices, axis=-1))
        return out

    def tensordot(self, a: Any, b: Any, axes: Any) -> Any:
        return self.xp.tensordot(a, b, dims=axes)

    def moveaxis(self, array: Any, source: Any, destination: Any) -> Any:
        return self.xp.movedim(array, source, destination)

    def ascontiguous(self, array: Any) -> Any:
        return array.contiguous()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ARRAY_BACKENDS: dict[str, ArrayBackend] = {}


def register_array_backend(
    backend: ArrayBackend, *, overwrite: bool = False
) -> None:
    """Register ``backend`` under ``backend.name``."""
    if backend.name in _ARRAY_BACKENDS and not overwrite:
        raise ValueError(f"array backend {backend.name!r} already registered")
    _ARRAY_BACKENDS[backend.name] = backend


def available_array_backends() -> list[str]:
    """Names of the backends importable in this process, sorted."""
    return sorted(_ARRAY_BACKENDS)


def get_array_backend(backend: "str | ArrayBackend | None") -> ArrayBackend:
    """Resolve a ``backend=`` knob into an :class:`ArrayBackend`.

    Accepts a registered name, an :class:`ArrayBackend` instance
    (returned as-is), or ``None`` (the NumPy default).  An unknown name
    raises a :class:`ValueError` that lists the backends actually
    available here, so ``backend="cupy"`` on a box without CuPy fails
    with the fix in the message instead of an ImportError five frames
    deep.
    """
    if backend is None:
        return _ARRAY_BACKENDS["numpy"]
    if isinstance(backend, ArrayBackend):
        return backend
    try:
        return _ARRAY_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown array backend {backend!r}; available backends: "
            f"{', '.join(available_array_backends())} "
            "(cupy/torch register automatically when importable)"
        ) from None


def _register_optional_backends() -> None:
    """Auto-register CuPy/torch when (and only when) they import."""
    try:  # pragma: no cover - exercised only where cupy is installed
        import cupy  # type: ignore[import-not-found]

        register_array_backend(CupyBackend(cupy))
    except Exception:  # noqa: BLE001 - any import failure means "absent"
        pass
    try:  # pragma: no cover - exercised only where torch is installed
        import torch  # type: ignore[import-not-found]

        register_array_backend(TorchBackend(torch))
    except Exception:  # noqa: BLE001
        pass


register_array_backend(NumpyBackend())
_register_optional_backends()

#: The always-available default backend instance.
NUMPY_BACKEND: ArrayBackend = get_array_backend("numpy")
