"""Beyond chemistry: the Fermi-Hubbard model on the same stack (Section VII).

The paper's discussion section argues the Pauli-string-centric principle
carries over to condensed-matter models.  This example builds a 1D
Hubbard chain, constructs a UCCSD-style ansatz over its sites with the
same excitation machinery, compresses it against the Hubbard Hamiltonian
and compiles it to an X-Tree -- no chemistry-specific code involved.

Run:  python examples/hubbard_model.py
"""

import numpy as np

from repro.ansatz.excitations import generate_excitations
from repro.chem.hubbard import hubbard_hamiltonian
from repro.chem.jordan_wigner import jordan_wigner
from repro.compiler import MergeToRootCompiler
from repro.core import compress_ansatz
from repro.core.ir import IRTerm, PauliProgram
from repro.hardware import xtree
from repro.sim import ground_state_energy
from repro.vqe import VQE


def hubbard_ansatz(num_sites: int, num_up: int, num_down: int) -> PauliProgram:
    """UCCSD-style ansatz over Hubbard sites (blocked spin ordering)."""
    num_qubits = 2 * num_sites
    terms = []
    excitations = generate_excitations(num_sites, num_up, num_down)
    for parameter, excitation in enumerate(excitations):
        generator = jordan_wigner(excitation.generator(), num_qubits)
        for coefficient, pauli in generator:
            terms.append(IRTerm(pauli, float(coefficient.imag), parameter))
    occupations = list(range(num_up)) + [num_sites + i for i in range(num_down)]
    return PauliProgram(num_qubits, len(excitations), terms, occupations)


def main() -> None:
    num_sites, tunneling, interaction = 3, 1.0, 4.0
    hamiltonian = hubbard_hamiltonian(num_sites, tunneling, interaction)
    exact = ground_state_energy(hamiltonian)
    print(
        f"1D Hubbard chain: {num_sites} sites, t={tunneling}, U={interaction} "
        f"-> {hamiltonian.num_qubits} qubits, {len(hamiltonian)} Pauli terms"
    )
    print(f"global ground-state energy: {exact:.6f}\n")

    program = hubbard_ansatz(num_sites, num_up=1, num_down=1)
    print(
        f"ansatz: {program.num_parameters} parameters, {len(program)} Pauli "
        f"strings, {program.cnot_count()} CNOTs (chain synthesis)"
    )

    # The Hubbard Hartree-Fock point is a gradient saddle for the double
    # excitations, so start from a small symmetric-breaking perturbation.
    print(f"\n{'config':>8} {'params':>7} {'E':>10} {'iters':>6}")
    for label, ratio in [("full", 1.0), ("50%", 0.5)]:
        compressed = compress_ansatz(program, hamiltonian, ratio)
        initial = np.full(compressed.num_parameters, 0.05)
        outcome = VQE(compressed.program, hamiltonian).run(initial=initial)
        print(
            f"{label:>8} {compressed.num_parameters:7d} "
            f"{outcome.energy:10.6f} {outcome.iterations:6d}"
        )

    device = xtree(8)
    compiled = MergeToRootCompiler(device).compile(program)
    print(
        f"\ncompiled to {device.name}: {compiled.total_cnots} CNOTs, "
        f"{compiled.num_swaps} routing swaps "
        f"({compiled.overhead_cnots} overhead CNOTs)"
    )

    # VQE conserves particle number, so compare within the 2-particle sector.
    matrix = hamiltonian.to_matrix()
    values, vectors = np.linalg.eigh(matrix)
    particle_numbers = np.array([bin(i).count("1") for i in range(matrix.shape[0])])
    sector_energy = min(
        value
        for value, vector in zip(values, vectors.T)
        if abs(np.dot(np.abs(vector) ** 2, particle_numbers) - 2.0) < 1e-8
    )
    vqe_energy = VQE(program, hamiltonian).run().energy
    print(
        f"2-particle sector: exact {sector_energy:.6f}, VQE {vqe_energy:.6f}, "
        f"error {vqe_energy - sector_energy:+.2e}"
    )


if __name__ == "__main__":
    main()
