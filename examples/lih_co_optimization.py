"""The full Pauli-string-centric co-optimization flow on LiH (Figure 1).

Walks through all three contributions on one molecule:

1. ansatz compression (parameter importance, several ratios);
2. the X-Tree target architecture vs. the Grid17Q baseline;
3. hierarchical initial layout + Merge-to-Root compilation, compared
   against chain synthesis + SABRE.

Run:  python examples/lih_co_optimization.py
"""

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.compiler import mapping_overhead
from repro.core import co_optimize, compress_ansatz, random_ansatz
from repro.hardware import grid17q, xtree
from repro.sim import ground_state_energy
from repro.vqe import VQE


def main() -> None:
    problem = build_molecule_hamiltonian("LiH")
    ansatz = build_uccsd_program(problem)
    exact = ground_state_energy(problem.hamiltonian)
    print(f"LiH @ {problem.molecule.bond_length} A: {problem.num_qubits} qubits, "
          f"{len(problem.hamiltonian)} Hamiltonian terms, "
          f"{ansatz.num_parameters} UCCSD parameters, "
          f"{ansatz.num_pauli_strings} Pauli strings")
    print(f"exact ground state: {exact:.6f} Ha,  Hartree-Fock: {problem.hf_energy:.6f} Ha\n")

    # ------------------------------------------------------------------
    # Contribution 1: ansatz compression.
    # ------------------------------------------------------------------
    print("== ansatz compression ==")
    print(f"{'config':>9} {'params':>7} {'CNOTs':>6} {'E (Ha)':>12} {'E-E0 (mHa)':>11} {'iters':>6}")
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        compressed = compress_ansatz(ansatz.program, problem.hamiltonian, ratio)
        outcome = VQE(compressed.program, problem.hamiltonian).run()
        print(
            f"{ratio:9.0%} {compressed.num_parameters:7d} "
            f"{compressed.program.cnot_count():6d} {outcome.energy:12.6f} "
            f"{(outcome.energy - exact) * 1e3:11.3f} {outcome.iterations:6d}"
        )
    randomized = random_ansatz(ansatz.program, 0.5, seed=1)
    outcome = VQE(randomized.program, problem.hamiltonian).run()
    print(
        f"{'rand 50%':>9} {randomized.num_parameters:7d} "
        f"{randomized.program.cnot_count():6d} {outcome.energy:12.6f} "
        f"{(outcome.energy - exact) * 1e3:11.3f} {outcome.iterations:6d}"
    )

    # ------------------------------------------------------------------
    # Contributions 2 + 3: architecture and compiler.
    # ------------------------------------------------------------------
    print("\n== compilation to hardware (50% ansatz) ==")
    compressed = compress_ansatz(ansatz.program, problem.hamiltonian, 0.5)
    reports = mapping_overhead(compressed.program, xtree(17), grid17q())
    for key, report in reports.items():
        print(
            f"{report.flow:>6} on {report.device:<9}: "
            f"{report.original_cnots} original CNOTs "
            f"+ {report.overhead_cnots} overhead ({report.num_swaps} swaps, "
            f"{report.overhead_ratio:.1%})"
        )

    # ------------------------------------------------------------------
    # One-call pipeline.
    # ------------------------------------------------------------------
    print("\n== one-call co_optimize ==")
    result = co_optimize("LiH", ratio=0.5)
    print(result.summary())
    print(f"initial layout (logical -> physical): {result.compiled.initial_layout}")


if __name__ == "__main__":
    main()
