"""The full Pauli-string-centric co-optimization flow on LiH (Figure 1).

Walks through all three contributions on one molecule, phrased entirely
against the composable ``Pipeline`` API:

1. ansatz compression (parameter importance, several ratios) as a
   ``run_batch`` sweep with an appended ``Energy`` stage;
2. the X-Tree target architecture vs. the Grid17Q baseline, resolved by
   name through the device registry;
3. hierarchical initial layout + Merge-to-Root compilation, compared
   against chain synthesis + SABRE by swapping the compiler name.

Run:  python examples/lih_co_optimization.py
"""

import json

from repro import Pipeline, PipelineConfig, run_batch
from repro.core import BuildAnsatz, BuildProblem, Energy, random_ansatz
from repro.vqe import VQE


def main() -> None:
    # A truncated pipeline stages just the problem/ansatz for the header.
    staged = Pipeline(
        PipelineConfig(molecule="LiH"), passes=[BuildProblem(), BuildAnsatz()]
    ).run()
    problem, ansatz = staged.problem, staged.full_ansatz
    print(f"LiH @ {problem.molecule.bond_length} A: {problem.num_qubits} qubits, "
          f"{len(problem.hamiltonian)} Hamiltonian terms, "
          f"{ansatz.num_parameters} UCCSD parameters, "
          f"{ansatz.num_pauli_strings} Pauli strings")

    # ------------------------------------------------------------------
    # Contribution 1: ansatz compression (batch sweep over ratios).
    # ------------------------------------------------------------------
    print("\n== ansatz compression ==")
    print(f"{'config':>9} {'params':>7} {'CNOTs':>6} {'E (Ha)':>12} {'E-E0 (mHa)':>11} {'iters':>6}")
    ratios = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    results = run_batch(
        [PipelineConfig(molecule="LiH", ratio=ratio) for ratio in ratios],
        pipeline_factory=lambda config: Pipeline(config).appending(Energy()),
    )
    for ratio, result in zip(ratios, results):
        m = result.metrics
        print(
            f"{ratio:9.0%} {m['num_parameters']:7d} {m['original_cnots']:6d} "
            f"{m['energy']:12.6f} {m['energy_error'] * 1e3:11.3f} "
            f"{m['iterations']:6d}"
        )
    exact = results[0].metrics["exact_energy"]
    print(f"exact ground state: {exact:.6f} Ha,  "
          f"Hartree-Fock: {problem.hf_energy:.6f} Ha")

    randomized = random_ansatz(ansatz.program, 0.5, seed=1)
    outcome = VQE(randomized.program, problem.hamiltonian).run()
    print(
        f"{'rand 50%':>9} {randomized.num_parameters:7d} "
        f"{randomized.program.cnot_count():6d} {outcome.energy:12.6f} "
        f"{(outcome.energy - exact) * 1e3:11.3f} {outcome.iterations:6d}"
    )

    # ------------------------------------------------------------------
    # Contributions 2 + 3: swap device and compiler by registry name.
    # ------------------------------------------------------------------
    print("\n== compilation to hardware (50% ansatz) ==")
    flows = [("mtr", "xtree17"), ("sabre", "xtree17"), ("sabre", "grid17")]
    for compiler, device in flows:
        result = Pipeline(
            PipelineConfig(molecule="LiH", ratio=0.5, compiler=compiler, device=device)
        ).run()
        m = result.metrics
        overhead_ratio = m["overhead_cnots"] / m["original_cnots"]
        print(
            f"{compiler:>6} on {m['device']:<9}: "
            f"{m['original_cnots']} original CNOTs "
            f"+ {m['overhead_cnots']} overhead ({m['num_swaps']} swaps, "
            f"{overhead_ratio:.1%})"
        )

    # ------------------------------------------------------------------
    # One-call pipeline + serializable record.
    # ------------------------------------------------------------------
    print("\n== default pipeline ==")
    result = Pipeline(PipelineConfig(molecule="LiH", ratio=0.5)).run()
    print(result.summary())
    print(f"initial layout (logical -> physical): {result.compiled.initial_layout}")
    print("\nJSON record (diff-able across runs):")
    print(json.dumps(result.to_dict()["metrics"], indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
