"""Quickstart: QAOA MaxCut through the same co-optimization pipeline.

Builds a seeded Erdos-Renyi MaxCut instance from the problem registry,
lowers it into a p-layer QAOA Pauli program, compiles it with both
flows (Merge-to-Root and SABRE) on an exact-fit XTree, and then scans a
small (gamma, beta) angle grid with the exact statevector engine to
show the expected cut climbing above the random-guessing baseline.

Run:  PYTHONPATH=src python examples/qaoa_maxcut.py
"""

import itertools

import numpy as np

from repro.ansatz import build_qaoa_ansatz
from repro.core import Pipeline, PipelineConfig
from repro.problems import get_problem
from repro.sim import ExpectationEngine, basis_state
from repro.sim.pauli_evolution import evolve_pauli_sequence

SPEC = "maxcut:er-8-5"
LAYERS = 2


def main() -> None:
    problem = get_problem(SPEC)
    graph = problem.graph
    print(f"{SPEC}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # -- compile with both flows ------------------------------------
    for compiler in ("mtr", "sabre"):
        result = Pipeline(
            PipelineConfig(
                problem=SPEC, qaoa_layers=LAYERS, device="xtree8", compiler=compiler
            )
        ).run()
        m = result.metrics
        print(
            f"  {compiler:>5}: {m['total_cnots']} CNOTs "
            f"({m['overhead_cnots']} routing overhead), "
            f"scheduled depth {m['scheduled_depth']}"
        )

    # -- evaluate the ansatz on a small angle grid ------------------
    ansatz = build_qaoa_ansatz(problem.hamiltonian, LAYERS)
    engine = ExpectationEngine(problem.hamiltonian)

    def expected_cut(gammas: list, betas: list) -> float:
        params = ansatz.parameters(gammas, betas)
        state = basis_state(ansatz.num_qubits, 0)
        state = evolve_pauli_sequence(ansatz.program.bound_terms(params), state)
        return float(engine.value(state))

    baseline = expected_cut([0.0] * LAYERS, [0.0] * LAYERS)
    print(f"\nuniform-superposition baseline: <cut> = {baseline:.3f} "
          f"(= |E|/2 = {graph.num_edges / 2})")

    angles = np.linspace(0.2, 1.1, 4)
    best = max(
        (expected_cut(list(gs), list(bs)), gs, bs)
        for gs in itertools.product(angles, repeat=LAYERS)
        for bs in itertools.product(angles, repeat=LAYERS)
    )
    value, gammas, betas = best
    print(f"best grid point: <cut> = {value:.3f} at gamma={np.round(gammas, 2)}, "
          f"beta={np.round(betas, 2)}")
    assert value > baseline, "QAOA should beat random guessing"


if __name__ == "__main__":
    main()
