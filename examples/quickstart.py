"""Quickstart: simulate the H2 molecule end to end.

Reproduces the introductory experiment of the paper's Figure 3: build the
STO-3G Hamiltonian of molecular hydrogen at several bond lengths, run VQE
with the full UCCSD ansatz, and locate the equilibrium geometry (the
energy minimum, experimentally at ~0.74 Angstrom).

Run:  python examples/quickstart.py
"""

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.sim import ground_state_energy
from repro.vqe import VQE


def main() -> None:
    print("H2 dissociation curve (STO-3G, Jordan-Wigner, UCCSD + SLSQP)")
    print(f"{'bond (A)':>9} {'VQE (Ha)':>12} {'exact (Ha)':>12} {'HF (Ha)':>12} {'iters':>6}")

    bond_lengths = [0.4, 0.5, 0.6, 0.7, 0.735, 0.8, 0.9, 1.1, 1.4, 1.8]
    best = None
    for bond_length in bond_lengths:
        problem = build_molecule_hamiltonian("H2", bond_length)
        ansatz = build_uccsd_program(problem)
        result = VQE(ansatz.program, problem.hamiltonian).run()
        exact = ground_state_energy(problem.hamiltonian)
        print(
            f"{bond_length:9.3f} {result.energy:12.6f} {exact:12.6f} "
            f"{problem.hf_energy:12.6f} {result.iterations:6d}"
        )
        if best is None or result.energy < best[1]:
            best = (bond_length, result.energy)

    bond, energy = best
    print(f"\nminimum: E = {energy:.6f} Hartree at {bond:.3f} Angstrom "
          "(experiment: ~0.74 A)")


if __name__ == "__main__":
    main()
