"""Quickstart: simulate the H2 molecule end to end with the Pipeline API.

Reproduces the introductory experiment of the paper's Figure 3: build the
STO-3G Hamiltonian of molecular hydrogen at several bond lengths, run VQE
with the full UCCSD ansatz, and locate the equilibrium geometry (the
energy minimum, experimentally at ~0.74 Angstrom).

Each bond length is one ``PipelineConfig``; ``run_batch`` fans the whole
scan out over a thread pool, and an appended ``Energy`` stage turns the
compile pipeline into a VQE workload.

Run:  python examples/quickstart.py
"""

from repro import Pipeline, PipelineConfig, run_batch
from repro.core import Energy


def main() -> None:
    print("H2 dissociation curve (STO-3G, Jordan-Wigner, UCCSD + SLSQP)")
    print(f"{'bond (A)':>9} {'VQE (Ha)':>12} {'exact (Ha)':>12} {'HF (Ha)':>12} {'iters':>6}")

    bond_lengths = [0.4, 0.5, 0.6, 0.7, 0.735, 0.8, 0.9, 1.1, 1.4, 1.8]
    configs = [
        PipelineConfig(molecule="H2", bond_length=b, ratio=1.0, label=f"H2@{b}A")
        for b in bond_lengths
    ]
    results = run_batch(
        configs,
        pipeline_factory=lambda config: Pipeline(config).appending(Energy()),
    )

    best = None
    for bond_length, result in zip(bond_lengths, results):
        m = result.metrics
        print(
            f"{bond_length:9.3f} {m['energy']:12.6f} {m['exact_energy']:12.6f} "
            f"{m['hf_energy']:12.6f} {m['iterations']:6d}"
        )
        if best is None or m["energy"] < best[1]:
            best = (bond_length, m["energy"])

    bond, energy = best
    print(f"\nminimum: E = {energy:.6f} Hartree at {bond:.3f} Angstrom "
          "(experiment: ~0.74 A)")

    # The same pipeline also compiled each instance for XTree17Q; the
    # minimum-energy point's hardware cost comes along for free.
    equilibrium = results[bond_lengths.index(bond)]
    print(f"compiled at equilibrium: {equilibrium.summary()}")


if __name__ == "__main__":
    main()
