"""Architecture study: X-Tree devices and fabrication yield (Section IV).

Builds the Figure 6 family of X-Trees, compares connection counts with
grid baselines, and runs the Figure 11 yield Monte Carlo.

Run:  python examples/architecture_yield_study.py
"""

from repro.hardware import (
    allocate_frequencies,
    estimate_yield,
    grid17q,
    xtree,
    XTREE_SIZES,
)


def main() -> None:
    print("== X-Tree family (Figure 6) ==")
    for size in XTREE_SIZES:
        tree = xtree(size)
        levels = tree.levels()
        print(
            f"XTree{size}Q: {tree.num_edges} connections, "
            f"max degree {max(tree.degree(q) for q in range(size))}, "
            f"depth {tree.max_level()}, "
            f"qubits per level {[levels.count(k) for k in range(tree.max_level() + 1)]}"
        )

    grid = grid17q()
    tree = xtree(17)
    print(f"\nGrid17Q: {grid.num_edges} connections (paper: 24)")
    print(f"XTree17Q: {tree.num_edges} connections (paper: 16)\n")

    print("== designed frequency allocation (XTree17Q) ==")
    frequencies = allocate_frequencies(tree)
    for level in range(tree.max_level() + 1):
        qubits = [q for q in range(17) if tree.levels()[q] == level]
        values = ", ".join(f"q{q}={frequencies[q]:.2f}" for q in qubits)
        print(f"  level {level}: {values} GHz")

    print("\n== yield sweep (Figure 11) ==")
    print(f"{'precision':>10} {'XTree17Q':>10} {'Grid17Q':>10} {'ratio':>7}")
    for precision in (0.2, 0.3, 0.4, 0.5, 0.6):
        xt = estimate_yield(tree, precision, trials=2000)
        gr = estimate_yield(grid, precision, trials=2000)
        ratio = xt.yield_rate / gr.yield_rate if gr.yield_rate else float("inf")
        print(
            f"{precision:10.2f} {xt.yield_rate:10.4f} {gr.yield_rate:10.4f} "
            f"{ratio:7.1f}"
        )
    print("\n(the paper reports ~8x in favor of the X-Tree)")


if __name__ == "__main__":
    main()
