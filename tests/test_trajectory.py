"""Stochastic Pauli-trajectory engine + noisy-path regression tests.

Covers the ISSUE-5 fixes: the trajectory engine's agreement with the
exact density matrix, seeded determinism, the noise models that used to
be silently discarded now raising, the shared popcount helper, and the
normalization assertion that replaced silent renormalization in the
sampling backend.
"""

import numpy as np
import pytest

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.circuit import Circuit
from repro.circuit.gates import CNOT, H, RX, RZ, SWAP
from repro.core import compress_ansatz
from repro.core.bits import _popcount_swar, popcount
from repro.pauli import PauliSum
from repro.sim import (
    DensityMatrixSimulator,
    DepolarizingNoiseModel,
    StatevectorSimulator,
    TrajectorySimulator,
    apply_circuit,
    trajectory_estimate,
    trajectory_expectations,
)
from repro.sim.trajectory import channel_paulis
from repro.vqe import VQE, TrajectoryEnergy, available_backends
from repro.vqe.energy import DensityMatrixEnergy, SamplingEnergy


@pytest.fixture(scope="module")
def lih():
    problem = build_molecule_hamiltonian("LiH")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.3).program
    return problem, compressed


NOISE = DepolarizingNoiseModel(two_qubit_error=0.02)

OBSERVABLE = PauliSum.from_label_dict(
    {"ZZI": 1.0, "IXX": 0.5, "ZIZ": -0.7, "YIY": 0.25}
)

CIRCUIT = Circuit(
    3, [H(0), CNOT(0, 1), RX(0.7, 2), CNOT(1, 2), RZ(0.3, 0), SWAP(0, 2)]
)


class TestChannelPaulis:
    def test_sizes_and_embedding(self):
        one_qubit = channel_paulis(4, (2,))
        assert len(one_qubit) == 3
        assert {p.label() for p in one_qubit} == {"IXII", "IYII", "IZII"}
        two_qubit = channel_paulis(3, (0, 2))
        assert len(two_qubit) == 15
        # Local qubit 0 of the gate maps to physical qubit 0, local 1 to 2.
        assert all(p.op_on(1) == "I" for p in two_qubit)
        assert not any(p.is_identity() for p in two_qubit)


class TestTrajectorySimulator:
    def test_noiseless_rows_match_statevector_exactly(self):
        simulator = TrajectorySimulator(3, None, trajectories=4, seed=0)
        simulator.run(CIRCUIT)
        expected = apply_circuit(CIRCUIT)
        for row in simulator.states:
            np.testing.assert_allclose(row, expected, atol=1e-12)
        assert simulator.error_events == 0

    def test_seeded_determinism(self):
        a = TrajectorySimulator(3, NOISE, trajectories=32, seed=5)
        b = TrajectorySimulator(3, NOISE, trajectories=32, seed=5)
        np.testing.assert_array_equal(a.run(CIRCUIT), b.run(CIRCUIT))
        assert a.error_events == b.error_events

    def test_unbiased_against_density_matrix(self):
        noise = DepolarizingNoiseModel(two_qubit_error=0.05, one_qubit_error=0.01)
        dm = DensityMatrixSimulator(3, noise)
        dm.run(CIRCUIT)
        exact = dm.expectation(OBSERVABLE)
        estimate = trajectory_estimate(
            CIRCUIT, OBSERVABLE, noise, trajectories=4096, seed=3
        )
        assert estimate.error_events > 0
        assert estimate.standard_error > 0.0
        assert estimate.agrees_with(exact, sigmas=4.0)

    def test_swaps_are_noisy(self):
        # SWAPs decompose into three noisy CNOTs, as in the DM simulator.
        swap_only = Circuit(2, [H(0), SWAP(0, 1)])
        noise = DepolarizingNoiseModel(two_qubit_error=1.0)
        simulator = TrajectorySimulator(2, noise, trajectories=8, seed=0)
        simulator.run(swap_only)
        assert simulator.error_events == 3 * 8

    def test_qubit_mismatch(self):
        with pytest.raises(ValueError, match="qubit count mismatch"):
            TrajectorySimulator(2, trajectories=2).run(CIRCUIT)

    def test_invalid_trajectory_count(self):
        with pytest.raises(ValueError, match="trajectories"):
            TrajectorySimulator(2, trajectories=0)

    def test_block_streaming_shapes(self):
        values = trajectory_expectations(
            CIRCUIT, OBSERVABLE, NOISE, trajectories=10, seed=2, block_size=4
        )
        assert values.shape == (10,)
        assert np.isfinite(values).all()

    def test_estimate_fields(self):
        estimate = trajectory_estimate(
            CIRCUIT, OBSERVABLE, NOISE, trajectories=16, seed=1
        )
        assert estimate.trajectories == 16
        assert np.isfinite(estimate.value)
        single = trajectory_estimate(
            CIRCUIT, OBSERVABLE, NOISE, trajectories=1, seed=1
        )
        assert np.isnan(single.standard_error)


class TestTrajectoryEnergy:
    def test_converges_to_density_matrix_on_lih(self, lih):
        problem, program = lih
        rng = np.random.default_rng(7)
        theta = rng.normal(0.0, 0.05, program.num_parameters)
        reference = DensityMatrixEnergy(program, problem.hamiltonian, NOISE)(theta)
        energy = TrajectoryEnergy(
            program, problem.hamiltonian, NOISE, trajectories=512, seed=11
        )
        value = energy(theta)
        assert energy.last_error_events > 0
        assert energy.last_standard_error > 0.0
        assert abs(value - reference) <= 3.0 * energy.last_standard_error

    def test_seeded_determinism(self, lih):
        problem, program = lih
        theta = np.full(program.num_parameters, 0.03)
        kwargs = dict(trajectories=32, seed=13)
        first = TrajectoryEnergy(program, problem.hamiltonian, NOISE, **kwargs)
        second = TrajectoryEnergy(program, problem.hamiltonian, NOISE, **kwargs)
        assert first(theta) == second(theta)
        # Common randomness: repeated evaluations reuse the realizations,
        # so the optimizer sees a deterministic surface.
        assert first(theta) == second(theta)

    def test_fresh_randomness_varies(self, lih):
        problem, program = lih
        theta = np.full(program.num_parameters, 0.03)
        energy = TrajectoryEnergy(
            program,
            problem.hamiltonian,
            NOISE,
            trajectories=32,
            seed=13,
            common_randomness=False,
        )
        assert energy(theta) != energy(theta)

    def test_vqe_backend_registered(self, lih):
        problem, program = lih
        assert "trajectory" in available_backends()
        vqe = VQE(
            program,
            problem.hamiltonian,
            backend="trajectory",
            noise=DepolarizingNoiseModel(two_qubit_error=1e-4),
            trajectories=8,
            max_iterations=1,
        )
        assert isinstance(vqe.energy, TrajectoryEnergy)
        assert vqe.energy.trajectories == 8


class TestNoiseRejection:
    @pytest.fixture(scope="class")
    def h2(self):
        problem = build_molecule_hamiltonian("H2")
        return problem, build_uccsd_program(problem).program

    @pytest.mark.parametrize("backend", ["statevector", "sampling"])
    def test_noise_rejected(self, h2, backend):
        problem, program = h2
        with pytest.raises(ValueError, match="silently ignored"):
            VQE(program, problem.hamiltonian, backend=backend, noise=NOISE)

    def test_statevector_error_points_at_noisy_backends(self, h2):
        problem, program = h2
        with pytest.raises(ValueError, match="trajectory.*density_matrix"):
            VQE(program, problem.hamiltonian, backend="statevector", noise=NOISE)

    @pytest.mark.parametrize("backend", ["statevector", "sampling"])
    def test_trivial_noise_accepted(self, h2, backend):
        problem, program = h2
        trivial = DepolarizingNoiseModel(two_qubit_error=0.0)
        VQE(program, problem.hamiltonian, backend=backend, noise=trivial)
        VQE(program, problem.hamiltonian, backend=backend, noise=None)

    @pytest.mark.parametrize("backend", ["density_matrix", "trajectory"])
    def test_noisy_backends_accept_noise(self, h2, backend):
        problem, program = h2
        VQE(program, problem.hamiltonian, backend=backend, noise=NOISE)


class TestPopcount:
    def _reference(self, values):
        return np.array([bin(int(v)).count("1") for v in values])

    def test_matches_pure_python_reference(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**63, size=200, dtype=np.uint64)
        values[:3] = [0, 1, np.iinfo(np.uint64).max // 2]
        np.testing.assert_array_equal(popcount(values), self._reference(values))

    def test_swar_fallback_matches_reference(self):
        # The NumPy-1.x fallback must agree even when np.bitwise_count
        # exists, so the numpy>=2.0 requirement lives only in setup.py.
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**63, size=200, dtype=np.uint64)
        np.testing.assert_array_equal(
            _popcount_swar(values), self._reference(values)
        )

    def test_shape_preserved(self):
        values = np.arange(16, dtype=np.uint64).reshape(4, 4)
        assert popcount(values).shape == (4, 4)


class TestNormalizationAssertion:
    def test_sample_rejects_leaky_state(self):
        simulator = StatevectorSimulator(2, seed=0)
        simulator.state *= 0.9  # deliberate norm leak
        with pytest.raises(ValueError, match="not normalized"):
            simulator.sample(10)

    def test_sampling_energy_rejects_leaky_state(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        energy = SamplingEnergy(program, problem.hamiltonian, shots_per_group=64)
        energy._reference *= 0.9  # deliberate norm leak in the evolution input
        with pytest.raises(ValueError, match="not normalized"):
            energy(np.zeros(program.num_parameters))

    def test_sampling_energy_unchanged_on_normalized_state(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        energy = SamplingEnergy(
            program, problem.hamiltonian, shots_per_group=2048, seed=3
        )
        value = energy(np.zeros(program.num_parameters))
        assert value == pytest.approx(problem.hf_energy, abs=0.05)


class TestFig10Backends:
    def test_auto_backend_selection(self):
        from repro.bench.fig10 import noisy_backend_for

        assert noisy_backend_for("LiH") == "density_matrix"
        assert noisy_backend_for("H2O") == "density_matrix"
        assert noisy_backend_for("BH3") == "trajectory"
        assert noisy_backend_for("CH4") == "trajectory"

    def test_pipeline_energy_pass_trajectory(self):
        from repro.core import (
            BuildAnsatz,
            BuildProblem,
            Compress,
            Energy,
            Pipeline,
            PipelineConfig,
        )

        config = PipelineConfig(molecule="H2", ratio=1.0, trajectories=8)
        pipeline = Pipeline(
            config,
            [
                BuildProblem(),
                BuildAnsatz(),
                Compress(),
                Energy(
                    backend="trajectory",
                    noise=DepolarizingNoiseModel(two_qubit_error=1e-3),
                    max_iterations=2,
                    compute_exact=False,
                ),
            ],
        )
        result = pipeline.run()
        assert np.isfinite(result.metrics["energy"])
