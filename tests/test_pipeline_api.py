"""Tests for the composable Pipeline API, registries and batch execution."""

import json
import math

import pytest

from repro.ansatz.uccsd import build_uccsd_program
from repro.chem.hamiltonian import build_molecule_hamiltonian
from repro.compiler.layout import hierarchical_initial_layout
from repro.compiler.merge_to_root import MergeToRootCompiler
from repro.compiler.registry import (
    CompilerAdapter,
    get_compiler,
    list_compilers,
)
from repro.core import (
    BatchItemError,
    CoOptimizationResult,
    Energy,
    Pipeline,
    PipelineConfig,
    PipelineError,
    co_optimize,
    compress_ansatz,
    load_batch,
    run_batch,
    save_batch,
)
from repro.core.passes import BuildAnsatz, BuildProblem, Compress
from repro.hardware.coupling import CouplingGraph
from repro.hardware.registry import get_device, list_devices, register_device
from repro.hardware.xtree import xtree
from repro.vqe.runner import VQE, VQEResult, available_backends


def _legacy_flow(molecule: str, ratio: float):
    """The pre-pipeline hand-wired flow, for equivalence checking."""
    problem = build_molecule_hamiltonian(molecule)
    ansatz = build_uccsd_program(problem)
    compressed = compress_ansatz(ansatz.program, problem.hamiltonian, ratio)
    device = xtree(17)
    layout = hierarchical_initial_layout(compressed.program, device)
    compiled = MergeToRootCompiler(device).compile(
        compressed.program, initial_layout=layout
    )
    return compressed.program.cnot_count(), compiled.overhead_cnots


class TestPipelineEquivalence:
    @pytest.mark.parametrize("molecule,ratio", [("H2", 0.5), ("LiH", 0.5)])
    def test_matches_legacy_co_optimize(self, molecule, ratio):
        result = Pipeline(PipelineConfig(molecule=molecule, ratio=ratio)).run()
        legacy = co_optimize(molecule, ratio=ratio)
        assert result.original_cnots == legacy.original_cnots
        assert result.overhead_cnots == legacy.overhead_cnots

    @pytest.mark.parametrize("molecule,ratio", [("H2", 0.5), ("LiH", 0.5)])
    def test_matches_hand_wired_flow(self, molecule, ratio):
        original, overhead = _legacy_flow(molecule, ratio)
        result = Pipeline(PipelineConfig(molecule=molecule, ratio=ratio)).run()
        assert result.original_cnots == original
        assert result.overhead_cnots == overhead

    def test_sabre_on_grid_completes(self):
        result = Pipeline(
            PipelineConfig(molecule="H2", ratio=0.5, compiler="sabre", device="grid17")
        ).run()
        assert result.device_name == "Grid17Q"
        assert result.overhead_cnots == 3 * result.num_swaps
        assert result.metrics["compiler"] == "sabre"

    def test_sabre_pipeline_matches_table2_methodology(self):
        # With layout="auto" the SABRE baseline must pick its own initial
        # mapping (reverse-traversal refinement), exactly as the paper's
        # Table II flow in compiler.metrics does -- not inherit MtR's
        # hierarchical layout.
        from repro.compiler.metrics import mapping_overhead

        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        compressed = compress_ansatz(program, problem.hamiltonian, 0.5)
        reports = mapping_overhead(
            compressed.program, get_device("xtree17"), get_device("grid17")
        )
        for compiler, device, key in [
            ("sabre", "xtree17", "sabre_xtree"),
            ("sabre", "grid17", "sabre_grid"),
            ("mtr", "xtree17", "mtr_xtree"),
        ]:
            result = Pipeline(
                PipelineConfig(
                    molecule="LiH", ratio=0.5, compiler=compiler, device=device
                )
            ).run()
            assert result.overhead_cnots == reports[key].overhead_cnots, key

    def test_explicit_layout_overrides_auto(self):
        config = PipelineConfig(
            molecule="H2", ratio=0.5, compiler="sabre", layout="hierarchical"
        )
        result = Pipeline(config).run()
        # SABRE seeded with the hierarchical layout, not its own choice.
        assert result.compiled.initial_layout is not None

    def test_default_stage_order(self):
        pipeline = Pipeline(PipelineConfig())
        assert pipeline.pass_names() == [
            "build_problem",
            "build_ansatz",
            "compress",
            "initial_layout",
            "route",
            "metrics",
        ]

    def test_metrics_recorded(self):
        result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
        m = result.metrics
        assert m["molecule"] == "H2"
        assert m["device"] == "XTree17Q"
        assert m["original_cnots"] == result.original_cnots
        assert m["num_parameters"] == 2 and m["total_parameters"] == 3


class TestPipelineComposition:
    def test_trivial_layout_via_config(self):
        base = PipelineConfig(molecule="LiH", ratio=0.5)
        hierarchical = Pipeline(base).run()
        trivial = Pipeline(base.replace(layout="trivial")).run()
        # Same program either way; only the mapping overhead may differ.
        assert trivial.original_cnots == hierarchical.original_cnots

    def test_unknown_layout_scheme(self):
        with pytest.raises(ValueError, match="layout scheme"):
            Pipeline(PipelineConfig(molecule="H2", layout="bogus")).run()

    def test_replacing_and_without(self):
        pipeline = Pipeline(PipelineConfig())
        swapped = pipeline.replacing("compress", Compress())
        assert swapped.pass_names() == pipeline.pass_names()
        shorter = pipeline.without("metrics")
        assert "metrics" not in shorter.pass_names()
        with pytest.raises(ValueError, match="no pass named"):
            pipeline.without("nonexistent")

    def test_missing_stage_raises_pipeline_error(self):
        with pytest.raises(PipelineError, match="context.ansatz"):
            Pipeline(PipelineConfig(), passes=[BuildProblem(), Compress()]).run()

    def test_energy_pass_records_vqe_metrics(self):
        pipeline = Pipeline(
            PipelineConfig(molecule="H2", ratio=1.0),
            passes=[BuildProblem(), BuildAnsatz(), Compress(), Energy()],
        )
        result = pipeline.run()
        assert result.vqe_result is not None
        assert result.metrics["energy"] == pytest.approx(
            result.metrics["exact_energy"], abs=1e-4
        )

    def test_run_accepts_prebuilt_problem_and_device(self):
        problem = build_molecule_hamiltonian("H2", 0.7)
        tree = xtree(8)
        result = Pipeline(PipelineConfig(molecule="H2", ratio=0.3)).run(
            problem=problem, device=tree
        )
        assert result.problem is problem
        assert result.device is tree


class TestCoOptimizeWrapper:
    def test_device_by_name(self):
        result = co_optimize("H2", ratio=0.5, device="xtree8")
        assert result.device.name == "XTree8Q"

    def test_compiler_by_name(self):
        result = co_optimize("H2", ratio=0.5, compiler="sabre")
        assert result.config.compiler == "sabre"


class TestDeviceRegistry:
    def test_builtin_names(self):
        assert get_device("xtree17").name == "XTree17Q"
        assert get_device("grid17").name == "Grid17Q"

    def test_name_normalization(self):
        assert get_device("XTree17Q").name == "XTree17Q"
        assert get_device("xtree-17").name == "XTree17Q"

    def test_parameterized_families(self):
        assert get_device("xtree33").num_qubits == 33
        grid = get_device("grid3x4")
        assert grid.num_qubits == 12

    def test_graph_passthrough(self):
        tree = xtree(5)
        assert get_device(tree) is tree

    def test_unknown_device_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_device("hexagon99")
        message = str(excinfo.value)
        assert "hexagon99" in message
        for name in list_devices():
            assert name in message

    def test_register_device(self):
        register_device(
            "test-line3",
            lambda: CouplingGraph(3, [(0, 1), (1, 2)], name="Line3"),
            overwrite=True,
        )
        assert get_device("test_line3").name == "Line3"
        with pytest.raises(ValueError, match="already registered"):
            register_device("test-line3", lambda: None)


class TestCompilerRegistry:
    def test_names_and_aliases(self):
        assert isinstance(get_compiler("mtr"), CompilerAdapter)
        assert get_compiler("merge_to_root").name == "mtr"
        assert get_compiler("merge-to-root").name == "mtr"
        assert get_compiler("SABRE").name == "sabre"

    def test_adapter_passthrough(self):
        adapter = get_compiler("mtr")
        assert get_compiler(adapter) is adapter

    def test_unknown_compiler_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_compiler("tket")
        message = str(excinfo.value)
        assert "tket" in message
        for name in list_compilers():
            assert name in message

    def test_adapters_agree_with_direct_calls(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        device = xtree(17)
        direct = MergeToRootCompiler(device).compile(program)
        via_registry = get_compiler("mtr").compile(program, device)
        assert via_registry.num_swaps == direct.num_swaps
        assert via_registry.overhead_cnots == direct.overhead_cnots


class TestRunBatch:
    def test_batch_matches_individual_runs(self):
        configs = [
            PipelineConfig(molecule="H2", ratio=0.3),
            PipelineConfig(molecule="H2", ratio=0.5),
            PipelineConfig(molecule="H2", ratio=1.0),
        ]
        batch = run_batch(configs, workers=3)
        assert len(batch) == 3
        for config, result in zip(configs, batch):
            single = Pipeline(config).run()
            assert result.original_cnots == single.original_cnots
            assert result.overhead_cnots == single.overhead_cnots

    def test_serial_fallback(self):
        configs = [PipelineConfig(molecule="H2", ratio=r) for r in (0.3, 1.0)]
        assert len(run_batch(configs, workers=1)) == 2

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_executors_agree_item_for_item(self):
        configs = [
            PipelineConfig(molecule="H2", bond_length=b) for b in (0.7, 0.735)
        ]
        serial = run_batch(configs, executor="serial")
        thread = run_batch(configs, executor="thread", workers=2)
        process = run_batch(configs, executor="process", workers=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in thread]
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in process]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            run_batch([PipelineConfig(molecule="H2")], executor="fork-bomb")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_failed_item_aggregated_not_fatal(self, executor):
        configs = [
            PipelineConfig(molecule="H2", ratio=0.5),
            PipelineConfig(molecule="NOT_A_MOLECULE"),
            PipelineConfig(molecule="H2", ratio=1.0),
        ]
        results = run_batch(configs, executor=executor, workers=2)
        assert len(results) == 3
        assert isinstance(results[1], BatchItemError)
        assert results[1].index == 1
        assert results[1].config.molecule == "NOT_A_MOLECULE"
        assert "NOT_A_MOLECULE" in str(results[1])
        # completed siblings keep their results
        assert not isinstance(results[0], BatchItemError)
        assert not isinstance(results[2], BatchItemError)
        assert results[0].original_cnots > 0

    def test_save_and_load_batch(self, tmp_path):
        configs = [PipelineConfig(molecule="H2", ratio=r) for r in (0.5, 1.0)]
        results = run_batch(configs, workers=2)
        path = save_batch(results, tmp_path / "batch.json")
        loaded = load_batch(path)
        assert len(loaded) == 2
        for original, restored in zip(results, loaded):
            assert restored.original_cnots == original.original_cnots
            assert restored.overhead_cnots == original.overhead_cnots
            assert restored.config == original.config


class TestResultSerialization:
    def test_json_round_trip_is_stable(self):
        result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
        snapshot = result.to_dict()
        wire = json.loads(json.dumps(snapshot))
        assert wire == snapshot
        restored = CoOptimizationResult.from_dict(wire)
        assert restored.to_dict() == snapshot

    def test_restored_result_scalars(self):
        result = Pipeline(PipelineConfig(molecule="LiH", ratio=0.5)).run()
        restored = CoOptimizationResult.from_dict(result.to_dict())
        assert restored.original_cnots == result.original_cnots
        assert restored.overhead_cnots == result.overhead_cnots
        assert restored.num_swaps == result.num_swaps
        assert restored.device_name == result.device_name
        assert restored.config == result.config
        assert "LiH" in restored.summary()

    def test_to_json_from_json(self):
        result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
        restored = CoOptimizationResult.from_json(result.to_json())
        assert restored.metrics == result.to_dict()["metrics"]

    def test_manual_result_without_metrics_pass(self):
        # A pipeline without the Metrics stage still serializes fully.
        pipeline = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).without(
            "metrics"
        )
        result = pipeline.run()
        assert result.metrics == {}
        snapshot = result.to_dict()
        assert snapshot["metrics"]["original_cnots"] == result.original_cnots

    def test_config_round_trip(self):
        config = PipelineConfig(molecule="NaH", ratio=0.7, compiler="sabre", seed=3)
        assert PipelineConfig.from_dict(config.to_dict()) == config
        # Unknown keys from newer schema versions are ignored.
        assert (
            PipelineConfig.from_dict({**config.to_dict(), "future_field": 1}) == config
        )


class TestVQEBackendRegistry:
    def test_unknown_backend_lists_valid_names(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        with pytest.raises(ValueError) as excinfo:
            VQE(program, problem.hamiltonian, backend="statevectr")
        message = str(excinfo.value)
        assert "statevectr" in message
        for name in available_backends():
            assert name in message

    def test_hartree_fock_energy_empty_history(self):
        result = VQEResult(
            energy=0.0,
            parameters=[],
            iterations=0,
            function_evaluations=0,
            success=False,
            history=[],
            backend="statevector",
        )
        assert math.isnan(result.hartree_fock_energy)

    def test_vqe_result_json_round_trip(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        result = VQE(program, problem.hamiltonian).run()
        wire = json.loads(json.dumps(result.to_dict()))
        restored = VQEResult.from_dict(wire)
        assert restored.energy == result.energy
        assert restored.iterations == result.iterations
        assert list(restored.parameters) == list(result.parameters)
        assert restored.to_dict() == result.to_dict()


class TestDagCommuteKnobs:
    """The shared-DAG pipeline knobs: ``dag`` (scheduled metrics) and
    ``commute`` (commutation-aware frontier + cancellation reporting)."""

    def test_defaults(self):
        config = PipelineConfig()
        assert config.dag is True
        assert config.commute is False

    def test_dag_metrics_reported(self):
        result = Pipeline(PipelineConfig(molecule="H2", ratio=0.5)).run()
        assert result.metrics["scheduled_depth"] > 0
        assert result.metrics["duration_ns"] > 0.0
        assert result.metrics["depth"] <= result.metrics["scheduled_depth"]

    def test_dag_off_skips_schedule_metrics(self):
        result = Pipeline(
            PipelineConfig(molecule="H2", ratio=0.5, dag=False)
        ).run()
        assert "scheduled_depth" not in result.metrics
        assert "duration_ns" not in result.metrics

    def test_commute_records_cancellation_columns(self):
        result = Pipeline(
            PipelineConfig(molecule="H2", ratio=0.5, commute=True)
        ).run()
        metrics = result.metrics
        assert metrics["chain_cnots_commute"] <= metrics["chain_cnots_adjacency"]
        assert metrics["chain_cnots_adjacency"] <= metrics["chain_cnots"]

    def test_commute_threads_to_sabre(self):
        base = PipelineConfig(molecule="LiH", ratio=0.5, compiler="sabre")
        plain = Pipeline(base).run()
        commuting = Pipeline(base.replace(commute=True)).run()
        # Same program, both routings legal; counts may differ but both
        # must report full Table II metrics.
        for result in (plain, commuting):
            assert result.metrics["total_cnots"] >= result.original_cnots

    def test_knobs_round_trip_config(self):
        config = PipelineConfig(dag=False, commute=True)
        restored = PipelineConfig.from_dict(config.to_dict())
        assert restored == config
