"""UCCSD ansatz tests, including the exact Table I reproduction."""

import numpy as np
import pytest

from repro.ansatz import build_uccsd_program, generate_excitations
from repro.ansatz.excitations import count_uccsd_parameters
from repro.chem import build_molecule_hamiltonian

# (qubits, #Pauli, #params, #CNOTs) -- Table I of the paper; gate totals
# are checked separately because two rows differ by the X-gate convention.
TABLE1 = {
    "H2": (4, 12, 3, 56),
    "LiH": (6, 40, 8, 280),
    "NaH": (8, 84, 15, 768),
    "HF": (10, 144, 24, 1616),
    "BeH2": (12, 640, 92, 8064),
    "H2O": (12, 640, 92, 8064),
}

TABLE1_GATES = {"H2": 150, "LiH": 610, "HF": 2856, "H2O": 13704}


class TestExcitationEnumeration:
    def test_h2_counts(self):
        excitations = generate_excitations(2, 1, 1)
        singles = [e for e in excitations if e.is_single]
        doubles = [e for e in excitations if e.is_double]
        assert len(singles) == 2
        assert len(doubles) == 1

    @pytest.mark.parametrize(
        "spatial,alpha,beta,expected",
        [
            (2, 1, 1, 3),      # H2
            (3, 1, 1, 8),      # LiH
            (4, 1, 1, 15),     # NaH
            (5, 4, 4, 24),     # HF
            (6, 2, 2, 92),     # BeH2
            (6, 4, 4, 92),     # H2O
            (7, 3, 3, 204),    # BH3
            (7, 4, 4, 204),    # NH3
            (8, 4, 4, 360),    # CH4
        ],
    )
    def test_closed_form_matches_table1(self, spatial, alpha, beta, expected):
        assert count_uccsd_parameters(spatial, alpha, beta) == expected
        assert len(generate_excitations(spatial, alpha, beta)) == expected

    def test_generators_are_anti_hermitian(self):
        for excitation in generate_excitations(3, 1, 1):
            assert excitation.generator().is_anti_hermitian()

    def test_spin_preservation(self):
        """Singles never mix the alpha and beta blocks."""
        spatial = 4
        for excitation in generate_excitations(spatial, 2, 2):
            if excitation.is_single:
                occ, virt = excitation.occupied[0], excitation.virtual[0]
                assert (occ < spatial) == (virt < spatial)

    def test_too_many_electrons_rejected(self):
        with pytest.raises(ValueError):
            generate_excitations(2, 3, 1)


class TestUCCSDProgram:
    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_table1_reproduction(self, name):
        qubits, num_pauli, num_params, num_cnots = TABLE1[name]
        problem = build_molecule_hamiltonian(name)
        ansatz = build_uccsd_program(problem)
        assert problem.num_qubits == qubits
        assert len(ansatz.program) == num_pauli
        assert ansatz.program.num_parameters == num_params
        assert ansatz.program.cnot_count() == num_cnots

    @pytest.mark.parametrize("name", sorted(TABLE1_GATES))
    def test_table1_gate_totals(self, name):
        problem = build_molecule_hamiltonian(name)
        ansatz = build_uccsd_program(problem)
        assert ansatz.program.gate_count() == TABLE1_GATES[name]

    def test_strings_per_excitation(self):
        problem = build_molecule_hamiltonian("LiH")
        ansatz = build_uccsd_program(problem)
        per_parameter = ansatz.program.parameters_of_terms()
        for excitation, parameter in zip(
            ansatz.excitations, range(ansatz.num_parameters)
        ):
            expected = 2 if excitation.is_single else 8
            assert len(per_parameter[parameter]) == expected

    def test_coefficients_are_real(self):
        problem = build_molecule_hamiltonian("H2")
        ansatz = build_uccsd_program(problem)
        for term in ansatz.program:
            assert isinstance(term.coefficient, float)
            assert abs(term.coefficient) > 0

    def test_full_uccsd_reaches_fci_h2(self):
        """One-parameter-family check: the UCCSD state at the optimum of a
        coarse grid already drops well below Hartree-Fock."""
        from repro.sim import ground_state_energy
        from repro.vqe import VQE

        problem = build_molecule_hamiltonian("H2")
        ansatz = build_uccsd_program(problem)
        exact = ground_state_energy(problem.hamiltonian)
        result = VQE(ansatz.program, problem.hamiltonian).run()
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_initial_occupations_recorded(self):
        problem = build_molecule_hamiltonian("LiH")
        ansatz = build_uccsd_program(problem)
        assert ansatz.program.initial_occupations == [0, 3]


class TestPauliProgramMechanics:
    def test_bound_terms_shape_check(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        with pytest.raises(ValueError):
            program.bound_terms([0.0])

    def test_restricted_to_renumbers(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        sub = program.restricted_to([5, 2])
        assert sub.num_parameters == 2
        # Parameter 5's strings must come first (new index 0).
        first_param_terms = [t for t in sub if t.parameter_index == 0]
        original = [t for t in program if t.parameter_index == 5]
        assert [t.pauli for t in first_param_terms] == [t.pauli for t in original]

    def test_cooccurrence_symmetry(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        matrix = program.qubit_cooccurrence()
        np.testing.assert_array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
