"""Compiler tests: synthesis, layout, Merge-to-Root, SABRE, verification.

The central property: every compiled circuit must be *semantically
equivalent* to direct Pauli-evolution of the program (up to the tracked
final layout), checked with exact statevector simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.circuit import Circuit
from repro.compiler import (
    MergeToRootCompiler,
    SabreRouter,
    hierarchical_initial_layout,
    mapping_overhead,
    synthesize_pauli_chain,
    synthesize_program_chain,
    trivial_layout,
)
from repro.compiler.verify import (
    assert_equivalent,
    assert_routed_equivalent,
    compiled_state,
    embed_logical_state,
    logical_reference_state,
    states_match,
)
from repro.core import compress_ansatz
from repro.core.ir import IRTerm, PauliProgram
from repro.hardware import grid17q, xtree
from repro.pauli import PauliString
from repro.sim import apply_pauli_exponential


def random_program(num_qubits: int, num_strings: int, seed: int) -> PauliProgram:
    """A random Pauli program used for property-style compiler tests."""
    rng = np.random.default_rng(seed)
    terms = []
    for k in range(num_strings):
        while True:
            label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
            if label.strip("I"):
                break
        terms.append(IRTerm(PauliString.from_label(label), float(rng.normal()), k))
    occupations = [int(q) for q in rng.choice(num_qubits, 2, replace=False)]
    return PauliProgram(
        num_qubits=num_qubits,
        num_parameters=num_strings,
        terms=terms,
        initial_occupations=occupations,
    )


class TestChainSynthesis:
    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="IXYZ", min_size=3, max_size=3), st.floats(-2, 2))
    def test_chain_matches_exponential(self, label, angle):
        pauli = PauliString.from_label(label)
        if pauli.is_identity():
            return
        circuit = synthesize_pauli_chain(pauli, angle)
        state = np.ones(8, dtype=complex) / np.sqrt(8.0)
        via_circuit = compiled_state_from(circuit, state)
        expected = apply_pauli_exponential(pauli, angle, state)
        assert states_match(via_circuit, expected)

    def test_identity_string_produces_nothing(self):
        circuit = synthesize_pauli_chain(PauliString.identity(3), 0.7)
        assert len(circuit) == 0

    def test_gate_count_convention(self):
        # Weight-3 string with 2 XY ops: 4 basis + 4 CNOT + 1 RZ.
        circuit = synthesize_pauli_chain(PauliString.from_label("XIYZ"), 0.3)
        assert circuit.num_gates() == 9
        assert circuit.num_cnots() == 4

    def test_program_chain_semantics(self):
        program = random_program(4, 6, seed=2)
        params = np.random.default_rng(3).normal(size=6)
        circuit = synthesize_program_chain(program, params)
        assert states_match(
            compiled_state(circuit), logical_reference_state(program, params)
        )


def compiled_state_from(circuit: Circuit, state):
    from repro.sim import apply_circuit

    return apply_circuit(circuit, state)


class TestHierarchicalLayout:
    def test_paper_algorithm2_example_shape(self):
        """The busiest qubit lands on the root."""
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        device = xtree(17)
        layout = hierarchical_initial_layout(program, device)
        occurrence = program.qubit_cooccurrence().sum(axis=1)
        busiest = int(np.argmax(occurrence))
        assert layout[busiest] == device.center

    def test_injective(self):
        program = random_program(6, 10, seed=4)
        layout = hierarchical_initial_layout(program, xtree(17))
        assert len(set(layout.values())) == len(layout)

    def test_device_too_small(self):
        program = random_program(6, 4, seed=5)
        with pytest.raises(ValueError):
            hierarchical_initial_layout(program, xtree(5))

    def test_trivial_layout(self):
        program = random_program(4, 4, seed=6)
        assert trivial_layout(program, xtree(8)) == {0: 0, 1: 1, 2: 2, 3: 3}


class TestMergeToRoot:
    def test_accepts_connected_non_tree(self):
        # Non-tree devices are handled through a BFS spanning tree.
        compiler = MergeToRootCompiler(grid17q())
        program = random_program(4, 4, seed=7)
        params = np.random.default_rng(7).normal(size=4)
        compiled = compiler.compile(program, params)
        assert_equivalent(program, params, compiled.circuit, compiled.final_layout)

    def test_rejects_disconnected_graph(self):
        from repro.hardware.coupling import CouplingGraph

        with pytest.raises(ValueError):
            MergeToRootCompiler(CouplingGraph(4, [(0, 1), (2, 3)], name="split"))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_equivalent_on_xtree8(self, seed):
        program = random_program(6, 8, seed=seed)
        params = np.random.default_rng(100 + seed).normal(size=8) * 0.7
        compiled = MergeToRootCompiler(xtree(8)).compile(program, params)
        assert_equivalent(program, params, compiled.circuit, compiled.final_layout)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_programs_equivalent_with_trivial_layout(self, seed):
        program = random_program(5, 6, seed=50 + seed)
        params = np.random.default_rng(seed).normal(size=6)
        compiler = MergeToRootCompiler(xtree(8))
        compiled = compiler.compile(
            program, params, initial_layout=trivial_layout(program, xtree(8))
        )
        assert_equivalent(program, params, compiled.circuit, compiled.final_layout)

    def test_lih_uccsd_equivalent(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        params = np.random.default_rng(1).normal(size=program.num_parameters) * 0.2
        compiled = MergeToRootCompiler(xtree(8)).compile(program, params)
        assert_equivalent(program, params, compiled.circuit, compiled.final_layout)

    def test_overhead_is_three_per_swap(self):
        program = random_program(6, 10, seed=9)
        compiled = MergeToRootCompiler(xtree(8)).compile(program)
        assert compiled.overhead_cnots == 3 * compiled.num_swaps
        assert (
            compiled.total_cnots
            == compiled.synthesized_cnots + 3 * compiled.num_swaps
        )

    def test_synthesized_cnots_match_chain_count(self):
        """Tree synthesis uses exactly 2(w-1) CNOTs per string, like chain."""
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        compiled = MergeToRootCompiler(xtree(8)).compile(program)
        assert compiled.synthesized_cnots == program.cnot_count()

    def test_connected_supports_need_no_swaps(self):
        # Strings over {0}, {0,1}: hierarchical layout keeps them adjacent.
        terms = [
            IRTerm(PauliString.from_label("IZZ"), 1.0, 0),
            IRTerm(PauliString.from_label("IXX"), 1.0, 1),
        ]
        program = PauliProgram(3, 2, terms, [0])
        compiled = MergeToRootCompiler(xtree(5)).compile(program)
        assert compiled.num_swaps == 0


class TestSabre:
    @pytest.mark.parametrize("seed", range(4))
    def test_routed_circuit_equivalent(self, seed):
        program = random_program(5, 6, seed=20 + seed)
        params = np.random.default_rng(seed).normal(size=6)
        chain = synthesize_program_chain(program, params)
        result = SabreRouter(xtree(8)).run(chain)
        expected = embed_logical_state(
            logical_reference_state(program, params), result.final_layout, 8
        )
        assert states_match(expected, compiled_state(result.circuit))

    def test_all_cnots_respect_coupling(self):
        program = random_program(6, 8, seed=33)
        chain = synthesize_program_chain(program, [0.1] * 8)
        device = xtree(8)
        result = SabreRouter(device).run(chain)
        for gate in result.circuit.decompose_swaps():
            if gate.is_two_qubit():
                assert device.are_connected(*gate.qubits), gate

    def test_grid_needs_fewer_swaps_than_tree(self):
        """Denser connectivity -> generally lower SABRE overhead (the
        Table II trend between its two SABRE columns)."""
        problem = build_molecule_hamiltonian("NaH")
        program = build_uccsd_program(problem).program
        chain = synthesize_program_chain(program, [0.0] * program.num_parameters)
        tree_swaps = SabreRouter(xtree(17)).run(chain).num_swaps
        grid_swaps = SabreRouter(grid17q()).run(chain).num_swaps
        assert grid_swaps < tree_swaps

    def test_device_too_small(self):
        with pytest.raises(ValueError):
            SabreRouter(xtree(5)).run(Circuit(8))


class TestRoutedVerification:
    """Regression tests: routed results verify directly through their
    final-layout permutation, with no manual un-permutation."""

    @pytest.mark.parametrize("seed", range(3))
    def test_sabre_result_verifies_directly(self, seed):
        program = random_program(5, 6, seed=60 + seed)
        params = np.random.default_rng(seed).normal(size=6)
        chain = synthesize_program_chain(program, params)
        result = SabreRouter(xtree(8)).run(chain)
        assert result.num_swaps >= 0
        assert_routed_equivalent(program, params, result)

    def test_sabre_permuting_case_has_swaps(self):
        """The regression scenario: routing that actually permutes
        qubits (num_swaps > 0) must still verify without help."""
        program = random_program(6, 8, seed=91)
        params = np.random.default_rng(91).normal(size=8)
        chain = synthesize_program_chain(program, params)
        result = SabreRouter(xtree(8)).run(chain)
        assert result.num_swaps > 0
        assert result.final_layout != result.initial_layout
        assert_routed_equivalent(program, params, result)

    def test_mtr_result_verifies_directly(self):
        program = random_program(6, 8, seed=12)
        params = np.random.default_rng(12).normal(size=8) * 0.5
        compiled = MergeToRootCompiler(xtree(8)).compile(program, params)
        assert_routed_equivalent(program, params, compiled)

    def test_wrong_layout_is_caught(self):
        program = random_program(5, 6, seed=13)
        params = np.random.default_rng(13).normal(size=6)
        chain = synthesize_program_chain(program, params)
        result = SabreRouter(xtree(8)).run(chain)
        assert result.num_swaps > 0
        broken = dict(result.final_layout)
        a, b = sorted(broken)[:2]
        broken[a], broken[b] = broken[b], broken[a]
        with pytest.raises(AssertionError):
            assert_equivalent(program, params, result.circuit, broken)

    def test_optimized_circuit_substitution(self):
        """Peephole-optimized rewrites verify against the same layout."""
        from repro.compiler import cancel_gates

        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        params = np.random.default_rng(5).normal(size=program.num_parameters) * 0.2
        compiled = MergeToRootCompiler(xtree(8)).compile(program, params)
        optimized = cancel_gates(
            compiled.circuit.decompose_swaps(), commute=True
        )
        assert optimized.num_cnots() <= compiled.circuit.num_cnots()
        assert_routed_equivalent(program, params, compiled, circuit=optimized)


class TestOverheadComparison:
    def test_mtr_dominates_sabre_on_xtree(self):
        """The paper's central compiler result, on LiH and NaH."""
        for name in ("LiH", "NaH"):
            problem = build_molecule_hamiltonian(name)
            program = build_uccsd_program(problem).program
            compressed = compress_ansatz(program, problem.hamiltonian, 0.5)
            reports = mapping_overhead(compressed.program, xtree(17), grid17q())
            assert (
                reports["mtr_xtree"].overhead_cnots
                < reports["sabre_xtree"].overhead_cnots
            ), name
            assert reports["mtr_xtree"].overhead_ratio < 0.10, name
