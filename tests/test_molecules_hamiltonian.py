"""Tests for molecule geometries, active spaces and qubit Hamiltonians."""

import numpy as np
import pytest

from repro.chem import build_molecule_hamiltonian, molecule_by_name
from repro.chem.molecules import BENCHMARK_MOLECULES
from repro.sim import ground_state_energy


class TestGeometries:
    def test_benchmark_list_matches_table1(self):
        assert BENCHMARK_MOLECULES == [
            "H2", "LiH", "NaH", "HF", "BeH2", "H2O", "BH3", "NH3", "CH4",
        ]

    def test_unknown_molecule_rejected(self):
        with pytest.raises(ValueError):
            molecule_by_name("XeF6")

    def test_nonpositive_bond_length_rejected(self):
        with pytest.raises(ValueError):
            molecule_by_name("H2", -0.5)

    def test_equilibrium_default(self):
        molecule = molecule_by_name("H2O")
        assert molecule.bond_length == pytest.approx(0.958)

    @pytest.mark.parametrize("name", BENCHMARK_MOLECULES)
    def test_bond_lengths_realized(self, name):
        molecule = molecule_by_name(name, 1.1)
        heavy = molecule.coordinates_angstrom[0]
        for hydrogen in molecule.coordinates_angstrom[1:]:
            if molecule.symbols[0] == "H" and name == "H2":
                continue
            distance = np.linalg.norm(hydrogen - heavy)
            assert distance == pytest.approx(1.1, abs=1e-8)

    def test_ch4_is_tetrahedral(self):
        molecule = molecule_by_name("CH4", 1.09)
        coords = molecule.coordinates_angstrom
        hh = [
            np.linalg.norm(coords[i] - coords[j])
            for i in range(1, 5)
            for j in range(i + 1, 5)
        ]
        np.testing.assert_allclose(hh, hh[0], rtol=1e-10)

    def test_h2o_angle(self):
        molecule = molecule_by_name("H2O", 1.0)
        coords = molecule.coordinates_angstrom
        v1 = coords[1] - coords[0]
        v2 = coords[2] - coords[0]
        angle = np.degrees(
            np.arccos(np.dot(v1, v2) / (np.linalg.norm(v1) * np.linalg.norm(v2)))
        )
        assert angle == pytest.approx(104.45, abs=0.01)

    def test_frozen_orbital_counts(self):
        assert molecule_by_name("H2").num_frozen_orbitals == 0
        assert molecule_by_name("LiH").num_frozen_orbitals == 1
        assert molecule_by_name("NaH").num_frozen_orbitals == 5


class TestQubitHamiltonians:
    def test_h2_qubit_count_and_hermiticity(self):
        problem = build_molecule_hamiltonian("H2")
        assert problem.num_qubits == 4
        assert problem.hamiltonian.is_hermitian()

    def test_h2_fci_energy(self):
        problem = build_molecule_hamiltonian("H2", 0.735)
        assert ground_state_energy(problem.hamiltonian) == pytest.approx(
            -1.1373, abs=2e-3
        )

    def test_hf_state_energy_matches_scf(self):
        """<HF| H_qubit |HF> must equal the RHF total energy (frozen core
        folded in correctly)."""
        from repro.sim import basis_state, expectation

        for name in ("H2", "LiH", "BeH2"):
            problem = build_molecule_hamiltonian(name)
            state = basis_state(problem.num_qubits, problem.hartree_fock_state_index())
            energy = expectation(problem.hamiltonian, state)
            assert energy == pytest.approx(problem.hf_energy, abs=1e-8), name

    def test_ground_state_below_hf(self):
        problem = build_molecule_hamiltonian("LiH")
        assert ground_state_energy(problem.hamiltonian) < problem.hf_energy

    def test_caching_returns_same_object(self):
        a = build_molecule_hamiltonian("H2", 0.7)
        b = build_molecule_hamiltonian("H2", 0.7)
        assert a is b

    def test_occupations_blocked_ordering(self):
        problem = build_molecule_hamiltonian("LiH")
        # 2 active electrons in 3 spatial orbitals: alpha qubit 0, beta qubit 3.
        assert problem.hartree_fock_occupations() == [0, 3]

    def test_dissociation_curve_shape(self):
        """Energy must rise on both sides of equilibrium (Figure 3 shape)."""
        energies = {
            d: ground_state_energy(build_molecule_hamiltonian("H2", d).hamiltonian)
            for d in (0.5, 0.735, 1.6)
        }
        assert energies[0.735] < energies[0.5]
        assert energies[0.735] < energies[1.6]


class TestActiveSpaceErrors:
    def test_bad_active_electrons(self):
        from repro.chem.active_space import reduce_to_active_space

        h = np.zeros((3, 3))
        eri = np.zeros((3, 3, 3, 3))
        with pytest.raises(ValueError):
            reduce_to_active_space(h, eri, 0.0, 4, 3, 2)  # odd frozen count

    def test_window_exceeds_orbitals(self):
        from repro.chem.active_space import reduce_to_active_space

        h = np.zeros((3, 3))
        eri = np.zeros((3, 3, 3, 3))
        with pytest.raises(ValueError):
            reduce_to_active_space(h, eri, 0.0, 4, 2, 5)
