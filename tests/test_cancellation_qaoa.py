"""Cancellation + fusion on QAOA-shaped circuits (ISSUE-8 satellite).

Chain-synthesized ZZ cost layers keep their rotation pinned between the
ladder CNOTs, so *unrouted* QAOA circuits cancel nothing -- the wins
appear when routing SWAPs interleave the layers' ladders.  These tests
pin both facts: the commute-aware pass must beat the adjacency-only
pass on a routed QAOA instance, and the fixed-point loop must terminate
within its theoretical pass bound (``num_gates + 2``).
"""

import numpy as np
import pytest

from repro.bench.corpus import qaoa_ising_ring_circuit, qaoa_maxcut_er_circuit
from repro.circuit import Circuit
from repro.circuit.gates import CNOT, H, RZ
from repro.compiler import (
    assert_circuit_routed_equivalent,
    cancel_gates,
    fuse_circuit,
    get_compiler,
)
from repro.hardware import get_device
from repro.sim import apply_circuit, basis_state


def _same_unitary_on_zero(a: Circuit, b: Circuit) -> bool:
    overlap = np.vdot(apply_circuit(a), apply_circuit(b))
    return abs(abs(overlap) - 1.0) < 1e-8


class TestCommuteAwareWins:
    def test_interleaved_ladder_tails_cancel(self):
        # Two ZZ-ladder tails onto a shared root: the waves cancel
        # across each other only with commutation analysis.
        circuit = Circuit(3, [CNOT(0, 2), CNOT(1, 2), CNOT(0, 2), CNOT(1, 2)])
        assert cancel_gates(circuit).num_gates() == 4
        assert cancel_gates(circuit, commute=True).num_gates() == 0

    def test_rz_slides_through_control(self):
        # A cost rotation on the control wire does not block the ladder.
        circuit = Circuit(2, [CNOT(0, 1), RZ(0.3, 0), CNOT(0, 1)])
        optimized = cancel_gates(circuit, commute=True)
        assert optimized.num_gates() == 1
        assert optimized.gates[0].name == "rz"
        assert _same_unitary_on_zero(circuit, optimized)

    def test_routed_qaoa_commute_beats_adjacent(self):
        # Empirically pinned instance: ER n=8 p=2 MaxCut routed by SABRE
        # onto a 2x4 grid.  Routing SWAP decomposition interleaves the
        # ZZ-rotation layers' CNOT ladders, and only the commute-aware
        # pass recovers CNOTs from them.
        circuit = qaoa_maxcut_er_circuit(8, 2, seed=8)
        result = get_compiler("sabre").compile_circuit(
            circuit, get_device("grid2x4")
        )
        routed = result.circuit.decompose_swaps()
        adjacent = cancel_gates(routed)
        commuting = cancel_gates(routed, commute=True)
        assert commuting.num_cnots() < adjacent.num_cnots() <= routed.num_cnots()
        assert_circuit_routed_equivalent(circuit, result, circuit=commuting)

    def test_commuting_ring_layers_survive_cancellation(self):
        # Ising-ring cost layers fully commute; cancellation must
        # preserve the state whatever it removes.
        circuit = qaoa_ising_ring_circuit(6, 2, seed=5)
        optimized = cancel_gates(circuit, commute=True)
        assert _same_unitary_on_zero(circuit, optimized)


class TestFixedPointTermination:
    @pytest.mark.parametrize("layers", [1, 2])
    def test_terminates_within_pass_bound(self, layers):
        # Every productive sweep removes or merges at least one gate, so
        # num_gates + 2 sweeps (worst case + the confirming sweep) is a
        # hard bound; exceeding it means the peephole loops.
        circuit = qaoa_maxcut_er_circuit(6, layers, seed=6)
        result = get_compiler("sabre").compile_circuit(
            circuit, get_device("xtree6")
        )
        routed = result.circuit.decompose_swaps()
        for commute in (False, True):
            cancel_gates(
                routed, commute=commute, max_passes=routed.num_gates() + 2
            )

    def test_max_passes_budget_enforced(self):
        # A circuit with work to do needs its productive sweep plus the
        # confirming sweep; a 1-pass budget must trip the guard.
        circuit = Circuit(1, [H(0), H(0)])
        with pytest.raises(RuntimeError):
            cancel_gates(circuit, max_passes=1)
        assert cancel_gates(circuit, max_passes=2).num_gates() == 0

    def test_no_op_circuit_fits_single_pass(self):
        circuit = Circuit(2, [CNOT(0, 1), RZ(0.4, 1)])
        assert cancel_gates(circuit, max_passes=1).num_gates() == 2

    def test_cancellation_is_idempotent(self):
        circuit = qaoa_maxcut_er_circuit(6, 2, seed=9)
        routed = (
            get_compiler("mtr")
            .compile_circuit(circuit, get_device("xtree6"))
            .circuit.decompose_swaps()
        )
        once = cancel_gates(routed, commute=True)
        twice = cancel_gates(once, commute=True, max_passes=1)
        assert twice.gates == once.gates


class TestFusionOnQAOA:
    @pytest.mark.parametrize("level", ["off", "1q", "2q"])
    def test_fusion_preserves_qaoa_state(self, level):
        circuit = qaoa_maxcut_er_circuit(6, 2, seed=4)
        fused = fuse_circuit(circuit, level=level)
        state = fused.apply(basis_state(circuit.num_qubits, 0))
        reference = apply_circuit(circuit)
        assert abs(abs(np.vdot(reference, state)) - 1.0) < 1e-8

    def test_fusion_composes_with_cancellation(self):
        circuit = qaoa_maxcut_er_circuit(6, 1, seed=2)
        result = get_compiler("sabre").compile_circuit(
            circuit, get_device("grid2x3")
        )
        routed = result.circuit.decompose_swaps()
        optimized = cancel_gates(routed, commute=True)
        fused = fuse_circuit(optimized, level="2q")
        state = fused.apply(basis_state(routed.num_qubits, 0))
        assert abs(abs(np.vdot(apply_circuit(routed), state)) - 1.0) < 1e-8
