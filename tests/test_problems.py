"""Graph generators, graph Hamiltonians and the problem registry."""

import pytest

from repro.pauli import PauliString
from repro.problems import (
    CircuitProblem,
    Graph,
    GraphProblem,
    erdos_renyi_graph,
    get_problem,
    ising_hamiltonian,
    maxcut_hamiltonian,
    random_regular_graph,
    ring_graph,
)


class TestGraphs:
    def test_edges_normalized_and_deduplicated(self):
        graph = Graph(4, [(2, 1), (1, 2), (0, 3)])
        assert graph.edges == ((0, 3), (1, 2))

    def test_rejects_self_loops_and_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(3, [(1, 1)])
        with pytest.raises(ValueError):
            Graph(3, [(0, 3)])

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi_graph(10, 0.5, seed=3)
        b = erdos_renyi_graph(10, 0.5, seed=3)
        assert a.edges == b.edges
        assert erdos_renyi_graph(10, 0.5, seed=4).edges != a.edges

    def test_erdos_renyi_probability_extremes(self):
        assert erdos_renyi_graph(6, 1.0, seed=0).num_edges == 15
        assert erdos_renyi_graph(6, 0.0, seed=0).num_edges == 0

    @pytest.mark.parametrize("n", [4, 6, 8, 12])
    def test_random_regular_is_3_regular(self, n):
        graph = random_regular_graph(n, 3, seed=n)
        degree = [0] * n
        for a, b in graph.edges:
            degree[a] += 1
            degree[b] += 1
        assert degree == [3] * n

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, seed=0)  # n * d must be even

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert (0, 4) in graph.edges


class TestGraphHamiltonians:
    def test_maxcut_term_structure(self):
        graph = ring_graph(4)
        hamiltonian = maxcut_hamiltonian(graph)
        labels = {
            pauli.label(): coefficient for coefficient, pauli in hamiltonian
        }
        # w/2 * I per edge plus -w/2 * ZZ per edge.
        assert labels["IIII"] == pytest.approx(2.0)
        assert labels["ZZII"] == pytest.approx(-0.5)
        assert len(labels) == 5

    def test_maxcut_expectation_counts_cut_edges(self):
        # On a computational basis state the MaxCut Hamiltonian's value
        # is exactly the number of cut edges.
        import numpy as np

        from repro.sim import ExpectationEngine, basis_state

        graph = ring_graph(4)
        engine = ExpectationEngine(maxcut_hamiltonian(graph))
        # |0101>: qubits 0,2 one side, 1,3 the other -- all 4 ring edges cut.
        state = basis_state(4, 0b0101)
        assert engine.value(state) == pytest.approx(4.0)
        assert engine.value(basis_state(4, 0)) == pytest.approx(0.0)

    def test_ising_field_terms(self):
        hamiltonian = ising_hamiltonian(ring_graph(3), longitudinal_field=0.7)
        labels = {pauli.label(): c for c, pauli in hamiltonian}
        assert labels["ZII"] == pytest.approx(0.7)
        assert labels["ZZI"] == pytest.approx(1.0)
        assert len(labels) == 6


class TestRegistry:
    def test_maxcut_er_spec(self):
        problem = get_problem("maxcut:er-8-3")
        assert isinstance(problem, GraphProblem)
        assert problem.num_qubits == 8
        assert problem.graph is not None
        # Same spec, same problem.
        again = get_problem("maxcut:er-8-3")
        assert problem.graph.edges == again.graph.edges

    def test_reg3_and_ring_specs(self):
        assert get_problem("maxcut:reg3-8-1").num_qubits == 8
        assert get_problem("maxcut:ring-6").graph.num_edges == 6
        assert get_problem("ising:ring-5").num_qubits == 5

    def test_hubbard_spec(self):
        problem = get_problem("hubbard:3")
        assert isinstance(problem, GraphProblem)
        assert problem.hamiltonian.num_qubits == problem.num_qubits

    def test_qasm_spec(self, tmp_path):
        from repro.circuit import Circuit
        from repro.circuit.gates import CNOT, H
        from repro.circuit.qasm import to_qasm

        path = tmp_path / "bell.qasm"
        path.write_text(to_qasm(Circuit(2, [H(0), CNOT(0, 1)])))
        problem = get_problem(f"qasm:{path}")
        assert isinstance(problem, CircuitProblem)
        assert problem.num_qubits == 2
        assert problem.circuit.num_gates() == 2

    def test_qasm_spec_missing_file(self):
        with pytest.raises(FileNotFoundError):
            get_problem("qasm:/nonexistent/circuit.qasm")

    @pytest.mark.parametrize(
        "spec",
        ["", "maxcut", "maxcut:torus-4", "nonsense:er-4-0", "maxcut:er-4"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            get_problem(spec)

    def test_identity_has_full_support_helper(self):
        # Guard the PauliString API the Hamiltonian builders rely on.
        identity = PauliString.identity(3)
        assert identity.is_identity()
