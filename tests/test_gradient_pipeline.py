"""Tests for parameter-shift gradients, variable-degree trees and the
end-to-end co-optimization pipeline."""

import numpy as np
import pytest

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.core import co_optimize
from repro.hardware.xtree import xtree, xtree_with_degrees
from repro.vqe.gradient import ParameterShiftGradient


class TestParameterShiftGradient:
    @pytest.fixture(scope="class")
    def h2_setup(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        return program, problem.hamiltonian

    def test_matches_finite_differences(self, h2_setup):
        program, hamiltonian = h2_setup
        evaluator = ParameterShiftGradient(program, hamiltonian)
        rng = np.random.default_rng(4)
        theta = rng.normal(0, 0.3, program.num_parameters)
        analytic = evaluator.gradient(theta)
        step = 1e-6
        for k in range(program.num_parameters):
            plus, minus = theta.copy(), theta.copy()
            plus[k] += step
            minus[k] -= step
            numeric = (evaluator.value(plus) - evaluator.value(minus)) / (2 * step)
            assert analytic[k] == pytest.approx(numeric, abs=1e-5), k

    def test_zero_gradient_at_optimum(self, h2_setup):
        from repro.vqe import VQE

        program, hamiltonian = h2_setup
        result = VQE(program, hamiltonian).run()
        gradient = ParameterShiftGradient(program, hamiltonian).gradient(
            result.parameters
        )
        assert np.max(np.abs(gradient)) < 1e-4

    def test_wrong_length_rejected(self, h2_setup):
        program, hamiltonian = h2_setup
        evaluator = ParameterShiftGradient(program, hamiltonian)
        with pytest.raises(ValueError):
            evaluator.gradient([0.0])

    def test_lih_gradient_spot_check(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        evaluator = ParameterShiftGradient(program, problem.hamiltonian)
        theta = np.full(program.num_parameters, 0.05)
        analytic = evaluator.gradient(theta)
        step = 1e-6
        k = 3
        plus, minus = theta.copy(), theta.copy()
        plus[k] += step
        minus[k] -= step
        numeric = (evaluator.value(plus) - evaluator.value(minus)) / (2 * step)
        assert analytic[k] == pytest.approx(numeric, abs=1e-5)


class TestDegreeTrees:
    def test_binary_tree_profile(self):
        tree = xtree_with_degrees(7, [2, 2])
        assert tree.is_tree()
        assert tree.degree(0) == 2

    def test_default_profile_matches_xtree(self):
        standard = xtree(17)
        custom = xtree_with_degrees(17, [4, 3])
        assert sorted(custom.edges) == sorted(standard.edges)

    def test_capacity_exhaustion(self):
        # A root allowed one child and chain profile of one child each can
        # host arbitrarily many qubits (a path); degree-0 is rejected.
        with pytest.raises(ValueError):
            xtree_with_degrees(5, [2, 0])

    def test_path_profile(self):
        path = xtree_with_degrees(6, [1, 1])
        assert path.is_tree()
        assert max(path.degree(q) for q in range(6)) == 2

    def test_levels_respect_profile(self):
        tree = xtree_with_degrees(13, [4, 2])
        levels = tree.levels()
        assert levels.count(1) == 4
        assert levels.count(2) == 8

    def test_merge_to_root_works_on_variants(self):
        """Alternate trees remain valid compile targets (Section VII)."""
        from repro.compiler import MergeToRootCompiler
        from repro.compiler.verify import assert_equivalent

        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        params = np.random.default_rng(0).normal(size=program.num_parameters)
        tree = xtree_with_degrees(6, [2, 2])
        compiled = MergeToRootCompiler(tree).compile(program, params)
        assert_equivalent(program, params, compiled.circuit, compiled.final_layout)


class TestPipeline:
    def test_co_optimize_h2(self):
        result = co_optimize("H2", ratio=0.5)
        assert result.compressed.num_parameters == 2
        assert result.device.name == "XTree17Q"
        assert result.compiled.overhead_cnots == 3 * result.compiled.num_swaps
        assert "H2" in result.summary()

    def test_co_optimize_accepts_problem_object(self):
        problem = build_molecule_hamiltonian("H2", 0.7)
        result = co_optimize(problem, ratio=1.0)
        assert result.problem is problem

    def test_co_optimize_custom_device(self):
        tree = xtree(8)
        result = co_optimize("H2", ratio=0.3, device=tree)
        assert result.device is tree
        assert result.compiled.circuit.num_qubits == 8

    def test_compiled_circuit_is_semantically_correct(self):
        from repro.compiler.verify import assert_equivalent

        result = co_optimize("H2", ratio=1.0, device=xtree(5))
        program = result.compressed.program
        assert_equivalent(
            program,
            [0.0] * program.num_parameters,
            result.compiled.circuit,
            result.compiled.final_layout,
        )
