"""Tests for Algorithm 1 (importance estimation) and ansatz compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.core import (
    compress_ansatz,
    decay_factor,
    parameter_importance,
    random_ansatz,
    string_score,
)
from repro.pauli import PauliString, PauliSum


class TestDecayFactor:
    def test_paper_figure4_example(self):
        # Pa = I Y X Z (q3..q0), PH = Y X X I: d = 3 (q3: Pa has I,
        # q0: PH has I, q1: equal X; q2 differs -> active).
        pa = PauliString.from_label("IYXZ")
        ph = PauliString.from_label("YXXI")
        assert decay_factor(pa, ph) == 3

    def test_all_identity_ansatz_string(self):
        pa = PauliString.identity(4)
        ph = PauliString.from_label("XYZX")
        assert decay_factor(pa, ph) == 4

    def test_fully_conflicting(self):
        pa = PauliString.from_label("XXXX")
        ph = PauliString.from_label("ZZZZ")
        assert decay_factor(pa, ph) == 0

    def test_equal_strings_decay_fully(self):
        pa = PauliString.from_label("XYZX")
        assert decay_factor(pa, pa) == 4

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            decay_factor(PauliString.from_label("X"), PauliString.from_label("XX"))

    @settings(max_examples=100, deadline=None)
    @given(
        st.text(alphabet="IXYZ", min_size=4, max_size=4),
        st.text(alphabet="IXYZ", min_size=4, max_size=4),
    )
    def test_matches_per_qubit_definition(self, a, b):
        pa, ph = PauliString.from_label(a), PauliString.from_label(b)
        expected = sum(
            1
            for q in range(4)
            if pa.op_on(q) == "I" or ph.op_on(q) == "I" or pa.op_on(q) == ph.op_on(q)
        )
        assert decay_factor(pa, ph) == expected


class TestStringScore:
    def test_weighted_sum(self):
        hamiltonian = PauliSum.from_label_dict({"XX": 0.5, "ZZ": -0.25})
        pa = PauliString.from_label("XX")
        # d(XX, XX) = 2 -> 0.5/4; d(XX, ZZ) = 0 -> 0.25.
        assert string_score(pa, hamiltonian) == pytest.approx(0.5 / 4 + 0.25)

    def test_identity_term_ignored(self):
        # The II term contributes nothing regardless of its weight.
        hamiltonian = PauliSum.from_label_dict({"II": 10.0, "XX": 0.5})
        without = PauliSum.from_label_dict({"XX": 0.5})
        pa = PauliString.from_label("YY")
        assert string_score(pa, hamiltonian) == string_score(pa, without)

    def test_decay_base_validation(self):
        hamiltonian = PauliSum.from_label_dict({"XX": 0.5})
        with pytest.raises(ValueError):
            string_score(PauliString.from_label("YY"), hamiltonian, decay_base=1.0)


class TestParameterImportance:
    def test_importance_shared_across_strings(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        importance = parameter_importance(program, problem.hamiltonian)
        assert importance.shape == (8,)
        assert np.all(importance > 0)

    def test_size_mismatch_rejected(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        other = PauliSum.from_label_dict({"XX": 1.0})
        with pytest.raises(ValueError):
            parameter_importance(program, other)


class TestCompression:
    @pytest.fixture(scope="class")
    def lih(self):
        problem = build_molecule_hamiltonian("LiH")
        return problem, build_uccsd_program(problem).program

    def test_keep_counts_ceiling(self, lih):
        problem, program = lih
        for ratio, expected in [(0.1, 1), (0.3, 3), (0.5, 4), (0.7, 6), (0.9, 8)]:
            compressed = compress_ansatz(program, problem.hamiltonian, ratio)
            assert compressed.num_parameters == expected

    def test_full_ratio_keeps_everything(self, lih):
        problem, program = lih
        compressed = compress_ansatz(program, problem.hamiltonian, 1.0)
        assert compressed.num_parameters == program.num_parameters

    def test_invalid_ratio(self, lih):
        problem, program = lih
        with pytest.raises(ValueError):
            compress_ansatz(program, problem.hamiltonian, 0.0)
        with pytest.raises(ValueError):
            compress_ansatz(program, problem.hamiltonian, 1.5)

    def test_importance_ordering(self, lih):
        """Kept parameters appear in decreasing-importance order."""
        problem, program = lih
        compressed = compress_ansatz(program, problem.hamiltonian, 0.9)
        kept_importance = compressed.importance[compressed.kept_parameters]
        assert np.all(np.diff(kept_importance) <= 1e-12)

    def test_program_order_follows_kept_order(self, lih):
        problem, program = lih
        compressed = compress_ansatz(program, problem.hamiltonian, 0.5)
        seen_parameters = []
        for term in compressed.program:
            if term.parameter_index not in seen_parameters:
                seen_parameters.append(term.parameter_index)
        assert seen_parameters == sorted(seen_parameters)

    def test_compression_beats_random_on_lih(self, lih):
        """The paper's effectiveness claim: importance-selected 50% is at
        least as accurate as random 50% (averaged over seeds)."""
        from repro.sim import ground_state_energy
        from repro.vqe import VQE

        problem, program = lih
        exact = ground_state_energy(problem.hamiltonian)
        compressed = compress_ansatz(program, problem.hamiltonian, 0.5)
        smart = VQE(compressed.program, problem.hamiltonian).run()
        random_errors = []
        for seed in range(4):
            randomized = random_ansatz(program, 0.5, seed=seed)
            outcome = VQE(randomized.program, problem.hamiltonian).run()
            random_errors.append(abs(outcome.energy - exact))
        assert abs(smart.energy - exact) <= np.mean(random_errors) + 1e-10

    def test_random_ansatz_is_reproducible(self, lih):
        _, program = lih
        a = random_ansatz(program, 0.5, seed=3)
        b = random_ansatz(program, 0.5, seed=3)
        assert a.kept_parameters == b.kept_parameters
