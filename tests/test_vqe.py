"""VQE driver tests: backends, optimizer accounting, scans, measurement."""

import numpy as np
import pytest

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.pauli import PauliString, PauliSum
from repro.sim import DepolarizingNoiseModel, ground_state_energy
from repro.vqe import (
    VQE,
    MeasurementGroup,
    SamplingEnergy,
    StatevectorEnergy,
    bond_scan,
    group_commuting_terms,
    minimize_energy,
)


@pytest.fixture(scope="module")
def h2():
    problem = build_molecule_hamiltonian("H2")
    program = build_uccsd_program(problem).program
    return problem, program


class TestStatevectorEnergy:
    def test_zero_parameters_give_hf_energy(self, h2):
        problem, program = h2
        energy = StatevectorEnergy(program, problem.hamiltonian)
        assert energy(np.zeros(program.num_parameters)) == pytest.approx(
            problem.hf_energy, abs=1e-8
        )

    def test_evaluation_counter(self, h2):
        problem, program = h2
        energy = StatevectorEnergy(program, problem.hamiltonian)
        energy(np.zeros(3))
        energy(np.zeros(3))
        assert energy.evaluations == 2

    def test_size_mismatch(self, h2):
        problem, program = h2
        other = PauliSum.from_label_dict({"XX": 1.0})
        with pytest.raises(ValueError):
            StatevectorEnergy(program, other)


class TestVQEBackends:
    def test_statevector_reaches_fci(self, h2):
        problem, program = h2
        exact = ground_state_energy(problem.hamiltonian)
        result = VQE(program, problem.hamiltonian).run()
        assert result.energy == pytest.approx(exact, abs=1e-7)
        assert result.iterations >= 1
        assert result.hartree_fock_energy == pytest.approx(problem.hf_energy, abs=1e-8)

    def test_density_matrix_noiseless_agrees(self, h2):
        problem, program = h2
        noiseless = VQE(
            program,
            problem.hamiltonian,
            backend="density_matrix",
            noise=DepolarizingNoiseModel(two_qubit_error=0.0),
            max_iterations=40,
        ).run()
        statevector = VQE(program, problem.hamiltonian, max_iterations=40).run()
        assert noiseless.energy == pytest.approx(statevector.energy, abs=1e-6)

    def test_noise_raises_energy(self, h2):
        """Depolarizing noise pushes the minimum above the exact value."""
        problem, program = h2
        exact = ground_state_energy(problem.hamiltonian)
        noisy = VQE(
            program,
            problem.hamiltonian,
            backend="density_matrix",
            noise=DepolarizingNoiseModel(two_qubit_error=5e-3),
            max_iterations=40,
        ).run()
        assert noisy.energy > exact

    def test_sampling_backend_close_to_exact(self, h2):
        problem, program = h2
        exact_vqe = VQE(program, problem.hamiltonian).run()
        sampler = SamplingEnergy(
            program, problem.hamiltonian, shots_per_group=20000, seed=5
        )
        sampled = sampler(exact_vqe.parameters)
        assert sampled == pytest.approx(exact_vqe.energy, abs=0.01)

    def test_unknown_backend(self, h2):
        problem, program = h2
        with pytest.raises(ValueError):
            VQE(program, problem.hamiltonian, backend="tensor_network")


class TestOptimizer:
    def test_quadratic_minimum(self):
        outcome = minimize_energy(lambda x: float((x[0] - 2.0) ** 2), 1)
        assert outcome.parameters[0] == pytest.approx(2.0, abs=1e-4)
        assert outcome.iterations >= 1
        assert outcome.history[0] == pytest.approx(4.0)

    def test_zero_parameters(self):
        outcome = minimize_energy(lambda x: 1.5, 0)
        assert outcome.energy == 1.5
        assert outcome.iterations == 0

    def test_bad_method(self):
        with pytest.raises(ValueError):
            minimize_energy(lambda x: 0.0, 1, method="ADAM")

    def test_bad_initial_length(self):
        with pytest.raises(ValueError):
            minimize_energy(lambda x: 0.0, 2, initial=[0.0])

    def test_cobyla_path(self):
        outcome = minimize_energy(
            lambda x: float((x[0] + 1.0) ** 2), 1, method="COBYLA"
        )
        assert outcome.parameters[0] == pytest.approx(-1.0, abs=1e-2)


class TestMeasurementGrouping:
    def test_compatible_strings_grouped(self):
        h = PauliSum.from_label_dict({"XI": 1.0, "IX": 1.0, "XX": 1.0})
        groups = group_commuting_terms(h)
        assert len(groups) == 1

    def test_conflicting_strings_split(self):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 1.0})
        groups = group_commuting_terms(h)
        assert len(groups) == 2

    def test_group_witness_accumulates(self):
        group = MeasurementGroup(2)
        group.add(1.0, PauliString.from_label("XI"))
        group.add(1.0, PauliString.from_label("IZ"))
        assert group.witness.label() == "XZ"

    def test_incompatible_add_rejected(self):
        group = MeasurementGroup(2)
        group.add(1.0, PauliString.from_label("XI"))
        with pytest.raises(ValueError):
            group.add(1.0, PauliString.from_label("ZI"))

    def test_grouping_covers_all_terms(self):
        problem = build_molecule_hamiltonian("LiH")
        groups = group_commuting_terms(problem.hamiltonian)
        total = sum(len(g.terms) for g in groups)
        assert total == len(problem.hamiltonian)
        assert len(groups) < len(problem.hamiltonian)  # grouping actually helps


class TestBondScan:
    def test_scan_produces_expected_grid(self):
        points = bond_scan("H2", [0.6, 0.735], ["full", "50%"], max_iterations=60)
        assert len(points) == 4
        labels = {(p.bond_length, p.configuration) for p in points}
        assert (0.735, "full") in labels

    def test_scan_errors_small_for_full_ansatz(self):
        points = bond_scan("H2", [0.735], ["full"], max_iterations=60)
        assert abs(points[0].error) < 1e-6

    def test_random_configuration_parses(self):
        points = bond_scan("H2", [0.735], ["rand50%"], max_iterations=60, seed=2)
        assert points[0].num_parameters == 2

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            bond_scan("H2", [0.7], ["half"])
