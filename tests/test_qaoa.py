"""QAOA ansatz construction, semantics, and pipeline integration."""

import numpy as np
import pytest

from repro.ansatz import CircuitAnsatz, QAOAAnsatz, build_qaoa_ansatz
from repro.core import Pipeline, PipelineConfig
from repro.problems import get_problem, maxcut_hamiltonian, ring_graph
from repro.sim import ExpectationEngine, basis_state
from repro.sim.pauli_evolution import evolve_pauli_sequence


def _state(ansatz, gammas, betas):
    program = ansatz.program
    params = ansatz.parameters(gammas, betas)
    state = basis_state(program.num_qubits, 0)
    return evolve_pauli_sequence(program.bound_terms(params), state)


class TestBuildQAOA:
    def test_structure(self):
        hamiltonian = maxcut_hamiltonian(ring_graph(4))
        ansatz = build_qaoa_ansatz(hamiltonian, layers=2)
        assert isinstance(ansatz, QAOAAnsatz)
        assert ansatz.num_qubits == 4
        # 1 shared prep parameter + (gamma, beta) per layer.
        assert ansatz.num_parameters == 5
        # 4 prep Y + 2 * (4 ZZ cost + 4 X mixer); identity term dropped.
        assert ansatz.num_pauli_strings == 4 + 2 * 8

    def test_identity_terms_skipped(self):
        hamiltonian = maxcut_hamiltonian(ring_graph(4))
        ansatz = build_qaoa_ansatz(hamiltonian, layers=1)
        assert all(
            not term.pauli.is_identity() for term in ansatz.program.terms
        )

    def test_rejects_bad_inputs(self):
        hamiltonian = maxcut_hamiltonian(ring_graph(4))
        with pytest.raises(ValueError):
            build_qaoa_ansatz(hamiltonian, layers=0)
        with pytest.raises(ValueError):
            build_qaoa_ansatz(hamiltonian, layers=1, initial_state="bell")

    def test_parameters_validates_lengths(self):
        ansatz = build_qaoa_ansatz(maxcut_hamiltonian(ring_graph(4)), layers=2)
        with pytest.raises(ValueError):
            ansatz.parameters([0.1], [0.2, 0.3])


class TestQAOASemantics:
    def test_zero_angles_prepare_uniform_superposition(self):
        graph = ring_graph(4)
        ansatz = build_qaoa_ansatz(maxcut_hamiltonian(graph), layers=1)
        state = _state(ansatz, [0.0], [0.0])
        # |+>^4: every amplitude 1/4 (up to global phase).
        assert np.allclose(np.abs(state), 0.25)
        # <H_cut> over the uniform distribution = |E| / 2.
        engine = ExpectationEngine(maxcut_hamiltonian(graph))
        assert engine.value(state) == pytest.approx(graph.num_edges / 2)

    def test_optimized_angles_beat_random_guessing(self):
        # Known-good p=1 angles for the ring: the expected cut must
        # strictly exceed the uniform-superposition baseline.
        graph = ring_graph(6)
        hamiltonian = maxcut_hamiltonian(graph)
        ansatz = build_qaoa_ansatz(hamiltonian, layers=1)
        engine = ExpectationEngine(hamiltonian)
        best = max(
            engine.value(_state(ansatz, [g], [b]))
            for g in np.linspace(0.2, 1.2, 6)
            for b in np.linspace(0.2, 1.2, 6)
        )
        assert best > graph.num_edges / 2 + 0.5

    def test_layers_are_not_reordered(self):
        # The p=2 state differs from p=1 applied twice with swapped
        # angle pairs: layer order is semantic.
        hamiltonian = maxcut_hamiltonian(ring_graph(4))
        ansatz = build_qaoa_ansatz(hamiltonian, layers=2)
        forward = _state(ansatz, [0.4, 0.9], [0.3, 0.7])
        swapped = _state(ansatz, [0.9, 0.4], [0.7, 0.3])
        assert abs(abs(np.vdot(forward, swapped)) - 1.0) > 1e-3


class TestQAOAPipeline:
    @pytest.mark.parametrize("compiler", ["mtr", "sabre"])
    def test_end_to_end(self, compiler):
        config = PipelineConfig(
            problem="maxcut:er-8-5",
            qaoa_layers=2,
            device="xtree8",
            compiler=compiler,
        )
        result = Pipeline(config).run()
        assert result.metrics["problem"] == "maxcut:er-8-5"
        assert result.metrics["num_qubits"] == 8
        assert result.metrics["total_cnots"] > 0
        assert result.metrics["scheduled_depth"] > 0

    def test_pipeline_is_cached_and_deterministic(self):
        from repro.core.cache import clear_compile_cache, compile_cache

        config = PipelineConfig(
            problem="maxcut:reg3-6-2", device="grid2x3", compiler="sabre"
        )
        clear_compile_cache()
        cold = Pipeline(config).run()
        cold_hits, cold_misses = compile_cache().stats.hits, compile_cache().stats.misses
        warm = Pipeline(config).run()
        warm_hits, warm_misses = compile_cache().stats.hits, compile_cache().stats.misses
        assert warm_hits > cold_hits
        assert warm_misses == cold_misses
        assert cold.metrics == warm.metrics

    def test_circuit_ansatz_path(self, tmp_path):
        from repro.circuit import Circuit
        from repro.circuit.gates import CNOT, H, RZ
        from repro.circuit.qasm import to_qasm

        circuit = Circuit(4, [H(0), CNOT(0, 1), RZ(0.3, 1), CNOT(1, 2), CNOT(2, 3)])
        path = tmp_path / "chain.qasm"
        path.write_text(to_qasm(circuit))
        result = Pipeline(
            PipelineConfig(problem=f"qasm:{path}", device="xtree6", compiler="mtr")
        ).run()
        assert isinstance(result.full_ansatz, CircuitAnsatz)
        assert result.metrics["original_cnots"] == 3
        assert result.metrics["total_cnots"] >= 3

    def test_hubbard_problem_compiles(self):
        problem = get_problem("hubbard:2")
        assert problem.num_qubits >= 2
        result = Pipeline(
            PipelineConfig(problem="hubbard:2", device="xtree5", compiler="sabre")
        ).run()
        assert result.metrics["total_cnots"] > 0
