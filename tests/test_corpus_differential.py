"""Differential testing of both compiler flows over the QASM corpus.

Every committed corpus circuit is compiled by both flows (Merge-to-Root
spanning-tree mode and SABRE) under every knob combination the issue
names -- ``commute`` x ``fusion`` -- and each configuration must
reproduce the logical circuit's statevector exactly (up to global
phase) through the final layout.  The two flows are thereby checked
against each other *and* against the gate-level reference simulator.

Compilation results are memoized per (circuit, compiler, commute) so
the fusion / sanitizer / cancellation variants reuse one routed
circuit instead of recompiling.
"""

import functools
from pathlib import Path

import numpy as np
import pytest

import repro.analysis as analysis
from repro.bench.corpus import CORPUS_COMPILERS, corpus_devices, load_corpus
from repro.compiler import (
    assert_circuit_routed_equivalent,
    cancel_gates,
    fuse_circuit,
    get_compiler,
)
from repro.core import Pipeline, PipelineConfig
from repro.hardware import get_device
from repro.sim import apply_circuit, basis_state

CORPUS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)
NAMES = [name for name, _ in ENTRIES]
CIRCUITS = dict(ENTRIES)

COMMUTE_MODES = (False, True)
FUSION_LEVELS = ("off", "2q")


def test_corpus_is_present_and_large_enough():
    assert len(ENTRIES) >= 24, f"corpus too small: {len(ENTRIES)} circuits"


@functools.lru_cache(maxsize=None)
def compiled(name: str, compiler: str, commute: bool):
    """Route one corpus circuit on its exact-fit XTree device."""
    circuit = CIRCUITS[name]
    device_name = corpus_devices(circuit.num_qubits)[0]
    device = get_device(device_name)
    result = get_compiler(compiler).compile_circuit(
        circuit, device, commute=commute
    )
    return result, device


@pytest.mark.parametrize("commute", COMMUTE_MODES, ids=["commute0", "commute1"])
@pytest.mark.parametrize("compiler", CORPUS_COMPILERS)
@pytest.mark.parametrize("name", NAMES)
def test_routed_equivalence(name, compiler, commute):
    """Both flows must preserve the logical unitary on every circuit."""
    result, _ = compiled(name, compiler, commute)
    assert_circuit_routed_equivalent(CIRCUITS[name], result)


@pytest.mark.parametrize("level", FUSION_LEVELS)
@pytest.mark.parametrize("compiler", CORPUS_COMPILERS)
@pytest.mark.parametrize("name", NAMES)
def test_fusion_preserves_routed_state(name, compiler, level):
    """Gate fusion over the routed circuit must not change its state."""
    result, _ = compiled(name, compiler, False)
    routed = result.circuit.decompose_swaps()
    fused = fuse_circuit(routed, level=level)
    state = fused.apply(basis_state(routed.num_qubits, 0))
    reference = apply_circuit(routed)
    assert abs(abs(np.vdot(reference, state)) - 1.0) < 1e-8


@pytest.mark.parametrize("compiler", CORPUS_COMPILERS)
@pytest.mark.parametrize("name", NAMES)
def test_sanitizer_clean(name, compiler):
    """Every routed result passes the full static check registry."""
    result, device = compiled(name, compiler, False)
    report = analysis.check(result, device=device, subject=f"{name}/{compiler}")
    assert report.ok, report.to_dict()


@pytest.mark.parametrize("compiler", CORPUS_COMPILERS)
@pytest.mark.parametrize("name", NAMES)
def test_commute_cancellation_stays_equivalent(name, compiler):
    """Commutation-aware cancellation of the routed circuit is safe."""
    result, _ = compiled(name, compiler, False)
    routed = result.circuit.decompose_swaps()
    optimized = cancel_gates(routed, commute=True, max_passes=routed.num_gates() + 2)
    assert optimized.num_cnots() <= routed.num_cnots()
    assert_circuit_routed_equivalent(CIRCUITS[name], result, circuit=optimized)


@pytest.mark.parametrize("compiler", CORPUS_COMPILERS)
@pytest.mark.parametrize(
    "name", [n for n in NAMES if "_n06" in n or "2bit" in n]
)
def test_compile_cache_hit_determinism(name, compiler):
    """Warm pipeline runs must hit the compile cache and agree exactly."""
    from repro.core.cache import clear_compile_cache, compile_cache

    config = PipelineConfig(
        problem=f"qasm:{CORPUS_DIR / f'{name}.qasm'}",
        device=corpus_devices(CIRCUITS[name].num_qubits)[0],
        compiler=compiler,
    )
    clear_compile_cache()
    cold = Pipeline(config).run()
    cold_hits = compile_cache().stats.hits
    cold_misses = compile_cache().stats.misses
    warm = Pipeline(config).run()
    assert compile_cache().stats.hits > cold_hits
    assert compile_cache().stats.misses == cold_misses
    assert cold.metrics == warm.metrics
