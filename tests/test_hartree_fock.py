"""Hartree-Fock SCF tests against literature STO-3G energies."""

import numpy as np
import pytest

from repro.chem.hartree_fock import run_rhf
from repro.chem.integrals import build_basis, compute_integrals
from repro.chem.molecules import molecule_by_name


def rhf_for(name: str, bond_length: float | None = None):
    molecule = molecule_by_name(name, bond_length)
    basis = build_basis(molecule.symbols, molecule.coordinates_bohr)
    tables = compute_integrals(basis, molecule.charges, molecule.coordinates_bohr)
    return run_rhf(tables, molecule.num_electrons), tables


class TestEnergies:
    def test_h2_energy_matches_literature(self):
        result, _ = rhf_for("H2", 0.7414)
        assert result.energy == pytest.approx(-1.1167, abs=2e-3)

    def test_lih_energy_matches_literature(self):
        result, _ = rhf_for("LiH", 1.595)
        assert result.energy == pytest.approx(-7.862, abs=5e-3)

    def test_h2o_energy_matches_literature(self):
        result, _ = rhf_for("H2O", 0.958)
        assert result.energy == pytest.approx(-74.963, abs=1e-2)

    @pytest.mark.slow
    def test_nah_energy_matches_literature(self):
        result, _ = rhf_for("NaH", 1.887)
        assert result.energy == pytest.approx(-160.31, abs=5e-2)


class TestSCFProperties:
    def test_converged_flag_and_iterations(self):
        result, _ = rhf_for("H2")
        assert result.converged
        assert result.iterations >= 1

    def test_density_trace_counts_electrons(self):
        result, tables = rhf_for("LiH")
        # Tr(D S) = number of electrons.
        trace = np.trace(result.density @ tables.overlap)
        assert trace == pytest.approx(4.0, abs=1e-8)

    def test_orbital_energies_sorted(self):
        result, _ = rhf_for("H2O")
        assert np.all(np.diff(result.mo_energies) >= -1e-10)

    def test_aufbau_gap(self):
        result, _ = rhf_for("H2")
        homo = result.mo_energies[result.num_occupied - 1]
        lumo = result.mo_energies[result.num_occupied]
        assert lumo > homo

    def test_mo_orthonormality(self):
        result, tables = rhf_for("LiH")
        c = result.mo_coefficients
        identity = c.T @ tables.overlap @ c
        np.testing.assert_allclose(identity, np.eye(c.shape[1]), atol=1e-8)

    def test_odd_electron_count_rejected(self):
        molecule = molecule_by_name("H2")
        basis = build_basis(molecule.symbols, molecule.coordinates_bohr)
        tables = compute_integrals(basis, molecule.charges, molecule.coordinates_bohr)
        with pytest.raises(ValueError):
            run_rhf(tables, 3)

    def test_energy_below_hcore_guess(self):
        # The converged energy must not exceed the first-iteration energy.
        result, _ = rhf_for("H2O")
        assert result.energy < 0.0

    def test_stretched_bond_still_converges(self):
        result, _ = rhf_for("H2", 2.0)
        assert result.converged
