"""Tests for the Gaussian integral engine against analytic references."""

import math

import numpy as np
import pytest

from repro.chem.basis_data import shells_for_element, num_basis_functions
from repro.chem.integrals import (
    BasisFunction,
    boys,
    build_basis,
    compute_integrals,
    nuclear_repulsion,
    _hermite_coefficients,
    _overlap_contracted,
    _primitive_eri,
    _primitive_kinetic,
    _primitive_nuclear,
    _primitive_overlap,
)


def s_function(alpha: float, center=(0.0, 0.0, 0.0)) -> BasisFunction:
    """A single normalized s primitive as a contracted function."""
    norm = (2.0 * alpha / math.pi) ** 0.75
    return BasisFunction(
        center=center,
        powers=(0, 0, 0),
        exponents=(alpha,),
        coefficients=(norm,),
        atom_index=0,
        label="test",
    )


class TestBasisData:
    def test_hydrogen_exponents_match_published(self):
        shell = shells_for_element("H")[0]
        np.testing.assert_allclose(
            shell.exponents, (3.425250914, 0.6239137298, 0.168855404), rtol=1e-4
        )

    def test_carbon_2sp_exponents_match_published(self):
        shells = shells_for_element("C")
        np.testing.assert_allclose(
            shells[1].exponents, (2.9412494, 0.6834831, 0.2222899), rtol=1e-4
        )

    def test_basis_function_counts(self):
        assert num_basis_functions("H") == 1
        assert num_basis_functions("C") == 5
        assert num_basis_functions("Na") == 9

    def test_unknown_element_rejected(self):
        with pytest.raises(ValueError):
            shells_for_element("Xx")


class TestBoys:
    def test_zero_argument(self):
        assert boys(0, 0.0) == pytest.approx(1.0)
        assert boys(2, 0.0) == pytest.approx(1.0 / 5.0)

    def test_f0_closed_form(self):
        # F0(x) = sqrt(pi/(4x)) erf(sqrt(x)).
        from scipy.special import erf

        for x in (0.1, 1.0, 5.0, 20.0):
            expected = 0.5 * math.sqrt(math.pi / x) * erf(math.sqrt(x))
            assert boys(0, x) == pytest.approx(expected, rel=1e-10)

    def test_downward_consistency(self):
        # Recurrence: F_{n+1}(x) = ((2n+1) F_n(x) - exp(-x)) / (2x).
        x = 2.7
        for n in range(4):
            expected = ((2 * n + 1) * boys(n, x) - math.exp(-x)) / (2 * x)
            assert boys(n + 1, x) == pytest.approx(expected, rel=1e-9)


class TestHermiteCoefficients:
    def test_ss_is_one(self):
        e = _hermite_coefficients(0, 0, 0.3, -0.2, 1.7)
        assert e[0] == pytest.approx(1.0)

    def test_total_weight_p(self):
        # E for (l1=1, l2=0): E0 = PA, E1 = 1/(2p).
        pa, p = 0.4, 2.0
        e = _hermite_coefficients(1, 0, pa, 0.0, p)
        assert e[0] == pytest.approx(pa)
        assert e[1] == pytest.approx(1.0 / (2 * p))


class TestPrimitiveIntegrals:
    def test_normalized_s_overlap(self):
        f = s_function(0.8)
        assert _overlap_contracted(f, f) == pytest.approx(1.0)

    def test_s_overlap_distance_decay(self):
        alpha = 1.1
        a = s_function(alpha)
        b = s_function(alpha, center=(0.0, 0.0, 1.0))
        # <a|b> = exp(-alpha/2 * R^2) for equal-exponent normalized s.
        expected = math.exp(-alpha / 2.0)
        assert _overlap_contracted(a, b) == pytest.approx(expected, rel=1e-10)

    def test_kinetic_single_gaussian(self):
        # <T> of a normalized s Gaussian = 3 alpha / 2.
        alpha = 0.9
        norm = (2.0 * alpha / math.pi) ** 0.75
        value = norm**2 * _primitive_kinetic(
            alpha, (0, 0, 0), (0, 0, 0, ), alpha, (0, 0, 0), (0.0, 0.0, 0.0)
        )
        assert value == pytest.approx(1.5 * alpha, rel=1e-10)

    def test_nuclear_attraction_on_center(self):
        # <V> for s Gaussian at the nucleus = -2 sqrt(2 alpha / pi) * Z.
        alpha = 1.3
        norm = (2.0 * alpha / math.pi) ** 0.75
        value = norm**2 * _primitive_nuclear(
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
            (0.0, 0.0, 0.0),
        )
        expected = 2.0 * math.sqrt(2.0 * alpha / math.pi)
        assert value == pytest.approx(expected, rel=1e-10)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.3])
    def test_eri_self_repulsion(self, alpha):
        # Closed form for a normalized s Gaussian: (aa|aa) = 2 sqrt(alpha/pi).
        norm = (2.0 * alpha / math.pi) ** 0.75
        value = norm**4 * _primitive_eri(
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
            alpha, (0, 0, 0), (0.0, 0.0, 0.0),
        )
        assert value == pytest.approx(2.0 * math.sqrt(alpha / math.pi), rel=1e-8)

    def test_eri_symmetry(self):
        a = s_function(0.7)
        b = s_function(1.3, center=(0.0, 0.0, 0.9))
        args_ab = (0.7, (0, 0, 0), a.center, 1.3, (0, 0, 0), b.center)
        value_abab = _primitive_eri(*args_ab, *args_ab)
        args_ba = (1.3, (0, 0, 0), b.center, 0.7, (0, 0, 0), a.center)
        value_baba = _primitive_eri(*args_ba, *args_ba)
        assert value_abab == pytest.approx(value_baba, rel=1e-10)


class TestMoleculeIntegrals:
    def test_nuclear_repulsion_h2(self):
        coords = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.4]])
        assert nuclear_repulsion([1, 1], coords) == pytest.approx(1.0 / 1.4)

    def test_h2_overlap_matrix(self):
        coords = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.4]])
        basis = build_basis(["H", "H"], coords)
        tables = compute_integrals(basis, [1, 1], coords)
        assert tables.overlap[0, 0] == pytest.approx(1.0, abs=1e-8)
        # Textbook STO-3G H2 overlap at R = 1.4 bohr.
        assert tables.overlap[0, 1] == pytest.approx(0.6593, abs=2e-3)

    def test_h2_hcore_values(self):
        # Szabo & Ostlund Table 3.5 values (R = 1.4 bohr).
        coords = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.4]])
        basis = build_basis(["H", "H"], coords)
        tables = compute_integrals(basis, [1, 1], coords)
        assert tables.kinetic[0, 0] == pytest.approx(0.7600, abs=2e-3)
        assert tables.kinetic[0, 1] == pytest.approx(0.2365, abs=2e-3)
        hcore = tables.kinetic + tables.nuclear
        assert hcore[0, 0] == pytest.approx(-1.1204, abs=3e-3)

    def test_eri_eightfold_symmetry(self):
        coords = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.5]])
        basis = build_basis(["H", "H"], coords)
        tables = compute_integrals(basis, [1, 1], coords)
        eri = tables.eri
        assert eri[0, 1, 0, 1] == pytest.approx(eri[1, 0, 1, 0], rel=1e-10)
        assert eri[0, 1, 0, 0] == pytest.approx(eri[0, 0, 0, 1], rel=1e-10)
