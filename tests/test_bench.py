"""Tests for the experiment harness (repro.bench)."""

import numpy as np
import pytest

from repro.bench import (
    TABLE1_PAPER,
    convergence_speedups,
    fig11_data,
    format_table,
    table1_rows,
)
from repro.bench.fig9 import default_bond_lengths, fig9_data, summarize
from repro.bench.fig11 import mean_advantage
from repro.bench.table2 import PAPER_RATIOS, TABLE2_PAPER, table2_row
from repro.vqe.scan import ScanPoint


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-7]])
        assert "e-07" in text


class TestTable1Harness:
    def test_h2_row_matches_paper(self):
        rows = table1_rows(["H2"])
        assert rows[0].as_tuple() == TABLE1_PAPER["H2"]

    def test_paper_reference_complete(self):
        assert len(TABLE1_PAPER) == 9


class TestTable2Harness:
    def test_paper_reference_shape(self):
        assert set(PAPER_RATIOS) == {0.1, 0.3, 0.5, 0.7, 0.9}
        for molecule, by_ratio in TABLE2_PAPER.items():
            assert set(by_ratio) == set(PAPER_RATIOS), molecule

    def test_h2_row_runs_and_matches_structure(self):
        row = table2_row("H2", 0.5, include_grid=False)
        assert row.original_cnots == 52  # paper's value for H2 @ 50%
        assert row.sabre_grid_overhead is None
        assert row.mtr_xtree_overhead % 3 == 0


class TestFig9Harness:
    def test_default_bond_lengths_bracket_equilibrium(self):
        lengths = default_bond_lengths("LiH", count=3, spread=0.2)
        assert len(lengths) == 3
        assert lengths[0] < 1.595 < lengths[-1]

    def test_single_point(self):
        assert default_bond_lengths("H2", count=1) == [0.735]

    def test_fig9_smallest_run(self):
        points = fig9_data(
            ["H2"],
            configurations=["50%", "full"],
            points_per_molecule=1,
            max_iterations=50,
        )
        assert {p.configuration for p in points} == {"50%", "full"}
        summaries = summarize(points)
        full = next(s for s in summaries if s.configuration == "full")
        assert full.mean_error < 1e-6

    def test_speedup_computation(self):
        def point(config, iters):
            return ScanPoint(
                molecule="X",
                bond_length=1.0,
                configuration=config,
                energy=-1.0,
                exact_energy=-1.0,
                hf_energy=-0.9,
                iterations=iters,
                num_parameters=4,
            )

        points = [point("full", 10), point("50%", 5), point("10%", 2)]
        speedups = convergence_speedups(points)
        assert speedups["50%"] == pytest.approx(2.0)
        assert speedups["10%"] == pytest.approx(5.0)


class TestFig11Harness:
    def test_sweep_structure(self):
        comparisons = fig11_data(precisions=(0.3, 0.5), trials=200, seed=2)
        assert [c.precision for c in comparisons] == [0.3, 0.5]
        for comparison in comparisons:
            assert 0.0 <= comparison.xtree_yield <= 1.0
            assert 0.0 <= comparison.grid_yield <= 1.0

    def test_mean_advantage_geometric(self):
        from repro.bench.fig11 import YieldComparison

        comparisons = [
            YieldComparison(0.2, 0.4, 0.1),  # 4x
            YieldComparison(0.4, 0.1, 0.1),  # 1x
        ]
        assert mean_advantage(comparisons) == pytest.approx(2.0)

    def test_mean_advantage_empty(self):
        from repro.bench.fig11 import YieldComparison

        assert np.isnan(mean_advantage([YieldComparison(0.2, 0.0, 0.0)]))


class TestAblationHarness:
    def test_layout_ablation_runs(self):
        from repro.bench.ablation import layout_ablation

        results = layout_ablation("LiH", ratios=(0.5,))
        assert len(results) == 1
        assert results[0].hierarchical_swaps >= 0

    def test_ordering_ablation_runs(self):
        from repro.bench.ablation import ordering_ablation

        results = ordering_ablation("LiH", ratios=(0.5,))
        assert results[0].importance_ordered_swaps >= 0

    def test_tree_size_sweep(self):
        from repro.ansatz import build_uccsd_program
        from repro.bench.ablation import tree_size_sweep
        from repro.chem import build_molecule_hamiltonian

        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        results = tree_size_sweep(program, sizes=(5, 17))
        assert set(results) == {5, 17}
