"""Tests for coupling graphs, X-Tree construction, grids and yield model."""

import numpy as np
import pytest

from repro.hardware import (
    CollisionModel,
    CouplingGraph,
    allocate_frequencies,
    estimate_yield,
    grid,
    grid17q,
    xtree,
)
from repro.hardware.frequency import chip_functions
from repro.hardware.yield_model import yield_sweep


class TestCouplingGraph:
    def test_duplicate_edges_normalized(self):
        g = CouplingGraph(3, [(0, 1), (1, 0), (1, 2)])
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 5)])

    def test_distance_matrix_path(self):
        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        distances = g.distance_matrix()
        assert distances[0, 3] == 3
        assert distances[1, 1] == 0

    def test_levels_from_center(self):
        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        # Center of a path = middle node.
        assert g.center in (1, 2)
        assert g.max_level() == 2

    def test_parent_child_relations(self):
        tree = xtree(8)
        for qubit in range(1, 8):
            parent = tree.parent(qubit)
            assert parent is not None
            assert tree.levels()[parent] == tree.levels()[qubit] - 1
            assert qubit in tree.children(parent)

    def test_is_tree(self):
        assert xtree(17).is_tree()
        assert not grid17q().is_tree()
        assert not grid(2, 3).is_tree()


class TestXTree:
    @pytest.mark.parametrize("size", [1, 2, 5, 8, 17, 26, 40])
    def test_minimal_connections(self, size):
        tree = xtree(size)
        assert tree.num_edges == size - 1
        assert tree.is_connected()

    def test_degree_bound(self):
        for size in (5, 8, 17, 26, 64):
            tree = xtree(size)
            assert max(tree.degree(q) for q in range(size)) <= 4

    def test_xtree17_level_structure(self):
        # Figure 6: root, 4 level-1 qubits, 12 level-2 qubits.
        tree = xtree(17)
        levels = tree.levels()
        assert levels.count(0) == 1
        assert levels.count(1) == 4
        assert levels.count(2) == 12

    def test_xtree5_is_star(self):
        tree = xtree(5)
        assert tree.degree(0) == 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            xtree(0)


class TestGrid:
    def test_grid17_edge_count(self):
        # The paper: Grid17Q has 24 connections vs XTree17Q's 16.
        assert grid17q().num_edges == 24
        assert xtree(17).num_edges == 16

    def test_grid17_connected_and_degree(self):
        g = grid17q()
        assert g.is_connected()
        assert max(g.degree(q) for q in range(17)) == 4

    def test_generic_grid_edges(self):
        g = grid(3, 4)
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            grid(0, 3)


class TestFrequencyModel:
    def test_degenerate_pair_collides(self):
        model = CollisionModel()
        assert model.pair_collides(5.00, 5.005)

    def test_well_separated_pair_ok(self):
        model = CollisionModel()
        assert not model.pair_collides(5.00, 5.10)

    def test_too_far_pair_collides(self):
        # Detuning beyond |anharmonicity| makes the CR gate unusable.
        model = CollisionModel()
        assert model.pair_collides(5.00, 5.40)

    def test_spectator_degeneracy(self):
        model = CollisionModel()
        assert model.spectator_collides(5.10, 5.11)
        assert not model.spectator_collides(5.10, 5.20)

    def test_allocation_is_collision_free(self):
        for device in (xtree(17), grid17q()):
            frequencies = allocate_frequencies(device)
            assert chip_functions(device, frequencies), device.name

    def test_allocation_within_band(self):
        frequencies = allocate_frequencies(xtree(8), f_min=5.0, f_max=5.3)
        assert np.all(frequencies >= 5.0 - 1e-9)
        assert np.all(frequencies <= 5.3 + 1e-9)


class TestYield:
    def test_zero_noise_perfect_yield(self):
        estimate = estimate_yield(xtree(8), 0.0, trials=50)
        assert estimate.yield_rate == 1.0

    def test_yield_decreases_with_precision(self):
        estimates = yield_sweep(xtree(17), [0.05, 0.3, 0.6], trials=300, seed=5)
        rates = [e.yield_rate for e in estimates]
        assert rates[0] >= rates[1] >= rates[2]

    def test_xtree_beats_grid(self):
        """The Figure 11 headline: sparser X-Tree yields strictly better."""
        precision = 0.25
        xtree_estimate = estimate_yield(xtree(17), precision, trials=600, seed=9)
        grid_estimate = estimate_yield(grid17q(), precision, trials=600, seed=9)
        assert xtree_estimate.yield_rate > grid_estimate.yield_rate

    def test_negative_precision_rejected(self):
        with pytest.raises(ValueError):
            estimate_yield(xtree(5), -0.1, trials=10)

    def test_reproducible_with_seed(self):
        a = estimate_yield(xtree(8), 0.3, trials=200, seed=3)
        b = estimate_yield(xtree(8), 0.3, trials=200, seed=3)
        assert a.yield_rate == b.yield_rate
