"""Tests for the fast-path simulation engines (ISSUE 3).

Covers the four contract points of the engine work:

* in-place gate kernels agree with the legacy tensordot engine on
  random circuits (single states and batches);
* the batched parameter sweep agrees with sequential evaluation (both
  the real-orthogonal fast path and the generic complex path);
* the adjoint gradient agrees with parameter shift to 1e-8;
* ``engine="legacy"`` stays wired end to end as a regression guard.
"""

import numpy as np
import pytest

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.circuit import Circuit
from repro.circuit.gates import (
    CNOT,
    CZ,
    H,
    RX,
    RY,
    RZ,
    S,
    SDG,
    SWAP,
    X,
    Y,
    Z,
)
from repro.core import Energy, Pipeline, PipelineConfig
from repro.pauli import PauliString
from repro.sim import (
    BatchedStatevector,
    ExpectationEngine,
    StatevectorSimulator,
    apply_circuit,
    apply_circuit_inplace,
    basis_state,
    check_engine,
)
from repro.sim.batched import real_evolution_compatible
from repro.vqe import VQE, AdjointGradient, ParameterShiftGradient, sweep_energies
from repro.vqe.energy import StatevectorEnergy


def random_circuit(num_qubits: int, depth: int, seed: int) -> Circuit:
    """A random circuit covering every gate the kernels specialize."""
    rng = np.random.default_rng(seed)
    gates = []
    for _ in range(depth):
        q = int(rng.integers(0, num_qubits))
        q2 = int((q + 1 + rng.integers(0, num_qubits - 1)) % num_qubits)
        theta = float(rng.normal())
        choices = [
            H(q), X(q), Y(q), Z(q), S(q), SDG(q),
            RX(theta, q), RY(theta, q), RZ(theta, q),
            CNOT(q, q2), CZ(q, q2), SWAP(q, q2),
        ]
        gates.append(choices[int(rng.integers(0, len(choices)))])
    return Circuit(num_qubits, gates)


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return state / np.linalg.norm(state)


class TestInplaceGateKernels:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_legacy_on_random_circuits(self, seed):
        num_qubits = 3 + seed % 3
        circuit = random_circuit(num_qubits, depth=40, seed=seed)
        state = random_state(num_qubits, seed)
        legacy = apply_circuit(circuit, state, engine="legacy")
        inplace = apply_circuit(circuit, state, engine="inplace")
        np.testing.assert_allclose(inplace, legacy, atol=1e-12)

    def test_two_qubit_edge_case(self):
        """n == 2 exercises the all-axes-indexed slab path."""
        circuit = random_circuit(2, depth=30, seed=3)
        state = random_state(2, 5)
        np.testing.assert_allclose(
            apply_circuit(circuit, state, engine="inplace"),
            apply_circuit(circuit, state, engine="legacy"),
            atol=1e-12,
        )

    def test_input_state_not_mutated(self):
        state = random_state(3, 1)
        before = state.copy()
        apply_circuit(random_circuit(3, 20, 2), state, engine="inplace")
        np.testing.assert_array_equal(state, before)

    def test_inplace_mutates_buffer(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1)])
        state = basis_state(2)
        returned = apply_circuit_inplace(circuit, state)
        assert returned is state
        np.testing.assert_allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_batched_leading_axis(self):
        circuit = random_circuit(4, depth=30, seed=9)
        stack = np.stack([random_state(4, s) for s in range(5)])
        batch = stack.copy()
        apply_circuit_inplace(circuit, batch)
        for row, single in zip(batch, stack):
            np.testing.assert_allclose(
                row, apply_circuit(circuit, single, engine="legacy"), atol=1e-12
            )

    def test_rejects_noncontiguous_buffer(self):
        from repro.sim import apply_gate_inplace

        state = np.zeros((2, 8), dtype=complex)[::, ::2]  # non-contiguous view
        with pytest.raises(ValueError, match="contiguous"):
            apply_gate_inplace(np.asarray(state)[0], H(0), 2)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            check_engine("warp")
        with pytest.raises(ValueError):
            apply_circuit(Circuit(1, [H(0)]), engine="warp")


class TestSimulatorEngines:
    @pytest.mark.parametrize("engine", ["inplace", "batched", "legacy"])
    def test_simulator_runs_under_every_engine(self, engine):
        simulator = StatevectorSimulator(3, seed=0, engine=engine)
        simulator.run(Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2)]))
        probabilities = simulator.probabilities()
        np.testing.assert_allclose(probabilities[0], 0.5, atol=1e-12)
        np.testing.assert_allclose(probabilities[7], 0.5, atol=1e-12)

    def test_sample_rejects_unnormalized_state(self):
        simulator = StatevectorSimulator(2, seed=0)
        simulator.state = simulator.state * 2.0  # break the invariant
        with pytest.raises(ValueError, match="not normalized"):
            simulator.sample(10)

    def test_sample_tolerates_float_fuzz(self):
        simulator = StatevectorSimulator(1, seed=0)
        simulator.run(Circuit(1, [H(0)]))
        simulator.state = simulator.state * (1.0 + 1e-12)
        assert len(simulator.sample(16)) == 16


class TestBatchedStatevector:
    def test_circuit_batch_matches_sequential(self):
        circuit = random_circuit(3, depth=25, seed=11)
        stack = np.stack([random_state(3, s) for s in range(4)])
        batch = BatchedStatevector.from_states(stack)
        batch.apply_circuit(circuit)
        for row, single in zip(batch.states, stack):
            np.testing.assert_allclose(
                row, apply_circuit(circuit, single, engine="legacy"), atol=1e-12
            )

    def test_evolve_matches_sequential_exponentials(self):
        from repro.sim.pauli_evolution import evolve_pauli_sequence

        rng = np.random.default_rng(2)
        paulis = [
            PauliString.from_label(label)
            for label in ("XYI", "ZZY", "YXZ", "IIY", "XYZ")
        ]
        angles = rng.normal(0, 0.7, (6, len(paulis)))
        batch = BatchedStatevector.broadcast(basis_state(3, 1), 6)
        batch.evolve(paulis, angles)
        for k in range(6):
            expected = evolve_pauli_sequence(
                list(zip(paulis, angles[k])), basis_state(3, 1)
            )
            np.testing.assert_allclose(batch.states[k], expected, atol=1e-10)

    def test_evolve_large_angles_hit_tan_guard(self):
        """Angles near pi/2 must take the exact (non-deferred) update."""
        from repro.sim.pauli_evolution import evolve_pauli_sequence

        paulis = [PauliString.from_label("XY"), PauliString.from_label("ZY")]
        angles = np.array([[np.pi / 2, 1.5707], [0.1, -np.pi / 2]])
        batch = BatchedStatevector.broadcast(basis_state(2, 1), 2)
        batch.evolve(paulis, angles)
        for k in range(2):
            expected = evolve_pauli_sequence(
                list(zip(paulis, angles[k])), basis_state(2, 1)
            )
            np.testing.assert_allclose(batch.states[k], expected, atol=1e-10)

    def test_norms_and_reset(self):
        batch = BatchedStatevector(2, 3)
        batch.apply_circuit(Circuit(2, [H(0), CNOT(0, 1)]))
        np.testing.assert_allclose(batch.norms(), 1.0, atol=1e-12)
        batch.reset(2)
        assert np.all(batch.states[:, 2] == 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchedStatevector(2, 0)
        with pytest.raises(ValueError):
            BatchedStatevector(2, 3, states=np.zeros((3, 5), dtype=complex))
        with pytest.raises(ValueError):
            BatchedStatevector(2, 2).evolve(
                [PauliString.from_label("XY")], np.zeros((3, 1))
            )


class TestBatchedSweeps:
    @pytest.fixture(scope="class")
    def lih(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        return program, problem.hamiltonian

    def test_uccsd_is_real_orthogonal(self, lih):
        program, _ = lih
        assert real_evolution_compatible(program.paulis())

    def test_batched_matches_sequential_sweep(self, lih):
        """Real fast path vs. one-at-a-time legacy evaluation."""
        program, hamiltonian = lih
        rng = np.random.default_rng(0)
        thetas = rng.normal(0, 0.4, (11, program.num_parameters))  # ragged tail
        batched = sweep_energies(program, hamiltonian, thetas, engine="batched")
        legacy = sweep_energies(program, hamiltonian, thetas, engine="legacy")
        np.testing.assert_allclose(batched, legacy, atol=1e-9)

    def test_complex_fallback_matches_sequential(self, lih):
        """Programs with even-#Y strings take the complex batched path."""
        from repro.core.ir import IRTerm, PauliProgram

        program, hamiltonian = lih
        terms = list(program.terms) + [
            IRTerm(PauliString.from_label("ZZ" + "I" * (program.num_qubits - 2)), 0.5, 0)
        ]
        mixed = PauliProgram(
            num_qubits=program.num_qubits,
            num_parameters=program.num_parameters,
            terms=terms,
            initial_occupations=list(program.initial_occupations),
        )
        assert not real_evolution_compatible(mixed.paulis())
        rng = np.random.default_rng(1)
        thetas = rng.normal(0, 0.3, (5, mixed.num_parameters))
        np.testing.assert_allclose(
            sweep_energies(mixed, hamiltonian, thetas, engine="batched"),
            sweep_energies(mixed, hamiltonian, thetas, engine="legacy"),
            atol=1e-9,
        )

    def test_inplace_single_point_matches_legacy(self, lih):
        program, hamiltonian = lih
        theta = np.random.default_rng(3).normal(0, 0.3, program.num_parameters)
        fast = StatevectorEnergy(program, hamiltonian, engine="inplace")
        slow = StatevectorEnergy(program, hamiltonian, engine="legacy")
        assert fast(theta) == pytest.approx(slow(theta), abs=1e-10)

    def test_expectation_values_batched(self):
        problem = build_molecule_hamiltonian("H2")
        engine = ExpectationEngine(problem.hamiltonian)
        states = np.stack([random_state(problem.num_qubits, s) for s in range(4)])
        batched = engine.values(states)
        np.testing.assert_allclose(
            batched, [engine.value(s) for s in states], atol=1e-10
        )
        real_states = np.abs(states) / np.linalg.norm(np.abs(states), axis=1)[:, None]
        np.testing.assert_allclose(
            engine.values_real(real_states),
            [engine.value(s.astype(complex)) for s in real_states],
            atol=1e-10,
        )


class TestAdjointGradient:
    @pytest.fixture(scope="class")
    def h2(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        return program, problem.hamiltonian

    def test_agrees_with_parameter_shift_h2(self, h2):
        program, hamiltonian = h2
        theta = np.random.default_rng(4).normal(0, 0.5, program.num_parameters)
        adjoint = AdjointGradient(program, hamiltonian).gradient(theta)
        shift = ParameterShiftGradient(program, hamiltonian).gradient(theta)
        np.testing.assert_allclose(adjoint, shift, atol=1e-8)

    def test_agrees_with_parameter_shift_lih(self):
        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        theta = np.random.default_rng(8).normal(0, 0.3, program.num_parameters)
        adjoint = AdjointGradient(program, problem.hamiltonian).gradient(theta)
        shift = ParameterShiftGradient(program, problem.hamiltonian).gradient(theta)
        np.testing.assert_allclose(adjoint, shift, atol=1e-8)

    def test_value_and_gradient_consistent(self, h2):
        program, hamiltonian = h2
        evaluator = AdjointGradient(program, hamiltonian)
        theta = [0.2] * program.num_parameters
        value, gradient = evaluator.value_and_gradient(theta)
        assert value == pytest.approx(evaluator.value(theta), abs=1e-12)
        np.testing.assert_allclose(gradient, evaluator.gradient(theta), atol=1e-12)

    def test_wrong_length_rejected(self, h2):
        program, hamiltonian = h2
        with pytest.raises(ValueError):
            AdjointGradient(program, hamiltonian).gradient([0.0])

    def test_vqe_with_adjoint_gradient_converges(self, h2):
        program, hamiltonian = h2
        plain = VQE(program, hamiltonian).run()
        accelerated = VQE(program, hamiltonian, gradient="adjoint").run()
        assert accelerated.energy == pytest.approx(plain.energy, abs=1e-6)
        # The analytic Jacobian replaces 2P numerical-differencing
        # evaluations per step.
        assert accelerated.function_evaluations < plain.function_evaluations

    def test_vqe_rejects_gradient_on_sampling_backend(self, h2):
        program, hamiltonian = h2
        with pytest.raises(ValueError, match="statevector"):
            VQE(program, hamiltonian, backend="sampling", gradient="adjoint")

    def test_vqe_rejects_unknown_gradient(self, h2):
        program, hamiltonian = h2
        with pytest.raises(ValueError, match="unknown gradient"):
            VQE(program, hamiltonian, gradient="magic")


class TestLegacyRegressionGuard:
    """engine="legacy" must stay selectable end to end."""

    def test_vqe_legacy_engine_matches_default(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        legacy = VQE(program, problem.hamiltonian, engine="legacy").run()
        default = VQE(program, problem.hamiltonian).run()
        assert legacy.energy == pytest.approx(default.energy, abs=1e-9)

    def test_pipeline_engine_field_round_trips(self):
        config = PipelineConfig(molecule="H2", engine="legacy")
        assert PipelineConfig.from_dict(config.to_dict()).engine == "legacy"

    def test_energy_pass_uses_config_engine(self):
        result = (
            Pipeline(PipelineConfig(molecule="H2", ratio=1.0, engine="legacy"))
            .appending(Energy(max_iterations=50))
            .run()
        )
        assert result.metrics["energy"] == pytest.approx(
            result.metrics["exact_energy"], abs=1e-4
        )

    def test_unknown_engine_rejected_at_vqe_construction(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        with pytest.raises(ValueError, match="unknown simulation engine"):
            VQE(program, problem.hamiltonian, engine="warp")
