"""Second quantization and Jordan-Wigner encoding tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.fermion import FermionOperator
from repro.chem.jordan_wigner import jordan_wigner, ladder_operator
from repro.pauli import PauliSum


class TestFermionOperator:
    def test_identity(self):
        op = FermionOperator.identity(2.5)
        assert op.coefficient(()) == 2.5

    def test_addition_merges(self):
        a = FermionOperator.creation(0)
        total = a + a
        assert total.coefficient(((0, True),)) == 2.0

    def test_multiplication_concatenates(self):
        product = FermionOperator.creation(1) * FermionOperator.annihilation(0)
        assert product.coefficient(((1, True), (0, False))) == 1.0

    def test_dagger_reverses(self):
        op = FermionOperator.from_term([(1, True), (0, False)], 2.0 + 1.0j)
        dagger = op.dagger()
        assert dagger.coefficient(((0, True), (1, False))) == 2.0 - 1.0j

    def test_generator_is_anti_hermitian(self):
        t = FermionOperator.from_term([(2, True), (0, False)])
        generator = t - t.dagger()
        assert generator.is_anti_hermitian()

    def test_max_orbital(self):
        op = FermionOperator.from_term([(5, True), (2, False)])
        assert op.max_orbital() == 5
        assert FermionOperator.identity().max_orbital() == -1

    def test_number_operator(self):
        op = FermionOperator.number(1)
        assert op.coefficient(((1, True), (1, False))) == 1.0


class TestJordanWigner:
    def test_ladder_operator_matrices(self):
        # a_0 on one qubit = [[0, 1], [0, 0]].
        a0 = ladder_operator(1, 0, creation=False).to_matrix()
        np.testing.assert_allclose(a0, [[0, 1], [0, 0]], atol=1e-12)
        adag0 = ladder_operator(1, 0, creation=True).to_matrix()
        np.testing.assert_allclose(adag0, [[0, 0], [1, 0]], atol=1e-12)

    def test_z_string_on_higher_orbital(self):
        # a_1 = (X1 + iY1)/2 * Z0: acting on |01> (q0=1) gives -|... sign.
        a1 = ladder_operator(2, 1, creation=False).to_matrix()
        state = np.zeros(4)
        state[3] = 1.0  # |q1=1, q0=1>
        result = a1 @ state
        # a_1 |11> = -|01> with the Z-chain sign convention.
        assert result[1] == pytest.approx(-1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 3), st.integers(0, 3))
    def test_canonical_anticommutation(self, p, q):
        n = 4
        a_p = ladder_operator(n, p, creation=False)
        adag_q = ladder_operator(n, q, creation=True)
        anticommutator = (a_p @ adag_q) + (adag_q @ a_p)
        expected = PauliSum.identity(n, 1.0 if p == q else 0.0)
        assert anticommutator.chop() == expected.chop()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 3), st.integers(0, 3))
    def test_annihilators_anticommute(self, p, q):
        n = 4
        a_p = ladder_operator(n, p, creation=False)
        a_q = ladder_operator(n, q, creation=False)
        assert len(((a_p @ a_q) + (a_q @ a_p)).chop()) == 0

    def test_number_operator_spectrum(self):
        n_op = jordan_wigner(FermionOperator.number(0), 1)
        np.testing.assert_allclose(n_op.to_matrix(), [[0, 0], [0, 1]], atol=1e-12)

    def test_single_excitation_string_count(self):
        # a_2+ a_0 - h.c. -> 2 Pauli strings.
        t = FermionOperator.from_term([(2, True), (0, False)])
        generator = jordan_wigner(t - t.dagger(), 3)
        assert len(generator) == 2

    def test_double_excitation_string_count(self):
        t = FermionOperator.from_term([(2, True), (3, True), (1, False), (0, False)])
        generator = jordan_wigner(t - t.dagger(), 4)
        assert len(generator) == 8

    def test_scalar_operator_needs_explicit_size(self):
        with pytest.raises(ValueError):
            jordan_wigner(FermionOperator.identity(1.0))

    def test_hermitian_operator_maps_to_hermitian_sum(self):
        t = FermionOperator.from_term([(1, True), (0, False)], 0.7)
        hermitian = t + t.dagger()
        qubit_op = jordan_wigner(hermitian, 2)
        assert qubit_op.is_hermitian()


class TestHubbard:
    def test_two_site_dimensions(self):
        from repro.chem.hubbard import hubbard_hamiltonian

        h = hubbard_hamiltonian(2, tunneling=1.0, interaction=4.0)
        assert h.num_qubits == 4
        assert h.is_hermitian()

    @staticmethod
    def _half_filled_ground_energy(h):
        """Lowest eigenvalue within the 2-electron sector."""
        matrix = h.to_matrix()
        values, vectors = np.linalg.eigh(matrix)
        dim = matrix.shape[0]
        particle_number = np.array([bin(i).count("1") for i in range(dim)])
        for value, vector in zip(values, vectors.T):
            weights = np.abs(vector) ** 2
            if abs(np.dot(weights, particle_number) - 2.0) < 1e-8:
                return value
        raise AssertionError("no 2-electron eigenstate found")

    def test_two_site_ground_state_energy(self):
        # Half-filled 2-site Hubbard: E0 = U/2 - sqrt((U/2)^2 + 4 t^2).
        from repro.chem.hubbard import hubbard_hamiltonian

        t, u = 1.0, 4.0
        h = hubbard_hamiltonian(2, tunneling=t, interaction=u)
        expected = u / 2.0 - np.sqrt((u / 2.0) ** 2 + 4.0 * t**2)
        assert self._half_filled_ground_energy(h) == pytest.approx(expected, abs=1e-8)

    def test_interaction_free_limit(self):
        from repro.chem.hubbard import hubbard_hamiltonian
        from repro.sim.exact import spectrum

        h = hubbard_hamiltonian(2, tunneling=1.0, interaction=0.0)
        # Free fermions on 2 sites: single-particle energies -t, +t;
        # the global many-body ground state fills both spins of -t.
        assert spectrum(h, k=4)[0] == pytest.approx(-2.0, abs=1e-8)

    def test_invalid_size_rejected(self):
        from repro.chem.hubbard import hubbard_hamiltonian

        with pytest.raises(ValueError):
            hubbard_hamiltonian(1)
