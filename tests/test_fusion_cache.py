"""Tests for gate fusion and the content-addressed compile cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import build_molecule_hamiltonian
from repro.circuit import Circuit
from repro.circuit.gates import CNOT, CZ, H, RX, RY, RZ, SWAP, Barrier, S, X, Y, Z
from repro.compiler.fusion import (
    FUSION_LEVELS,
    build_fusion_plan,
    check_fusion_level,
    fuse_circuit,
    fusion_plan,
)
from repro.core import compress_ansatz
from repro.core.cache import (
    CacheStats,
    ContentAddressedCache,
    circuit_key,
    clear_compile_cache,
    compile_cache,
    coupling_key,
    pauli_sum_key,
    program_key,
)
from repro.ansatz import build_uccsd_program
from repro.sim import ENGINES, BatchedStatevector, StatevectorSimulator
from repro.sim.statevector import apply_circuit, apply_unitary_inplace, basis_state

TABLE2_MOLECULES = ("H2", "LiH", "NaH", "HF", "BeH2", "H2O", "BH3", "NH3", "CH4")


# ----------------------------------------------------------------------
# Random-circuit strategies
# ----------------------------------------------------------------------
def _gate(num_qubits: int):
    angles = st.floats(
        min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
    )
    qubit = st.integers(0, num_qubits - 1)
    one_q = st.one_of(
        st.builds(H, qubit),
        st.builds(X, qubit),
        st.builds(Y, qubit),
        st.builds(Z, qubit),
        st.builds(S, qubit),
        st.builds(RX, angles, qubit),
        st.builds(RY, angles, qubit),
        st.builds(RZ, angles, qubit),
    )
    pair = st.tuples(qubit, qubit).filter(lambda ab: ab[0] != ab[1])
    two_q = pair.flatmap(
        lambda ab: st.sampled_from(
            [CNOT(ab[0], ab[1]), CZ(ab[0], ab[1]), SWAP(ab[0], ab[1])]
        )
    )
    return st.one_of(one_q, one_q, two_q, st.just(Barrier()))


def circuits(num_qubits: int, max_gates: int = 30):
    return st.builds(
        lambda gates: Circuit(num_qubits, gates),
        st.lists(_gate(num_qubits), min_size=0, max_size=max_gates),
    )


class TestFusionEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(circuit=circuits(4))
    def test_fusion_preserves_statevector(self, circuit):
        reference = apply_circuit(circuit, engine="legacy")
        for level in FUSION_LEVELS:
            program = fuse_circuit(circuit, level=level, cache=False)
            state = program.apply(basis_state(circuit.num_qubits))
            assert np.max(np.abs(state - reference)) < 1e-10

    @settings(max_examples=40, deadline=None)
    @given(circuit=circuits(3), data=st.data())
    def test_bind_sweep_matches_per_row_binding(self, circuit, data):
        rotations = [
            i for i, g in enumerate(circuit.gates) if g.name in ("rx", "ry", "rz")
        ]
        rows = 3
        overridden = data.draw(
            st.lists(st.sampled_from(rotations), unique=True)
            if rotations
            else st.just([])
        )
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        overrides = {i: rng.normal(size=rows) for i in overridden}
        plan = build_fusion_plan(circuit, "2q")
        stack = np.zeros((rows, 1 << circuit.num_qubits), dtype=complex)
        stack[:, 0] = 1.0
        plan.bind_sweep(circuit, overrides).apply(stack)
        for k in range(rows):
            gates = [
                g if i not in overrides
                else type(g)(g.name, g.qubits, (float(overrides[i][k]),))
                for i, g in enumerate(circuit.gates)
            ]
            reference = apply_circuit(Circuit(circuit.num_qubits, gates), engine="legacy")
            assert np.max(np.abs(stack[k] - reference)) < 1e-10

    def test_single_gate_blocks_stay_passthrough(self):
        circuit = Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2), CNOT(0, 1)])
        plan = build_fusion_plan(circuit, "2q")
        # H(0) and the first CNOT fuse; the ladder CNOTs conflict and
        # must remain passthrough single gates.
        assert plan.source_gates == 4
        passthrough = [op for op in plan.ops if not op.dense]
        assert all(len(op.indices) == 1 for op in passthrough)

    def test_same_pair_run_fuses_to_one_block(self):
        circuit = Circuit(2, [CNOT(0, 1), RZ(0.7, 1), CNOT(0, 1), H(0)])
        plan = build_fusion_plan(circuit, "2q")
        assert len(plan.ops) == 1 and plan.ops[0].dense
        program = plan.bind(circuit)
        state = program.apply(basis_state(2))
        assert np.max(np.abs(state - apply_circuit(circuit, engine="legacy"))) < 1e-12

    def test_level_1q_merges_only_single_qubit_runs(self):
        circuit = Circuit(2, [H(0), S(0), RZ(0.3, 0), CNOT(0, 1), H(1), H(1)])
        plan = build_fusion_plan(circuit, "1q")
        dense = [op for op in plan.ops if op.dense]
        assert all(len(op.qubits) == 1 for op in dense)
        assert len(dense) == 2  # the 3-gate run on q0 and the HH run on q1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="fusion level"):
            check_fusion_level("3q")
        with pytest.raises(ValueError, match="fusion level"):
            build_fusion_plan(Circuit(1, [H(0)]), "everything")


class TestDenseUnitaryKernel:
    @settings(max_examples=30, deadline=None)
    @given(
        qubits=st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
            lambda ab: ab[0] != ab[1]
        ),
        seed=st.integers(0, 2**16),
    )
    def test_matches_legacy_two_qubit_contraction(self, qubits, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        from repro.sim.statevector import _apply_two_qubit

        expected = _apply_two_qubit(state, matrix, qubits[0], qubits[1], 4)
        actual = apply_unitary_inplace(state.copy(), matrix, qubits, 4)
        assert np.max(np.abs(actual - expected)) < 1e-12

    def test_per_row_matrices_require_matching_stack(self):
        stack = np.zeros((3, 4), dtype=complex)
        matrices = np.tile(np.eye(2, dtype=complex), (2, 1, 1))
        with pytest.raises(ValueError, match="matching"):
            apply_unitary_inplace(stack, matrices, (0,), 2)

    def test_rejects_non_contiguous_buffers(self):
        state = np.zeros((4, 4), dtype=complex)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            apply_unitary_inplace(state, np.eye(2, dtype=complex), (0,), 1)


@pytest.mark.parametrize("molecule", TABLE2_MOLECULES)
def test_fusion_exact_on_table2_molecule(molecule):
    """Fused evolution reproduces the Pauli-level state unitary-exactly."""
    problem = build_molecule_hamiltonian(molecule)
    program = compress_ansatz(
        build_uccsd_program(problem).program, problem.hamiltonian, 0.15
    ).program
    rng = np.random.default_rng(7)
    theta = rng.normal(scale=0.1, size=program.num_parameters)
    from repro.vqe.energy import StatevectorEnergy

    exact = StatevectorEnergy(program, problem.hamiltonian, engine="inplace")
    fused = StatevectorEnergy(program, problem.hamiltonian, engine="fused")
    state_exact = exact.state(theta).copy()
    state_fused = fused.state(theta)
    assert np.max(np.abs(state_fused - state_exact)) < 1e-10
    assert abs(fused(theta) - exact(theta)) < 1e-10


class TestFusedEngineRegistration:
    def test_fused_listed_in_engines(self):
        assert "fused" in ENGINES

    def test_simulator_fused_engine_matches_legacy(self):
        circuit = Circuit(3, [H(0), CNOT(0, 1), RZ(0.4, 1), CNOT(1, 2), RX(0.9, 2)])
        expected = StatevectorSimulator(3, engine="legacy").run(circuit)
        actual = StatevectorSimulator(3, engine="fused").run(circuit)
        assert np.max(np.abs(actual - expected)) < 1e-12

    def test_batched_fused_engine_matches_inplace(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1), RZ(0.3, 1)])
        plain = BatchedStatevector(2, 3).apply_circuit(circuit)
        fused = BatchedStatevector(2, 3).apply_circuit(circuit, engine="fused")
        assert np.max(np.abs(plain.states - fused.states)) < 1e-12

    def test_apply_circuit_fused_engine(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1)])
        expected = apply_circuit(circuit, engine="inplace")
        actual = apply_circuit(circuit, engine="fused")
        assert np.max(np.abs(actual - expected)) < 1e-12


class TestCanonicalHashes:
    def test_same_content_same_key(self):
        a = Circuit(2, [H(0), RZ(0.5, 1), CNOT(0, 1)])
        b = Circuit(2, [H(0), RZ(0.5, 1), CNOT(0, 1)])
        assert a is not b
        assert circuit_key(a) == circuit_key(b)
        assert circuit_key(a, values=False) == circuit_key(b, values=False)

    def test_gate_kind_change_misses(self):
        base = Circuit(2, [H(0), CNOT(0, 1)])
        assert circuit_key(base) != circuit_key(Circuit(2, [X(0), CNOT(0, 1)]))

    def test_qubit_change_misses(self):
        base = Circuit(3, [H(0), CNOT(0, 1)])
        assert circuit_key(base) != circuit_key(Circuit(3, [H(0), CNOT(0, 2)]))
        # reversed qubit listing is a different circuit, not the same key
        assert circuit_key(base) != circuit_key(Circuit(3, [H(0), CNOT(1, 0)]))

    def test_value_key_sees_angles_structural_key_does_not(self):
        a = Circuit(1, [RZ(0.1, 0)])
        b = Circuit(1, [RZ(0.2, 0)])
        assert circuit_key(a) != circuit_key(b)
        assert circuit_key(a, values=False) == circuit_key(b, values=False)

    def test_program_and_pauli_sum_keys_deterministic(self):
        problem_a = build_molecule_hamiltonian("H2")
        program_a = build_uccsd_program(problem_a).program
        problem_b = build_molecule_hamiltonian("H2")
        program_b = build_uccsd_program(problem_b).program
        assert pauli_sum_key(problem_a.hamiltonian) == pauli_sum_key(
            problem_b.hamiltonian
        )
        assert program_key(program_a) == program_key(program_b)
        lih = build_molecule_hamiltonian("LiH")
        assert pauli_sum_key(problem_a.hamiltonian) != pauli_sum_key(lih.hamiltonian)

    def test_coupling_key_tracks_edges(self):
        from repro.hardware import xtree

        assert coupling_key(xtree(9)) == coupling_key(xtree(9))
        assert coupling_key(xtree(9)) != coupling_key(xtree(13))


class TestContentAddressedCache:
    def test_get_or_compute_hits_after_miss(self):
        cache = ContentAddressedCache(max_entries=4, name="test")
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert value == "v" and cache.stats.misses == 1
        assert cache.get_or_compute("k", lambda: calls.append(1) or "w") == "v"
        assert cache.stats.hits == 1 and len(calls) == 1

    def test_lru_eviction_counts(self):
        cache = ContentAddressedCache(max_entries=2, name="test")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_clear_resets_stats(self):
        cache = ContentAddressedCache(max_entries=2, name="test")
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.stats == CacheStats()

    def test_stats_dict_shape(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.to_dict() == {
            "hits": 3,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.75,
        }


class TestFusionCaching:
    def test_same_circuit_hits_plan_and_program(self):
        cache = ContentAddressedCache(max_entries=8, name="test")
        circuit = Circuit(2, [H(0), RZ(0.5, 0), CNOT(0, 1)])
        fuse_circuit(circuit, cache=cache)
        assert cache.stats.misses == 2  # plan miss + bound-program miss
        fuse_circuit(Circuit(2, [H(0), RZ(0.5, 0), CNOT(0, 1)]), cache=cache)
        assert cache.stats.hits == 2  # plan hit + bound-program hit
        assert cache.stats.misses == 2

    def test_value_change_reuses_plan_but_rebinds(self):
        cache = ContentAddressedCache(max_entries=8, name="test")
        plan_a = fusion_plan(Circuit(1, [RZ(0.1, 0)]), cache=cache)
        plan_b = fusion_plan(Circuit(1, [RZ(0.2, 0)]), cache=cache)
        assert plan_a is plan_b  # structural key ignores the angle
        fuse_circuit(Circuit(1, [RZ(0.1, 0)]), cache=cache)
        misses = cache.stats.misses
        fuse_circuit(Circuit(1, [RZ(0.2, 0)]), cache=cache)
        assert cache.stats.misses == misses + 1  # new angle -> program miss

    def test_structure_change_misses_plan(self):
        cache = ContentAddressedCache(max_entries=8, name="test")
        fusion_plan(Circuit(2, [H(0), CNOT(0, 1)]), cache=cache)
        fusion_plan(Circuit(2, [H(1), CNOT(0, 1)]), cache=cache)
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_cached_plans_isolated_by_level(self):
        cache = ContentAddressedCache(max_entries=8, name="test")
        circuit = Circuit(2, [H(0), H(0), CNOT(0, 1)])
        plan_1q = fusion_plan(circuit, level="1q", cache=cache)
        plan_2q = fusion_plan(circuit, level="2q", cache=cache)
        assert plan_1q is not plan_2q


class TestPipelineCaching:
    def test_warm_rerun_hits_and_matches(self):
        from repro.core import Pipeline, PipelineConfig

        clear_compile_cache()
        config = PipelineConfig(molecule="H2", ratio=0.5)
        cold = Pipeline(config).run()
        assert compile_cache().stats.hits == 0
        warm = Pipeline(config).run()
        assert compile_cache().stats.hits > 0
        assert cold.metrics == warm.metrics

    def test_cache_off_still_runs(self):
        from repro.core import Pipeline, PipelineConfig

        clear_compile_cache()
        config = PipelineConfig(molecule="H2", ratio=0.5, cache=False)
        result = Pipeline(config).run()
        assert compile_cache().stats.lookups == 0
        assert "total_cnots" in result.metrics

    def test_config_from_dict_accepts_new_knobs(self):
        from repro.core import PipelineConfig

        config = PipelineConfig.from_dict(
            {"molecule": "H2", "fusion": "1q", "cache": False}
        )
        assert config.fusion == "1q" and config.cache is False


class TestImportanceMemo:
    def test_scores_memoized_across_calls(self):
        import repro.core.importance as importance

        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        first = importance.parameter_importance(program, problem.hamiltonian)
        memo = importance._SCORE_MEMOS
        hits_before = memo.stats.hits
        second = importance.parameter_importance(program, problem.hamiltonian)
        assert memo.stats.hits > hits_before  # the per-Hamiltonian memo hit
        np.testing.assert_allclose(first, second, rtol=0, atol=0)

    def test_decay_base_keys_are_isolated(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        from repro.core.importance import parameter_importance

        default = parameter_importance(program, problem.hamiltonian)
        steeper = parameter_importance(program, problem.hamiltonian, decay_base=4.0)
        assert not np.allclose(default, steeper)


class TestFusedVQE:
    def test_vqe_runs_with_fused_engine(self):
        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        from repro.vqe import VQE

        inplace = VQE(program, problem.hamiltonian, engine="inplace").run()
        fused = VQE(program, problem.hamiltonian, engine="fused").run()
        assert abs(fused.energy - inplace.energy) < 1e-8

    def test_sweep_energies_fused_matches_batched(self):
        problem = build_molecule_hamiltonian("LiH")
        program = compress_ansatz(
            build_uccsd_program(problem).program, problem.hamiltonian, 0.3
        ).program
        from repro.vqe import sweep_energies

        rng = np.random.default_rng(11)
        thetas = rng.normal(scale=0.1, size=(6, program.num_parameters))
        batched = sweep_energies(program, problem.hamiltonian, thetas)
        fused = sweep_energies(program, problem.hamiltonian, thetas, engine="fused")
        np.testing.assert_allclose(fused, batched, atol=1e-10)
