"""Tests for the statevector simulator and Pauli evolution engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit
from repro.circuit.gates import CNOT, SWAP, H, RX, RY, RZ, X
from repro.pauli import PauliString, PauliSum
from repro.sim import (
    StatevectorSimulator,
    apply_circuit,
    apply_pauli,
    apply_pauli_exponential,
    basis_state,
    expectation,
)
from repro.sim.pauli_evolution import evolve_pauli_sequence


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return state / np.linalg.norm(state)


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    dim = 1 << circuit.num_qubits
    columns = [apply_circuit(circuit, basis_state(circuit.num_qubits, i)) for i in range(dim)]
    return np.column_stack(columns)


class TestBasics:
    def test_basis_state(self):
        state = basis_state(2, 3)
        assert state[3] == 1.0
        assert np.sum(np.abs(state)) == 1.0

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            basis_state(2, 4)

    def test_x_flips_qubit(self):
        state = apply_circuit(Circuit(2, [X(1)]))
        assert abs(state[2]) == 1.0  # |q1=1, q0=0> = index 2

    def test_bell_state(self):
        state = apply_circuit(Circuit(2, [H(0), CNOT(0, 1)]))
        np.testing.assert_allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_swap_moves_amplitude(self):
        state = apply_circuit(Circuit(2, [X(0), SWAP(0, 1)]))
        assert abs(state[2]) == 1.0

    def test_ghz_state(self):
        state = apply_circuit(Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2)]))
        np.testing.assert_allclose(abs(state[0]) ** 2, 0.5, atol=1e-12)
        np.testing.assert_allclose(abs(state[7]) ** 2, 0.5, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2), st.floats(-3, 3))
    def test_norm_preserved(self, qubit, angle):
        circuit = Circuit(3, [RX(angle, qubit), RY(angle / 2, (qubit + 1) % 3), CNOT(0, 2)])
        state = apply_circuit(circuit, random_state(3, 7))
        np.testing.assert_allclose(np.linalg.norm(state), 1.0, atol=1e-10)


class TestPauliApplication:
    @settings(max_examples=80, deadline=None)
    @given(st.text(alphabet="IXYZ", min_size=3, max_size=3), st.integers(0, 100))
    def test_apply_pauli_matches_dense(self, label, seed):
        pauli = PauliString.from_label(label)
        state = random_state(3, seed)
        np.testing.assert_allclose(
            apply_pauli(pauli, state), pauli.to_matrix() @ state, atol=1e-10
        )

    @settings(max_examples=50, deadline=None)
    @given(
        st.text(alphabet="IXYZ", min_size=3, max_size=3),
        st.floats(-2.0, 2.0),
        st.integers(0, 50),
    )
    def test_exponential_matches_expm(self, label, theta, seed):
        from scipy.linalg import expm

        pauli = PauliString.from_label(label)
        state = random_state(3, seed)
        expected = expm(1j * theta * pauli.to_matrix()) @ state
        np.testing.assert_allclose(
            apply_pauli_exponential(pauli, theta, state), expected, atol=1e-9
        )

    def test_evolution_sequence_order(self):
        # exp(i a X) then exp(i b Z) on |0>.
        x = PauliString.from_label("X")
        z = PauliString.from_label("Z")
        state = evolve_pauli_sequence([(x, 0.3), (z, 0.5)], basis_state(1))
        from scipy.linalg import expm

        expected = (
            expm(0.5j * z.to_matrix()) @ expm(0.3j * x.to_matrix()) @ basis_state(1)
        )
        np.testing.assert_allclose(state, expected, atol=1e-10)

    def test_identity_exponential_is_global_phase(self):
        state = random_state(2, 3)
        result = apply_pauli_exponential(PauliString.identity(2), 0.7, state)
        np.testing.assert_allclose(result, np.exp(0.7j) * state, atol=1e-12)


class TestExpectation:
    def test_z_expectation_on_basis_states(self):
        z0 = PauliSum.from_label_dict({"IZ": 1.0})
        assert expectation(z0, basis_state(2, 0)) == pytest.approx(1.0)
        assert expectation(z0, basis_state(2, 1)) == pytest.approx(-1.0)

    def test_x_expectation_on_plus(self):
        plus = apply_circuit(Circuit(1, [H(0)]))
        assert expectation(PauliSum.from_label_dict({"X": 1.0}), plus) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 30))
    def test_matches_dense_quadratic_form(self, seed):
        observable = PauliSum.from_label_dict({"XX": 0.3, "ZI": -1.2, "YZ": 0.9})
        state = random_state(2, seed)
        expected = np.vdot(state, observable.to_matrix() @ state).real
        assert expectation(observable, state) == pytest.approx(expected, abs=1e-10)


class TestSimulatorObject:
    def test_run_and_reset(self):
        simulator = StatevectorSimulator(2, seed=1)
        simulator.run(Circuit(2, [X(0)]))
        assert abs(simulator.state[1]) == 1.0
        simulator.reset()
        assert abs(simulator.state[0]) == 1.0

    def test_sampling_distribution(self):
        simulator = StatevectorSimulator(1, seed=42)
        simulator.run(Circuit(1, [H(0)]))
        counts = simulator.sample_counts(4000)
        assert abs(counts.get(0, 0) - 2000) < 200

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(2).run(Circuit(3))


class TestUnitaryComposition:
    def test_hh_is_identity(self):
        unitary = circuit_unitary(Circuit(1, [H(0), H(0)]))
        np.testing.assert_allclose(unitary, np.eye(2), atol=1e-12)

    def test_inverse_circuit_gives_identity(self):
        circuit = Circuit(3, [H(0), RZ(0.7, 1), CNOT(0, 1), RX(0.2, 2), SWAP(0, 2)])
        unitary = circuit_unitary(circuit.compose(circuit.inverse()))
        np.testing.assert_allclose(unitary, np.eye(8), atol=1e-10)
