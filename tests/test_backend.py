"""Array-backend dispatch, shared-memory slabs, and executor scale-out.

Covers ISSUE-9: the :mod:`repro.sim.backend` registry and capability
flags, the generic (non-inplace) engine paths against the NumPy
reference, :mod:`repro.core.shm` slab round-trips, and the determinism
guarantee -- seeded ``bond_scan`` / ``trajectory_estimate`` runs are
bit-identical across ``executor="serial" | "thread" | "process"`` and
any worker count.
"""

import numpy as np
import pytest

from repro.chem import build_molecule_hamiltonian
from repro.circuit import Circuit
from repro.circuit.gates import CNOT, H, RX, RZ
from repro.core.shm import SharedSlabs
from repro.pauli import PauliSum
from repro.sim import StatevectorSimulator
from repro.sim.backend import (
    NUMPY_BACKEND,
    ArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
)
from repro.sim.batched import BatchedStatevector
from repro.sim.expectation import ExpectationEngine
from repro.sim.noise import DepolarizingNoiseModel
from repro.sim.trajectory import (
    check_executor,
    resolve_workers,
    trajectory_estimate,
    trajectory_expectations,
)


class HostGenericBackend(ArrayBackend):
    """NumPy math through the *generic* (capability-flag-off) paths.

    Every engine that consults ``supports_inplace_kernels`` /
    ``supports_real_orthogonal`` takes the out-of-place branch under
    this backend -- the same branch CuPy/torch take -- while the math
    stays host NumPy, so results must match the default bit for bit in
    structure (and to float tolerance numerically).
    """

    name = "host-generic"
    xp = np
    complex_dtype = np.complex128
    float_dtype = np.float64
    supports_real_orthogonal = False
    supports_inplace_kernels = False


GENERIC = HostGenericBackend()


def small_circuit(num_qubits: int = 3) -> Circuit:
    return Circuit(
        num_qubits,
        [
            H(0),
            CNOT(0, 1),
            RZ(0.37, 1),
            CNOT(1, 2),
            RX(0.21, 2),
            CNOT(0, 2),
        ],
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_is_default_and_always_available(self):
        assert "numpy" in available_array_backends()
        assert get_array_backend(None) is get_array_backend("numpy")
        assert get_array_backend(None).name == "numpy"

    def test_instances_pass_through(self):
        assert get_array_backend(GENERIC) is GENERIC
        assert get_array_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_unknown_name_lists_available_backends(self):
        with pytest.raises(ValueError, match="numpy"):
            get_array_backend("no-such-backend")
        with pytest.raises(ValueError, match="available backends"):
            get_array_backend("no-such-backend")

    def test_duplicate_registration_rejected_without_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_array_backend(type(NUMPY_BACKEND)())

    def test_capability_flags(self):
        numpy_backend = get_array_backend("numpy")
        assert numpy_backend.supports_real_orthogonal
        assert numpy_backend.supports_inplace_kernels
        assert not GENERIC.supports_real_orthogonal
        assert not GENERIC.supports_inplace_kernels


# ----------------------------------------------------------------------
# Generic paths vs. the NumPy reference
# ----------------------------------------------------------------------
class TestGenericBackendEquivalence:
    def test_statevector_simulator_matches_numpy(self):
        circuit = small_circuit()
        reference = StatevectorSimulator(3).run(circuit)
        generic = StatevectorSimulator(3, backend=GENERIC).run(circuit)
        np.testing.assert_allclose(generic, reference, atol=1e-12)

    def test_expectation_engine_matches_numpy(self):
        observable = PauliSum.from_label_dict(
            {"ZZI": 0.5, "XIX": 0.25, "IYY": -0.75, "III": 1.0}
        )
        state = StatevectorSimulator(3).run(small_circuit())
        reference = ExpectationEngine(observable)
        generic = ExpectationEngine(observable, backend=GENERIC)
        assert generic.value(state) == pytest.approx(reference.value(state))
        states = np.stack([state, np.roll(state, 1)])
        np.testing.assert_allclose(
            generic.values(states), reference.values(states), atol=1e-12
        )

    def test_batched_sweep_matches_numpy(self):
        problem = build_molecule_hamiltonian("H2")
        from repro.ansatz import build_uccsd_program
        from repro.vqe.energy import StatevectorEnergy

        program = build_uccsd_program(problem).program
        rng = np.random.default_rng(3)
        angles = rng.normal(0.0, 0.1, (4, program.num_parameters))
        reference = StatevectorEnergy(
            program, problem.hamiltonian, engine="batched"
        ).values(angles)
        generic = StatevectorEnergy(
            program, problem.hamiltonian, engine="batched", array_backend=GENERIC
        ).values(angles)
        np.testing.assert_allclose(generic, reference, atol=1e-10)

    def test_vqe_energy_matches_numpy(self):
        problem = build_molecule_hamiltonian("H2")
        from repro.ansatz import build_uccsd_program
        from repro.vqe.energy import StatevectorEnergy

        program = build_uccsd_program(problem).program
        theta = np.full(program.num_parameters, 0.05)
        reference = StatevectorEnergy(program, problem.hamiltonian)
        generic = StatevectorEnergy(
            program, problem.hamiltonian, engine="batched", array_backend=GENERIC
        )
        assert generic(theta) == pytest.approx(reference(theta), abs=1e-10)


# ----------------------------------------------------------------------
# Capability gating
# ----------------------------------------------------------------------
class TestCapabilityGating:
    def test_fused_engine_requires_inplace_kernels(self):
        with pytest.raises(ValueError, match="in-place kernel support"):
            StatevectorSimulator(3, engine="fused", backend=GENERIC)

    def test_statevector_energy_requires_batched_engine(self):
        problem = build_molecule_hamiltonian("H2")
        from repro.ansatz import build_uccsd_program
        from repro.vqe.energy import StatevectorEnergy

        program = build_uccsd_program(problem).program
        with pytest.raises(ValueError, match="engine='batched'"):
            StatevectorEnergy(
                program,
                problem.hamiltonian,
                engine="inplace",
                array_backend=GENERIC,
            )

    def test_process_executor_requires_numpy_backend(self):
        observable = PauliSum.from_label_dict({"ZII": 1.0})
        with pytest.raises(ValueError, match="numpy backend"):
            trajectory_expectations(
                small_circuit(),
                observable,
                trajectories=8,
                seed=1,
                executor="process",
                workers=4,
                backend=GENERIC,
            )

    def test_real_orthogonal_path_skipped_cleanly(self):
        # The odd-#Y real sweep is numpy-only; a backend that opts out
        # must still produce the same energies through the complex path.
        batch = BatchedStatevector(2, 3, backend=GENERIC)
        assert batch.states.dtype == np.complex128


# ----------------------------------------------------------------------
# Torch smoke (skipped wherever torch is absent)
# ----------------------------------------------------------------------
class TestTorchBackend:
    def test_torch_statevector_matches_numpy(self):
        pytest.importorskip("torch")
        circuit = small_circuit()
        reference = StatevectorSimulator(3).run(circuit)
        simulator = StatevectorSimulator(3, backend="torch")
        torch_state = simulator.run(circuit)
        np.testing.assert_allclose(
            simulator.backend.to_numpy(torch_state), reference, atol=1e-10
        )

    def test_torch_expectation_matches_numpy(self):
        pytest.importorskip("torch")
        observable = PauliSum.from_label_dict({"ZZI": 0.5, "XIX": 0.25})
        state = StatevectorSimulator(3).run(small_circuit())
        reference = ExpectationEngine(observable).value(state)
        torch_value = ExpectationEngine(observable, backend="torch").value(state)
        assert torch_value == pytest.approx(reference, abs=1e-10)


# ----------------------------------------------------------------------
# Shared-memory slabs
# ----------------------------------------------------------------------
class TestSharedSlabs:
    def test_create_attach_roundtrip(self):
        arrays = {
            "coeff": np.arange(6, dtype=np.complex128).reshape(2, 3),
            "masks": np.array([1, 2, 3], dtype=np.uint64),
        }
        slabs = SharedSlabs.create(arrays)
        try:
            attached = SharedSlabs.attach(slabs.handle)
            try:
                np.testing.assert_array_equal(attached["coeff"], arrays["coeff"])
                np.testing.assert_array_equal(attached["masks"], arrays["masks"])
                assert set(attached) == {"coeff", "masks"}
                assert len(attached) == 2
                assert "coeff" in attached and "nope" not in attached
            finally:
                attached.close()
        finally:
            slabs.unlink()

    def test_handle_is_small_and_picklable(self):
        import pickle

        slabs = SharedSlabs.create({"big": np.zeros(1 << 16)})
        try:
            payload = pickle.dumps(slabs.handle)
            assert len(payload) < 1024  # the point: bytes stay in shm
            restored = pickle.loads(payload)
            assert restored.segment == slabs.handle.segment
        finally:
            slabs.unlink()

    def test_views_invalid_after_close(self):
        slabs = SharedSlabs.create({"x": np.ones(4)})
        try:
            slabs.close()
            with pytest.raises(ValueError, match="closed"):
                slabs["x"]
        finally:
            slabs.unlink()

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError, match="at least one array"):
            SharedSlabs.create({})


# ----------------------------------------------------------------------
# Executor plumbing
# ----------------------------------------------------------------------
class TestExecutorPlumbing:
    def test_check_executor_names_valid_choices(self):
        for name in ("serial", "thread", "process"):
            check_executor(name)
        with pytest.raises(ValueError, match="serial"):
            check_executor("fork-bomb")

    def test_resolve_workers(self):
        assert resolve_workers(4, 10) == 4
        assert resolve_workers(8, 3) == 3  # capped at the task count
        assert resolve_workers(None, 5) >= 1
        assert resolve_workers("auto", 5) >= 1
        with pytest.raises(ValueError, match="at least 1"):
            resolve_workers(0, 5)


# ----------------------------------------------------------------------
# Determinism across executors (the ISSUE-9 acceptance guarantee)
# ----------------------------------------------------------------------
class TestExecutorDeterminism:
    def trajectory_setup(self):
        observable = PauliSum.from_label_dict(
            {"ZZI": 0.5, "XIX": 0.25, "IYY": -0.75}
        )
        noise = DepolarizingNoiseModel(
            one_qubit_error=5e-3, two_qubit_error=2e-2
        )
        return small_circuit(), observable, noise

    def test_trajectory_estimate_bit_identical_across_executors(self):
        circuit, observable, noise = self.trajectory_setup()

        def run(executor, workers):
            return trajectory_estimate(
                circuit,
                observable,
                noise,
                trajectories=64,
                seed=11,
                block_size=16,
                executor=executor,
                workers=workers,
            )

        reference = run("serial", None)
        for executor, workers in (
            ("serial", 1),
            ("thread", 1),
            ("thread", 4),
            ("process", 1),
            ("process", 4),
        ):
            candidate = run(executor, workers)
            assert candidate.value == reference.value, (executor, workers)
            assert candidate.standard_error == reference.standard_error
            assert candidate.error_events == reference.error_events

    def test_trajectory_expectations_bit_identical_per_trajectory(self):
        circuit, observable, noise = self.trajectory_setup()

        def run(executor, workers):
            return trajectory_expectations(
                circuit,
                observable,
                noise,
                trajectories=48,
                seed=5,
                block_size=8,
                executor=executor,
                workers=workers,
            )

        reference = run("serial", None)
        np.testing.assert_array_equal(run("thread", 4), reference)
        np.testing.assert_array_equal(run("process", 4), reference)

    def test_bond_scan_bit_identical_across_executors(self):
        from repro.vqe.scan import bond_scan

        def run(executor, workers):
            return bond_scan(
                "H2",
                [0.7, 0.735],
                ["full"],
                max_iterations=20,
                seed=23,
                executor=executor,
                workers=workers,
            )

        reference = run("serial", None)
        assert run("thread", 4) == reference
        assert run("process", 4) == reference
        assert run("process", 1) == reference
