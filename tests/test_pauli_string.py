"""Unit and property tests for the symplectic Pauli-string representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliString

# Single-qubit Pauli matrices for cross-checking.
I2 = np.eye(2, dtype=complex)
SX = np.array([[0, 1], [1, 0]], dtype=complex)
SY = np.array([[0, -1j], [1j, 0]], dtype=complex)
SZ = np.array([[1, 0], [0, -1]], dtype=complex)
SINGLE = {"I": I2, "X": SX, "Y": SY, "Z": SZ}


def dense(label: str) -> np.ndarray:
    """Kronecker reference matrix, leftmost label char = highest qubit."""
    matrix = np.array([[1.0 + 0j]])
    for char in label:
        matrix = np.kron(matrix, SINGLE[char])
    return matrix


def labels(num_qubits: int):
    return st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits)


class TestConstruction:
    def test_from_label_round_trip(self):
        assert PauliString.from_label("XIYZ").label() == "XIYZ"

    def test_paper_figure2_example(self):
        # exp(i theta X3 I2 Y1 Z0): label "XIYZ".
        pauli = PauliString.from_label("XIYZ")
        assert pauli.op_on(3) == "X"
        assert pauli.op_on(2) == "I"
        assert pauli.op_on(1) == "Y"
        assert pauli.op_on(0) == "Z"

    def test_from_ops_sparse(self):
        pauli = PauliString.from_ops(5, {0: "Z", 3: "X"})
        assert pauli.label() == "IXIIZ"

    def test_identity(self):
        identity = PauliString.identity(4)
        assert identity.is_identity()
        assert identity.weight == 0

    def test_single(self):
        pauli = PauliString.single(3, 1, "Y")
        assert pauli.label() == "IYI"

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_ops(2, {5: "X"})

    def test_mask_overflow_rejected(self):
        with pytest.raises(ValueError):
            PauliString(2, x=8)


class TestInspection:
    def test_support_and_weight(self):
        pauli = PauliString.from_label("XIYZ")
        assert pauli.support() == [0, 1, 3]
        assert pauli.weight == 3

    def test_num_xy_counts_basis_changes(self):
        assert PauliString.from_label("XIYZ").num_xy == 2
        assert PauliString.from_label("ZZZZ").num_xy == 0

    def test_y_count(self):
        assert PauliString.from_label("YYXZ").y_count() == 2

    def test_iter_order_is_qubit0_first(self):
        assert list(PauliString.from_label("XIYZ")) == ["Z", "Y", "I", "X"]


class TestAlgebra:
    @pytest.mark.parametrize(
        "a,b,expected_phase,expected_label",
        [
            ("X", "Y", 1j, "Z"),
            ("Y", "X", -1j, "Z"),
            ("Y", "Z", 1j, "X"),
            ("Z", "X", 1j, "Y"),
            ("X", "X", 1, "I"),
            ("I", "Z", 1, "Z"),
        ],
    )
    def test_single_qubit_products(self, a, b, expected_phase, expected_label):
        phase, product = PauliString.from_label(a) * PauliString.from_label(b)
        assert phase == expected_phase
        assert product.label() == expected_label

    def test_anticommuting_pair(self):
        x = PauliString.from_label("XX")
        z = PauliString.from_label("ZI")
        assert not x.commutes_with(z)

    def test_commuting_pair(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("X").compose(PauliString.from_label("XY"))

    @settings(max_examples=150, deadline=None)
    @given(labels(3), labels(3))
    def test_compose_matches_dense(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        phase, product = pa.compose(pb)
        np.testing.assert_allclose(
            phase * dense(product.label()), dense(a) @ dense(b), atol=1e-12
        )

    @settings(max_examples=150, deadline=None)
    @given(labels(4), labels(4))
    def test_commutation_matches_dense(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        commutator = dense(a) @ dense(b) - dense(b) @ dense(a)
        assert pa.commutes_with(pb) == np.allclose(commutator, 0.0)

    @settings(max_examples=50, deadline=None)
    @given(labels(3))
    def test_self_product_is_identity(self, a):
        phase, product = PauliString.from_label(a) * PauliString.from_label(a)
        assert phase == 1
        assert product.is_identity()


class TestMatrix:
    @settings(max_examples=60, deadline=None)
    @given(labels(3))
    def test_to_matrix_matches_kron(self, label):
        np.testing.assert_allclose(
            PauliString.from_label(label).to_matrix(), dense(label), atol=1e-12
        )

    def test_matrix_limit(self):
        with pytest.raises(ValueError):
            PauliString.identity(20).to_matrix()
