"""Tests for the grouped expectation engine and exact eigensolver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliSum
from repro.sim import ExpectationEngine, expectation, ground_state_energy
from repro.sim.exact import ground_state, spectrum


def random_hermitian_sum(num_qubits: int, num_terms: int, seed: int) -> PauliSum:
    rng = np.random.default_rng(seed)
    result = PauliSum.zero(num_qubits)
    for _ in range(num_terms):
        from repro.pauli import PauliString

        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        result.add_term(float(rng.normal()), PauliString.from_label(label))
    return result


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return state / np.linalg.norm(state)


class TestExpectationEngine:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 40), st.integers(0, 40))
    def test_grouped_matches_term_by_term(self, seed_h, seed_psi):
        observable = random_hermitian_sum(4, 8, seed_h)
        if len(observable) == 0:
            return
        state = random_state(4, seed_psi)
        engine = ExpectationEngine(observable)
        assert engine.value(state) == pytest.approx(
            expectation(observable, state), abs=1e-9
        )

    def test_apply_matches_dense(self):
        observable = random_hermitian_sum(3, 6, seed=7)
        state = random_state(3, 11)
        engine = ExpectationEngine(observable)
        np.testing.assert_allclose(
            engine.apply(state), observable.to_matrix() @ state, atol=1e-9
        )

    def test_group_count_not_larger_than_terms(self):
        observable = random_hermitian_sum(4, 12, seed=3)
        engine = ExpectationEngine(observable)
        assert engine.num_groups <= engine.num_terms

    def test_memory_guard(self):
        observable = random_hermitian_sum(10, 40, seed=1)
        with pytest.raises(MemoryError):
            ExpectationEngine(observable, max_bytes=1024)


class TestExactSolver:
    def test_single_qubit_z(self):
        h = PauliSum.from_label_dict({"Z": 1.0})
        assert ground_state_energy(h) == pytest.approx(-1.0)

    def test_transverse_field_pair(self):
        # H = -X0 X1 - 0.5 (Z0 + Z1): ground energy = -sqrt(1 + ...) check
        # against dense diagonalization.
        h = PauliSum.from_label_dict({"XX": -1.0, "ZI": -0.5, "IZ": -0.5})
        dense = np.linalg.eigvalsh(h.to_matrix())[0]
        assert ground_state_energy(h) == pytest.approx(dense, abs=1e-10)

    def test_eigenvector_satisfies_eigen_equation(self):
        h = random_hermitian_sum(3, 5, seed=13)
        # Hermitize: add the dagger to kill imaginary parts.
        h = (h + h.dagger()) * 0.5
        energy, vector = ground_state(h)
        residual = h.to_matrix() @ vector - energy * vector
        assert np.linalg.norm(residual) < 1e-8

    def test_lanczos_path_matches_dense(self):
        """Above the dense cutoff the LinearOperator path must agree."""
        h = random_hermitian_sum(7, 10, seed=21)
        h = (h + h.dagger()) * 0.5
        lanczos = ground_state_energy(h)
        dense = float(np.linalg.eigvalsh(_dense(h))[0])
        assert lanczos == pytest.approx(dense, abs=1e-7)

    def test_spectrum_sorted(self):
        h = random_hermitian_sum(3, 6, seed=5)
        h = (h + h.dagger()) * 0.5
        values = spectrum(h, k=4)
        assert np.all(np.diff(values) >= -1e-10)


def _dense(pauli_sum: PauliSum) -> np.ndarray:
    matrix = np.zeros((1 << pauli_sum.num_qubits,) * 2, dtype=complex)
    for coefficient, pauli in pauli_sum:
        matrix += coefficient * pauli.to_matrix()
    return matrix
