"""Tests for the RR1xx static analyzers (repro.analysis.static).

Three layers, mirroring the package:

* the dataflow framework itself -- project model, call graph, and
  transitive effect propagation over a fixture package;
* one seeded-mutation test per RR1xx rule, asserting the exact
  diagnostic (code, line, and message) the mutation must produce;
* the span-aware suppression mechanics and the lint_repro front end
  (formats, baseline, RR007), plus a live-tree-clean gate per rule.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import check as run_checks
from repro.analysis.static import (
    CallGraph,
    SuppressionIndex,
    analyze,
    build_project_model,
    load_project,
)
from repro.analysis.static.rules import (
    analyze_project,
    rr101_executor_reachable_writes,
    rr102_unpicklable_submissions,
    rr103_slab_lifecycle,
    rr111_nondeterministic_sources,
    rr112_unseeded_default_rng,
    rr121_backend_taint,
)
from repro.core.seeding import seed_sequence, seeded_rng, spawn_seeds

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location(
        "lint_repro_static_tests", REPO_ROOT / "tools" / "lint_repro.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["lint_repro_static_tests"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def live_project():
    return load_project(REPO_ROOT)


# ----------------------------------------------------------------------
# Dataflow framework: model + call graph + effect propagation
# ----------------------------------------------------------------------
FIXTURE_PACKAGE = {
    "src/repro/alpha.py": (
        "STATE = {}\n"
        "\n"
        "def write(key):\n"
        "    STATE[key] = 1\n"
        "\n"
        "def relay(key):\n"
        "    write(key)\n"
    ),
    "src/repro/beta.py": (
        "from repro.alpha import relay\n"
        "\n"
        "def entry(key):\n"
        "    relay(key)\n"
    ),
}


def test_call_graph_resolves_across_modules():
    project = build_project_model(FIXTURE_PACKAGE)
    graph = CallGraph(project)
    reachable = graph.reachable(("src/repro/beta.py", "entry"))
    assert ("src/repro/alpha.py", "relay") in reachable
    assert ("src/repro/alpha.py", "write") in reachable


def test_effect_propagation_through_two_hops():
    project = build_project_model(FIXTURE_PACKAGE)
    graph = CallGraph(project)
    writes = graph.reached_writes(("src/repro/beta.py", "entry"))
    assert len(writes) == 1
    reached = writes[0]
    assert reached.rel == "src/repro/alpha.py"
    assert reached.write.name == "STATE"
    assert reached.write.line == 4
    # entry -> relay -> write: the mutation is two call hops away.
    assert reached.chain == ("entry", "relay", "write")


def test_model_skips_syntax_errors():
    project = build_project_model({"src/repro/broken.py": "def oops(:\n"})
    assert "src/repro/broken.py" not in project.modules


# ----------------------------------------------------------------------
# Seeded mutations: one per rule, exact diagnostic
# ----------------------------------------------------------------------
def _one_finding(findings, code):
    matching = [f for f in findings if f.code == code]
    assert len(matching) == 1, f"expected one {code}, got {findings}"
    return matching[0]


def test_rr101_executor_reachable_module_write():
    project = build_project_model({
        "src/repro/vqe/fake_scan.py": (
            "from concurrent.futures import ThreadPoolExecutor\n"  # 1
            "\n"                                                   # 2
            "_CACHE = {}\n"                                        # 3
            "\n"                                                   # 4
            "def _record(key):\n"                                  # 5
            "    _CACHE[key] = 1\n"                                # 6
            "\n"                                                   # 7
            "def _task(key):\n"                                    # 8
            "    _record(key)\n"                                   # 9
            "\n"                                                   # 10
            "def run(items):\n"                                    # 11
            "    with ThreadPoolExecutor() as pool:\n"             # 12
            "        for item in items:\n"                         # 13
            "            pool.submit(_task, item)\n"               # 14
        ),
    })
    finding = _one_finding(
        rr101_executor_reachable_writes(project, CallGraph(project)), "RR101"
    )
    assert finding.rel == "src/repro/vqe/fake_scan.py"
    assert finding.line == 6
    assert finding.message == (
        "module-level state '_CACHE' is mutated here and reachable from "
        "the thread-pool task '_task' submitted at "
        "src/repro/vqe/fake_scan.py:14 via _task -> _record; make the "
        "task self-contained or document why the shared write is safe "
        "with '# lint: ignore[RR101] - <reason>'"
    )


def test_rr102_unpicklable_process_submissions():
    project = build_project_model({
        "src/repro/core/fake_pool.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"  # 1
            "\n"                                                    # 2
            "def run(items):\n"                                     # 3
            "    def _inner(x):\n"                                  # 4
            "        return x + 1\n"                                # 5
            "    with ProcessPoolExecutor() as pool:\n"             # 6
            "        pool.submit(_inner, 1)\n"                      # 7
            "        pool.map(lambda x: x, items)\n"                # 8
        ),
    })
    findings = rr102_unpicklable_submissions(project, CallGraph(project))
    assert [(f.code, f.line) for f in findings] == [("RR102", 7), ("RR102", 8)]
    tail = (
        " is submitted to a process pool but cannot be pickled; "
        "process-pool tasks must be module-level functions (see "
        "_batch_item_task in repro.core.pipeline for the idiom)"
    )
    assert findings[0].message == "the nested function '_inner'" + tail
    assert findings[1].message == "a lambda" + tail


def test_rr103_owner_leak_and_worker_unlink():
    project = build_project_model({
        "src/repro/core/fake_shm.py": (
            "from repro.core.shm import SharedSlabs\n"       # 1
            "\n"                                             # 2
            "def leak(tables):\n"                            # 3
            "    slabs = SharedSlabs.create(tables)\n"       # 4
            "    return None\n"                              # 5
            "\n"                                             # 6
            "def worker(handle):\n"                          # 7
            "    slabs = SharedSlabs.attach(handle)\n"       # 8
            "    slabs.unlink()\n"                           # 9
        ),
    })
    findings = rr103_slab_lifecycle(project)
    assert [(f.code, f.line) for f in findings] == [("RR103", 4), ("RR103", 9)]
    assert findings[0].message == (
        "SharedSlabs segment 'slabs' is created here but never unlink()ed "
        "and the handle does not leave leak(); the shared-memory segment "
        "leaks"
    )
    assert findings[1].message == (
        "attached SharedSlabs handle 'slabs' calls unlink(): the creating "
        "parent owns segment teardown; workers must only close() "
        "(see repro.core.shm)"
    )


def test_rr111_wall_clock_read():
    project = build_project_model({
        "src/repro/core/fake_timing.py": (
            "import time\n"                 # 1
            "\n"                            # 2
            "def stamp():\n"                # 3
            "    return time.time()\n"      # 4
        ),
    })
    finding = _one_finding(rr111_nondeterministic_sources(project), "RR111")
    assert (finding.rel, finding.line) == ("src/repro/core/fake_timing.py", 4)
    assert finding.message == (
        "wall-clock read time.time() in library code: results must be "
        "functions of their inputs and seeds (timing belongs in "
        "benchmarks/)"
    )


def test_rr111_exempt_in_benchmarks():
    project = build_project_model({
        "src/repro/bench/fake_timing.py": (
            "import time\n\ndef stamp():\n    return time.time()\n"
        ),
    })
    assert rr111_nondeterministic_sources(project) == []


def test_rr112_unseeded_default_rng():
    project = build_project_model({
        "src/repro/core/fake_rng.py": (
            "import numpy as np\n"                  # 1
            "\n"                                    # 2
            "def make():\n"                         # 3
            "    return np.random.default_rng()\n"  # 4
        ),
    })
    finding = _one_finding(rr112_unseeded_default_rng(project), "RR112")
    assert (finding.rel, finding.line) == ("src/repro/core/fake_rng.py", 4)
    assert finding.message == (
        "default_rng() with no seed draws fresh OS entropy; normalize it "
        "through repro.core.seeding (seeded_rng / seed_sequence) so the "
        "determinism contract holds (docs/analysis.md)"
    )


def test_rr112_accepts_proven_seed_sources():
    project = build_project_model({
        "src/repro/core/fake_rng_ok.py": (
            "import numpy as np\n"
            "\n"
            "_SEED = 11\n"
            "\n"
            "def literal():\n"
            "    return np.random.default_rng(7)\n"
            "\n"
            "def constant():\n"
            "    return np.random.default_rng(_SEED)\n"
            "\n"
            "def annotated(seed: int):\n"
            "    return np.random.default_rng(seed)\n"
            "\n"
            "def spawned(seed: int):\n"
            "    child = np.random.SeedSequence(seed).spawn(1)[0]\n"
            "    return np.random.default_rng(child)\n"
        ),
    })
    assert rr112_unseeded_default_rng(project) == []


def test_rr121_host_numpy_on_backend_array():
    project = build_project_model({
        "src/repro/sim/fake_kernel.py": (
            "import numpy as np\n"                              # 1
            "from repro.sim.backend import get_array_backend\n"  # 2
            "\n"                                                # 3
            "def bad(values, backend=None):\n"                  # 4
            "    backend = get_array_backend(backend)\n"        # 5
            "    device = backend.asarray(values)\n"            # 6
            "    return np.sum(device)\n"                       # 7
        ),
    })
    finding = _one_finding(rr121_backend_taint(project), "RR121")
    assert (finding.rel, finding.line) == ("src/repro/sim/fake_kernel.py", 7)
    assert finding.message == (
        "host numpy call np.sum(...) consumes a backend-produced array: "
        "on CuPy/torch backends this value may live on an accelerator; "
        "route the operation through an ArrayBackend hook or bridge "
        "explicitly with backend.to_numpy(...)"
    )


def test_rr121_to_numpy_bridge_is_sanctioned():
    project = build_project_model({
        "src/repro/sim/fake_bridge.py": (
            "import numpy as np\n"
            "from repro.sim.backend import get_array_backend\n"
            "\n"
            "def good(values, backend=None):\n"
            "    backend = get_array_backend(backend)\n"
            "    device = backend.asarray(values)\n"
            "    return np.sum(backend.to_numpy(device))\n"
        ),
    })
    assert rr121_backend_taint(project) == []


# ----------------------------------------------------------------------
# Suppression mechanics
# ----------------------------------------------------------------------
def test_pragma_covers_full_multiline_statement():
    source = (
        "def f():\n"
        "    value = compute(\n"
        "        1,\n"
        "        2,\n"
        "    )  # lint: ignore[RR999]\n"
        "    return value\n"
    )
    index = SuppressionIndex(source)
    # The statement spans lines 2-5; the pragma sits on line 5 but must
    # suppress a finding anchored to the statement's first line.
    assert index.is_suppressed("RR999", 2)
    assert not index.is_suppressed("RR999", 6)


def test_standalone_pragma_governs_next_statement():
    source = (
        "CACHE = {}\n"
        "\n"
        "def f(key, value):\n"
        "    if key not in CACHE:\n"
        "        # lint: ignore[RR999] - reasoned\n"
        "        CACHE[key] = value\n"
        "    return CACHE[key]\n"
    )
    index = SuppressionIndex(source)
    # The comment sits between the if-header and its first body
    # statement; it must attach to the statement below it, not to the
    # header.
    assert index.is_suppressed("RR999", 6)
    assert index.unused() == []


def test_pragma_on_decorator_does_not_blanket_body():
    source = (
        "@decorated  # lint: ignore[RR999]\n"
        "def f():\n"
        "    return 1\n"
    )
    index = SuppressionIndex(source)
    assert index.is_suppressed("RR999", 1)
    assert not index.is_suppressed("RR999", 3)


def test_pragma_inside_string_literal_is_inert():
    source = 'MESSAGE = "use # lint: ignore[RR999] to suppress"\n'
    index = SuppressionIndex(source)
    assert index.pragmas == []


def test_unused_pragmas_reported():
    source = "x = 1  # lint: ignore[RR001, RR002]\n"
    index = SuppressionIndex(source)
    assert index.is_suppressed("RR001", 1)
    assert index.unused() == [(1, "RR002")]


# ----------------------------------------------------------------------
# lint_repro front end: formats, baseline, RR007
# ----------------------------------------------------------------------
def test_lint_source_still_suppresses_per_file_rules(lint):
    source = "def f(cache):\n    if cache:  # lint: ignore[RR001]\n        pass\n"
    assert lint.lint_source(source, Path("example.py"), "src/repro/core/x.py") == []


def test_format_github_annotations(lint, tmp_path, capsys):
    target = tmp_path / "sample.py"
    target.write_text("def f(x):\n    assert x > 0\n")
    code = lint.main(["--format=github", str(target)])
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith(f"::error file={target.as_posix()},line=2::RR004 ")


def test_format_json_and_output_report(lint, tmp_path, capsys):
    target = tmp_path / "sample.py"
    target.write_text("def f(x):\n    assert x > 0\n")
    report_path = tmp_path / "lint.json"
    code = lint.main(
        ["--format=json", "--output", str(report_path), str(target)]
    )
    assert code == 1
    stdout_report = json.loads(capsys.readouterr().out)
    file_report = json.loads(report_path.read_text())
    assert stdout_report == file_report
    assert stdout_report["tool"] == "lint_repro"
    assert stdout_report["errors"] == 1
    (finding,) = stdout_report["findings"]
    assert finding["code"] == "RR004"
    assert finding["line"] == 2
    assert finding["severity"] == "error"


def test_rr007_stale_pragma_is_warning_only(lint, tmp_path, capsys):
    target = tmp_path / "sample.py"
    target.write_text("x = 1  # lint: ignore[RR001]\n")
    code = lint.main([str(target)])
    out = capsys.readouterr().out
    assert code == 0  # warnings never gate
    assert "RR007 stale pragma" in out


def test_baseline_accepts_known_findings(lint, tmp_path, capsys):
    target = tmp_path / "sample.py"
    target.write_text("def f(x):\n    assert x > 0\n")
    baseline = tmp_path / "baseline.json"
    assert lint.main(["--update-baseline", "--baseline", str(baseline), str(target)]) == 0
    capsys.readouterr()
    assert lint.main(["--baseline", str(baseline), str(target)]) == 0
    assert json.loads(baseline.read_text())["findings"][0]["code"] == "RR004"
    # A new finding is not masked by the old baseline.
    target.write_text("def f(x):\n    assert x > 0\n    assert x < 9\n")
    capsys.readouterr()
    assert lint.main(["--baseline", str(baseline), str(target)]) == 1


def test_repo_baseline_is_empty():
    data = json.loads((REPO_ROOT / "tools" / "lint_baseline.json").read_text())
    assert data == {"findings": []}


# ----------------------------------------------------------------------
# Check-registry integration and the live-tree gate
# ----------------------------------------------------------------------
def test_project_model_dispatches_through_check_registry():
    project = build_project_model({
        "src/repro/core/fake_timing.py": (
            "import time\n\ndef stamp():\n    return time.time()\n"
        ),
    })
    report = run_checks(project)
    assert "determinism" in report.checks_run
    assert "concurrency-safety" in report.checks_run
    assert "backend-purity" in report.checks_run
    assert not report.ok
    assert any("RR111" in d.message for d in report.diagnostics)


@pytest.mark.parametrize(
    "code", ["RR101", "RR102", "RR103", "RR111", "RR112", "RR121"]
)
def test_live_tree_is_clean_per_rule(live_project, code):
    findings = [f for f in analyze(live_project) if f.code == code]
    assert findings == [], (
        f"{code} fired on the live tree; fix the finding or justify a "
        f"'# lint: ignore[{code}] - <reason>' pragma: {findings}"
    )


def test_live_tree_raw_findings_all_carry_reasoned_pragmas(live_project):
    # Every raw finding must be answered by an explicit pragma (none are
    # baselined away), and every pragma must carry a reason text.
    raw = analyze_project(live_project)
    assert len(raw) > 0  # the analyzers do find the known shared-memo writes
    for finding in raw:
        module = live_project.modules[finding.rel]
        index = SuppressionIndex(module.source, module.tree)
        assert index.is_suppressed(finding.code, finding.line), finding
        covering = [
            p for p in index.pragmas
            if finding.code in p.codes and p.start <= finding.line <= p.end
        ]
        for pragma in covering:
            comment = module.source.splitlines()[pragma.line - 1]
            assert "-" in comment.split("]", 1)[1], (
                f"pragma at {finding.rel}:{pragma.line} carries no reason"
            )


# ----------------------------------------------------------------------
# Determinism contract: seeding helpers
# ----------------------------------------------------------------------
def test_seeded_rng_bit_identical_to_default_rng():
    ours = seeded_rng(2021).random(16)
    reference = np.random.default_rng(2021).random(16)
    assert np.array_equal(ours, reference)


def test_spawn_seeds_matches_seed_sequence_spawn():
    children = spawn_seeds(7, 3)
    reference = np.random.SeedSequence(7).spawn(3)
    for child, ref in zip(children, reference):
        assert np.array_equal(
            np.random.default_rng(child).random(8),
            np.random.default_rng(ref).random(8),
        )


def test_seed_sequence_passthrough_and_validation():
    root = np.random.SeedSequence(3)
    assert seed_sequence(root) is root
    with pytest.raises(ValueError):
        spawn_seeds(0, -1)
