"""Tests for weighted Pauli sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliString, PauliSum


def labels(num_qubits: int):
    return st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits)


def random_sum(draw_labels, draw_coeffs):
    terms = {}
    for label, coeff in zip(draw_labels, draw_coeffs):
        terms[label] = terms.get(label, 0.0) + coeff
    return PauliSum.from_label_dict(terms)


sums_2q = st.builds(
    random_sum,
    st.lists(labels(2), min_size=1, max_size=5),
    st.lists(
        st.complex_numbers(
            min_magnitude=0.1, max_magnitude=3.0, allow_nan=False, allow_infinity=False
        ),
        min_size=5,
        max_size=5,
    ),
)


class TestConstruction:
    def test_from_label_dict(self):
        sum_ = PauliSum.from_label_dict({"XX": 1.0, "ZZ": -0.5})
        assert len(sum_) == 2
        assert sum_.coefficient(PauliString.from_label("ZZ")) == -0.5

    def test_add_term_merges_duplicates(self):
        sum_ = PauliSum.zero(2)
        pauli = PauliString.from_label("XY")
        sum_.add_term(0.5, pauli)
        sum_.add_term(0.25, pauli)
        assert sum_.coefficient(pauli) == 0.75
        assert len(sum_) == 1

    def test_cancellation_removes_term(self):
        sum_ = PauliSum.zero(2)
        pauli = PauliString.from_label("XY")
        sum_.add_term(0.5, pauli)
        sum_.add_term(-0.5, pauli)
        assert len(sum_) == 0

    def test_qubit_mismatch_rejected(self):
        sum_ = PauliSum.zero(2)
        with pytest.raises(ValueError):
            sum_.add_term(1.0, PauliString.from_label("XYZ"))

    def test_chop(self):
        sum_ = PauliSum.from_label_dict({"XX": 1e-15, "ZZ": 1.0})
        assert len(sum_.chop()) == 1

    def test_iteration_is_deterministic(self):
        sum_ = PauliSum.from_label_dict({"ZZ": 1.0, "XX": 2.0, "YI": 3.0})
        assert [p.label() for _, p in sum_] == [p.label() for _, p in sum_]


class TestAlgebra:
    def test_addition(self):
        a = PauliSum.from_label_dict({"XX": 1.0})
        b = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 2.0})
        total = a + b
        assert total.coefficient(PauliString.from_label("XX")) == 2.0
        assert total.coefficient(PauliString.from_label("ZZ")) == 2.0

    def test_scalar_multiplication(self):
        a = PauliSum.from_label_dict({"XY": 2.0})
        assert (a * 0.5).coefficient(PauliString.from_label("XY")) == 1.0
        assert (0.5 * a).coefficient(PauliString.from_label("XY")) == 1.0

    def test_compose_single_qubit(self):
        x = PauliSum.from_label_dict({"X": 1.0})
        y = PauliSum.from_label_dict({"Y": 1.0})
        product = x @ y
        assert product.coefficient(PauliString.from_label("Z")) == 1j

    def test_dagger(self):
        a = PauliSum.from_label_dict({"XY": 1.0 + 2.0j})
        assert a.dagger().coefficient(PauliString.from_label("XY")) == 1.0 - 2.0j

    def test_hermitian_check(self):
        assert PauliSum.from_label_dict({"XX": 1.0}).is_hermitian()
        assert not PauliSum.from_label_dict({"XX": 1.0j}).is_hermitian()

    def test_commutator_of_commuting_terms_is_zero(self):
        a = PauliSum.from_label_dict({"XX": 1.0})
        b = PauliSum.from_label_dict({"ZZ": 1.0})
        assert len(a.commutator(b)) == 0

    @settings(max_examples=60, deadline=None)
    @given(sums_2q, sums_2q)
    def test_compose_matches_dense(self, a, b):
        np.testing.assert_allclose(
            (a @ b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(sums_2q, sums_2q)
    def test_addition_matches_dense(self, a, b):
        np.testing.assert_allclose(
            (a + b).to_matrix(), a.to_matrix() + b.to_matrix(), atol=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(sums_2q)
    def test_dagger_matches_dense(self, a):
        np.testing.assert_allclose(
            a.dagger().to_matrix(), a.to_matrix().conj().T, atol=1e-9
        )


class TestNumerics:
    def test_norm1(self):
        sum_ = PauliSum.from_label_dict({"XX": 3.0, "ZZ": -4.0})
        assert sum_.norm1() == 7.0

    def test_equality(self):
        a = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 2.0})
        b = PauliSum.from_label_dict({"ZZ": 2.0, "XX": 1.0})
        assert a == b

    def test_inequality(self):
        a = PauliSum.from_label_dict({"XX": 1.0})
        b = PauliSum.from_label_dict({"XX": 1.5})
        assert a != b
