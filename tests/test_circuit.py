"""Tests for the gate/circuit IR."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.gates import CNOT, CZ, SWAP, Barrier, H, Measure, RX, RY, RZ, S, SDG, X, Y, Z


class TestGates:
    def test_cnot_matrix_flips_target_when_control_set(self):
        # Little-endian within the gate: (control, target) = bits (0, 1).
        matrix = CNOT(0, 1).matrix()
        state = np.zeros(4)
        state[1] = 1.0  # |control=1, target=0>
        result = matrix @ state
        assert result[3] == 1.0  # |control=1, target=1>

    def test_cnot_identity_when_control_clear(self):
        matrix = CNOT(0, 1).matrix()
        state = np.zeros(4)
        state[2] = 1.0  # |control=0, target=1>
        assert (matrix @ state)[2] == 1.0

    def test_swap_matrix(self):
        matrix = SWAP(0, 1).matrix()
        state = np.zeros(4)
        state[1] = 1.0
        assert (matrix @ state)[2] == 1.0

    @pytest.mark.parametrize("factory", [H, X, Y, Z, S, SDG])
    def test_single_qubit_unitarity(self, factory):
        matrix = factory(0).matrix()
        np.testing.assert_allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("factory", [RX, RY, RZ])
    def test_rotation_unitarity(self, factory):
        matrix = factory(0.37, 0).matrix()
        np.testing.assert_allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-12)

    def test_rotation_inverse_negates_angle(self):
        gate = RZ(0.5, 2)
        assert gate.inverse().params == (-0.5,)

    def test_s_inverse_is_sdg(self):
        assert S(0).inverse().name == "sdg"
        assert SDG(0).inverse().name == "s"

    def test_self_inverse_gates(self):
        for gate in [H(0), X(0), CNOT(0, 1), SWAP(0, 1), CZ(0, 1)]:
            assert gate.inverse() == gate

    def test_rz_matrix_value(self):
        theta = 0.73
        expected = np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)])
        np.testing.assert_allclose(RZ(theta, 0).matrix(), expected, atol=1e-12)

    def test_remap(self):
        assert CNOT(0, 1).remap({0: 5, 1: 3}).qubits == (5, 3)

    def test_degenerate_two_qubit_rejected(self):
        with pytest.raises(ValueError):
            CNOT(1, 1)
        with pytest.raises(ValueError):
            SWAP(2, 2)


class TestCircuit:
    def test_append_validates_qubits(self):
        circuit = Circuit(2)
        with pytest.raises(ValueError):
            circuit.append(H(5))

    def test_counts_and_num_gates(self):
        circuit = Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2), Barrier(0, 1, 2), Measure(0)])
        assert circuit.num_gates() == 3
        assert circuit.counts()["cx"] == 2

    def test_num_cnots_counts_swaps_as_three(self):
        circuit = Circuit(3, [CNOT(0, 1), SWAP(1, 2)])
        assert circuit.num_cnots() == 4

    def test_depth(self):
        circuit = Circuit(3, [H(0), H(1), CNOT(0, 1), H(2)])
        assert circuit.depth() == 2

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2, [H(0), RZ(0.3, 1), CNOT(0, 1)])
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cx", "rz", "h"]
        assert inverse.gates[1].params == (-0.3,)

    def test_compose(self):
        a = Circuit(2, [H(0)])
        b = Circuit(2, [CNOT(0, 1)])
        assert [g.name for g in a.compose(b)] == ["h", "cx"]

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_remap(self):
        circuit = Circuit(2, [CNOT(0, 1)]).remap({0: 2, 1: 0}, num_qubits=3)
        assert circuit.gates[0].qubits == (2, 0)

    def test_decompose_swaps(self):
        circuit = Circuit(2, [SWAP(0, 1)]).decompose_swaps()
        assert [g.name for g in circuit] == ["cx", "cx", "cx"]
        assert circuit.gates[0].qubits == (0, 1)
        assert circuit.gates[1].qubits == (1, 0)

    def test_two_qubit_pairs(self):
        circuit = Circuit(3, [H(0), CNOT(0, 2), SWAP(1, 2)])
        assert circuit.two_qubit_pairs() == [(0, 2), (1, 2)]

    def test_to_text_truncates(self):
        circuit = Circuit(1, [H(0)] * 100)
        text = circuit.to_text(max_gates=5)
        assert "more" in text
