"""Density-matrix simulator and noise-channel tests."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.gates import CNOT, SWAP, H, RX, RZ, X
from repro.pauli import PauliSum
from repro.sim import DensityMatrixSimulator, DepolarizingNoiseModel, apply_circuit
from repro.sim.noise import depolarizing_paulis


class TestNoiseModel:
    def test_pauli_set_sizes(self):
        assert len(depolarizing_paulis(1)) == 3
        assert len(depolarizing_paulis(2)) == 15

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            depolarizing_paulis(3)

    def test_error_rates_by_gate(self):
        model = DepolarizingNoiseModel(two_qubit_error=1e-3, one_qubit_error=1e-5)
        assert model.error_for("cx", 2) == 1e-3
        assert model.error_for("h", 1) == 1e-5
        assert model.error_for("rz", 1) == 1e-5
        assert model.error_for("measure", 1) == 0.0

    def test_trivial_check(self):
        assert DepolarizingNoiseModel(0.0, 0.0).is_trivial()
        assert not DepolarizingNoiseModel(1e-4).is_trivial()


class TestNoiselessPropagation:
    @pytest.mark.parametrize(
        "circuit",
        [
            Circuit(2, [H(0), CNOT(0, 1)]),
            Circuit(3, [X(0), SWAP(0, 2), RZ(0.4, 2), RX(0.9, 1)]),
            Circuit(2, [RX(1.1, 0), RZ(-0.3, 1), CNOT(1, 0)]),
        ],
    )
    def test_matches_statevector(self, circuit):
        simulator = DensityMatrixSimulator(circuit.num_qubits)
        rho = simulator.run(circuit)
        state = apply_circuit(circuit)
        np.testing.assert_allclose(rho, np.outer(state, state.conj()), atol=1e-10)

    def test_trace_preserved(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(Circuit(2, [H(0), CNOT(0, 1)]))
        assert simulator.trace() == pytest.approx(1.0)

    def test_purity_one_without_noise(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(Circuit(2, [H(0), CNOT(0, 1)]))
        assert simulator.purity() == pytest.approx(1.0)


class TestDepolarizingChannel:
    def test_purity_decreases_with_noise(self):
        noise = DepolarizingNoiseModel(two_qubit_error=0.05)
        simulator = DensityMatrixSimulator(2, noise)
        simulator.run(Circuit(2, [H(0), CNOT(0, 1)]))
        assert simulator.purity() < 1.0
        assert simulator.trace() == pytest.approx(1.0)

    def test_maximal_mixing_at_p_15_16(self):
        # With the Pauli-mixture parameterization, rho + sum_P P rho P =
        # 2^n Tr(rho) I, so p = 15/16 yields the maximally mixed state.
        noise = DepolarizingNoiseModel(two_qubit_error=15.0 / 16.0)
        simulator = DensityMatrixSimulator(2, noise)
        simulator.run(Circuit(2, [CNOT(0, 1)]))
        np.testing.assert_allclose(simulator.rho, np.eye(4) / 4.0, atol=1e-10)

    def test_swap_decomposed_into_noisy_cnots(self):
        noise = DepolarizingNoiseModel(two_qubit_error=0.01)
        a = DensityMatrixSimulator(2, noise)
        a.run(Circuit(2, [SWAP(0, 1)]))
        b = DensityMatrixSimulator(2, noise)
        b.run(Circuit(2, [CNOT(0, 1), CNOT(1, 0), CNOT(0, 1)]))
        np.testing.assert_allclose(a.rho, b.rho, atol=1e-12)

    def test_expectation_matches_matrix_path(self):
        noise = DepolarizingNoiseModel(two_qubit_error=0.02)
        simulator = DensityMatrixSimulator(2, noise)
        simulator.run(Circuit(2, [H(0), CNOT(0, 1)]))
        observable = PauliSum.from_label_dict({"ZZ": 1.0, "XX": 0.5})
        direct = simulator.expectation(observable)
        via_matrix = simulator.expectation_matrix(observable.to_matrix())
        assert direct == pytest.approx(via_matrix, abs=1e-10)

    def test_noise_weakens_correlations(self):
        observable = PauliSum.from_label_dict({"ZZ": 1.0})
        ideal = DensityMatrixSimulator(2)
        ideal.run(Circuit(2, [H(0), CNOT(0, 1)]))
        noisy = DensityMatrixSimulator(2, DepolarizingNoiseModel(0.1))
        noisy.run(Circuit(2, [H(0), CNOT(0, 1)]))
        assert noisy.expectation(observable) < ideal.expectation(observable)

    def test_qubit_cap(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator(13)
