"""Tests for the shared circuit DAG IR and its consumers.

Covers construction (wire edges, commutation-aware edges, front layer),
scheduling metrics (depth, latency-weighted critical path), and the
integration points: SABRE's commutation-aware frontier and the DAG
emitted by Merge-to-Root.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, CircuitDAG
from repro.circuit.dag import gate_axes
from repro.circuit.gates import (
    Barrier,
    CNOT,
    CZ,
    H,
    Measure,
    RZ,
    S,
    SWAP,
    X,
)
from repro.hardware.latency import DEFAULT_LATENCY, GateLatencyModel


class TestConstruction:
    def test_wire_edges(self):
        dag = CircuitDAG.from_circuit(Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2)]))
        assert dag.nodes[0].num_predecessors == 0
        assert dag.nodes[1].num_predecessors == 1
        assert dag.nodes[2].num_predecessors == 1
        assert [s.index for s in dag.nodes[0].successors] == [1]

    def test_front_layer_plain(self):
        dag = CircuitDAG.from_circuit(Circuit(2, [RZ(0.2, 0), CNOT(0, 1)]))
        assert [n.index for n in dag.front_layer()] == [0]

    def test_front_layer_commute(self):
        # RZ on the control commutes with the CNOT: both are frontier.
        dag = CircuitDAG.from_circuit(
            Circuit(2, [RZ(0.2, 0), CNOT(0, 1)]), commute=True
        )
        assert [n.index for n in dag.front_layer()] == [0, 1]

    def test_commute_shared_control_no_edge(self):
        dag = CircuitDAG.from_circuit(
            Circuit(3, [CNOT(0, 1), CNOT(0, 2)]), commute=True
        )
        assert dag.nodes[1].num_predecessors == 0

    def test_commute_target_conflict_keeps_edge(self):
        dag = CircuitDAG.from_circuit(
            Circuit(3, [CNOT(0, 1), CNOT(2, 1)]), commute=True
        )
        # Shared target: X-like on both -> still commutes, no edge.
        assert dag.nodes[1].num_predecessors == 0
        dag = CircuitDAG.from_circuit(
            Circuit(2, [CNOT(0, 1), CNOT(1, 0)]), commute=True
        )
        # Reversed CNOT conflicts on both wires.
        assert dag.nodes[1].num_predecessors == 1

    def test_barrier_blocks_commuting_gates(self):
        dag = CircuitDAG.from_circuit(
            Circuit(1, [RZ(0.1, 0), Barrier(0), RZ(0.2, 0)]), commute=True
        )
        assert dag.nodes[1].num_predecessors == 1
        assert dag.nodes[2].num_predecessors == 1

    def test_append_validates_qubits(self):
        with pytest.raises(ValueError):
            CircuitDAG(2).append(H(5))

    def test_gate_axes_vocabulary(self):
        assert gate_axes(CNOT(0, 1)) == ("Z", "X")
        assert gate_axes(CZ(0, 1)) == ("Z", "Z")
        assert gate_axes(RZ(0.1, 0)) == ("Z",)
        assert gate_axes(S(0)) == ("Z",)
        assert gate_axes(X(0)) == ("X",)
        assert gate_axes(H(0)) == (None,)
        assert gate_axes(SWAP(0, 1)) == (None, None)

    def test_to_circuit_preserves_order(self):
        gates = [H(0), CNOT(0, 1), RZ(0.5, 1), CNOT(0, 1), H(0)]
        for commute in (False, True):
            dag = CircuitDAG.from_circuit(Circuit(2, gates), commute=commute)
            assert dag.to_circuit().gates == gates

    def test_topological_indices_monotone(self):
        rng = np.random.default_rng(7)
        vocab = [H(0), X(1), CNOT(0, 1), CNOT(1, 2), RZ(0.3, 2), SWAP(0, 2)]
        gates = [vocab[i] for i in rng.integers(0, len(vocab), size=40)]
        dag = CircuitDAG.from_circuit(Circuit(3, gates), commute=True)
        for node in dag.nodes:
            for predecessor in node.predecessors:
                assert predecessor.index < node.index


class TestScheduling:
    def test_depth_pinned_five_gate_circuit(self):
        """Hand-computed ASAP levels (guards wire-frontier off-by-ones):

            H(0)       -> level 1 on wire 0
            H(1)       -> level 1 on wire 1
            CNOT(0,1)  -> level 2 (both wires at 1)
            CNOT(1,2)  -> level 3 (wire 1 at 2, wire 2 fresh)
            H(0)       -> level 3 (wire 0 still at 2)
        """
        circuit = Circuit(3, [H(0), H(1), CNOT(0, 1), CNOT(1, 2), H(0)])
        assert circuit.depth() == 3
        assert CircuitDAG.from_circuit(circuit).depth() == 3

    def test_depth_barrier_synchronizes_but_costs_nothing(self):
        circuit = Circuit(2, [H(0), Barrier(0, 1), H(1)])
        # H(1) must wait for the barrier, which waits for H(0).
        assert circuit.depth() == 2
        assert Circuit(2, [H(0), H(1)]).depth() == 1

    def test_measure_costs_nothing(self):
        assert Circuit(1, [H(0), Measure(0)]).depth() == 1

    def test_empty_circuit(self):
        assert Circuit(3).depth() == 0

    def test_duration_critical_path(self):
        model = GateLatencyModel(single_qubit_ns=10.0, cx_ns=100.0)
        circuit = Circuit(3, [H(0), CNOT(0, 1), H(2)])
        dag = CircuitDAG.from_circuit(circuit)
        # Critical path: H(0) -> CNOT = 110 ns; H(2) runs in parallel.
        assert dag.duration(model) == pytest.approx(110.0)

    def test_duration_swap_is_three_cnots(self):
        assert DEFAULT_LATENCY.duration(SWAP(0, 1)) == pytest.approx(
            3 * DEFAULT_LATENCY.cx_ns
        )

    def test_duration_accepts_callable(self):
        dag = CircuitDAG.from_circuit(Circuit(1, [H(0), X(0)]))
        assert dag.duration(lambda gate: 2.0) == pytest.approx(4.0)


class TestScheduleReport:
    def test_swap_decomposition_counts_three_levels(self):
        from repro.compiler import schedule_report

        report = schedule_report(Circuit(2, [SWAP(0, 1)]))
        assert report.depth == 1
        assert report.scheduled_depth == 3
        assert report.duration_ns == pytest.approx(3 * DEFAULT_LATENCY.cx_ns)

    def test_mtr_compiled_program_carries_dag(self):
        from repro.compiler import MergeToRootCompiler
        from repro.core.ir import IRTerm, PauliProgram
        from repro.hardware import xtree
        from repro.pauli import PauliString

        terms = [
            IRTerm(PauliString.from_label("XXI"), 1.0, 0),
            IRTerm(PauliString.from_label("IZZ"), 1.0, 1),
        ]
        program = PauliProgram(3, 2, terms, [0])
        compiled = MergeToRootCompiler(xtree(8)).compile(program)
        assert compiled.dag is not None
        assert compiled.dag.to_circuit().gates == compiled.circuit.gates

    def test_sabre_result_carries_dag(self):
        from repro.compiler import SabreRouter
        from repro.hardware import xtree

        result = SabreRouter(xtree(8)).run(Circuit(8, [CNOT(2, 6), H(3)]))
        assert result.dag is not None
        assert result.dag.to_circuit().gates == result.circuit.gates


class TestCommutingFrontierRouting:
    @pytest.mark.parametrize("seed", range(4))
    def test_commute_routing_equivalent(self, seed):
        """SABRE over the commutation-aware frontier stays correct."""
        from repro.compiler import SabreRouter, assert_routed_equivalent, synthesize_program_chain
        from repro.hardware import xtree
        from test_compiler import random_program

        program = random_program(5, 6, seed=40 + seed)
        params = np.random.default_rng(seed).normal(size=6)
        chain = synthesize_program_chain(program, params)
        result = SabreRouter(xtree(8), commute=True).run(chain)
        assert_routed_equivalent(program, params, result)

    def test_commute_routing_respects_coupling(self):
        from repro.compiler import SabreRouter, synthesize_program_chain
        from repro.hardware import xtree
        from test_compiler import random_program

        program = random_program(6, 8, seed=77)
        chain = synthesize_program_chain(program, [0.1] * 8)
        device = xtree(8)
        result = SabreRouter(device, commute=True).run(chain)
        for gate in result.circuit.decompose_swaps():
            if gate.is_two_qubit():
                assert device.are_connected(*gate.qubits), gate
