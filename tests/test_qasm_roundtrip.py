"""Property-based QASM round-trip and located parse diagnostics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.circuit.qasm import QasmError, from_qasm, to_qasm

_ONE_QUBIT = ("x", "y", "z", "h", "s", "sdg")
_ROTATIONS = ("rx", "ry", "rz")
_TWO_QUBIT = ("cx", "cz", "swap")

NUM_QUBITS = 5


@st.composite
def gates(draw):
    """One random gate over the full serializable gate set."""
    kind = draw(st.sampled_from(("one", "rotation", "two", "barrier", "measure")))
    qubit = draw(st.integers(0, NUM_QUBITS - 1))
    if kind == "one":
        return Gate(draw(st.sampled_from(_ONE_QUBIT)), (qubit,))
    if kind == "rotation":
        angle = draw(
            st.floats(
                -4.0 * math.pi,
                4.0 * math.pi,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        return Gate(draw(st.sampled_from(_ROTATIONS)), (qubit,), (angle,))
    if kind == "two":
        other = draw(
            st.integers(0, NUM_QUBITS - 1).filter(lambda q: q != qubit)
        )
        return Gate(draw(st.sampled_from(_TWO_QUBIT)), (qubit, other))
    if kind == "barrier":
        return Gate("barrier", ())
    return Gate("measure", (qubit,))


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(gates(), min_size=0, max_size=30))
    def test_round_trip_preserves_every_gate(self, gate_list):
        circuit = Circuit(NUM_QUBITS, gate_list)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert len(parsed.gates) == len(circuit.gates)
        for original, recovered in zip(circuit.gates, parsed.gates):
            assert recovered.name == original.name
            assert recovered.qubits == original.qubits
            assert len(recovered.params) == len(original.params)
            for a, b in zip(original.params, recovered.params):
                assert abs(a - b) < 1e-12

    @settings(max_examples=60, deadline=None)
    @given(st.lists(gates(), min_size=0, max_size=30))
    def test_round_trip_is_idempotent(self, gate_list):
        # Serializing the parsed circuit again is byte-identical: the
        # printer is a fixed point, which is what makes the corpus
        # regeneration byte-deterministic.
        text = to_qasm(Circuit(NUM_QUBITS, gate_list))
        assert to_qasm(from_qasm(text)) == text

    def test_pi_expressions_parse(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\nrz(pi/4) q[0];\nrx(-3*pi/2) q[0];\n"
        )
        circuit = from_qasm(text)
        assert circuit.gates[0].params[0] == pytest.approx(math.pi / 4)
        assert circuit.gates[1].params[0] == pytest.approx(-1.5 * math.pi)


def _qasm(body: str, *, qubits: int = 3) -> str:
    return (
        'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
        f"qreg q[{qubits}];\n{body}\n"
    )


class TestDiagnostics:
    def _error(self, text: str) -> QasmError:
        with pytest.raises(QasmError) as excinfo:
            from_qasm(text)
        return excinfo.value

    def test_unsupported_gate_located(self):
        error = self._error(_qasm("ccx q[0],q[1],q[2];"))
        assert error.line_number == 4
        assert "ccx" in str(error)
        assert "ccx q[0],q[1],q[2];" in str(error)

    def test_index_out_of_range_located(self):
        error = self._error(_qasm("h q[7];"))
        assert error.line_number == 4
        assert "7" in str(error)

    def test_missing_angle_located(self):
        error = self._error(_qasm("rz q[0];"))
        assert error.line_number == 4

    def test_unevaluable_angle_located(self):
        error = self._error(_qasm("rz(1/0) q[0];"))
        assert error.line_number == 4

    def test_wrong_operand_count_located(self):
        error = self._error(_qasm("cx q[0];"))
        assert error.line_number == 4
        assert "operand" in str(error)

    def test_repeated_operand_rejected(self):
        error = self._error(_qasm("cx q[1],q[1];"))
        assert error.line_number == 4

    def test_statement_before_qreg(self):
        error = self._error(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nh q[0];\nqreg q[2];\n'
        )
        assert error.line_number == 3

    def test_duplicate_qreg(self):
        error = self._error(_qasm("qreg r[2];"))
        assert error.line_number == 4

    def test_malformed_operand(self):
        error = self._error(_qasm("h q0;"))
        assert error.line_number == 4
        assert "q0" in str(error)

    def test_unparseable_statement(self):
        error = self._error(_qasm("this is not qasm"))
        assert error.line_number == 4

    def test_qasm_error_is_value_error(self):
        # Callers that predate the located diagnostics catch ValueError.
        with pytest.raises(ValueError):
            from_qasm(_qasm("ccx q[0],q[1],q[2];"))
