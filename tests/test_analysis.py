"""Static verification layer: diagnostics core, sanitizer, contracts, lint.

The mutation tests are the heart: each seeds one known corruption class
into a really-routed circuit (illegal CNOT, out-of-range qubit, unbound
parameter, broken layout permutation) and asserts the sanitizer reports
*exactly* the expected diagnostic -- no cascade, no misattribution.
"""

import dataclasses
import importlib.util
import math
import sys
from pathlib import Path

import pytest

import repro.analysis as analysis
from repro.analysis import (
    AnalysisError,
    Check,
    CheckReport,
    CheckRunner,
    Diagnostic,
    Severity,
)
from repro.analysis.diagnostics import get_check, list_checks, register_check
from repro.circuit.circuit import Circuit
from repro.circuit.dag import CircuitDAG
from repro.circuit.gates import Gate
from repro.compiler.fusion import build_fusion_plan
from repro.core import Pipeline, PipelineConfig, PipelineError
from repro.core.passes import BuildProblem, Compress, Route

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def routed():
    """One MtR-routed H2 instance (result carries circuit+layouts+DAG)."""
    return Pipeline(PipelineConfig(molecule="H2", ratio=1.0)).run()


@pytest.fixture(scope="module")
def routed_sabre():
    return Pipeline(
        PipelineConfig(molecule="H2", ratio=1.0, compiler="sabre")
    ).run()


def mutate(result, **changes):
    """A compiled result with ``changes`` applied and the stale DAG dropped.

    Mutations edit the circuit or layouts; keeping the original DAG would
    add a (correct but noisy) dag-circuit-consistency finding on top of
    the one diagnostic the test wants to isolate.
    """
    return dataclasses.replace(result.compiled, dag=None, **changes)


def sole_error_check(report: CheckReport) -> str:
    """The check name of the report's errors, asserting there is one class."""
    assert report.errors, f"expected an error, got clean report: {report.summary()}"
    names = {d.check for d in report.errors}
    assert len(names) == 1, f"expected one error class, got {names}: {report.errors}"
    return names.pop()


# ----------------------------------------------------------------------
# Diagnostics core
# ----------------------------------------------------------------------
def test_severity_ordering_and_rendering():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert str(Severity.ERROR) == "error"


def test_diagnostic_format_includes_location_and_hint():
    d = Diagnostic("demo", Severity.ERROR, "broken", "gate 3", "fix it")
    assert "[error] demo at gate 3: broken (hint: fix it)" == d.format()
    assert d.to_dict()["severity"] == "error"


def test_report_accessors_and_raise():
    report = CheckReport(subject="unit")
    assert report.ok and not len(report)
    report.extend([Diagnostic("demo", Severity.WARNING, "odd")])
    assert report.ok and len(report.warnings) == 1
    report.extend([Diagnostic("demo", Severity.ERROR, "broken")])
    assert not report.ok
    with pytest.raises(AnalysisError, match="unit: 1 static-check error"):
        report.raise_if_errors()
    snapshot = report.to_dict()
    assert snapshot["num_errors"] == 1 and snapshot["ok"] is False


def test_registry_rejects_duplicates_and_unknown_names():
    class Demo(Check):
        name = "qubit-bounds"  # collides with a builtin

    with pytest.raises(ValueError, match="already registered"):
        register_check(Demo())
    with pytest.raises(ValueError, match="unknown check"):
        get_check("no-such-check")
    assert "coupling-legality" in list_checks()


def test_runner_scopes_to_named_subset(routed):
    report = CheckRunner(["qubit-bounds"]).run(routed.compiled)
    assert report.checks_run == ["qubit-bounds"]


def test_custom_check_plugs_into_registry(routed):
    class NoBarriers(Check):
        name = "no-barriers-demo"

        def applies_to(self, obj):
            return isinstance(obj, Circuit)

        def run(self, obj, device=None):
            for i, g in enumerate(obj.gates):
                if g.name == "barrier":
                    yield self.error("barrier found", location=f"gate {i}")

    register_check(NoBarriers())
    try:
        report = analysis.check(
            Circuit(1, [Gate("barrier", (0,))]), checks=["no-barriers-demo"]
        )
        assert not report.ok
    finally:
        from repro.analysis.diagnostics import _CHECKS

        del _CHECKS["no-barriers-demo"]


# ----------------------------------------------------------------------
# Clean artifacts stay clean
# ----------------------------------------------------------------------
def test_routed_results_pass_all_checks(routed, routed_sabre):
    for result in (routed, routed_sabre):
        report = analysis.check(result.compiled, device=result.device)
        assert report.ok, report.summary()
        assert "coupling-legality" in report.checks_run
        assert "layout-permutation" in report.checks_run


def test_device_checks_skipped_without_device(routed):
    report = analysis.check(routed.compiled)
    assert "coupling-legality" not in report.checks_run
    assert report.ok


def test_fusion_plan_and_pauli_program_clean(routed):
    plan = build_fusion_plan(routed.compiled.circuit, "2q")
    assert analysis.check(plan).ok
    assert analysis.check(routed.compressed.program).ok


# ----------------------------------------------------------------------
# Mutation tests: one seeded corruption -> exactly one diagnostic class
# ----------------------------------------------------------------------
def test_mutation_illegal_cnot_flagged(routed):
    device = routed.device
    # A CNOT between two non-adjacent physical qubits.
    far_pair = next(
        (a, b)
        for a in range(device.num_qubits)
        for b in range(device.num_qubits)
        if a < b and not device.are_connected(a, b)
    )
    bad_circuit = Circuit(
        routed.compiled.circuit.num_qubits,
        list(routed.compiled.circuit.gates) + [Gate("cx", far_pair)],
    )
    report = analysis.check(mutate(routed, circuit=bad_circuit), device=device)
    assert sole_error_check(report) == "coupling-legality"
    assert str(far_pair) in report.errors[0].message


def test_mutation_out_of_range_qubit_flagged(routed):
    width = routed.compiled.circuit.num_qubits
    bad_circuit = Circuit(width, routed.compiled.circuit.gates)
    # Circuit.append validates bounds, so corrupt the gate list directly
    # (modeling an in-place compiler bug the constructor never sees).
    bad_circuit.gates.append(Gate("x", (width + 3,)))
    report = analysis.check(mutate(routed, circuit=bad_circuit), device=routed.device)
    assert sole_error_check(report) == "qubit-bounds"


def test_mutation_gate_outside_declared_basis_flagged():
    from repro.hardware.coupling import CouplingGraph

    device = CouplingGraph(
        2, [(0, 1)], name="basis-demo", gate_set=frozenset({"rz", "cx"})
    )
    circuit = Circuit(2, [Gate("h", (0,)), Gate("cx", (0, 1))])
    report = analysis.check(circuit, device=device)
    assert sole_error_check(report) == "gate-set"
    assert "native gate set" in report.errors[0].message


def test_unknown_gate_always_flagged():
    circuit = Circuit(1)
    circuit.gates.append(Gate("toffoli3", (0,)))  # bypass append validation
    report = analysis.check(circuit)
    assert sole_error_check(report) == "gate-set"


def test_mutation_unbound_parameter_flagged(routed):
    bad_circuit = Circuit(
        routed.compiled.circuit.num_qubits,
        list(routed.compiled.circuit.gates)
        + [Gate("rz", (0,), (float("nan"),))],
    )
    report = analysis.check(mutate(routed, circuit=bad_circuit), device=routed.device)
    assert sole_error_check(report) == "gate-parameters"
    assert "unbound" in report.errors[0].message


def test_mutation_bad_layout_permutation_flagged(routed_sabre):
    final = dict(routed_sabre.compiled.final_layout)
    logical = sorted(final)[:2]
    if len(logical) >= 2:  # swap two images: still injective, wrong replay
        a, b = logical
        final[a], final[b] = final[b], final[a]
    report = analysis.check(
        mutate(routed_sabre, final_layout=final), device=routed_sabre.device
    )
    assert sole_error_check(report) == "layout-permutation"
    assert "SWAP replay" in report.errors[0].message


def test_mutation_noninjective_layout_flagged(routed_sabre):
    final = dict(routed_sabre.compiled.final_layout)
    keys = sorted(final)
    final[keys[0]] = final[keys[1]]
    report = analysis.check(
        mutate(routed_sabre, final_layout=final), device=routed_sabre.device
    )
    assert sole_error_check(report) == "layout-permutation"


def test_mutation_swap_count_mismatch_flagged(routed_sabre):
    report = analysis.check(
        mutate(routed_sabre, num_swaps=routed_sabre.compiled.num_swaps + 1),
        device=routed_sabre.device,
    )
    assert sole_error_check(report) == "layout-permutation"
    assert "SWAPs" in report.errors[0].message


def test_mutation_dag_asymmetric_edge_flagged(routed):
    dag = CircuitDAG.from_circuit(routed.compiled.circuit, commute=True)
    victim = next(node for node in dag.nodes if node.predecessors)
    victim.predecessors[0].successors.remove(victim)
    report = analysis.check(dag)
    assert sole_error_check(report) == "dag-invariants"
    assert "asymmetric" in report.errors[0].message


def test_mutation_dag_unsound_commute_edge_flagged(routed):
    # Claiming commute=True for a DAG built with the conservative rules
    # makes the canonical reconstruction disagree: commute-aware building
    # both drops edges (spurious here) and reroutes them past commuting
    # neighbors (missing here).  Either way it is a dag-invariants error.
    dag = CircuitDAG.from_circuit(routed.compiled.circuit, commute=False)
    dag.commute = True
    report = analysis.check(dag)
    if report.errors:  # only when the circuit has commuting neighbors
        assert sole_error_check(report) == "dag-invariants"
        assert all("dependency edge" in d.message for d in report.errors)


def test_mutation_fusion_plan_dropped_gate_flagged(routed):
    plan = build_fusion_plan(routed.compiled.circuit, "2q")
    truncated = dataclasses.replace(plan, ops=plan.ops[:-1])
    report = analysis.check(truncated)
    assert sole_error_check(report) == "fusion-coverage"
    assert "absent" in report.errors[0].message


def test_mutation_pauli_program_bad_parameter_index_flagged(routed):
    program = routed.compressed.program
    term = program.terms[0]
    bad = dataclasses.replace(program)
    bad.terms = [
        dataclasses.replace(term, parameter_index=program.num_parameters + 5)
    ] + list(program.terms[1:])
    report = analysis.check(bad)
    assert sole_error_check(report) == "pauli-program"


# ----------------------------------------------------------------------
# Pipeline contract checker + validate= knob
# ----------------------------------------------------------------------
def test_misordered_passes_rejected_at_construction():
    with pytest.raises(PipelineError, match="context.ansatz"):
        Pipeline(PipelineConfig(), passes=[BuildProblem(), Compress()])
    with pytest.raises(PipelineError, match="context.compressed"):
        Pipeline(PipelineConfig(), passes=[BuildProblem(), Route()])


def test_contract_error_names_the_producer():
    with pytest.raises(PipelineError, match="build_ansatz"):
        Pipeline(PipelineConfig(), passes=[BuildProblem(), Compress()])


def test_run_revalidates_against_actually_injected_keys():
    pipeline = Pipeline(PipelineConfig(molecule="H2", ratio=0.5))
    trimmed = pipeline.without("build_problem")
    with pytest.raises(PipelineError, match="context.problem"):
        trimmed.run()  # constructible (problem is injectable), not runnable


def test_validate_knob_round_trips_and_can_be_disabled(routed):
    config = PipelineConfig(molecule="H2", ratio=1.0, validate=False)
    assert PipelineConfig.from_dict(config.to_dict()).validate is False
    result = Pipeline(config).run()
    assert result.metrics["num_parameters"] == routed.metrics["num_parameters"]


def test_route_validation_catches_corrupted_compiler(routed):
    class BrokenRoute(Route):
        def run(self, context):
            super().run(context)
            # Corrupt after the fact, then re-validate as Route would.
            context.compiled = dataclasses.replace(
                context.compiled,
                dag=None,
                num_swaps=context.compiled.num_swaps + 7,
            )
            self._validate(context)

    pipeline = Pipeline(
        PipelineConfig(molecule="H2", ratio=1.0, cache=False)
    ).replacing("route", BrokenRoute())
    with pytest.raises(AnalysisError, match="layout-permutation"):
        pipeline.run()


# ----------------------------------------------------------------------
# Repo-specific lint
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location(
        "lint_repro", REPO_ROOT / "tools" / "lint_repro.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["lint_repro"] = module
    spec.loader.exec_module(module)
    return module


def lint_codes(lint, source, rel="src/repro/core/example.py"):
    return [f.code for f in lint.lint_source(source, Path("example.py"), rel)]


def test_lint_rr001_truthiness_on_cache_like_names(lint):
    assert lint_codes(lint, "def f(cache):\n    if cache:\n        pass\n") == ["RR001"]
    assert lint_codes(lint, "def f(store):\n    x = store and store.get(1)\n") == [
        "RR001"
    ]
    assert lint_codes(lint, "def f(cache):\n    if cache is not None:\n        pass\n") == []


def test_lint_rr002_silent_norm_division_scoped(lint):
    bad = "def f(p, norm):\n    return p / norm\n"
    assert lint_codes(lint, bad, "src/repro/sim/x.py") == ["RR002"]
    assert lint_codes(lint, bad, "src/repro/chem/x.py") == []
    exempt = "def checked_probabilities(p, norm):\n    return p / norm\n"
    assert lint_codes(lint, exempt, "src/repro/sim/x.py") == []


def test_lint_rr003_numpy2_api_outside_gate(lint):
    bad = "import numpy as np\ndef f(x):\n    return np.bitwise_count(x)\n"
    assert lint_codes(lint, bad) == ["RR003"]
    assert lint_codes(lint, bad, "src/repro/core/bits.py") == []


def test_lint_rr004_bare_assert_except_none_narrowing(lint):
    assert lint_codes(lint, "def f(x):\n    assert x > 0\n") == ["RR004"]
    assert lint_codes(lint, "def f(x):\n    assert x is not None\n") == []


def test_lint_rr005_registry_access_outside_home(lint):
    bad = "from repro.hardware.registry import _DEVICES\n"
    assert lint_codes(lint, bad) == ["RR005"]
    assert lint_codes(lint, "_DEVICES = {}\n", "src/repro/hardware/registry.py") == []


def test_lint_rr006_numpy_import_in_sim_scoped(lint):
    bad = "import numpy as np\n"
    assert lint_codes(lint, bad, "src/repro/sim/x.py") == ["RR006"]
    assert lint_codes(lint, "from numpy import linalg\n", "src/repro/sim/x.py") == [
        "RR006"
    ]
    assert lint_codes(lint, "import numpy.linalg\n", "src/repro/sim/x.py") == ["RR006"]
    # out of scope: the dispatch home, and modules outside sim/
    assert lint_codes(lint, bad, "src/repro/sim/backend.py") == []
    assert lint_codes(lint, bad, "src/repro/vqe/x.py") == []
    pragma = "import numpy as np  # lint: ignore[RR006] - host-side tables\n"
    assert lint_codes(lint, pragma, "src/repro/sim/x.py") == []


def test_lint_pragma_suppression(lint):
    src = "def f(cache):\n    if cache:  # lint: ignore[RR001]\n        pass\n"
    assert lint_codes(lint, src) == []


def test_lint_live_tree_is_clean(lint):
    findings = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        findings.extend(lint.lint_file(path))
    assert not findings, "\n".join(f.format() for f in findings)
