"""Tests for the gate-cancellation pass and QASM round-tripping."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit
from repro.circuit.gates import (
    Barrier,
    CNOT,
    CZ,
    H,
    Measure,
    RX,
    RY,
    RZ,
    S,
    SDG,
    SWAP,
    X,
    Y,
    Z,
)
from repro.circuit.qasm import from_qasm, to_qasm
from repro.compiler.cancellation import cancel_gates, cancellation_savings
from repro.sim import apply_circuit, basis_state


def unitary_of(circuit: Circuit) -> np.ndarray:
    dim = 1 << circuit.num_qubits
    return np.column_stack(
        [apply_circuit(circuit, basis_state(circuit.num_qubits, i)) for i in range(dim)]
    )


class TestCancellation:
    def test_adjacent_h_pair_cancels(self):
        circuit = Circuit(1, [H(0), H(0)])
        assert len(cancel_gates(circuit)) == 0

    def test_cnot_pair_cancels(self):
        circuit = Circuit(2, [CNOT(0, 1), CNOT(0, 1)])
        assert len(cancel_gates(circuit)) == 0

    def test_reversed_cnot_does_not_cancel(self):
        circuit = Circuit(2, [CNOT(0, 1), CNOT(1, 0)])
        assert len(cancel_gates(circuit)) == 2

    def test_swap_is_order_insensitive(self):
        circuit = Circuit(2, [SWAP(0, 1), SWAP(1, 0)])
        assert len(cancel_gates(circuit)) == 0

    def test_blocker_prevents_cancellation(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1), H(0)])
        assert len(cancel_gates(circuit)) == 3

    def test_spectator_gate_does_not_block(self):
        circuit = Circuit(2, [H(0), X(1), H(0)])
        optimized = cancel_gates(circuit)
        assert [g.name for g in optimized] == ["x"]

    def test_rotation_merge(self):
        circuit = Circuit(1, [RZ(0.3, 0), RZ(0.4, 0)])
        optimized = cancel_gates(circuit)
        assert len(optimized) == 1
        assert optimized.gates[0].params[0] == pytest.approx(0.7)

    def test_rotation_annihilation(self):
        circuit = Circuit(1, [RX(0.9, 0), RX(-0.9, 0)])
        assert len(cancel_gates(circuit)) == 0

    def test_cascade(self):
        # Inner pair cancels, exposing the outer pair.
        circuit = Circuit(2, [CNOT(0, 1), H(0), H(0), CNOT(0, 1)])
        assert len(cancel_gates(circuit)) == 0

    def test_barrier_blocks(self):
        circuit = Circuit(1, [H(0), Barrier(0), H(0)])
        assert cancel_gates(circuit).counts()["h"] == 2

    def test_savings_report(self):
        circuit = Circuit(2, [H(0), H(0), CNOT(0, 1), CNOT(0, 1), X(1)])
        savings = cancellation_savings(circuit)
        assert savings["gates_before"] == 5
        assert savings["gates_after"] == 1
        assert savings["cnots_after"] == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 9), min_size=0, max_size=14))
    def test_unitary_preserved(self, opcodes):
        """Random circuits keep their unitary through cancellation."""
        vocabulary = [
            H(0), H(1), X(0), S(1), SDG(1),
            CNOT(0, 1), CNOT(1, 0), SWAP(0, 1),
            RZ(0.37, 0), RX(-1.1, 1),
        ]
        circuit = Circuit(2, [vocabulary[i] for i in opcodes])
        optimized = cancel_gates(circuit)
        np.testing.assert_allclose(
            unitary_of(circuit), unitary_of(optimized), atol=1e-9
        )

    def test_consecutive_pauli_strings_save_cnots(self):
        """The motivating case: consecutive UCCSD strings share ladders."""
        from repro.ansatz import build_uccsd_program
        from repro.chem import build_molecule_hamiltonian
        from repro.compiler import synthesize_program_chain

        problem = build_molecule_hamiltonian("LiH")
        program = build_uccsd_program(problem).program
        chain = synthesize_program_chain(program, [0.1] * program.num_parameters)
        savings = cancellation_savings(chain)
        assert savings["cnots_after"] < savings["cnots_before"]


class TestCommutationAwareCancellation:
    """The DAG peephole with ``commute=True``: partners cancel across
    gates that commute on the shared wires."""

    def test_cnot_pair_across_control_rotation(self):
        circuit = Circuit(2, [CNOT(0, 1), RZ(0.5, 0), CNOT(0, 1)])
        assert [g.name for g in cancel_gates(circuit, commute=True)] == ["rz"]
        assert len(cancel_gates(circuit)) == 3  # adjacency pass is blocked

    def test_cnot_pair_across_shared_control_cnot(self):
        circuit = Circuit(3, [CNOT(0, 1), CNOT(0, 2), CNOT(0, 1)])
        optimized = cancel_gates(circuit, commute=True)
        assert [g.qubits for g in optimized] == [(0, 2)]
        assert len(cancel_gates(circuit)) == 3

    def test_x_pair_across_target(self):
        circuit = Circuit(2, [X(1), CNOT(0, 1), X(1)])
        assert [g.name for g in cancel_gates(circuit, commute=True)] == ["cx"]

    def test_rotation_merge_through_control(self):
        circuit = Circuit(2, [RZ(0.3, 0), CNOT(0, 1), RZ(0.4, 0)])
        optimized = cancel_gates(circuit, commute=True)
        assert [g.name for g in optimized] == ["rz", "cx"]
        assert optimized.gates[0].params[0] == pytest.approx(0.7)

    def test_rotation_annihilation_through_control(self):
        circuit = Circuit(2, [RZ(0.3, 0), CNOT(0, 1), RZ(-0.3, 0)])
        assert [g.name for g in cancel_gates(circuit, commute=True)] == ["cx"]

    def test_hadamard_still_blocks(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1), H(0)])
        assert len(cancel_gates(circuit, commute=True)) == 3

    def test_central_rotation_protects_entangler(self):
        """The Pauli-evolution core must never collapse: RZ sits on the
        CNOT *target*, which does not commute."""
        circuit = Circuit(2, [CNOT(0, 1), RZ(0.7, 1), CNOT(0, 1)])
        assert len(cancel_gates(circuit, commute=True)) == 3

    def test_sibling_cnot_waves_cancel(self):
        """The Merge-to-Root win: two leaves-to-root waves onto a shared
        target cancel across the sibling CNOT blocked by a basis change."""
        circuit = Circuit(
            3,
            [CNOT(2, 0), CNOT(1, 0), H(1), CNOT(1, 0), CNOT(2, 0)],
        )
        optimized = cancel_gates(circuit, commute=True)
        assert optimized.num_cnots() == 2
        assert cancel_gates(circuit).num_cnots() == 4

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 13), min_size=0, max_size=16))
    def test_unitary_preserved_with_commutation(self, opcodes):
        vocabulary = [
            H(0), H(1), X(0), X(2), S(1), SDG(1),
            CNOT(0, 1), CNOT(1, 0), CNOT(0, 2), CNOT(1, 2), SWAP(0, 1),
            RZ(0.37, 0), RZ(-0.8, 2), RX(-1.1, 1),
        ]
        circuit = Circuit(3, [vocabulary[i] for i in opcodes])
        optimized = cancel_gates(circuit, commute=True)
        adjacency = cancel_gates(circuit)
        assert len(optimized) <= len(adjacency)
        np.testing.assert_allclose(
            unitary_of(circuit), unitary_of(optimized), atol=1e-9
        )

    def test_mtr_circuit_strictly_improves_and_verifies(self):
        """Commutation removes strictly more CNOTs than adjacency on a
        compiled Table II molecule, and the optimized physical circuit
        stays statevector-equivalent through the routing permutation."""
        from repro.ansatz import build_uccsd_program
        from repro.chem import build_molecule_hamiltonian
        from repro.compiler import MergeToRootCompiler, assert_routed_equivalent
        from repro.hardware import xtree

        problem = build_molecule_hamiltonian("H2")
        program = build_uccsd_program(problem).program
        params = np.random.default_rng(3).normal(size=program.num_parameters) * 0.3
        compiled = MergeToRootCompiler(xtree(5)).compile(program, params)
        physical = compiled.circuit.decompose_swaps()
        adjacency = cancel_gates(physical)
        commuting = cancel_gates(physical, commute=True)
        assert commuting.num_cnots() < adjacency.num_cnots()
        assert_routed_equivalent(program, params, compiled, circuit=commuting)
        assert_routed_equivalent(program, params, compiled, circuit=adjacency)


class TestQasm:
    def test_export_contains_header_and_gates(self):
        circuit = Circuit(2, [H(0), CNOT(0, 1), RZ(0.5, 1), Measure(0)])
        text = to_qasm(circuit)
        assert "OPENQASM 2.0" in text
        assert "qreg q[2];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_round_trip(self):
        circuit = Circuit(
            3,
            [
                H(0), X(1), S(2), SDG(0),
                CNOT(0, 2), CZ(1, 2), SWAP(0, 1),
                RX(0.25, 0), RZ(-1.75, 2), Barrier(0, 1, 2), Measure(2),
            ],
        )
        recovered = from_qasm(to_qasm(circuit))
        assert recovered.num_qubits == 3
        assert [g.name for g in recovered] == [g.name for g in circuit]
        assert recovered.gates[7].params[0] == pytest.approx(0.25)

    def test_round_trip_preserves_unitary(self):
        circuit = Circuit(2, [H(0), RX(0.7, 1), CNOT(0, 1), RZ(-0.2, 0)])
        recovered = from_qasm(to_qasm(circuit))
        np.testing.assert_allclose(
            unitary_of(circuit), unitary_of(recovered), atol=1e-12
        )

    def test_parse_pi_expressions(self):
        text = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nrz(pi/2) q[0];\n'
        circuit = from_qasm(text)
        assert circuit.gates[0].params[0] == pytest.approx(math.pi / 2)

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("qreg q[1];\nu3(1,2,3) q[0];")

    def test_malicious_angle_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('qreg q[1];\nrz(__import__("os")) q[0];')

    def test_compiled_circuit_exports(self):
        """Full pipeline artifact is expressible in QASM."""
        from repro.core import co_optimize

        result = co_optimize("H2", ratio=0.5)
        text = to_qasm(result.compiled.circuit)
        assert from_qasm(text).num_qubits == 17


def _every_gate_kind_circuit() -> Circuit:
    """One instance of every gate kind in :mod:`repro.circuit.gates`."""
    return Circuit(
        3,
        [
            H(0), X(1), Y(2), Z(0), S(1), SDG(2),
            RX(0.25, 0), RY(-1.5, 1), RZ(3.75e-3, 2),
            CNOT(0, 1), CZ(1, 2), SWAP(0, 2),
            Barrier(0, 1, 2), Measure(0), Measure(2),
        ],
    )


class TestQasmRoundTripAllGates:
    def test_export_import_export_identity(self):
        """export -> import -> export is the identity on the text."""
        circuit = _every_gate_kind_circuit()
        text = to_qasm(circuit)
        recovered = from_qasm(text)
        assert [(g.name, g.qubits, g.params) for g in recovered] == [
            (g.name, g.qubits, g.params) for g in circuit
        ]
        assert to_qasm(recovered) == text

    def test_round_trip_decomposed_swaps(self):
        circuit = _every_gate_kind_circuit().decompose_swaps()
        assert "swap" not in circuit.counts()
        text = to_qasm(circuit)
        recovered = from_qasm(text)
        assert [g.name for g in recovered] == [g.name for g in circuit]
        assert to_qasm(recovered) == text

    def test_round_trip_barrier_only_subset(self):
        circuit = Circuit(2, [Barrier(0), Barrier(0, 1)])
        recovered = from_qasm(to_qasm(circuit))
        assert [g.qubits for g in recovered] == [(0,), (0, 1)]

    def test_round_trip_preserves_depth_and_counts(self):
        circuit = _every_gate_kind_circuit()
        recovered = from_qasm(to_qasm(circuit))
        assert recovered.depth() == circuit.depth()
        assert recovered.counts() == circuit.counts()
