"""White-box tests for Merge-to-Root routing and SABRE internals."""

import pytest

from repro.circuit import Circuit
from repro.circuit.gates import CNOT, H
from repro.compiler.merge_to_root import MergeToRootCompiler
from repro.compiler.sabre import SabreRouter
from repro.core.ir import IRTerm, PauliProgram
from repro.hardware.xtree import xtree
from repro.pauli import PauliString


def program_from_labels(labels: list[str], occupations=None) -> PauliProgram:
    num_qubits = len(labels[0])
    terms = [
        IRTerm(PauliString.from_label(label), 1.0, index)
        for index, label in enumerate(labels)
    ]
    return PauliProgram(num_qubits, len(labels), terms, occupations or [])


class TestSteinerRouting:
    @pytest.fixture()
    def compiler(self):
        return MergeToRootCompiler(xtree(8))

    def test_steiner_single_node(self, compiler):
        assert compiler._steiner_nodes([3]) == {3}

    def test_steiner_siblings_include_parent(self, compiler):
        # XTree8Q: qubits 1..4 are children of root 0.
        nodes = compiler._steiner_nodes([1, 2])
        assert nodes == {0, 1, 2}

    def test_steiner_deep_pair(self, compiler):
        # Qubits 5, 6, 7 are children of qubit 1 in the BFS construction.
        tree = xtree(8)
        child_of_1 = tree.children(1)[0]
        nodes = compiler._steiner_nodes([child_of_1, 2])
        assert nodes == {child_of_1, 1, 0, 2}

    def test_steiner_subtree_without_root(self, compiler):
        tree = xtree(8)
        children = tree.children(1)
        nodes = compiler._steiner_nodes([children[0], children[1]])
        assert nodes == {children[0], children[1], 1}
        assert 0 not in nodes

    def test_future_counts_suffix(self, compiler):
        # Supports: string 0 -> {6,7}, string 1 -> {5,6}, string 2 -> {0,1}.
        program = program_from_labels(["ZZIIIIII", "IZZIIIII", "IIIIIIZZ"])
        future = compiler._future_counts(program)
        # suffix[i] counts strings i, i+1, ...; the compiler indexes i+1
        # to look strictly ahead of the current string.
        assert future[0][6] == 2
        assert future[1][6] == 1
        assert future[1][0] == 1
        assert future[2] == {0: 1, 1: 1}
        assert future[-1] == {}

    def test_route_zero_swaps_for_adjacent_support(self, compiler):
        # Logical 0 on root, logical 1 on its child: already connected.
        program = program_from_labels(["ZZ"])
        compiled = compiler.compile(
            PauliProgram(2, 1, program.terms, []), initial_layout={0: 0, 1: 1}
        )
        assert compiled.num_swaps == 0

    def test_route_pulls_disconnected_pair_together(self, compiler):
        # Two leaves in different branches need exactly one swap on XTree8Q
        # (their Steiner tree has one hole: the root).
        tree = xtree(8)
        leaf_a = tree.children(1)[0]
        program = program_from_labels(["ZZ"])
        compiled = compiler.compile(
            PauliProgram(2, 1, program.terms, []),
            initial_layout={0: leaf_a, 1: 2},
        )
        # Steiner tree {leaf_a, 1, 0, 2} has holes {1, 0}: two swaps.
        assert compiled.num_swaps == 2

    def test_mapping_persists_across_strings(self, compiler):
        """A qubit dragged toward the root stays there for later strings."""
        tree = xtree(8)
        leaf_a = tree.children(1)[0]
        labels = ["ZZ", "ZZ"]  # same pair twice
        program = program_from_labels(labels)
        compiled = compiler.compile(
            PauliProgram(2, 2, program.terms, []),
            initial_layout={0: leaf_a, 1: 2},
        )
        # Second occurrence reuses the arrangement: no further swaps.
        assert compiled.num_swaps == 2


class TestSabreInternals:
    def test_dag_dependencies(self):
        """SABRE's frontier comes from the shared CircuitDAG."""
        from repro.circuit.dag import CircuitDAG

        circuit = Circuit(3, [H(0), CNOT(0, 1), CNOT(1, 2)])
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.nodes[0].num_predecessors == 0
        assert dag.nodes[1].num_predecessors == 1  # depends on H(0)
        assert [s.index for s in dag.nodes[1].successors] == [2]

    def test_private_dag_builder_is_gone(self):
        """Single DAG construction path: the router's old private
        ``_build_dag`` must not resurface."""
        assert not hasattr(SabreRouter, "_build_dag")

    def test_candidate_swaps_touch_front_qubits(self):
        router = SabreRouter(xtree(8))
        circuit = Circuit(8, [CNOT(2, 6)])
        result = router.run(circuit)
        for gate in result.circuit:
            if gate.name == "swap":
                assert True  # swaps allowed; final equivalence checked below
        # The routed CNOT must be on an edge.
        cnots = [g for g in result.circuit if g.name == "cx"]
        assert len(cnots) == 1
        assert xtree(8).are_connected(*cnots[0].qubits)

    def test_single_qubit_gates_flow_through(self):
        router = SabreRouter(xtree(8))
        circuit = Circuit(8, [H(3), H(5)])
        result = router.run(circuit)
        assert result.num_swaps == 0
        assert result.circuit.counts()["h"] == 2

    def test_escape_swap_moves_toward_target(self):
        router = SabreRouter(xtree(8))
        tree = xtree(8)
        leaf = tree.children(2)[0] if tree.children(2) else 6
        position = {0: leaf, 1: 1}
        a, b = router._escape_swap(CNOT(0, 1), position)
        assert tree.are_connected(a, b)

    def test_refinement_does_not_break_routing(self):
        program_circuit = Circuit(6, [CNOT(0, 5), CNOT(5, 3), CNOT(3, 0)])
        result = SabreRouter(xtree(8)).run(program_circuit, refinement_passes=3)
        for gate in result.circuit.decompose_swaps():
            if gate.is_two_qubit():
                assert xtree(8).are_connected(*gate.qubits)


class TestCompiledProgramAccounting:
    def test_final_layout_consistent_with_swaps(self):
        tree = xtree(8)
        leaf_a = tree.children(1)[0]
        program = program_from_labels(["ZZ"])
        compiled = MergeToRootCompiler(tree).compile(
            PauliProgram(2, 1, program.terms, []),
            initial_layout={0: leaf_a, 1: 2},
        )
        if compiled.num_swaps == 0:
            assert compiled.final_layout == compiled.initial_layout
        else:
            assert compiled.final_layout != compiled.initial_layout
        # Layout stays injective.
        assert len(set(compiled.final_layout.values())) == 2
